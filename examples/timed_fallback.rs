//! Timed acquisition with a stale-data fallback (the README §Timeouts
//! pattern): a latency-sensitive reader serves its last good snapshot
//! instead of stalling behind a slow writer, because a timed-out
//! acquisition has zero effect and can simply be retried next call.
//!
//! Run: cargo run --release --example timed_fallback

use oll::{GollLock, RwHandle, RwLock, RwLockFamily, TimedHandle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
struct Config {
    version: u64,
}

fn main() {
    let cache = RwLock::new(GollLock::new(8), Config { version: 0 });
    let stop = AtomicBool::new(false);

    let cache = &cache;
    let stop = &stop;
    std::thread::scope(|s| {
        // A slow writer: holds the write lock for 2ms per update.
        s.spawn(move || {
            let mut w = cache.owner().unwrap();
            for v in 1..=200u64 {
                let mut g = w.write();
                g.version = v;
                std::thread::sleep(Duration::from_millis(2));
                drop(g);
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
        });

        // Latency-sensitive readers: never wait more than 100µs.
        for id in 0..3 {
            s.spawn(move || {
                let mut me = cache.owner().unwrap();
                let mut stale = Config { version: 0 };
                let (mut fresh, mut fallback) = (0u32, 0u32);
                while !stop.load(Ordering::Relaxed) {
                    match me.read_timeout(Duration::from_micros(100)) {
                        Ok(guard) => {
                            stale = guard.clone();
                            fresh += 1;
                        }
                        Err(_) => fallback += 1, // serve `stale` instead
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                println!(
                    "reader {id}: {fresh} fresh reads, {fallback} stale fallbacks, \
                     last seen version {}",
                    stale.version
                );
            });
        }
    });

    // Deadline-style writer cancellation on the raw handle API: the
    // timed-out attempt leaves no trace, so the lock stays reusable.
    let lock = GollLock::new(4);
    let mut holder = lock.handle().unwrap();
    let mut timed = lock.handle().unwrap();
    holder.lock_read();
    assert!(timed.lock_write_deadline(Instant::now()).is_err());
    holder.unlock_read();
    timed.lock_write(); // cancelled attempt fully undone
    timed.unlock_write();
    // Timing is best-effort in the grant direction: an uncontended
    // acquisition succeeds even with an already-expired deadline.
    assert!(timed.lock_read_deadline(Instant::now()).is_ok());
    timed.unlock_read();
    println!("timed-out writer left the lock clean and re-acquirable");

    let mut me = cache.owner().unwrap();
    let final_version = me.read().version;
    assert_eq!(final_version, 200);
    println!("final config version: {final_version}");
}
