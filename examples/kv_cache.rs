//! A read-heavy key-value cache with occasional invalidation, protected
//! by the ROLL lock — the reader-preference scenario of §4.3: lookups
//! should keep flowing even while invalidators queue for write access.
//!
//! The run reports read and write latency percentiles per lock so the
//! trade is visible: ROLL favors readers; FOLL is FIFO-fair; the
//! Solaris-like lock serializes every lookup on its lockword.
//!
//! ```sh
//! cargo run --release --example kv_cache
//! ```

use oll::{FollLock, RollLock, RwLockFamily, SolarisLikeRwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A toy cache: fixed-size direct-mapped table.
struct Cache {
    slots: Vec<Option<(u64, u64)>>,
}

impl Cache {
    fn new(size: usize) -> Self {
        Self {
            slots: vec![None; size],
        }
    }

    fn get(&self, key: u64) -> Option<u64> {
        let slot = (key as usize) % self.slots.len();
        match self.slots[slot] {
            Some((k, v)) if k == key => Some(v),
            _ => None,
        }
    }

    fn put(&mut self, key: u64, value: u64) {
        let slot = (key as usize) % self.slots.len();
        self.slots[slot] = Some((key, value));
    }

    fn invalidate_all(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn run<L: RwLockFamily>(label: &str, lock: L, readers: usize, duration: Duration) {
    let cache = oll::RwLock::new(lock, Cache::new(1024));

    let stop = AtomicBool::new(false);
    let all_read_lat: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    let all_write_lat: Mutex<Vec<Duration>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for r in 0..readers {
            let cache = &cache;
            let stop = &stop;
            let all_read_lat = &all_read_lat;
            s.spawn(move || {
                let mut me = cache.owner().unwrap();
                let mut rng = oll::util::XorShift64::for_thread(2026, r);
                let mut lat = Vec::with_capacity(4096);
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.next_below(2048);
                    let t0 = Instant::now();
                    let hit = me.read().get(key);
                    lat.push(t0.elapsed());
                    if hit.is_none() {
                        // Miss: fill (a write).
                        let t0 = Instant::now();
                        me.write().put(key, key * 7);
                        let _fill = t0.elapsed();
                    }
                }
                all_read_lat.lock().unwrap().extend(lat);
            });
        }
        // Invalidator: periodically wipes the cache (a heavyweight write).
        let cache = &cache;
        let stop = &stop;
        let all_write_lat = &all_write_lat;
        s.spawn(move || {
            let mut me = cache.owner().unwrap();
            let mut lat = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(20));
                let t0 = Instant::now();
                me.write().invalidate_all();
                lat.push(t0.elapsed());
            }
            all_write_lat.lock().unwrap().extend(lat);
        });

        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });

    let mut reads = all_read_lat.into_inner().unwrap();
    let mut writes = all_write_lat.into_inner().unwrap();
    reads.sort_unstable();
    writes.sort_unstable();
    println!(
        "{label:>13}: {:>9} lookups  read p50={:>8.0?} p99={:>8.0?}   invalidate p50={:>8.0?}",
        reads.len(),
        percentile(&reads, 0.50),
        percentile(&reads, 0.99),
        percentile(&writes, 0.50),
    );
}

fn main() {
    let readers = 4;
    let duration = Duration::from_millis(600);
    println!("kv cache: {readers} lookup threads + 1 invalidator, {duration:?} per lock");
    run("ROLL", RollLock::new(readers + 2), readers, duration);
    run("FOLL", FollLock::new(readers + 2), readers, duration);
    run(
        "Solaris-like",
        SolarisLikeRwLock::new(readers + 2),
        readers,
        duration,
    );
}
