//! A read-mostly metrics registry — the workload the paper's introduction
//! motivates: shared state that is read constantly (every request samples
//! counters) and written rarely (a new metric is registered once).
//!
//! Request threads hammer the registry with lookups while a control
//! thread occasionally registers new metrics. The same run is repeated
//! with the FOLL lock and the naive centralized lock so the overhead gap
//! on the read path is visible even on a small machine.
//!
//! ```sh
//! cargo run --release --example metrics_registry
//! ```

use oll::{CentralizedRwLock, FollLock, RwLock, RwLockFamily};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

struct Registry {
    metrics: HashMap<String, u64>,
}

impl Registry {
    fn new() -> Self {
        let mut metrics = HashMap::new();
        for i in 0..64 {
            metrics.insert(format!("requests.endpoint_{i}"), 0);
        }
        Self { metrics }
    }
}

fn run<L: RwLockFamily>(label: &str, lock: L, workers: usize, duration: Duration) {
    let registry = RwLock::new(lock, Registry::new());
    let stop = AtomicBool::new(false);
    let lookups = AtomicU64::new(0);
    let registrations = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Request threads: read-only sampling.
        for w in 0..workers {
            let registry = &registry;
            let stop = &stop;
            let lookups = &lookups;
            s.spawn(move || {
                let mut me = registry.owner().unwrap();
                let mut local = 0u64;
                let key = format!("requests.endpoint_{}", w % 64);
                while !stop.load(Ordering::Relaxed) {
                    let guard = me.read();
                    local += guard.metrics.get(&key).copied().unwrap_or(0) + 1;
                    drop(guard);
                }
                lookups.fetch_add(local, Ordering::Relaxed);
            });
        }
        // Control thread: rare writes (one registration per 10 ms).
        let registry = &registry;
        let stop = &stop;
        let registrations = &registrations;
        s.spawn(move || {
            let mut me = registry.owner().unwrap();
            let mut next = 64;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(10));
                me.write()
                    .metrics
                    .insert(format!("requests.endpoint_{next}"), 0);
                next += 1;
                registrations.fetch_add(1, Ordering::Relaxed);
            }
        });

        let start = Instant::now();
        while start.elapsed() < duration {
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });

    let mut me = registry.owner().unwrap();
    let final_metrics = me.read().metrics.len();
    println!(
        "{label:>12}: {:>12} lookups, {:>3} registrations, {final_metrics} metrics live",
        lookups.load(Ordering::Relaxed),
        registrations.load(Ordering::Relaxed),
    );
}

fn main() {
    let workers = 4;
    let duration = Duration::from_millis(600);
    println!("metrics registry: {workers} request threads + 1 control thread, {duration:?}");
    run("FOLL", FollLock::new(workers + 2), workers, duration);
    run(
        "Centralized",
        CentralizedRwLock::new(workers + 2),
        workers,
        duration,
    );
    println!("(higher lookup counts = less reader-side lock overhead)");
}
