//! Write upgrade in practice (§3.2.1): the check-then-act pattern.
//!
//! Worker threads maintain a shared two-word configuration whose
//! invariant (`stamp == version * 3`) only holds while nobody is mid-
//! update — the reader-writer lock is what keeps readers from observing a
//! torn refresh. Most of the time workers only *check* the config (read
//! lock); on finding it stale they try to *upgrade* the read hold to a
//! write hold and refresh in place, with no release/re-acquire gap for
//! another thread to sneak through. Upgrades succeed only for a sole
//! reader, so under contention workers fall back to drop-and-write-lock;
//! the run counts both paths.
//!
//! ```sh
//! cargo run --release --example write_upgrade
//! ```

use oll::{GollLock, RwHandle, RwLockFamily, UpgradableHandle};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Shared config. The fields are atomics only so Rust lets us share them;
/// their *mutual consistency* is protected by the GOLL lock, exactly like
/// plain fields under `std::sync::RwLock`.
struct Config {
    version: AtomicU64,
    stamp: AtomicU64, // invariant: stamp == version * 3 when quiescent
}

fn main() {
    const WORKERS: usize = 4;
    const CHECKS_PER_WORKER: usize = 20_000;

    let lock = GollLock::new(WORKERS);
    let config = Config {
        version: AtomicU64::new(0),
        stamp: AtomicU64::new(0),
    };
    let target_version = |i: usize| (i as u64) / 1_000;

    let upgrades = AtomicU64::new(0);
    let fallbacks = AtomicU64::new(0);
    let refreshes = AtomicU64::new(0);

    std::thread::scope(|s| {
        for _ in 0..WORKERS {
            let lock = &lock;
            let config = &config;
            let (upgrades, fallbacks, refreshes) = (&upgrades, &fallbacks, &refreshes);
            s.spawn(move || {
                let mut me = lock.handle().unwrap();
                for i in 0..CHECKS_PER_WORKER {
                    // --- check phase (read lock) ---
                    me.lock_read();
                    let v = config.version.load(Relaxed);
                    let stamp = config.stamp.load(Relaxed);
                    assert_eq!(stamp, v * 3, "reader observed a torn refresh");
                    if v >= target_version(i) {
                        me.unlock_read();
                        continue;
                    }
                    // --- act phase: upgrade in place, or fall back ---
                    if me.try_upgrade() {
                        upgrades.fetch_add(1, Relaxed);
                    } else {
                        me.unlock_read();
                        me.lock_write();
                        fallbacks.fetch_add(1, Relaxed);
                    }
                    // Write-held either way: refresh (deliberately torn in
                    // the middle — the lock hides the intermediate state).
                    let v = config.version.load(Relaxed);
                    if v < target_version(i) {
                        let nv = target_version(i);
                        config.version.store(nv, Relaxed);
                        // Torn window: stamp still belongs to the old
                        // version. No reader may see this.
                        std::hint::black_box(&config.stamp);
                        config.stamp.store(nv * 3, Relaxed);
                        refreshes.fetch_add(1, Relaxed);
                    }
                    // Downgrade: verify our refresh while already letting
                    // other readers in.
                    me.downgrade();
                    let v = config.version.load(Relaxed);
                    assert_eq!(config.stamp.load(Relaxed), v * 3);
                    assert!(v >= target_version(i));
                    me.unlock_read();
                }
            });
        }
    });

    println!(
        "upgrades: {}, fallbacks: {}, refreshes applied: {}",
        upgrades.load(Relaxed),
        fallbacks.load(Relaxed),
        refreshes.load(Relaxed),
    );
    println!(
        "final config version {} (stamp {})",
        config.version.load(Relaxed),
        config.stamp.load(Relaxed),
    );
    println!("write_upgrade OK");
}
