//! Quickstart: the three OLL locks in five minutes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use oll::{FollLock, GollLock, RollLock, RwHandle, RwLock, RwLockFamily, UpgradableHandle};

fn main() {
    // ------------------------------------------------------------------
    // 1. Raw handle API: register, then acquire through the handle.
    //    (Every lock is constructed with a capacity: the maximum number of
    //    concurrently registered threads — the paper's per-thread queue
    //    nodes are preallocated from it.)
    // ------------------------------------------------------------------
    let lock = FollLock::new(4);
    let mut me = lock.handle().expect("capacity not exhausted");
    {
        let _shared = me.read(); // shared: other readers may enter
        println!("FOLL: holding for reading");
    } // guard drop releases
    {
        let _exclusive = me.write(); // exclusive
        println!("FOLL: holding for writing");
    }

    // ------------------------------------------------------------------
    // 2. Data-carrying wrapper: RwLock<T, L> pairs a value with any lock.
    // ------------------------------------------------------------------
    let counter = RwLock::new(RollLock::new(8), 0u64);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let counter = &counter;
            s.spawn(move || {
                let mut me = counter.owner().unwrap();
                for _ in 0..10_000 {
                    *me.write() += 1;
                }
                let snapshot = *me.read();
                assert!(snapshot >= 10_000);
            });
        }
    });
    {
        let mut me = counter.owner().unwrap();
        println!("ROLL-protected counter: {}", *me.read());
        assert_eq!(*me.read(), 40_000);
    }

    // ------------------------------------------------------------------
    // 3. GOLL extras: try-locks and write upgrade/downgrade (§3.2.1).
    // ------------------------------------------------------------------
    let goll = GollLock::new(4);
    let mut a = goll.handle().unwrap();
    let mut b = goll.handle().unwrap();

    a.lock_read();
    assert!(b.try_lock_read(), "readers share");
    b.unlock_read();

    // Sole reader -> upgrade to writer without releasing.
    assert!(a.try_upgrade());
    assert!(!b.try_lock_read(), "write-held now");
    println!("GOLL: upgraded read -> write");

    // And back down without releasing.
    a.downgrade();
    assert!(b.try_lock_read(), "read-held again");
    b.unlock_read();
    a.unlock_read();
    println!("GOLL: downgraded write -> read");

    println!("quickstart OK");
}
