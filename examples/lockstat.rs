//! `lockstat` — run a mixed read/write workload over the instrumented
//! locks and print every lock's contention profile from the global
//! telemetry registry.
//!
//! ```sh
//! cargo run --release --features telemetry --example lockstat
//! cargo run --release --features telemetry --example lockstat -- --json
//! cargo run --release --features telemetry --example lockstat -- --biased
//! cargo run --release --features telemetry --example lockstat -- --self-tuning
//! cargo run --release --features trace --example lockstat -- --trace out.json
//! cargo run --release --features obs --example lockstat -- --obs 127.0.0.1:9184
//! ```
//!
//! Without the `telemetry` feature the example still runs, but every
//! recording hook is a compiled-out no-op, so the report is empty — the
//! point of the zero-cost facade. `--biased` wraps the three OLL locks
//! in the BRAVO reader-biasing layer, so the profiles additionally show
//! bias grants/revocations and the biased-read `read_fast` counts.
//! `--cohort` builds FOLL/ROLL with the NUMA cohort writer gate, so the
//! profiles show the `cohort_local_handoff` / `cohort_remote_handoff` /
//! `cohort_batch_exhausted` counters (GOLL has no cohort path).
//! `--self-tuning` wraps the three OLL locks in the `SelfTuning` online
//! policy controller, so the profiles show the `tuner_sample` /
//! `tuner_flip` / `tuner_hold` counters alongside whatever knob
//! steering the observed mix provoked.
//! `--trace PATH` additionally captures the run in the flight recorder
//! and writes a Perfetto-loadable Chrome Trace Event file (needs a
//! `--features trace` build). `--obs [ADDR]` runs the sweep under the
//! continuous-monitoring sampler (needs a `--features obs` build),
//! optionally serving Prometheus text on ADDR, and `--obs-json PATH`
//! writes the final `oll.obs` document.

use oll::telemetry::{registry, report, Telemetry};
use oll::trace::TraceSession;
use oll::util::XorShift64;
use oll::workloads::obsio::{self, ObsArgs};
use oll::workloads::traceio;
use oll::{FollLock, GollLock, RollLock, RwHandle, RwLockFamily, SelfTuning, SolarisLikeRwLock};

const THREADS: usize = 4;
const ACQUISITIONS: usize = 20_000;
const READ_PCT: u32 = 95;

/// The paper's §5.1 loop: each thread flips a per-thread PRNG coin and
/// takes the lock for reading or writing with an empty critical section.
fn hammer<L: RwLockFamily + Sync>(lock: &L, name: &str) {
    lock.telemetry().rename(name);
    std::thread::scope(|scope| {
        for tid in 0..THREADS {
            scope.spawn(move || {
                let mut handle = lock.handle().expect("capacity covers every thread");
                let mut rng = XorShift64::for_thread(0x10C5_7A75, tid);
                for _ in 0..ACQUISITIONS {
                    if rng.percent(READ_PCT) {
                        handle.lock_read();
                        handle.unlock_read();
                    } else {
                        handle.lock_write();
                        handle.unlock_write();
                    }
                }
            });
        }
    });
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let json = argv.iter().any(|a| a == "--json");
    let biased = argv.iter().any(|a| a == "--biased");
    let cohort = argv.iter().any(|a| a == "--cohort");
    let tuned = argv.iter().any(|a| a == "--self-tuning");
    let trace = argv
        .iter()
        .position(|a| a == "--trace")
        .map(|i| argv.get(i + 1).expect("--trace needs a PATH").clone());
    let mut obs = ObsArgs::default();
    {
        let mut bad = |m: &str| {
            eprintln!("error: {m}");
            std::process::exit(2);
        };
        let mut i = 0;
        while i < argv.len() {
            obsio::parse_flag(&argv, &mut i, &mut obs, &mut bad);
            i += 1;
        }
    }
    if !Telemetry::enabled() {
        eprintln!(
            "note: built without the `telemetry` feature, so nothing is \
             recorded. Rebuild with:\n  \
             cargo run --release --features telemetry --example lockstat"
        );
    }
    if trace.is_some() {
        traceio::warn_if_disabled("lockstat");
    }
    if obs.on {
        obsio::warn_if_disabled("lockstat");
    }
    let session = trace.as_ref().map(|_| TraceSession::begin());
    let obs_session = obsio::start(&obs, &mut |m| {
        eprintln!("error: {m}");
        std::process::exit(2);
    });
    eprintln!(
        "lockstat: {THREADS} threads x {ACQUISITIONS} acquisitions, {READ_PCT}% reads, per lock{}{}{}",
        if biased {
            ", BRAVO-biased OLL locks"
        } else {
            ""
        },
        if cohort {
            ", cohort writer gate on FOLL/ROLL"
        } else {
            ""
        },
        if tuned {
            ", self-tuning controller"
        } else {
            ""
        }
    );

    // Keep the locks alive until after the sweep: the registry holds weak
    // references and prunes dropped instances.
    let solaris = SolarisLikeRwLock::new(THREADS);
    if biased {
        let goll = GollLock::builder(THREADS).biased(true).build_biased();
        let foll = FollLock::builder(THREADS)
            .cohort(cohort)
            .biased(true)
            .build_biased();
        let roll = RollLock::builder(THREADS)
            .cohort(cohort)
            .biased(true)
            .build_biased();
        if tuned {
            let goll = SelfTuning::new(goll);
            let foll = SelfTuning::new(foll);
            let roll = SelfTuning::new(roll);
            hammer(&goll, "lockstat/GOLL+bravo+tuned");
            hammer(&foll, "lockstat/FOLL+bravo+tuned");
            hammer(&roll, "lockstat/ROLL+bravo+tuned");
            hammer(&solaris, "lockstat/Solaris-like");
            report_and_trace(json, &trace, session, &obs, obs_session);
            return;
        }
        hammer(&goll, "lockstat/GOLL+bravo");
        hammer(&foll, "lockstat/FOLL+bravo");
        hammer(&roll, "lockstat/ROLL+bravo");
        hammer(&solaris, "lockstat/Solaris-like");
        report_and_trace(json, &trace, session, &obs, obs_session);
        return;
    }
    let goll = GollLock::new(THREADS);
    let foll = FollLock::builder(THREADS).cohort(cohort).build();
    let roll = RollLock::builder(THREADS).cohort(cohort).build();
    if tuned {
        let goll = SelfTuning::new(goll);
        let foll = SelfTuning::new(foll);
        let roll = SelfTuning::new(roll);
        hammer(&goll, "lockstat/GOLL+tuned");
        hammer(&foll, "lockstat/FOLL+tuned");
        hammer(&roll, "lockstat/ROLL+tuned");
        hammer(&solaris, "lockstat/Solaris-like");
        report_and_trace(json, &trace, session, &obs, obs_session);
        return;
    }
    hammer(&goll, "lockstat/GOLL");
    hammer(
        &foll,
        if cohort {
            "lockstat/FOLL+cohort"
        } else {
            "lockstat/FOLL"
        },
    );
    hammer(
        &roll,
        if cohort {
            "lockstat/ROLL+cohort"
        } else {
            "lockstat/ROLL"
        },
    );
    hammer(&solaris, "lockstat/Solaris-like");
    report_and_trace(json, &trace, session, &obs, obs_session);
}

fn report_and_trace(
    json: bool,
    trace: &Option<String>,
    session: Option<TraceSession>,
    obs: &ObsArgs,
    obs_session: Option<obsio::ObsSession>,
) {
    let snaps = registry::snapshot_all();
    if json {
        println!("{}", report::render_json(&snaps));
    } else {
        print!("{}", report::render_text(&snaps));
    }
    if let Some(obs_session) = obs_session {
        let text = obsio::finish(obs_session, obs.json.as_deref()).expect("obs file is writable");
        println!("-- obs --\n{text}");
    }
    if let (Some(path), Some(session)) = (trace, session) {
        let tl = session.collect();
        let text = traceio::write_outputs(&tl, path, None, None).expect("trace file is writable");
        println!("-- flight recorder --\n{text}");
        eprintln!("wrote {path}");
    }
}
