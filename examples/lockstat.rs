//! `lockstat` — run a mixed read/write workload over the instrumented
//! locks and print every lock's contention profile from the global
//! telemetry registry.
//!
//! ```sh
//! cargo run --release --features telemetry --example lockstat
//! cargo run --release --features telemetry --example lockstat -- --json
//! ```
//!
//! Without the `telemetry` feature the example still runs, but every
//! recording hook is a compiled-out no-op, so the report is empty — the
//! point of the zero-cost facade.

use oll::telemetry::{registry, report, Telemetry};
use oll::util::XorShift64;
use oll::{FollLock, GollLock, RollLock, RwHandle, RwLockFamily, SolarisLikeRwLock};

const THREADS: usize = 4;
const ACQUISITIONS: usize = 20_000;
const READ_PCT: u32 = 95;

/// The paper's §5.1 loop: each thread flips a per-thread PRNG coin and
/// takes the lock for reading or writing with an empty critical section.
fn hammer<L: RwLockFamily + Sync>(lock: &L, name: &str) {
    lock.telemetry().rename(name);
    std::thread::scope(|scope| {
        for tid in 0..THREADS {
            scope.spawn(move || {
                let mut handle = lock.handle().expect("capacity covers every thread");
                let mut rng = XorShift64::for_thread(0x10C5_7A75, tid);
                for _ in 0..ACQUISITIONS {
                    if rng.percent(READ_PCT) {
                        handle.lock_read();
                        handle.unlock_read();
                    } else {
                        handle.lock_write();
                        handle.unlock_write();
                    }
                }
            });
        }
    });
}

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    if !Telemetry::enabled() {
        eprintln!(
            "note: built without the `telemetry` feature, so nothing is \
             recorded. Rebuild with:\n  \
             cargo run --release --features telemetry --example lockstat"
        );
    }
    eprintln!(
        "lockstat: {THREADS} threads x {ACQUISITIONS} acquisitions, {READ_PCT}% reads, per lock"
    );

    // Keep the locks alive until after the sweep: the registry holds weak
    // references and prunes dropped instances.
    let goll = GollLock::new(THREADS);
    let foll = FollLock::new(THREADS);
    let roll = RollLock::new(THREADS);
    let solaris = SolarisLikeRwLock::new(THREADS);
    hammer(&goll, "lockstat/GOLL");
    hammer(&foll, "lockstat/FOLL");
    hammer(&roll, "lockstat/ROLL");
    hammer(&solaris, "lockstat/Solaris-like");

    let snaps = registry::snapshot_all();
    if json {
        println!("{}", report::render_json(&snaps));
    } else {
        print!("{}", report::render_text(&snaps));
    }
}
