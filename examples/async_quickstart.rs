//! Async quick-start: the futures-native lock family.
//!
//! ```sh
//! cargo run --example async_quickstart --features async
//! ```
//!
//! `AsyncRwLock` suspends *tasks*, not threads: a pending acquisition
//! parks its task waker in the queue node and the releasing task wakes
//! it directly (grant cascade), so any executor — or the bundled
//! single-future `block_on` — can drive it. Dropping a pending future
//! cancels the acquisition, and the deadline variants time out on their
//! own.

use oll::{block_on, AsyncRwLock};
use std::time::{Duration, Instant};

fn main() {
    let lock = AsyncRwLock::new(vec![1u64, 2, 3]);

    block_on(async {
        // Shared reads: many read guards may be live at once.
        {
            let data = lock.read().await;
            println!("read: sum = {}", data.iter().sum::<u64>());
        }

        // Exclusive write.
        {
            let mut data = lock.write().await;
            data.push(4);
            println!("write: appended, len = {}", data.len());
        }

        // Deadline variants return Err(TimedOut) instead of waiting
        // forever. With the lock free this grants immediately...
        let deadline = Instant::now() + Duration::from_millis(10);
        match lock.read_deadline(deadline).await {
            Ok(data) => println!("read_deadline: granted, len = {}", data.len()),
            Err(e) => println!("read_deadline: {e}"),
        }

        // ...and with a write guard held it times out: the waiter
        // tombstones its queue node and the next release skips it.
        let gate = lock.write().await;
        let deadline = Instant::now() + Duration::from_millis(10);
        match lock.read_deadline(deadline).await {
            Ok(_) => unreachable!("write guard is held"),
            Err(e) => println!("read_deadline under contention: {e}"),
        }
        drop(gate);

        // try_read / try_write are the non-suspending fast paths.
        assert!(lock.try_read().is_some());
    });
}
