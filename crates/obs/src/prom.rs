//! Prometheus text exposition (format 0.0.4) over a sampler state.
//!
//! Hand-rolled like every other serializer in the workspace: `# HELP` /
//! `# TYPE` headers, `name{label="value"} value` samples, label values
//! escaped per the exposition spec (backslash, double-quote, newline).
//! Counters come from the exact run totals; gauges (rates, quantiles)
//! come from the most recent window a lock was active in, so a scrape
//! sees current behaviour, not run-averaged history.

use crate::health::LockHealthReport;
use crate::series::ObsState;
use oll_telemetry::{HistogramSnapshot, LockEvent, LockSnapshot};
use std::fmt::Write as _;

/// Escapes a label value per the Prometheus exposition format.
pub fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn labels(s: &LockSnapshot) -> String {
    format!(
        "lock=\"{}\",kind=\"{}\"",
        label_escape(&s.name),
        label_escape(&s.kind)
    )
}

/// Merged read+write view of an acquire or hold histogram pair.
fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = *a;
    out.merge(b);
    out
}

const QUANTILES: [(f64, &str); 3] = [(0.50, "0.5"), (0.99, "0.99"), (0.999, "0.999")];

fn quantile_rows(out: &mut String, metric: &str, base: &str, h: &HistogramSnapshot) {
    if h.is_empty() {
        return;
    }
    for (p, label) in QUANTILES {
        let _ = writeln!(
            out,
            "{metric}{{{base},quantile=\"{label}\"}} {}",
            h.percentile_ns(p)
        );
    }
}

/// Renders the whole exposition page.
pub fn render_prometheus(state: &ObsState, health: &[LockHealthReport]) -> String {
    let mut out = String::new();
    header(
        &mut out,
        "oll_obs_samples_total",
        "counter",
        "Sampling ticks since the daemon started.",
    );
    let _ = writeln!(out, "oll_obs_samples_total {}", state.samples);
    header(
        &mut out,
        "oll_obs_windows_retained",
        "gauge",
        "Sample windows currently held in the time-series ring.",
    );
    let _ = writeln!(out, "oll_obs_windows_retained {}", state.windows.len());
    header(
        &mut out,
        "oll_obs_windows_evicted_total",
        "counter",
        "Sample windows folded into the run totals after ring wrap.",
    );
    let _ = writeln!(
        out,
        "oll_obs_windows_evicted_total {}",
        state.windows_evicted
    );
    header(
        &mut out,
        "oll_obs_uptime_seconds",
        "gauge",
        "Time since the sampler started.",
    );
    let _ = writeln!(
        out,
        "oll_obs_uptime_seconds {}",
        fmt_f64(state.elapsed_ns as f64 / 1e9)
    );

    header(
        &mut out,
        "oll_lock_acquisitions_total",
        "counter",
        "Lock acquisitions since the sampler started, by operation.",
    );
    for s in &state.totals {
        let base = labels(s);
        let _ = writeln!(
            out,
            "oll_lock_acquisitions_total{{{base},op=\"read\"}} {}",
            s.reads()
        );
        let _ = writeln!(
            out,
            "oll_lock_acquisitions_total{{{base},op=\"write\"}} {}",
            s.writes()
        );
    }

    header(
        &mut out,
        "oll_lock_events_total",
        "counter",
        "Slow-path events since the sampler started, by event kind.",
    );
    for s in &state.totals {
        let base = labels(s);
        for e in LockEvent::ALL {
            let c = s.get(e);
            if c != 0 {
                let _ = writeln!(
                    out,
                    "oll_lock_events_total{{{base},event=\"{}\"}} {c}",
                    e.name()
                );
            }
        }
    }

    header(
        &mut out,
        "oll_lock_acquire_rate",
        "gauge",
        "Acquisitions per second over the most recent active window.",
    );
    for s in &state.totals {
        let base = labels(s);
        let (read_rate, write_rate) = state
            .latest_for(&s.name)
            .map(|(w, d)| {
                let secs = w.dt_ns.max(1) as f64 / 1e9;
                (d.reads() as f64 / secs, d.writes() as f64 / secs)
            })
            .unwrap_or((0.0, 0.0));
        let _ = writeln!(
            out,
            "oll_lock_acquire_rate{{{base},op=\"read\"}} {}",
            fmt_f64(read_rate)
        );
        let _ = writeln!(
            out,
            "oll_lock_acquire_rate{{{base},op=\"write\"}} {}",
            fmt_f64(write_rate)
        );
    }

    header(
        &mut out,
        "oll_lock_acquire_time_ns",
        "gauge",
        "Acquire-latency quantiles (log2-bucket upper bounds) over the most recent active window.",
    );
    for s in &state.totals {
        let base = labels(s);
        if let Some((_, d)) = state.latest_for(&s.name) {
            quantile_rows(
                &mut out,
                "oll_lock_acquire_time_ns",
                &format!("{base},op=\"read\""),
                &d.read_acquire,
            );
            quantile_rows(
                &mut out,
                "oll_lock_acquire_time_ns",
                &format!("{base},op=\"write\""),
                &d.write_acquire,
            );
        }
    }

    header(
        &mut out,
        "oll_lock_hold_time_ns",
        "gauge",
        "Hold-time quantiles (log2-bucket upper bounds) over the most recent active window.",
    );
    for s in &state.totals {
        let base = labels(s);
        if let Some((_, d)) = state.latest_for(&s.name) {
            quantile_rows(
                &mut out,
                "oll_lock_hold_time_ns",
                &format!("{base},op=\"read\""),
                &d.read_hold,
            );
            quantile_rows(
                &mut out,
                "oll_lock_hold_time_ns",
                &format!("{base},op=\"write\""),
                &d.write_hold,
            );
            quantile_rows(
                &mut out,
                "oll_lock_hold_time_ns",
                &format!("{base},op=\"any\""),
                &merged(&d.read_hold, &d.write_hold),
            );
        }
    }

    header(
        &mut out,
        "oll_lock_read_ratio",
        "gauge",
        "Reads over total acquisitions since the sampler started.",
    );
    for h in health {
        if let Some(r) = h.read_ratio {
            let _ = writeln!(
                out,
                "oll_lock_read_ratio{{lock=\"{}\",kind=\"{}\"}} {}",
                label_escape(&h.name),
                label_escape(&h.kind),
                fmt_f64(r)
            );
        }
    }

    header(
        &mut out,
        "oll_lock_health",
        "gauge",
        "Health severity: 0 idle, 1 healthy, 2 busy, 3 contended, 4 starving, 5 degraded.",
    );
    for h in health {
        let _ = writeln!(
            out,
            "oll_lock_health{{lock=\"{}\",kind=\"{}\",state=\"{}\"}} {}",
            label_escape(&h.name),
            label_escape(&h.kind),
            h.health.name(),
            h.health.severity()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{score_all, HealthConfig};
    use crate::series::SampleWindow;

    fn state() -> ObsState {
        let mut s = LockSnapshot::empty("fig5/GOLL \"x\"", "GOLL");
        s.events[LockEvent::ReadFast.index()] = 100;
        s.events[LockEvent::HandoffToWriter.index()] = 4;
        s.read_acquire.buckets[7] = 100;
        s.read_acquire.count = 100;
        s.read_acquire.max_ns = 200;
        s.read_hold.buckets[5] = 100;
        s.read_hold.count = 100;
        s.read_hold.max_ns = 60;
        ObsState {
            interval_ns: 100_000_000,
            elapsed_ns: 1_000_000_000,
            samples: 10,
            windows_evicted: 0,
            windows: vec![SampleWindow {
                t_ns: 100_000_000,
                dt_ns: 100_000_000,
                deltas: vec![s.clone()],
            }],
            totals: vec![s],
        }
    }

    #[test]
    fn page_has_the_advertised_series() {
        let st = state();
        let health = score_all(&st, &HealthConfig::default());
        let page = render_prometheus(&st, &health);
        assert!(page.contains("# TYPE oll_lock_acquisitions_total counter"));
        assert!(page.contains("op=\"read\"} 100"));
        assert!(page.contains("event=\"handoff_to_writer\"} 4"));
        assert!(page.contains(
            "oll_lock_acquire_rate{lock=\"fig5/GOLL \\\"x\\\"\",kind=\"GOLL\",op=\"read\"} 1000"
        ));
        assert!(page.contains("oll_lock_hold_time_ns"));
        assert!(page.contains("quantile=\"0.99\"} "));
        assert!(page.contains("oll_lock_health{"));
        // Every non-comment line is `name{...} value` or `name value`.
        for line in page.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(!series.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
        }
    }

    #[test]
    fn escaping_is_spec_shaped() {
        assert_eq!(label_escape("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }
}
