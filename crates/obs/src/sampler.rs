//! The daemon behind the [`Sampler`](crate::Sampler) facade (only
//! compiled with the `enabled` feature).
//!
//! # Tick protocol
//!
//! A tick sweeps the telemetry registry, diffs against the previous
//! sweep (pairing locks by name; newborn locks pass through whole), and
//! pushes the non-empty deltas into the [`SeriesRing`] as one window.
//! The sweep happens *under the state mutex*: the daemon's timer ticks
//! and any `sample_now` calls serialize, so consecutive windows always
//! diff monotone counter values in order and the telescoping-sum
//! invariant (`totals == final - baseline`) survives concurrent
//! callers. Lock order is state mutex → registry mutex, and the
//! registry never calls back into this crate, so the nesting cannot
//! invert.
//!
//! `stop` flips the flag under the wake mutex, wakes the daemon, joins
//! it, then takes one last tick so events recorded between the final
//! timer tick and the join are still counted.

use crate::series::{ObsState, SampleWindow, SeriesRing};
use oll_telemetry::{registry, LockSnapshot};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug)]
pub(crate) struct Inner {
    start: Instant,
    last_t_ns: u64,
    prev: Vec<LockSnapshot>,
    ring: SeriesRing,
    samples: u64,
}

#[derive(Debug)]
pub(crate) struct Shared {
    interval: Duration,
    state: Mutex<Inner>,
    stop: Mutex<bool>,
    wake: Condvar,
}

impl Shared {
    pub(crate) fn new(interval: Duration, ring_capacity: usize) -> Self {
        Self {
            interval: interval.max(Duration::from_millis(1)),
            state: Mutex::new(Inner {
                start: Instant::now(),
                last_t_ns: 0,
                prev: registry::snapshot_all(),
                ring: SeriesRing::new(ring_capacity),
                samples: 0,
            }),
            stop: Mutex::new(false),
            wake: Condvar::new(),
        }
    }

    /// One sample: sweep, diff, push a window.
    pub(crate) fn tick(&self) {
        let mut inner = self.state.lock().unwrap();
        let cur = registry::snapshot_all();
        let t_ns = inner.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let dt_ns = t_ns.saturating_sub(inner.last_t_ns).max(1);
        let deltas: Vec<LockSnapshot> = registry::diff_sweeps(&inner.prev, &cur)
            .into_iter()
            .filter(|d| !d.is_empty())
            .collect();
        inner.ring.push(SampleWindow {
            t_ns,
            dt_ns,
            deltas,
        });
        inner.prev = cur;
        inner.last_t_ns = t_ns;
        inner.samples += 1;
    }

    /// Copies the accumulated state out for rendering.
    pub(crate) fn state_copy(&self) -> ObsState {
        let inner = self.state.lock().unwrap();
        ObsState {
            interval_ns: self.interval.as_nanos().min(u128::from(u64::MAX)) as u64,
            elapsed_ns: inner.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            samples: inner.samples,
            windows_evicted: inner.ring.evicted(),
            windows: inner.ring.windows().cloned().collect(),
            totals: inner.ring.totals(),
        }
    }

    /// The daemon loop: tick every interval until stopped.
    pub(crate) fn run(&self) {
        let mut stopped = self.stop.lock().unwrap();
        while !*stopped {
            let (guard, _timeout) = self
                .wake
                .wait_timeout(stopped, self.interval)
                .expect("sampler stop mutex never poisoned");
            stopped = guard;
            if *stopped {
                return;
            }
            self.tick();
        }
    }

    /// Signals the daemon to exit its loop.
    pub(crate) fn request_stop(&self) {
        *self.stop.lock().unwrap() = true;
        self.wake.notify_all();
    }
}
