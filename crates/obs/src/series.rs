//! The time-series core: per-interval delta windows in a fixed-capacity
//! ring whose evictions fold into a running total, so `totals()` is
//! exact over the whole run no matter how small the ring is.
//!
//! # Why eviction folds instead of drops
//!
//! The sampler's windows are *diffs* of monotone counters (see
//! [`crate::Sampler`]): window `i` holds exactly the events that landed
//! between tick `i-1` and tick `i`. Summing consecutive windows
//! telescopes back to `final - baseline`, so as long as an evicted
//! window's deltas are merged into [`SeriesRing::evicted_totals`] before
//! it is forgotten, the ring-wide invariant
//!
//! ```text
//! evicted_totals + sum(retained windows) == final snapshot - baseline
//! ```
//!
//! holds with **no lost or double-counted events** — the property
//! `tests/obs.rs` pins by hammering locks through a deliberately tiny
//! ring and comparing against the end-of-run registry sweep.

use oll_telemetry::LockSnapshot;
use std::collections::VecDeque;

/// One sampling interval's worth of per-lock deltas.
#[derive(Debug, Clone)]
pub struct SampleWindow {
    /// End-of-window time, nanoseconds since the sampler started.
    pub t_ns: u64,
    /// Window length, nanoseconds (`>= 1`; rates divide by this).
    pub dt_ns: u64,
    /// Per-lock deltas for the window; locks with no activity in the
    /// interval are elided, so idle fleets cost almost nothing.
    pub deltas: Vec<LockSnapshot>,
}

impl SampleWindow {
    /// The delta for one lock, if it was active this window.
    pub fn lock(&self, name: &str) -> Option<&LockSnapshot> {
        self.deltas.iter().find(|d| d.name == name)
    }
}

/// A bounded ring of [`SampleWindow`]s with exact fold-on-evict totals.
#[derive(Debug, Clone)]
pub struct SeriesRing {
    capacity: usize,
    windows: VecDeque<SampleWindow>,
    evicted_totals: Vec<LockSnapshot>,
    evicted: u64,
}

/// Merges `delta` into the snapshot with the same name in `acc`,
/// appending a copy if the lock is new.
pub(crate) fn merge_by_name(acc: &mut Vec<LockSnapshot>, delta: &LockSnapshot) {
    match acc.iter_mut().find(|s| s.name == delta.name) {
        Some(s) => s.merge(delta),
        None => acc.push(delta.clone()),
    }
}

impl SeriesRing {
    /// An empty ring retaining at most `capacity` windows (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            windows: VecDeque::new(),
            evicted_totals: Vec::new(),
            evicted: 0,
        }
    }

    /// Maximum retained windows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a window, folding the oldest into the evicted totals if
    /// the ring is full.
    pub fn push(&mut self, window: SampleWindow) {
        if self.windows.len() == self.capacity {
            if let Some(old) = self.windows.pop_front() {
                for d in &old.deltas {
                    merge_by_name(&mut self.evicted_totals, d);
                }
                self.evicted += 1;
            }
        }
        self.windows.push_back(window);
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &SampleWindow> {
        self.windows.iter()
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window was ever pushed (or all were evicted — never,
    /// since eviction only happens on push).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Windows folded away so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The newest retained window.
    pub fn latest(&self) -> Option<&SampleWindow> {
        self.windows.back()
    }

    /// Exact per-lock totals over the *whole* series — evicted windows
    /// included — equal to `final snapshot - baseline` by telescoping.
    pub fn totals(&self) -> Vec<LockSnapshot> {
        let mut out = self.evicted_totals.clone();
        for w in &self.windows {
            for d in &w.deltas {
                merge_by_name(&mut out, d);
            }
        }
        out
    }
}

/// A point-in-time copy of everything the sampler accumulated: the
/// retained windows, the exact run totals, and the tick bookkeeping.
/// This is what [`Sampler::state`](crate::Sampler::state) and
/// [`Sampler::stop`](crate::Sampler::stop) hand to the renderers.
#[derive(Debug, Clone, Default)]
pub struct ObsState {
    /// Configured sampling interval, nanoseconds (0 when the facade is
    /// compiled out).
    pub interval_ns: u64,
    /// Time since the sampler started, nanoseconds.
    pub elapsed_ns: u64,
    /// Sampling ticks taken.
    pub samples: u64,
    /// Windows folded out of the ring.
    pub windows_evicted: u64,
    /// Retained windows, oldest first.
    pub windows: Vec<SampleWindow>,
    /// Exact per-lock totals since the sampler started.
    pub totals: Vec<LockSnapshot>,
}

impl ObsState {
    /// The newest retained window.
    pub fn latest(&self) -> Option<&SampleWindow> {
        self.windows.last()
    }

    /// The newest retained window in which `name` was active.
    pub fn latest_for(&self, name: &str) -> Option<(&SampleWindow, &LockSnapshot)> {
        self.windows
            .iter()
            .rev()
            .find_map(|w| w.lock(name).map(|d| (w, d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oll_telemetry::LockEvent;

    fn window(t: u64, name: &str, reads: u64) -> SampleWindow {
        let mut s = LockSnapshot::empty(name, "TEST");
        s.events[LockEvent::ReadFast.index()] = reads;
        SampleWindow {
            t_ns: t,
            dt_ns: 1,
            deltas: vec![s],
        }
    }

    #[test]
    fn eviction_folds_not_drops() {
        let mut ring = SeriesRing::new(2);
        for i in 0..5 {
            ring.push(window(i, "a", 10));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.evicted(), 3);
        let totals = ring.totals();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].get(LockEvent::ReadFast), 50);
    }

    #[test]
    fn totals_merge_across_locks() {
        let mut ring = SeriesRing::new(1);
        ring.push(window(0, "a", 1));
        ring.push(window(1, "b", 2));
        ring.push(window(2, "a", 4));
        let mut totals = ring.totals();
        totals.sort_by(|x, y| x.name.cmp(&y.name));
        assert_eq!(totals[0].get(LockEvent::ReadFast), 5);
        assert_eq!(totals[1].get(LockEvent::ReadFast), 2);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut ring = SeriesRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(window(0, "a", 1));
        ring.push(window(1, "a", 1));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.evicted(), 1);
    }
}
