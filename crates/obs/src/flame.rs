//! Folded-stack export over the trace analyzer's per-acquisition wait
//! breakdowns, consumable by standard flamegraph tooling
//! (`flamegraph.pl`, inferno, speedscope's collapsed format).
//!
//! Each completed acquisition contributes its three wait components to
//! three synthetic stacks:
//!
//! ```text
//! <lock>;read|write;spin     <summed ns>
//! <lock>;read|write;queued   <summed ns>
//! <lock>;read|write;handoff  <summed ns>
//! ```
//!
//! Because `spin + queued + handoff == total` for every acquisition by
//! analyzer construction, the folded totals per lock equal the
//! analyzer's [`LockBreakdown`](oll_trace::analyze::LockBreakdown) sums exactly
//! — `tests/obs.rs` round-trips the text through [`parse_folded`] and
//! checks that identity with zero unmatched records.

use oll_trace::{Timeline, TraceReport};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Replaces the two characters the folded format reserves (`;` between
/// frames, space before the weight) so lock names survive round trips.
fn frame(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

const PHASES: [&str; 3] = ["spin", "queued", "handoff"];

/// Renders the analyzer's acquisitions as folded stacks, one line per
/// `(lock, op, phase)` with a nonzero summed weight, sorted for stable
/// output.
pub fn render_folded(tl: &Timeline, report: &TraceReport) -> String {
    let mut agg: BTreeMap<(String, &'static str, &'static str), u64> = BTreeMap::new();
    for a in &report.acquisitions {
        let lock = frame(tl.lock_name(a.lock));
        let op = if a.write { "write" } else { "read" };
        for (phase, ns) in PHASES.iter().zip([a.spin_ns, a.queued_ns, a.handoff_ns]) {
            if ns > 0 {
                *agg.entry((lock.clone(), op, phase)).or_default() += ns;
            }
        }
    }
    let mut out = String::new();
    for ((lock, op, phase), weight) in &agg {
        let _ = writeln!(out, "{lock};{op};{phase} {weight}");
    }
    out
}

/// One parsed folded-stack line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedLine {
    /// The semicolon-separated frames, outermost first.
    pub frames: Vec<String>,
    /// The sample weight (nanoseconds, for this exporter).
    pub weight: u64,
}

/// Parses folded-stack text (the inverse of [`render_folded`]; also
/// accepts any other tool's collapsed output).
pub fn parse_folded(text: &str) -> Result<Vec<FoldedLine>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let (stack, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no weight", i + 1))?;
        let weight = weight
            .parse::<u64>()
            .map_err(|_| format!("line {}: bad weight `{weight}`", i + 1))?;
        let frames: Vec<String> = stack.split(';').map(str::to_string).collect();
        if frames.iter().any(|f| f.is_empty()) {
            return Err(format!("line {}: empty frame", i + 1));
        }
        out.push(FoldedLine { frames, weight });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oll_trace::{analyze, AnalyzerConfig, TraceKind, TraceRecord};

    fn rec(ts_ns: u64, tid: u32, lock: u32, kind: TraceKind, token: u64) -> TraceRecord {
        TraceRecord {
            ts_ns,
            tid,
            lock,
            kind,
            token,
        }
    }

    fn timeline() -> Timeline {
        use oll_trace::LockDescriptor;
        // One spin-only read (t=0..10) and one fully staged write
        // (begin 0, enqueue 5, grant 20, acquire 30).
        Timeline {
            records: vec![
                rec(0, 1, 1, TraceKind::ReadBegin, 0),
                rec(10, 1, 1, TraceKind::ReadAcquired, 0),
                rec(0, 2, 1, TraceKind::WriteBegin, 0),
                rec(5, 2, 1, TraceKind::Enqueued, 7),
                rec(20, 1, 1, TraceKind::Granted, 7),
                rec(30, 2, 1, TraceKind::WriteAcquired, 0),
            ],
            locks: vec![LockDescriptor {
                id: 1,
                kind: "GOLL".into(),
                name: "flame lock; a".into(),
            }],
            ..Timeline::default()
        }
    }

    #[test]
    fn folded_totals_match_the_analyzer() {
        let tl = timeline();
        let report = analyze(&tl, &AnalyzerConfig::default());
        assert_eq!(report.unmatched_grants, 0);
        let folded = render_folded(&tl, &report);
        let lines = parse_folded(&folded).unwrap();
        // Reserved characters were sanitized, not leaked.
        assert!(lines.iter().all(|l| l.frames[0] == "flame_lock__a"));
        let total: u64 = lines.iter().map(|l| l.weight).sum();
        let breakdown: u64 = report
            .breakdowns
            .iter()
            .map(|b| b.spin_ns + b.queued_ns + b.handoff_ns)
            .sum();
        assert_eq!(total, breakdown);
        // The staged write contributed all three phases.
        let phases: Vec<_> = lines
            .iter()
            .filter(|l| l.frames[1] == "write")
            .map(|l| l.frames[2].clone())
            .collect();
        assert_eq!(phases, ["handoff", "queued", "spin"]);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_folded("no_weight_here").is_err());
        assert!(parse_folded("a;b NaN").is_err());
        assert!(parse_folded("a;;b 3").is_err());
        assert_eq!(parse_folded("a;b 3\n\n").unwrap().len(), 1);
    }
}
