//! Per-lock health scoring: collapse a telemetry total (plus optional
//! trace-analyzer anomalies) into one [`LockHealth`] level a policy
//! layer can act on.
//!
//! The levels are ordered by severity so a future `SelfTuning<L>` can
//! compare them directly: anything at or above
//! [`LockHealth::Contended`] is a reason to adapt (inflate the C-SNZI,
//! drop reader bias), anything at [`LockHealth::Degraded`] is a reason
//! to alert. Scoring uses only ratios over the scored interval — never
//! absolute counts — so the same thresholds work for a 100 ms window
//! and a whole run.

use crate::series::ObsState;
use oll_telemetry::{LockEvent, LockSnapshot};
use oll_trace::{Timeline, TraceReport};

/// Health of one lock over a scored interval, worst condition wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockHealth {
    /// No acquisitions in the interval.
    Idle,
    /// Traffic present, nothing notable.
    Healthy,
    /// High traffic, still mostly fast-path.
    Busy,
    /// A large slow-path share, a convoy, or heavy bias revocation.
    Contended,
    /// Waiters giving up (timeouts) or outwaiting the distribution
    /// (watchdog stalls, trace-analyzer starvation).
    Starving,
    /// The lock is impaired: poisoned, a deadlock was detected, or the
    /// watchdog forced the bias off.
    Degraded,
}

impl LockHealth {
    /// Every level, mildest first.
    pub const ALL: [LockHealth; 6] = [
        LockHealth::Idle,
        LockHealth::Healthy,
        LockHealth::Busy,
        LockHealth::Contended,
        LockHealth::Starving,
        LockHealth::Degraded,
    ];

    /// Stable snake_case name (JSON value / Prometheus label).
    pub fn name(self) -> &'static str {
        match self {
            LockHealth::Idle => "idle",
            LockHealth::Healthy => "healthy",
            LockHealth::Busy => "busy",
            LockHealth::Contended => "contended",
            LockHealth::Starving => "starving",
            LockHealth::Degraded => "degraded",
        }
    }

    /// Numeric severity for gauges and comparisons: 0 (idle) … 5
    /// (degraded).
    pub fn severity(self) -> u8 {
        match self {
            LockHealth::Idle => 0,
            LockHealth::Healthy => 1,
            LockHealth::Busy => 2,
            LockHealth::Contended => 3,
            LockHealth::Starving => 4,
            LockHealth::Degraded => 5,
        }
    }
}

/// Scoring thresholds (all ratios are per scored interval).
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Slow-path share of acquisitions above which a lock is
    /// [`LockHealth::Contended`].
    pub contended_slow_ratio: f64,
    /// Bias revocations per write above which a biased lock is
    /// [`LockHealth::Contended`] (BRAVO's revocation-cost signal).
    pub contended_revoke_ratio: f64,
    /// Timeouts per acquisition *attempt* above which a lock is
    /// [`LockHealth::Starving`].
    pub starving_timeout_ratio: f64,
    /// Acquisitions per second above which a lock is at least
    /// [`LockHealth::Busy`].
    pub busy_rate: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            contended_slow_ratio: 0.25,
            contended_revoke_ratio: 0.5,
            starving_timeout_ratio: 0.05,
            busy_rate: 100_000.0,
        }
    }
}

/// One lock's health verdict with the evidence that produced it.
#[derive(Debug, Clone)]
pub struct LockHealthReport {
    /// Instance name.
    pub name: String,
    /// Lock algorithm.
    pub kind: String,
    /// The verdict (worst triggered condition).
    pub health: LockHealth,
    /// Total acquisitions scored.
    pub acquires: u64,
    /// Reads / acquisitions, if any (BRAVO's bias signal).
    pub read_ratio: Option<f64>,
    /// Slow-path acquisitions / acquisitions, if any.
    pub slow_ratio: Option<f64>,
    /// Acquisitions per second over the most recent active window
    /// (0 when the lock never appeared in a window).
    pub acquire_rate: f64,
    /// Which conditions fired, in evaluation order.
    pub reasons: Vec<&'static str>,
}

fn ratio(num: u64, den: u64) -> Option<f64> {
    (den != 0).then(|| num as f64 / den as f64)
}

/// Scores one lock from its interval totals and its recent rate.
pub fn score(total: &LockSnapshot, acquire_rate: f64, cfg: &HealthConfig) -> LockHealthReport {
    let reads = total.reads();
    let writes = total.writes();
    let acquires = reads + writes;
    let slow = total.get(LockEvent::ReadSlow) + total.get(LockEvent::WriteSlow);
    let slow_ratio = ratio(slow, acquires);
    let mut health = if acquires == 0 {
        LockHealth::Idle
    } else {
        LockHealth::Healthy
    };
    let mut reasons = Vec::new();
    let mut raise = |level: LockHealth, why: &'static str, reasons: &mut Vec<&'static str>| {
        reasons.push(why);
        if level > health {
            health = level;
        }
    };

    if acquires > 0 && acquire_rate > cfg.busy_rate {
        raise(LockHealth::Busy, "hot", &mut reasons);
    }
    if slow_ratio.is_some_and(|r| r > cfg.contended_slow_ratio) {
        raise(LockHealth::Contended, "slow_path_heavy", &mut reasons);
    }
    if ratio(total.get(LockEvent::BiasRevoke), writes)
        .is_some_and(|r| r > cfg.contended_revoke_ratio)
    {
        raise(LockHealth::Contended, "bias_thrash", &mut reasons);
    }
    let attempts = acquires + total.get(LockEvent::Timeout);
    if ratio(total.get(LockEvent::Timeout), attempts)
        .is_some_and(|r| r > cfg.starving_timeout_ratio)
    {
        raise(LockHealth::Starving, "timeouts", &mut reasons);
    }
    if total.get(LockEvent::WatchdogStall) > 0 {
        raise(LockHealth::Starving, "watchdog_stall", &mut reasons);
    }
    if total.get(LockEvent::Poisoned) > total.get(LockEvent::PoisonCleared) {
        raise(LockHealth::Degraded, "poisoned", &mut reasons);
    }
    if total.get(LockEvent::DeadlockDetected) > 0 {
        raise(LockHealth::Degraded, "deadlock_detected", &mut reasons);
    }
    if total.get(LockEvent::BiasDegraded) > 0 {
        raise(LockHealth::Degraded, "bias_degraded", &mut reasons);
    }

    LockHealthReport {
        name: total.name.clone(),
        kind: total.kind.clone(),
        health,
        acquires,
        read_ratio: ratio(reads, acquires),
        slow_ratio,
        acquire_rate,
        reasons,
    }
}

/// Scores every lock in a sampler state: totals give the ratios, the
/// most recent active window gives the rate.
pub fn score_all(state: &ObsState, cfg: &HealthConfig) -> Vec<LockHealthReport> {
    state
        .totals
        .iter()
        .map(|total| {
            let rate = state
                .latest_for(&total.name)
                .map(|(w, d)| {
                    let acquires = d.reads() + d.writes();
                    acquires as f64 / (w.dt_ns.max(1) as f64 / 1e9)
                })
                .unwrap_or(0.0);
            score(total, rate, cfg)
        })
        .collect()
}

/// Escalates verdicts with the trace analyzer's anomaly passes: a
/// convoy marks its lock at least [`LockHealth::Contended`], a
/// starvation at least [`LockHealth::Starving`]. Locks are matched by
/// instance name (telemetry and trace registrations share it), so a
/// report scored from sampler totals can absorb flight-recorder
/// evidence without either layer knowing the other's ids.
pub fn apply_trace_anomalies(reports: &mut [LockHealthReport], tl: &Timeline, trace: &TraceReport) {
    let mut escalate = |lock_id: u32, level: LockHealth, why: &'static str| {
        let name = tl.lock_name(lock_id);
        if let Some(r) = reports.iter_mut().find(|r| r.name == name) {
            if !r.reasons.contains(&why) {
                r.reasons.push(why);
            }
            if level > r.health {
                r.health = level;
            }
        }
    };
    for c in &trace.convoys {
        escalate(c.lock, LockHealth::Contended, "convoy");
    }
    for s in &trace.starvations {
        escalate(s.lock, LockHealth::Starving, "starved_waiter");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(name: &str) -> LockSnapshot {
        LockSnapshot::empty(name, "TEST")
    }

    fn set(s: &mut LockSnapshot, e: LockEvent, v: u64) {
        s.events[e.index()] = v;
    }

    #[test]
    fn severity_orders_the_levels() {
        let mut last: Option<LockHealth> = None;
        for h in LockHealth::ALL {
            if let Some(prev) = last {
                assert!(h > prev);
                assert!(h.severity() > prev.severity());
            }
            last = Some(h);
            assert!(!h.name().is_empty());
        }
    }

    #[test]
    fn idle_then_healthy_then_busy() {
        let cfg = HealthConfig::default();
        let mut s = snap("l");
        assert_eq!(score(&s, 0.0, &cfg).health, LockHealth::Idle);
        set(&mut s, LockEvent::ReadFast, 100);
        assert_eq!(score(&s, 10.0, &cfg).health, LockHealth::Healthy);
        let busy = score(&s, 1_000_000.0, &cfg);
        assert_eq!(busy.health, LockHealth::Busy);
        assert!(busy.reasons.contains(&"hot"));
        assert_eq!(busy.read_ratio, Some(1.0));
    }

    #[test]
    fn slow_path_share_means_contended() {
        let cfg = HealthConfig::default();
        let mut s = snap("l");
        set(&mut s, LockEvent::ReadFast, 50);
        set(&mut s, LockEvent::WriteSlow, 50);
        let r = score(&s, 0.0, &cfg);
        assert_eq!(r.health, LockHealth::Contended);
        assert_eq!(r.slow_ratio, Some(0.5));
    }

    #[test]
    fn hazard_counters_degrade() {
        let cfg = HealthConfig::default();
        let mut s = snap("l");
        set(&mut s, LockEvent::ReadFast, 10);
        set(&mut s, LockEvent::Poisoned, 1);
        assert_eq!(score(&s, 0.0, &cfg).health, LockHealth::Degraded);
        // A cleared poison no longer degrades…
        set(&mut s, LockEvent::PoisonCleared, 1);
        assert_eq!(score(&s, 0.0, &cfg).health, LockHealth::Healthy);
        // …but a forced bias degradation always does.
        set(&mut s, LockEvent::BiasDegraded, 1);
        assert_eq!(score(&s, 0.0, &cfg).health, LockHealth::Degraded);
    }

    #[test]
    fn timeouts_starve() {
        let cfg = HealthConfig::default();
        let mut s = snap("l");
        set(&mut s, LockEvent::WriteFast, 10);
        set(&mut s, LockEvent::Timeout, 10);
        let r = score(&s, 0.0, &cfg);
        assert_eq!(r.health, LockHealth::Starving);
        assert!(r.reasons.contains(&"timeouts"));
    }

    #[test]
    fn worst_condition_wins() {
        let cfg = HealthConfig::default();
        let mut s = snap("l");
        set(&mut s, LockEvent::WriteSlow, 100); // contended…
        set(&mut s, LockEvent::DeadlockDetected, 1); // …and degraded
        let r = score(&s, 1e9, &cfg);
        assert_eq!(r.health, LockHealth::Degraded);
        assert!(r.reasons.len() >= 3, "{:?}", r.reasons);
    }
}
