//! The std-only exposition listener behind
//! [`Sampler::serve`](crate::Sampler::serve) (only compiled with the
//! `enabled` feature).
//!
//! Deliberately tiny, same no-dependency discipline as
//! `oll_workloads::json` and the async executor: a non-blocking
//! `TcpListener` polled by one thread, one request per connection,
//! `Connection: close` semantics. It speaks just enough HTTP/1.1 for
//! `curl` and a Prometheus scraper:
//!
//! * `GET /metrics` — Prometheus text exposition (format 0.0.4)
//! * `GET /json` (or `/`) — the `oll.obs` v1 JSON document
//! * `GET /health` — only the health array, for cheap liveness probes
//!
//! Responses carry `Content-Length` and the socket closes after each
//! one, so clients can simply read to EOF.

use crate::health::{score_all, HealthConfig};
use crate::report::render_obs_json;
use crate::sampler::Shared;
use std::fmt::Write as _;
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const POLL: Duration = Duration::from_millis(20);
const MAX_REQUEST: usize = 4096;

#[derive(Debug)]
pub(crate) struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub(crate) fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn response(status: &str, content_type: &str, body: &str) -> String {
    let mut out = String::with_capacity(body.len() + 128);
    let _ = write!(
        out,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    out
}

/// Reads the request head (up to the blank line or [`MAX_REQUEST`]
/// bytes) and returns the request path, if the line parses.
fn read_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next()?.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    (method == "GET").then(|| path.to_string())
}

fn handle(stream: &mut TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let reply = match read_path(stream).as_deref() {
        Some("/metrics") => {
            let state = shared.state_copy();
            let health = score_all(&state, &HealthConfig::default());
            response(
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &crate::prom::render_prometheus(&state, &health),
            )
        }
        Some("/json") | Some("/") => {
            let state = shared.state_copy();
            let health = score_all(&state, &HealthConfig::default());
            response(
                "200 OK",
                "application/json",
                &render_obs_json(&state, &health),
            )
        }
        Some("/health") => {
            let state = shared.state_copy();
            let health = score_all(&state, &HealthConfig::default());
            let mut body = String::from("[");
            for (i, h) in health.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let _ = write!(
                    body,
                    "{{\"lock\":\"{}\",\"health\":\"{}\",\"severity\":{}}}",
                    oll_telemetry::report::json_escape(&h.name),
                    h.health.name(),
                    h.health.severity()
                );
            }
            body.push(']');
            response("200 OK", "application/json", &body)
        }
        Some(_) => response("404 Not Found", "text/plain; charset=utf-8", "not found\n"),
        None => response(
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "bad request\n",
        ),
    };
    let _ = stream.write_all(reply.as_bytes());
    let _ = stream.flush();
}

/// Binds `addr` and spawns the accept loop. `addr` may use port 0 for
/// an ephemeral port; the bound address is readable from the returned
/// server.
pub(crate) fn serve(addr: &str, shared: Arc<Shared>) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("oll-obs-http".into())
        .spawn(move || {
            while !stop_flag.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        handle(&mut stream, &shared);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(POLL),
                }
            }
        })?;
    Ok(Server {
        addr,
        stop,
        thread: Some(thread),
    })
}
