//! Continuous monitoring for the OLL lock family: a background sampler
//! daemon over the telemetry registry, a fixed-capacity time-series
//! ring, Prometheus text exposition, per-lock health scoring, and a
//! folded-stack flamegraph exporter over `oll-trace` records.
//!
//! `oll-telemetry` (PR 2) answers *what happened by the end of the run*
//! and `oll-trace` (PR 3) *exactly when, once drained* — both offline.
//! This crate closes the loop the ROADMAP's contention-aware
//! self-tuning item needs: a [`Sampler`] periodically sweeps
//! `oll_telemetry::registry`, diffs consecutive sweeps into per-lock
//! delta windows (acquisitions, hand-offs, timeouts, bias revocations,
//! C-SNZI inflations, plus p50/p99/p999 acquire and hold estimates
//! from the log2 histograms), and retains them in a [`SeriesRing`]
//! whose evictions fold into exact run totals. [`Sampler::serve`]
//! exposes it all over a dependency-free HTTP listener (`/metrics` for
//! Prometheus, `/json` for the `oll.obs` v1 document, `/health` for
//! probes); [`health::score_all`] collapses each lock's behaviour into
//! a [`LockHealth`] level; [`flame::render_folded`] renders trace
//! analyzer breakdowns for standard flamegraph tooling.
//!
//! # Zero cost when disabled
//!
//! Without the `enabled` feature, [`Sampler`] and [`ObsServer`] are
//! zero-sized, [`Sampler::start`] spawns nothing, [`Sampler::serve`]
//! returns `ErrorKind::Unsupported`, and no thread, socket, or clock
//! code is linked (pinned by `tests/obs_off.rs`). The analysis and
//! rendering types ([`SeriesRing`], [`ObsState`], [`LockHealth`], the
//! renderers) compile either way so tooling needs no `cfg` of its own.
//!
//! # Quickstart
//!
//! ```no_run
//! use oll_obs::{Sampler, SamplerConfig};
//!
//! let sampler = Sampler::start(SamplerConfig::default()); // 100 ms ticks
//! let server = sampler.serve("127.0.0.1:9184");           // GET /metrics
//! // ... run the workload ...
//! drop(server);
//! let state = sampler.stop(); // final tick folded in; exact totals
//! let health = oll_obs::health::score_all(&state, &Default::default());
//! println!("{}", oll_obs::report::render_obs_text(&state, &health));
//! ```

#![warn(missing_docs)]

pub mod flame;
pub mod health;
pub mod prom;
pub mod report;
pub mod series;

#[cfg(feature = "enabled")]
mod http;
#[cfg(feature = "enabled")]
mod sampler;

pub use health::{HealthConfig, LockHealth, LockHealthReport};
pub use series::{ObsState, SampleWindow, SeriesRing};

use std::time::Duration;

/// Whether the sampler daemon and HTTP listener are compiled in at all.
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Sampler tuning.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Time between sampling ticks (floor 1 ms).
    pub interval: Duration,
    /// Maximum retained [`SampleWindow`]s; older windows fold into the
    /// exact run totals (floor 1).
    pub ring_capacity: usize,
}

impl Default for SamplerConfig {
    /// 100 ms ticks, 600 retained windows (one minute at the default
    /// interval).
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(100),
            ring_capacity: 600,
        }
    }
}

/// The sampling daemon's handle. Zero-sized and inert without the
/// `enabled` feature.
#[derive(Debug, Default)]
pub struct Sampler {
    #[cfg(feature = "enabled")]
    shared: Option<std::sync::Arc<sampler::Shared>>,
    #[cfg(feature = "enabled")]
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Whether this build's sampler can record anything.
    pub const fn enabled() -> bool {
        crate::enabled()
    }

    /// Starts the daemon: a baseline registry sweep now, then one tick
    /// per `config.interval` until [`Sampler::stop`] (or drop). Inert
    /// without the `enabled` feature.
    pub fn start(config: SamplerConfig) -> Self {
        #[cfg(feature = "enabled")]
        {
            let shared =
                std::sync::Arc::new(sampler::Shared::new(config.interval, config.ring_capacity));
            let daemon = std::sync::Arc::clone(&shared);
            let thread = std::thread::Builder::new()
                .name("oll-obs-sampler".into())
                .spawn(move || daemon.run())
                .ok();
            Self {
                shared: Some(shared),
                thread,
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = config;
            Self {}
        }
    }

    /// Whether a daemon is running behind this handle.
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.shared.is_some()
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    /// Takes one sample immediately (serialized with the daemon's
    /// ticks). No-op when inert.
    pub fn sample_now(&self) {
        #[cfg(feature = "enabled")]
        if let Some(s) = &self.shared {
            s.tick();
        }
    }

    /// Copies the accumulated state out without stopping the daemon.
    /// Empty when inert.
    pub fn state(&self) -> ObsState {
        #[cfg(feature = "enabled")]
        if let Some(s) = &self.shared {
            return s.state_copy();
        }
        ObsState::default()
    }

    /// Binds `addr` (e.g. `"127.0.0.1:9184"`, port 0 for ephemeral) and
    /// serves `/metrics`, `/json`, and `/health` from this sampler's
    /// state until the returned [`ObsServer`] is shut down or dropped.
    /// Fails with [`std::io::ErrorKind::Unsupported`] when the facade
    /// is compiled out.
    pub fn serve(&self, addr: &str) -> std::io::Result<ObsServer> {
        #[cfg(feature = "enabled")]
        {
            let shared = self.shared.as_ref().ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::NotConnected, "sampler is inert")
            })?;
            let server = http::serve(addr, std::sync::Arc::clone(shared))?;
            Ok(ObsServer {
                inner: Some(server),
            })
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = addr;
            Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "oll-obs was built without the `enabled` feature",
            ))
        }
    }

    /// Stops the daemon, folds in one final sample (so nothing recorded
    /// after the last timer tick is lost), and returns the state.
    #[cfg_attr(not(feature = "enabled"), allow(unused_mut))]
    pub fn stop(mut self) -> ObsState {
        #[cfg(feature = "enabled")]
        {
            if let Some(shared) = self.shared.take() {
                shared.request_stop();
                if let Some(t) = self.thread.take() {
                    let _ = t.join();
                }
                shared.tick();
                return shared.state_copy();
            }
        }
        ObsState::default()
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some(shared) = self.shared.take() {
            shared.request_stop();
            if let Some(t) = self.thread.take() {
                let _ = t.join();
            }
        }
    }
}

/// A running exposition listener. Zero-sized and inert without the
/// `enabled` feature; shuts down on drop.
#[derive(Debug, Default)]
pub struct ObsServer {
    #[cfg(feature = "enabled")]
    inner: Option<http::Server>,
}

impl ObsServer {
    /// The bound address (resolves port 0 to the ephemeral port).
    /// `None` when inert.
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        #[cfg(feature = "enabled")]
        {
            self.inner.as_ref().map(|s| s.addr())
        }
        #[cfg(not(feature = "enabled"))]
        {
            None
        }
    }

    /// Stops the accept loop and joins its thread.
    pub fn shutdown(self) {
        #[cfg(feature = "enabled")]
        {
            let mut this = self;
            if let Some(s) = this.inner.take() {
                s.shutdown();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_is_zero_sized_and_inert() {
        assert!(!enabled());
        assert_eq!(std::mem::size_of::<Sampler>(), 0);
        assert_eq!(std::mem::size_of::<ObsServer>(), 0);
        let s = Sampler::start(SamplerConfig::default());
        assert!(!s.is_active());
        s.sample_now();
        assert_eq!(s.state().samples, 0);
        let err = s.serve("127.0.0.1:0").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
        let state = s.stop();
        assert!(state.windows.is_empty());
        assert!(state.totals.is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn start_tick_stop_round_trip() {
        let s = Sampler::start(SamplerConfig {
            interval: Duration::from_millis(500),
            ring_capacity: 8,
        });
        assert!(s.is_active());
        s.sample_now();
        let st = s.state();
        assert!(st.samples >= 1);
        assert_eq!(st.interval_ns, 500_000_000);
        let stopped = s.stop();
        // The final fold-in tick adds one more sample.
        assert!(stopped.samples > st.samples);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn serve_binds_an_ephemeral_port() {
        let s = Sampler::start(SamplerConfig::default());
        let server = s.serve("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().expect("bound address");
        assert_ne!(addr.port(), 0);
        server.shutdown();
        s.stop();
    }
}
