//! Text and JSON (`oll.obs` v1) renderers for a sampler state.
//!
//! # The `oll.obs` document, version 1
//!
//! ```text
//! {
//!   "schema": "oll.obs", "version": 1,
//!   "interval_ms": 100,          // configured sampling interval
//!   "elapsed_secs": 3.2,         // sampler uptime at render time
//!   "samples": 32,               // ticks taken
//!   "windows_retained": 30,      // windows still in the ring
//!   "windows_evicted": 2,        // windows folded into the totals
//!   "health": [ { "lock", "kind", "health", "severity", "acquires",
//!                 "read_ratio", "slow_ratio", "acquire_rate",
//!                 "reasons": [...] } ],
//!   "totals": [ <oll.telemetry lock object> ],   // exact run totals
//!   "series": [ { "t_ns", "dt_ns",
//!                 "locks": [ { "lock", "kind", "reads", "writes",
//!                              "read_rate", "write_rate",
//!                              "acquire_p50_ns", "acquire_p99_ns",
//!                              "acquire_p999_ns", "hold_p50_ns",
//!                              "hold_p99_ns", "hold_p999_ns" } ] } ]
//! }
//! ```
//!
//! `totals` reuses the `oll.telemetry` per-lock object verbatim (name,
//! kind, sparse event map, sparse histograms); `series` rows are the
//! compact per-window digests — counts, rates, and quantile estimates —
//! so a long retention window stays small. `read_ratio` / `slow_ratio`
//! are `null` when the lock recorded no acquisitions.

use crate::health::LockHealthReport;
use crate::series::{ObsState, SampleWindow};
use oll_telemetry::report::{json_escape, render_lock_json, SCHEMA_VERSION};
use oll_telemetry::{HistogramSnapshot, LockSnapshot};
use std::fmt::Write as _;

fn opt_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.6}"),
        _ => "null".to_string(),
    }
}

fn f64_or_zero(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".to_string()
    }
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = *a;
    out.merge(b);
    out
}

fn window_lock_json(w: &SampleWindow, d: &LockSnapshot) -> String {
    let secs = w.dt_ns.max(1) as f64 / 1e9;
    let acquire = merged(&d.read_acquire, &d.write_acquire);
    let hold = merged(&d.read_hold, &d.write_hold);
    format!(
        "{{\"lock\":\"{}\",\"kind\":\"{}\",\"reads\":{},\"writes\":{},\
         \"read_rate\":{},\"write_rate\":{},\
         \"acquire_p50_ns\":{},\"acquire_p99_ns\":{},\"acquire_p999_ns\":{},\
         \"hold_p50_ns\":{},\"hold_p99_ns\":{},\"hold_p999_ns\":{}}}",
        json_escape(&d.name),
        json_escape(&d.kind),
        d.reads(),
        d.writes(),
        f64_or_zero(d.reads() as f64 / secs),
        f64_or_zero(d.writes() as f64 / secs),
        acquire.percentile_ns(0.50),
        acquire.percentile_ns(0.99),
        acquire.percentile_ns(0.999),
        hold.percentile_ns(0.50),
        hold.percentile_ns(0.99),
        hold.percentile_ns(0.999),
    )
}

fn health_json(h: &LockHealthReport) -> String {
    let mut reasons = String::from("[");
    for (i, r) in h.reasons.iter().enumerate() {
        if i > 0 {
            reasons.push(',');
        }
        let _ = write!(reasons, "\"{}\"", json_escape(r));
    }
    reasons.push(']');
    format!(
        "{{\"lock\":\"{}\",\"kind\":\"{}\",\"health\":\"{}\",\"severity\":{},\
         \"acquires\":{},\"read_ratio\":{},\"slow_ratio\":{},\"acquire_rate\":{},\
         \"reasons\":{}}}",
        json_escape(&h.name),
        json_escape(&h.kind),
        h.health.name(),
        h.health.severity(),
        h.acquires,
        opt_f64(h.read_ratio),
        opt_f64(h.slow_ratio),
        f64_or_zero(h.acquire_rate),
        reasons,
    )
}

/// Renders the schema-versioned `oll.obs` document (no trailing
/// newline).
pub fn render_obs_json(state: &ObsState, health: &[LockHealthReport]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"oll.obs\",\"version\":{SCHEMA_VERSION},\
         \"interval_ms\":{},\"elapsed_secs\":{},\"samples\":{},\
         \"windows_retained\":{},\"windows_evicted\":{},\"health\":[",
        state.interval_ns / 1_000_000,
        f64_or_zero(state.elapsed_ns as f64 / 1e9),
        state.samples,
        state.windows.len(),
        state.windows_evicted,
    );
    for (i, h) in health.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&health_json(h));
    }
    out.push_str("],\"totals\":[");
    for (i, s) in state.totals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_lock_json(s));
    }
    out.push_str("],\"series\":[");
    for (i, w) in state.windows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"t_ns\":{},\"dt_ns\":{},\"locks\":[",
            w.t_ns, w.dt_ns
        );
        for (j, d) in w.deltas.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&window_lock_json(w, d));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the one-shot text summary (the `--obs` end-of-run block).
pub fn render_obs_text(state: &ObsState, health: &[LockHealthReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "obs: {} sample(s) over {:.1}s at {}ms; {} window(s) retained, {} evicted",
        state.samples,
        state.elapsed_ns as f64 / 1e9,
        state.interval_ns / 1_000_000,
        state.windows.len(),
        state.windows_evicted,
    );
    if health.is_empty() {
        let _ = writeln!(out, "  (no instrumented locks observed)");
        return out;
    }
    for h in health {
        let total = state.totals.iter().find(|t| t.name == h.name);
        let acquire_p99 = total
            .map(|t| merged(&t.read_acquire, &t.write_acquire).percentile_ns(0.99))
            .unwrap_or(0);
        let hold_p99 = total
            .map(|t| merged(&t.read_hold, &t.write_hold).percentile_ns(0.99))
            .unwrap_or(0);
        let _ = writeln!(
            out,
            "  {:<24} [{:<13}] {:<9} rate={:>12.0}/s acquires={:<10} \
             p99(acquire)={:<8} p99(hold)={}{}",
            h.name,
            h.kind,
            h.health.name(),
            h.acquire_rate,
            h.acquires,
            fmt_ns(acquire_p99),
            fmt_ns(hold_p99),
            if h.reasons.is_empty() {
                String::new()
            } else {
                format!("  [{}]", h.reasons.join(", "))
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{score_all, HealthConfig};
    use oll_telemetry::LockEvent;

    fn state() -> ObsState {
        let mut s = LockSnapshot::empty("obs/ROLL", "ROLL");
        s.events[LockEvent::ReadFast.index()] = 90;
        s.events[LockEvent::WriteSlow.index()] = 10;
        s.write_acquire.buckets[10] = 10;
        s.write_acquire.count = 10;
        s.write_acquire.max_ns = 2000;
        ObsState {
            interval_ns: 100_000_000,
            elapsed_ns: 500_000_000,
            samples: 5,
            windows_evicted: 1,
            windows: vec![SampleWindow {
                t_ns: 500_000_000,
                dt_ns: 100_000_000,
                deltas: vec![s.clone()],
            }],
            totals: vec![s],
        }
    }

    #[test]
    fn json_doc_is_schema_versioned_and_complete() {
        let st = state();
        let health = score_all(&st, &HealthConfig::default());
        let doc = render_obs_json(&st, &health);
        assert!(doc.starts_with("{\"schema\":\"oll.obs\",\"version\":1,"));
        assert!(doc.contains("\"interval_ms\":100"));
        assert!(doc.contains("\"windows_evicted\":1"));
        assert!(doc.contains("\"health\":[{\"lock\":\"obs/ROLL\""));
        assert!(doc.contains("\"write_slow\":10"));
        assert!(doc.contains("\"acquire_p99_ns\":"));
        assert!(doc.contains("\"read_rate\":900.000"));
    }

    #[test]
    fn null_ratios_for_idle_locks() {
        let st = ObsState {
            totals: vec![LockSnapshot::empty("idle", "TEST")],
            ..ObsState::default()
        };
        let health = score_all(&st, &HealthConfig::default());
        let doc = render_obs_json(&st, &health);
        assert!(doc.contains("\"read_ratio\":null"));
        assert!(doc.contains("\"health\":\"idle\""));
    }

    #[test]
    fn text_summary_names_every_lock() {
        let st = state();
        let health = score_all(&st, &HealthConfig::default());
        let txt = render_obs_text(&st, &health);
        assert!(txt.starts_with("obs: 5 sample(s)"));
        assert!(txt.contains("obs/ROLL"));
        assert!(txt.contains("p99(hold)"));
    }
}
