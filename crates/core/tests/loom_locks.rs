//! Loom model checks for the OLL locks.
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p oll-core --test loom_locks --release
//! ```
//!
//! The models are minimal (two threads) but exercise the protocol corners
//! that unit tests can only sample: the FOLL reader/writer enqueue race
//! (open-vs-close on the shared reader node, §4.2), the reader-node
//! recycling handshake, and GOLL's arrive/close/hand-off triangle. A
//! preemption bound keeps the busy-wait state space tractable; loom still
//! explores every bounded interleaving of the atomics.

#![cfg(loom)]

use loom::model::Builder;
use loom::sync::atomic::{AtomicI64, Ordering};
use loom::sync::Arc;
use oll_core::{FollLock, GollLock, RollLock, RwHandle, RwLockFamily};

fn model(f: impl Fn() + Sync + Send + 'static) {
    let mut b = Builder::new();
    b.preemption_bound = Some(3);
    b.check(f);
}

/// One reader vs. one writer on FOLL: the oracle must never see a reader
/// and the writer inside together, whichever way the enqueue race goes.
#[test]
fn loom_foll_reader_vs_writer_exclusion() {
    model(|| {
        let lock = Arc::new(FollLock::new(2));
        let state = Arc::new(AtomicI64::new(0));

        let l2 = Arc::clone(&lock);
        let s2 = Arc::clone(&state);
        let t = loom::thread::spawn(move || {
            let mut h = l2.handle().unwrap();
            h.lock_write();
            assert_eq!(s2.swap(-1, Ordering::SeqCst), 0, "writer not exclusive");
            s2.store(0, Ordering::SeqCst);
            h.unlock_write();
        });

        let mut h = lock.handle().unwrap();
        h.lock_read();
        assert!(
            state.fetch_add(1, Ordering::SeqCst) >= 0,
            "reader beside writer"
        );
        state.fetch_sub(1, Ordering::SeqCst);
        h.unlock_read();

        t.join().unwrap();
    });
}

/// Two FOLL readers: both must get in (sharing a node or racing the
/// enqueue), and the node pool must end consistent.
#[test]
fn loom_foll_two_readers_share() {
    model(|| {
        let lock = Arc::new(FollLock::new(2));

        let l2 = Arc::clone(&lock);
        let t = loom::thread::spawn(move || {
            let mut h = l2.handle().unwrap();
            h.lock_read();
            h.unlock_read();
        });

        let mut h = lock.handle().unwrap();
        h.lock_read();
        h.unlock_read();

        t.join().unwrap();
        // Queue ends with at most the one steady-state reader node.
        let mut w = lock.handle().unwrap();
        w.lock_write();
        w.unlock_write();
        assert!(lock.is_queue_empty());
    });
}

/// Two FOLL writers: plain MCS hand-off under the model checker.
#[test]
fn loom_foll_two_writers_exclude() {
    model(|| {
        let lock = Arc::new(FollLock::new(2));
        let state = Arc::new(AtomicI64::new(0));

        let l2 = Arc::clone(&lock);
        let s2 = Arc::clone(&state);
        let t = loom::thread::spawn(move || {
            let mut h = l2.handle().unwrap();
            h.lock_write();
            assert_eq!(s2.swap(-1, Ordering::SeqCst), 0);
            s2.store(0, Ordering::SeqCst);
            h.unlock_write();
        });

        let mut h = lock.handle().unwrap();
        h.lock_write();
        assert_eq!(state.swap(-1, Ordering::SeqCst), 0);
        state.store(0, Ordering::SeqCst);
        h.unlock_write();

        t.join().unwrap();
        assert!(lock.is_queue_empty());
    });
}

/// GOLL reader vs. writer: the C-SNZI close/arrive race plus the queue
/// hand-off (the releasing side must always wake the enqueued side).
#[test]
fn loom_goll_reader_vs_writer_exclusion() {
    model(|| {
        let lock = Arc::new(GollLock::new(2));
        let state = Arc::new(AtomicI64::new(0));

        let l2 = Arc::clone(&lock);
        let s2 = Arc::clone(&state);
        let t = loom::thread::spawn(move || {
            let mut h = l2.handle().unwrap();
            h.lock_write();
            assert_eq!(s2.swap(-1, Ordering::SeqCst), 0);
            s2.store(0, Ordering::SeqCst);
            h.unlock_write();
        });

        let mut h = lock.handle().unwrap();
        h.lock_read();
        assert!(state.fetch_add(1, Ordering::SeqCst) >= 0);
        state.fetch_sub(1, Ordering::SeqCst);
        h.unlock_read();

        t.join().unwrap();
        let w = lock.csnzi_snapshot();
        assert_eq!((w.surplus(), w.open), (0, true), "lock ends free");
    });
}

/// GOLL upgrade racing a second reader: either the upgrade wins (sole
/// reader) or it fails and the read hold survives.
#[test]
fn loom_goll_upgrade_race() {
    use oll_core::UpgradableHandle;
    model(|| {
        let lock = Arc::new(GollLock::new(2));

        let l2 = Arc::clone(&lock);
        let t = loom::thread::spawn(move || {
            let mut h = l2.handle().unwrap();
            h.lock_read();
            h.unlock_read();
        });

        let mut h = lock.handle().unwrap();
        h.lock_read();
        if h.try_upgrade() {
            h.unlock_write();
        } else {
            h.unlock_read();
        }

        t.join().unwrap();
        let w = lock.csnzi_snapshot();
        assert_eq!((w.surplus(), w.open), (0, true));
    });
}

/// ROLL reader vs. writer exclusion (the deferred-close writer path).
#[test]
fn loom_roll_reader_vs_writer_exclusion() {
    model(|| {
        let lock = Arc::new(RollLock::new(2));
        let state = Arc::new(AtomicI64::new(0));

        let l2 = Arc::clone(&lock);
        let s2 = Arc::clone(&state);
        let t = loom::thread::spawn(move || {
            let mut h = l2.handle().unwrap();
            h.lock_write();
            assert_eq!(s2.swap(-1, Ordering::SeqCst), 0);
            s2.store(0, Ordering::SeqCst);
            h.unlock_write();
        });

        let mut h = lock.handle().unwrap();
        h.lock_read();
        assert!(state.fetch_add(1, Ordering::SeqCst) >= 0);
        state.fetch_sub(1, Ordering::SeqCst);
        h.unlock_read();

        t.join().unwrap();
    });
}
