//! The **ROLL** lock (§4.3 of the paper): the reader-preference OLL lock.
//!
//! ROLL relaxes FOLL's strict FIFO ordering: a reader that finds a *still
//! waiting* group of readers in the queue joins that group — overtaking
//! any writers queued behind it — instead of enqueuing at the tail. Two
//! mechanisms make this work:
//!
//! 1. The queue is doubly linked (`prev` pointers, set by each enqueuer),
//!    so a reader arriving at a writer tail can search backward for a
//!    reader node still in the `WAITING` hand-off state.
//! 2. A writer that enqueues behind a reader node does **not** close its
//!    C-SNZI immediately (as FOLL does); it waits until that group becomes
//!    *active* first. While the group is waiting, its C-SNZI stays open and
//!    late readers can keep joining.
//!
//! The lock also caches a pointer to "the last known reader node with
//! threads still busy-waiting" (`last_reader`), updated on joins and
//! enqueues and cleared on failed joins, which short-circuits most
//! searches (the §4.3 optimization; `ablation_roll_hint` measures it).

use crate::cohort::{CohortGate, CohortHold, CohortRelease, DEFAULT_COHORT_BATCH};
use crate::foll::node_state::{GRANTED, WAITING};
use crate::foll::{NodeRef, QueueCore, TreeMode};
use crate::raw::{RwHandle, RwLockFamily};
use oll_csnzi::{ArrivalPolicy, LeafCursor, Ticket, TreeShape};
use oll_hazard::Hazard;
use oll_telemetry::{LockEvent, Telemetry, Timer};
use oll_util::backoff::{spin_until, Backoff, BackoffPolicy};
use oll_util::fault;
use oll_util::knobs::TuningKnobs;
use oll_util::slots::{SlotError, SlotGuard};
use oll_util::sync::{AtomicU32, Ordering};
use oll_util::CachePadded;

/// Builder for [`RollLock`].
#[derive(Debug, Clone)]
pub struct RollBuilder {
    capacity: usize,
    shape: Option<TreeShape>,
    backoff: BackoffPolicy,
    arrival_threshold: u32,
    use_hint: bool,
    lazy_tree: bool,
    adaptive: bool,
    #[cfg(not(loom))]
    biased: bool,
    cohort: bool,
    cohort_batch: u32,
    cohort_ranks: Option<usize>,
    telemetry_name: Option<String>,
    knobs: Option<std::sync::Arc<TuningKnobs>>,
}

impl RollBuilder {
    /// Starts a builder for a lock used by at most `capacity` concurrent
    /// threads.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            shape: None,
            backoff: BackoffPolicy::default(),
            arrival_threshold: ArrivalPolicy::DEFAULT_THRESHOLD,
            use_hint: true,
            lazy_tree: false,
            adaptive: false,
            #[cfg(not(loom))]
            biased: false,
            cohort: false,
            cohort_batch: DEFAULT_COHORT_BATCH,
            cohort_ranks: None,
            telemetry_name: None,
            knobs: None,
        }
    }

    /// Shares `knobs` as the lock's live policy source. [`build`](Self::build)
    /// writes the builder's configured backoff and cohort-batch values into
    /// it, then every component (wait loops, cohort gate, adaptive C-SNZIs)
    /// reads from it — the hook an online controller uses to steer the lock
    /// while it runs. Without this call the lock gets a private block at the
    /// same defaults.
    pub fn tuning(mut self, knobs: std::sync::Arc<TuningKnobs>) -> Self {
        self.knobs = Some(knobs);
        self
    }

    /// Enables the NUMA cohort writer gate: each locality rank (socket)
    /// gets its own writer queue, and releases hand the lock to a
    /// same-socket waiter up to the [batch bound](Self::cohort_batch)
    /// before releasing through the global queue. On single-socket
    /// machines (or when topology detection falls back) every writer
    /// shares one cohort and behaviour degrades to the plain writer path.
    pub fn cohort(mut self, cohort: bool) -> Self {
        self.cohort = cohort;
        self
    }

    /// Sets the cohort batch bound: how many consecutive same-socket
    /// hand-offs one cohort tenure may perform before the release is
    /// forced through the global queue (default
    /// [`DEFAULT_COHORT_BATCH`](crate::cohort::DEFAULT_COHORT_BATCH)).
    /// Clamped to ≥ 1. No effect unless [`cohort`](Self::cohort) is on.
    pub fn cohort_batch(mut self, batch: u32) -> Self {
        self.cohort_batch = batch;
        self
    }

    /// Overrides the detected cohort (socket) count — for tests and
    /// pinned-thread deployments that partition writers explicitly. The
    /// default is `oll_util::topology::rank_count()`.
    pub fn cohort_ranks(mut self, ranks: usize) -> Self {
        self.cohort_ranks = Some(ranks);
        self
    }

    /// Enables BRAVO-style reader biasing for
    /// [`build_biased`](Self::build_biased): biased reads bypass the lock
    /// through the process-global visible-readers table (zero shared
    /// RMWs) until a writer revokes the bias.
    #[cfg(not(loom))]
    pub fn biased(mut self, biased: bool) -> Self {
        self.biased = biased;
        self
    }

    /// Builds the lock wrapped in the [`Bravo`](crate::Bravo) biasing
    /// layer. The wrapper passes straight through unless
    /// [`biased(true)`](Self::biased) was set, so one call site serves
    /// both configurations.
    #[cfg(not(loom))]
    pub fn build_biased(self) -> crate::Bravo<RollLock> {
        let biased = self.biased;
        let lock = self.build();
        // One knob block steers both layers: the wrapper's re-arm
        // multiplier and bias permission live next to the queue's knobs.
        let knobs = lock.knobs().clone();
        crate::Bravo::wrapping(lock, biased).tuning(knobs)
    }

    /// Defers each pooled reader node's C-SNZI tree allocation until
    /// first use (§2.2's space optimization).
    pub fn lazy_tree(mut self, lazy: bool) -> Self {
        self.lazy_tree = lazy;
        self
    }

    /// Makes every pooled reader node's C-SNZI *adaptive*: arrivals start
    /// root-only and the tree inflates only once root CAS failures prove
    /// contention, deflating back after a quiet spell. Supersedes
    /// [`lazy_tree`](Self::lazy_tree); an explicit
    /// [`tree_shape`](Self::tree_shape) caps the inflated leaf count.
    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Overrides the per-node C-SNZI tree shape (default: one leaf per
    /// thread).
    pub fn tree_shape(mut self, shape: TreeShape) -> Self {
        self.shape = Some(shape);
        self
    }

    /// Overrides the busy-wait backoff tuning.
    pub fn backoff(mut self, policy: BackoffPolicy) -> Self {
        self.backoff = policy;
        self
    }

    /// Sets the per-thread failed-CAS count before C-SNZI arrivals move to
    /// the tree.
    pub fn arrival_threshold(mut self, threshold: u32) -> Self {
        self.arrival_threshold = threshold;
        self
    }

    /// Enables/disables the cached last-reader-node pointer (§4.3's search
    /// optimization). On by default; the ablation bench turns it off.
    pub fn last_reader_hint(mut self, enabled: bool) -> Self {
        self.use_hint = enabled;
        self
    }

    /// Names this lock's telemetry registration (telemetry builds only;
    /// the default is `ROLL#<seq>`).
    pub fn telemetry_name(mut self, name: &str) -> Self {
        self.telemetry_name = Some(name.to_owned());
        self
    }

    /// Builds the lock.
    pub fn build(self) -> RollLock {
        let capacity = self.capacity.max(1);
        let telemetry = Telemetry::register("ROLL");
        if let Some(name) = &self.telemetry_name {
            telemetry.rename(name);
        }
        let knobs = self.knobs.unwrap_or_else(TuningKnobs::shared);
        knobs.set_backoff_policy(self.backoff);
        knobs.set_cohort_batch(self.cohort_batch);
        let mut core = QueueCore::new(
            capacity,
            self.shape
                .unwrap_or_else(|| TreeShape::for_threads(capacity)),
            knobs,
            self.arrival_threshold,
            if self.adaptive {
                TreeMode::Adaptive
            } else if self.lazy_tree {
                TreeMode::Lazy
            } else {
                TreeMode::Eager
            },
            telemetry,
        );
        if self.cohort {
            let ranks = self
                .cohort_ranks
                .unwrap_or_else(oll_util::topology::rank_count);
            core.cohort = Some(Box::new(CohortGate::new(
                capacity,
                ranks,
                core.knobs.clone(),
            )));
        }
        RollLock {
            core,
            last_reader: CachePadded::new(AtomicU32::new(NodeRef::NIL.raw())),
            use_hint: self.use_hint,
        }
    }
}

/// The reader-preference OLL lock (§4.3).
///
/// ```
/// use oll_core::{RollLock, RwHandle, RwLockFamily};
///
/// let lock = RollLock::builder(8)
///     .last_reader_hint(true) // §4.3's search shortcut (default on)
///     .build();
/// let mut me = lock.handle().unwrap();
/// assert!(me.try_read().is_some());
/// ```
pub struct RollLock {
    core: QueueCore,
    /// Cached reference to the last known still-waiting reader node.
    last_reader: CachePadded<AtomicU32>,
    use_hint: bool,
}

impl RollLock {
    /// Creates a lock for at most `capacity` concurrent threads.
    pub fn new(capacity: usize) -> Self {
        RollBuilder::new(capacity).build()
    }

    /// Starts a [`RollBuilder`].
    pub fn builder(capacity: usize) -> RollBuilder {
        RollBuilder::new(capacity)
    }

    /// Whether the queue is currently empty (racy; for diagnostics).
    pub fn is_queue_empty(&self) -> bool {
        self.core.load_tail().is_nil()
    }

    /// Whether this lock's reader-node C-SNZIs resize themselves at
    /// runtime (built with [`RollBuilder::adaptive`]).
    pub fn is_adaptive(&self) -> bool {
        self.core.reader_nodes[0].csnzi.is_adaptive()
    }

    /// Whether any pooled reader node's C-SNZI currently routes arrivals
    /// through its tree (racy; for diagnostics and tests).
    pub fn is_inflated(&self) -> bool {
        self.core.reader_nodes.iter().any(|n| n.csnzi.is_inflated())
    }

    /// Whether writers go through the NUMA cohort gate
    /// (built with [`RollBuilder::cohort`]).
    pub fn is_cohort(&self) -> bool {
        self.core.cohort.is_some()
    }

    /// Number of writer cohorts (0 when the cohort gate is off).
    pub fn cohort_count(&self) -> usize {
        self.core.cohort.as_ref().map_or(0, |g| g.cohorts())
    }

    /// The cohort batch bound (0 when the cohort gate is off).
    pub fn cohort_batch(&self) -> u32 {
        self.core.cohort.as_ref().map_or(0, |g| g.batch_limit())
    }

    /// The live tuning-knob block this lock reads (share it with a
    /// controller to steer the lock while it runs).
    pub fn knobs(&self) -> &std::sync::Arc<TuningKnobs> {
        &self.core.knobs
    }

    fn set_hint(&self, node: NodeRef) {
        if self.use_hint {
            self.last_reader.store(node.raw(), Ordering::Release);
        }
    }

    fn clear_hint(&self, node: NodeRef) {
        if self.use_hint {
            // Only clear our own stale value; someone may have published a
            // fresher hint.
            let _ = self.last_reader.compare_exchange(
                node.raw(),
                NodeRef::NIL.raw(),
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
        }
    }

    fn load_hint(&self) -> NodeRef {
        if self.use_hint {
            NodeRef::from_raw(self.last_reader.load(Ordering::Acquire))
        } else {
            NodeRef::NIL
        }
    }
}

impl RwLockFamily for RollLock {
    type Handle<'a> = RollHandle<'a>;

    fn handle(&self) -> Result<RollHandle<'_>, SlotError> {
        let slot = SlotGuard::claim(&self.core.slots)?;
        let policy = ArrivalPolicy::new(self.core.arrival_threshold);
        Ok(RollHandle {
            lock: self,
            slot,
            policy,
            cursor: LeafCursor::new(),
            session: None,
            write_held: false,
            pending_reclaim: false,
            cohort_hold: None,
            cohort_reclaim: false,
            cohort_pin: None,
            cohort_cache: None,
            hold: Timer::inactive(),
        })
    }

    fn capacity(&self) -> usize {
        self.core.slots.capacity()
    }

    fn name(&self) -> &'static str {
        "ROLL"
    }

    fn telemetry(&self) -> Telemetry {
        self.core.telemetry.clone()
    }

    fn hazard(&self) -> Hazard {
        self.core.hazard.clone()
    }

    fn tuning_knobs(&self) -> Option<&std::sync::Arc<TuningKnobs>> {
        Some(&self.core.knobs)
    }
}

/// Per-thread handle for [`RollLock`].
pub struct RollHandle<'a> {
    lock: &'a RollLock,
    slot: SlotGuard<'a>,
    policy: ArrivalPolicy,
    /// Cached C-SNZI leaf: topology-placed on first tree arrival, then
    /// sticky until a leaf-level CAS failure migrates it. Reader nodes all
    /// share one tree shape, so the cursor carries across pooled nodes.
    cursor: LeafCursor,
    session: Option<(usize, Ticket)>,
    write_held: bool,
    /// A timed write abandoned this slot's writer node in the queue; it
    /// must be reclaimed before the node's next use. Also set when a
    /// cohort release lends the node to a running batch.
    pending_reclaim: bool,
    /// Proof of the current cohort-gated write hold (cohort builds only).
    cohort_hold: Option<CohortHold>,
    /// A timed cohort write abandoned this slot's cohort node; it must be
    /// reclaimed before the node's next use.
    cohort_reclaim: bool,
    /// Explicit cohort override set via [`set_cohort`](Self::set_cohort).
    cohort_pin: Option<usize>,
    /// Resolved cohort index, cached on first writer use so the hot path
    /// skips the thread-local topology lookup. Any index is correct —
    /// a stale cache merely costs placement quality — so the cache is
    /// only invalidated by [`set_cohort`](Self::set_cohort).
    cohort_cache: Option<usize>,
    /// Hold-time timer for the handle's outstanding acquisition.
    hold: Timer,
}

impl RollHandle<'_> {
    fn slot_idx(&self) -> usize {
        self.slot.slot()
    }

    /// Finishes any pending reclaim of this slot's writer node (after a
    /// timed write abandoned it). Must run before every writer-node use.
    fn ensure_writer_node(&mut self) {
        if self.pending_reclaim {
            self.lock.core.reclaim_writer_node(self.slot_idx());
            self.pending_reclaim = false;
        }
    }

    /// Finishes any pending reclaim of this slot's cohort node (after a
    /// timed cohort write abandoned it).
    fn ensure_cohort_node(&mut self) {
        if self.cohort_reclaim {
            self.lock.core.cohort_reclaim_node(self.slot_idx());
            self.cohort_reclaim = false;
        }
    }

    /// Pins this handle's writer acquisitions to cohort `cohort` (modulo
    /// the lock's cohort count) instead of deriving the cohort from the
    /// calling thread's topology. For tests and explicitly-placed
    /// threads; no effect unless the lock was built with
    /// [`RollBuilder::cohort`].
    pub fn set_cohort(&mut self, cohort: usize) {
        self.cohort_pin = Some(cohort);
        self.cohort_cache = None;
    }

    /// The cohort this handle's writer acquisitions queue on, resolved
    /// once and cached (see `cohort_cache`).
    fn cohort_index(&mut self) -> usize {
        match self.cohort_cache {
            Some(c) => c,
            None => {
                let c = self.lock.core.pick_cohort(self.cohort_pin);
                self.cohort_cache = Some(c);
                c
            }
        }
    }

    /// Tries to join a still-waiting reader node (hint first, then a
    /// backward traversal from `tail`). On success the caller holds an
    /// arrival on that node and needs only to wait out its spin flag.
    fn try_join_waiting_reader(&mut self, tail: NodeRef) -> Option<(usize, Ticket)> {
        let lock = self.lock;
        let core = &lock.core;

        // 1. Hint path: one load instead of a queue traversal.
        let hint = lock.load_hint();
        if hint.is_reader() {
            let node = core.rnode(hint.index());
            if node.state.load(Ordering::Acquire) == WAITING {
                let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
                if ticket.arrived() {
                    return Some((hint.index(), ticket));
                }
            }
            lock.clear_hint(hint);
        }

        // 2. Backward search from the tail. `prev` links are best-effort
        // (an enqueuer publishes its node before its prev link, and
        // recycled nodes leave stale values), but that is safe: joining is
        // validated by the arrival itself — `Arrive` only succeeds on an
        // open C-SNZI, and open C-SNZIs belong to enqueued reader nodes.
        let mut cur = tail;
        let mut steps = 0usize;
        let cap = core.slots.capacity() * 2;
        while !cur.is_nil() && steps < cap {
            if cur.is_reader() {
                let node = core.rnode(cur.index());
                if node.state.load(Ordering::Acquire) == WAITING {
                    let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
                    if ticket.arrived() {
                        lock.set_hint(cur);
                        return Some((cur.index(), ticket));
                    }
                }
                // Waiting group not joinable (already closed) or group is
                // active: per §4.3, fall back to enqueuing a fresh node.
                return None;
            }
            let prev = core.wnode(cur.index()).prev.load(Ordering::Acquire);
            cur = NodeRef::from_raw(prev);
            steps += 1;
        }
        None
    }
}

impl RwHandle for RollHandle<'_> {
    fn hazard(&self) -> Hazard {
        self.lock.core.hazard.clone()
    }

    fn lock_read(&mut self) {
        debug_assert!(self.session.is_none() && !self.write_held);
        let lock = self.lock;
        let core = &lock.core;
        let slot = self.slot_idx();
        let acquire = core.telemetry.begin_read();
        let mut rnode: Option<usize> = None;
        let mut backoff = Backoff::with_policy(core.backoff());
        loop {
            let tail = core.load_tail();
            if tail.is_nil() {
                let r = rnode.take().unwrap_or_else(|| core.alloc_reader_node(slot));
                let node = core.rnode(r);
                node.state.store(GRANTED, Ordering::Relaxed);
                node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                if core.cas_tail(NodeRef::NIL, NodeRef::reader(r)) {
                    node.csnzi.open();
                    let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
                    if ticket.arrived() {
                        core.note_arrival(ticket);
                        core.telemetry.incr(LockEvent::ReadFast);
                        core.telemetry.record_read_acquire(&acquire);
                        self.hold = core.telemetry.timer();
                        self.session = Some((r, ticket));
                        return;
                    }
                    rnode = None;
                } else {
                    rnode = Some(r);
                }
            } else if tail.is_reader() {
                // Tail is a reader node: join it directly, as in FOLL.
                let node = core.rnode(tail.index());
                let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
                if ticket.arrived() {
                    if let Some(n) = rnode.take() {
                        core.free_reader_node(n);
                    }
                    core.note_arrival(ticket);
                    // Joining an active (GRANTED) group is the fast path;
                    // joining one still waiting behind a writer is slow.
                    // The classification load exists only in telemetry
                    // builds.
                    if !Telemetry::enabled() || node.state.load(Ordering::Acquire) == GRANTED {
                        core.telemetry.incr(LockEvent::ReadFast);
                    } else {
                        core.telemetry.incr(LockEvent::ReadSlow);
                        core.telemetry.trace_enqueued(u64::from(tail.raw()));
                    }
                    self.session = Some((tail.index(), ticket));
                    fault::inject("roll.read.waiting");
                    spin_until(core.backoff(), || {
                        node.state.load(Ordering::Acquire) == GRANTED
                    });
                    core.telemetry.record_read_acquire(&acquire);
                    self.hold = core.telemetry.timer();
                    return;
                }
                backoff.backoff();
            } else {
                // Tail is a writer: reader preference kicks in — overtake
                // it if a group of readers is still waiting somewhere in
                // the queue.
                if let Some((idx, ticket)) = self.try_join_waiting_reader(tail) {
                    if let Some(n) = rnode.take() {
                        core.free_reader_node(n);
                    }
                    let node = core.rnode(idx);
                    core.note_arrival(ticket);
                    core.telemetry.incr(LockEvent::ReadSlow);
                    core.telemetry
                        .trace_enqueued(u64::from(NodeRef::reader(idx).raw()));
                    self.session = Some((idx, ticket));
                    fault::inject("roll.read.joined");
                    spin_until(core.backoff(), || {
                        node.state.load(Ordering::Acquire) == GRANTED
                    });
                    core.telemetry.record_read_acquire(&acquire);
                    self.hold = core.telemetry.timer();
                    return;
                }
                // No waiting group: enqueue a fresh node behind the writer.
                let r = rnode.take().unwrap_or_else(|| core.alloc_reader_node(slot));
                let node = core.rnode(r);
                node.state.store(WAITING, Ordering::Relaxed);
                node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                if core.cas_tail(tail, NodeRef::reader(r)) {
                    node.prev.store(tail.raw(), Ordering::Release);
                    core.set_qnext(tail, NodeRef::reader(r));
                    node.csnzi.open();
                    let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
                    if ticket.arrived() {
                        core.note_arrival(ticket);
                        core.telemetry.incr(LockEvent::ReadSlow);
                        lock.set_hint(NodeRef::reader(r));
                        self.session = Some((r, ticket));
                        fault::inject("roll.read.waiting");
                        core.telemetry
                            .trace_enqueued(u64::from(NodeRef::reader(r).raw()));
                        spin_until(core.backoff(), || {
                            node.state.load(Ordering::Acquire) == GRANTED
                        });
                        core.telemetry.record_read_acquire(&acquire);
                        self.hold = core.telemetry.timer();
                        return;
                    }
                    rnode = None;
                } else {
                    rnode = Some(r);
                }
            }
        }
    }

    fn unlock_read(&mut self) {
        let (depart_from, ticket) = self.session.take().expect("unlock_read without read hold");
        self.lock.core.telemetry.record_read_hold(&self.hold);
        self.lock.core.reader_unlock(depart_from, ticket);
    }

    fn lock_write(&mut self) {
        debug_assert!(self.session.is_none() && !self.write_held);
        // `wait_for_active = true`: do not close a waiting reader group's
        // C-SNZI — that group must stay joinable until it holds the lock.
        if self.lock.core.cohort.is_some() {
            let cohort = self.cohort_index();
            if self.lock.core.cohort_bypass_ready(cohort) {
                // Uncontended: the gate has nothing to batch, so skip it
                // and acquire like a plain writer. `cohort_hold` stays
                // `None`, making the release the plain `writer_unlock`.
                self.ensure_writer_node();
                self.lock.core.writer_lock(self.slot_idx(), true);
            } else {
                self.ensure_cohort_node();
                let hold = self.lock.core.cohort_lock(
                    self.slot_idx(),
                    cohort,
                    true,
                    &mut self.pending_reclaim,
                );
                self.cohort_hold = Some(hold);
            }
        } else {
            self.ensure_writer_node();
            self.lock.core.writer_lock(self.slot_idx(), true);
        }
        self.hold = self.lock.core.telemetry.timer();
        self.write_held = true;
    }

    fn unlock_write(&mut self) {
        debug_assert!(self.write_held, "unlock_write without write hold");
        self.write_held = false;
        self.lock.core.telemetry.record_write_hold(&self.hold);
        let slot = self.slot_idx();
        match self.cohort_hold.take() {
            Some(hold) => {
                let outcome = self.lock.core.cohort_release(slot, hold.cohort, Some(hold));
                if hold.owner_slot == slot {
                    // LocalHandoff: our global writer node stays in the
                    // queue, lent to the batch; reclaim before its next
                    // use. A global release through our own node means we
                    // discharged it ourselves — including a node lent out
                    // earlier whose batch circled back to us — so any
                    // pending reclaim is already satisfied.
                    self.pending_reclaim = outcome == CohortRelease::LocalHandoff;
                }
            }
            None => {
                self.lock.core.writer_unlock(slot);
            }
        }
    }

    fn try_lock_read(&mut self) -> bool {
        debug_assert!(self.session.is_none() && !self.write_held);
        let core = &self.lock.core;
        let slot = self.slot_idx();
        let tail = core.load_tail();
        if tail.is_nil() {
            let r = core.alloc_reader_node(slot);
            let node = core.rnode(r);
            node.state.store(GRANTED, Ordering::Relaxed);
            node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
            node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
            if core.cas_tail(NodeRef::NIL, NodeRef::reader(r)) {
                node.csnzi.open();
                let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
                if ticket.arrived() {
                    core.note_arrival(ticket);
                    core.telemetry.incr(LockEvent::ReadFast);
                    self.hold = core.telemetry.timer();
                    self.session = Some((r, ticket));
                    return true;
                }
                return false;
            }
            core.free_reader_node(r);
            false
        } else if tail.is_reader() {
            let node = core.rnode(tail.index());
            if node.state.load(Ordering::Acquire) != GRANTED {
                return false;
            }
            let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
            if !ticket.arrived() {
                return false;
            }
            core.note_arrival(ticket);
            core.telemetry.incr(LockEvent::ReadFast);
            self.hold = core.telemetry.timer();
            self.session = Some((tail.index(), ticket));
            true
        } else {
            false
        }
    }

    fn try_lock_write(&mut self) -> bool {
        debug_assert!(self.session.is_none() && !self.write_held);
        self.ensure_writer_node();
        let core = &self.lock.core;
        let slot = self.slot_idx();
        let node = core.wnode(slot);
        node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
        node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
        if core.cas_tail(NodeRef::NIL, NodeRef::writer(slot)) {
            core.telemetry.incr(LockEvent::WriteFast);
            self.hold = core.telemetry.timer();
            self.write_held = true;
            true
        } else {
            false
        }
    }
}

#[cfg(not(loom))]
impl crate::raw::TimedHandle for RollHandle<'_> {
    /// Timed ROLL read: identical to `lock_read` (including the overtaking
    /// join) until a wait starts; a timed-out wait departs the C-SNZI and
    /// discharges any hand-off obligation picked up in the race with the
    /// grant.
    fn lock_read_deadline(
        &mut self,
        deadline: std::time::Instant,
    ) -> Result<(), crate::raw::TimedOut> {
        use oll_util::backoff::spin_until_deadline;

        debug_assert!(self.session.is_none() && !self.write_held);
        let lock = self.lock;
        let core = &lock.core;
        let slot = self.slot_idx();
        let acquire = core.telemetry.begin_read();
        let mut rnode: Option<usize> = None;
        let mut backoff = Backoff::with_policy(core.backoff());
        loop {
            let tail = core.load_tail();
            if tail.is_nil() {
                let r = rnode.take().unwrap_or_else(|| core.alloc_reader_node(slot));
                let node = core.rnode(r);
                node.state.store(GRANTED, Ordering::Relaxed);
                node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                if core.cas_tail(NodeRef::NIL, NodeRef::reader(r)) {
                    node.csnzi.open();
                    let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
                    if ticket.arrived() {
                        core.note_arrival(ticket);
                        core.telemetry.incr(LockEvent::ReadFast);
                        core.telemetry.record_read_acquire(&acquire);
                        self.hold = core.telemetry.timer();
                        self.session = Some((r, ticket));
                        return Ok(());
                    }
                    rnode = None;
                } else {
                    rnode = Some(r);
                }
            } else if tail.is_reader() {
                let node = core.rnode(tail.index());
                let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
                if ticket.arrived() {
                    if let Some(n) = rnode.take() {
                        core.free_reader_node(n);
                    }
                    core.note_arrival(ticket);
                    // Same fast/slow split as the untimed join; the load
                    // only exists in telemetry builds.
                    if !Telemetry::enabled() || node.state.load(Ordering::Acquire) == GRANTED {
                        core.telemetry.incr(LockEvent::ReadFast);
                    } else {
                        core.telemetry.incr(LockEvent::ReadSlow);
                        core.telemetry.trace_enqueued(u64::from(tail.raw()));
                    }
                    fault::inject("roll.read.waiting");
                    if spin_until_deadline(core.backoff(), deadline, || {
                        node.state.load(Ordering::Acquire) == GRANTED
                    }) {
                        core.telemetry.record_read_acquire(&acquire);
                        self.hold = core.telemetry.timer();
                        self.session = Some((tail.index(), ticket));
                        return Ok(());
                    }
                    fault::inject("roll.read.timeout");
                    core.telemetry.incr(LockEvent::Timeout);
                    core.cancel_read_session(tail.index(), ticket);
                    return Err(crate::raw::TimedOut);
                }
                backoff.backoff();
            } else {
                if let Some((idx, ticket)) = self.try_join_waiting_reader(tail) {
                    if let Some(n) = rnode.take() {
                        core.free_reader_node(n);
                    }
                    let node = core.rnode(idx);
                    core.note_arrival(ticket);
                    core.telemetry.incr(LockEvent::ReadSlow);
                    core.telemetry
                        .trace_enqueued(u64::from(NodeRef::reader(idx).raw()));
                    fault::inject("roll.read.joined");
                    if spin_until_deadline(core.backoff(), deadline, || {
                        node.state.load(Ordering::Acquire) == GRANTED
                    }) {
                        core.telemetry.record_read_acquire(&acquire);
                        self.hold = core.telemetry.timer();
                        self.session = Some((idx, ticket));
                        return Ok(());
                    }
                    fault::inject("roll.read.timeout");
                    core.telemetry.incr(LockEvent::Timeout);
                    core.cancel_read_session(idx, ticket);
                    return Err(crate::raw::TimedOut);
                }
                let r = rnode.take().unwrap_or_else(|| core.alloc_reader_node(slot));
                let node = core.rnode(r);
                node.state.store(WAITING, Ordering::Relaxed);
                node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                if core.cas_tail(tail, NodeRef::reader(r)) {
                    node.prev.store(tail.raw(), Ordering::Release);
                    core.set_qnext(tail, NodeRef::reader(r));
                    node.csnzi.open();
                    let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
                    if ticket.arrived() {
                        core.note_arrival(ticket);
                        core.telemetry.incr(LockEvent::ReadSlow);
                        lock.set_hint(NodeRef::reader(r));
                        self.session = Some((r, ticket));
                        fault::inject("roll.read.waiting");
                        core.telemetry
                            .trace_enqueued(u64::from(NodeRef::reader(r).raw()));
                        if spin_until_deadline(core.backoff(), deadline, || {
                            node.state.load(Ordering::Acquire) == GRANTED
                        }) {
                            core.telemetry.record_read_acquire(&acquire);
                            self.hold = core.telemetry.timer();
                            return Ok(());
                        }
                        fault::inject("roll.read.timeout");
                        core.telemetry.incr(LockEvent::Timeout);
                        let (idx, ticket) = self.session.take().expect("session was just stored");
                        core.cancel_read_session(idx, ticket);
                        return Err(crate::raw::TimedOut);
                    }
                    rnode = None;
                } else {
                    rnode = Some(r);
                }
            }
            if std::time::Instant::now() >= deadline {
                if let Some(n) = rnode.take() {
                    core.free_reader_node(n);
                }
                core.telemetry.incr(LockEvent::Timeout);
                return Err(crate::raw::TimedOut);
            }
        }
    }

    fn lock_write_deadline(
        &mut self,
        deadline: std::time::Instant,
    ) -> Result<(), crate::raw::TimedOut> {
        use crate::cohort::CohortTimeout;
        use crate::foll::WriteTimeout;

        debug_assert!(self.session.is_none() && !self.write_held);
        // Uncontended cohort builds bypass the gate (see `lock_write`)
        // and fall through to the plain timed writer path below.
        let cohort = if self.lock.core.cohort.is_some() {
            let c = self.cohort_index();
            if self.lock.core.cohort_bypass_ready(c) {
                None
            } else {
                Some(c)
            }
        } else {
            None
        };
        if let Some(cohort) = cohort {
            self.ensure_cohort_node();
            return match self.lock.core.cohort_lock_deadline(
                self.slot_idx(),
                cohort,
                true,
                deadline,
                &mut self.pending_reclaim,
            ) {
                Ok(hold) => {
                    self.cohort_hold = Some(hold);
                    self.hold = self.lock.core.telemetry.timer();
                    self.write_held = true;
                    Ok(())
                }
                Err(CohortTimeout::Clean) => {
                    self.lock.core.telemetry.incr(LockEvent::Timeout);
                    Err(crate::raw::TimedOut)
                }
                Err(CohortTimeout::WriterAbandoned) => {
                    self.lock.core.telemetry.incr(LockEvent::Timeout);
                    self.lock.core.telemetry.incr(LockEvent::Cancel);
                    self.pending_reclaim = true;
                    Err(crate::raw::TimedOut)
                }
                Err(CohortTimeout::CohortAbandoned) => {
                    self.lock.core.telemetry.incr(LockEvent::Timeout);
                    self.lock.core.telemetry.incr(LockEvent::Cancel);
                    self.cohort_reclaim = true;
                    Err(crate::raw::TimedOut)
                }
            };
        }
        self.ensure_writer_node();
        match self
            .lock
            .core
            .writer_lock_deadline(self.slot_idx(), true, deadline)
        {
            Ok(()) => {
                self.hold = self.lock.core.telemetry.timer();
                self.write_held = true;
                Ok(())
            }
            Err(WriteTimeout::Clean) => {
                self.lock.core.telemetry.incr(LockEvent::Timeout);
                Err(crate::raw::TimedOut)
            }
            Err(WriteTimeout::Abandoned) => {
                self.lock.core.telemetry.incr(LockEvent::Timeout);
                self.lock.core.telemetry.incr(LockEvent::Cancel);
                self.pending_reclaim = true;
                Err(crate::raw::TimedOut)
            }
        }
    }
}

impl Drop for RollHandle<'_> {
    fn drop(&mut self) {
        debug_assert!(
            self.session.is_none() && !self.write_held,
            "ROLL handle dropped while holding the lock"
        );
        // The slot (and with it the writer node) is released on drop; make
        // sure no abandoned-release is still running against the node.
        self.ensure_writer_node();
        self.ensure_cohort_node();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicI64, Ordering as O};
    use std::sync::Arc;

    #[test]
    fn uncontended_read_write() {
        let lock = RollLock::new(4);
        let mut h = lock.handle().unwrap();
        h.lock_read();
        h.unlock_read();
        h.lock_write();
        h.unlock_write();
        assert!(lock.is_queue_empty());
    }

    #[test]
    fn readers_share_a_node() {
        let lock = RollLock::new(4);
        let mut h1 = lock.handle().unwrap();
        let mut h2 = lock.handle().unwrap();
        h1.lock_read();
        h2.lock_read();
        h2.unlock_read();
        h1.unlock_read();
        let mut w = lock.handle().unwrap();
        w.lock_write();
        w.unlock_write();
        assert!(lock.is_queue_empty());
    }

    #[test]
    fn try_paths_match_foll_semantics() {
        let lock = RollLock::new(3);
        let mut r = lock.handle().unwrap();
        let mut w = lock.handle().unwrap();
        assert!(r.try_lock_read());
        assert!(!w.try_lock_write());
        r.unlock_read();
        let mut r2 = lock.handle().unwrap();
        assert!(r2.try_lock_read()); // joins the still-queued active node
        r2.unlock_read();
    }

    #[test]
    fn reader_overtakes_waiting_writer() {
        // Construct the scenario of §4.3 deterministically:
        //  1. R1 read-locks (reader node N1 at head, active).
        //  2. W enqueues behind N1 and waits for the lock.
        //  3. R2 arrives; tail is W's node; R2 enqueues node N2 (waiting).
        //  4. R3 arrives; tail is still W; R3 must *join N2*, overtaking W.
        //  5. R1 releases: W gets the lock (N1 closed after activity),
        //     then W releases to N2's two readers.
        let lock = Arc::new(RollLock::new(8));
        let writer_in = Arc::new(AtomicBool::new(false));
        let writer_out = Arc::new(AtomicBool::new(false));
        let readers_in = Arc::new(AtomicI64::new(0));

        let mut r1 = lock.handle().unwrap();
        r1.lock_read();

        // Writer thread parks in the queue.
        let wl = Arc::clone(&lock);
        let wi = Arc::clone(&writer_in);
        let wo = Arc::clone(&writer_out);
        let writer = std::thread::spawn(move || {
            let mut h = wl.handle().unwrap();
            wi.store(true, O::SeqCst);
            h.lock_write();
            h.unlock_write();
            wo.store(true, O::SeqCst);
        });
        while !writer_in.load(O::SeqCst) {
            std::thread::yield_now();
        }
        // Give the writer time to actually enqueue behind N1.
        while lock.core.load_tail().is_reader() {
            std::thread::yield_now();
        }

        // R2 and R3: both should end up waiting on one shared node.
        let mut overtakers = Vec::new();
        for _ in 0..2 {
            let rl = Arc::clone(&lock);
            let ri = Arc::clone(&readers_in);
            overtakers.push(std::thread::spawn(move || {
                let mut h = rl.handle().unwrap();
                h.lock_read();
                ri.fetch_add(1, O::SeqCst);
                while ri.load(O::SeqCst) < 2 {
                    std::thread::yield_now(); // both inside together
                }
                h.unlock_read();
            }));
        }

        // Writer must still be queued (readers can't have released it).
        assert!(!writer_out.load(O::SeqCst));
        r1.unlock_read();

        writer.join().unwrap();
        for t in overtakers {
            t.join().unwrap();
        }
        assert_eq!(readers_in.load(O::SeqCst), 2);
    }

    #[test]
    fn mixed_stress_exclusion() {
        const THREADS: usize = 6;
        const ITERS: usize = 1_500;
        let lock = Arc::new(RollLock::new(THREADS));
        let state = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let lock = Arc::clone(&lock);
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                let mut rng = oll_util::XorShift64::for_thread(99, tid);
                for _ in 0..ITERS {
                    if rng.percent(70) {
                        h.lock_read();
                        assert!(state.fetch_add(1, O::SeqCst) >= 0);
                        state.fetch_sub(1, O::SeqCst);
                        h.unlock_read();
                    } else {
                        h.lock_write();
                        assert_eq!(state.swap(-1, O::SeqCst), 0);
                        state.store(0, O::SeqCst);
                        h.unlock_write();
                    }
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
    }

    #[test]
    fn hint_disabled_still_correct() {
        const THREADS: usize = 4;
        let lock = Arc::new(RollLock::builder(THREADS).last_reader_hint(false).build());
        let state = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let lock = Arc::clone(&lock);
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                let mut rng = oll_util::XorShift64::for_thread(5, tid);
                for _ in 0..1_000 {
                    if rng.percent(60) {
                        h.lock_read();
                        assert!(state.fetch_add(1, O::SeqCst) >= 0);
                        state.fetch_sub(1, O::SeqCst);
                        h.unlock_read();
                    } else {
                        h.lock_write();
                        assert_eq!(state.swap(-1, O::SeqCst), 0);
                        state.store(0, O::SeqCst);
                        h.unlock_write();
                    }
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
    }
}
