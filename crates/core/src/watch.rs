//! Watched acquisitions: deadline waits that run the hazard layer's
//! deadlock and starvation checks while blocked.
//!
//! A watched acquisition chops its deadline into hazard
//! `watch_interval` slices and issues [`TimedHandle`] deadline waits
//! for one slice at a time. Each time a slice expires without the lock
//! being granted, the blocker — from its own context, no background
//! thread — runs the cycle check over the process-global wait-for
//! graph and, for writers, feeds the watchdog's escalation ladder.
//! A detected cycle turns what would have been a hang (or an opaque
//! timeout) into [`AcquireError::DeadlockDetected`]; a stalled writer
//! escalates telemetry → trace anomaly → bias degradation (see
//! `oll-hazard`).
//!
//! The slicing relies on the [`TimedHandle`] contract: an expired slice
//! leaves *no* partial arrival behind (C-SNZI departed, queue node
//! excised), so re-arriving for the next slice is always legal.
//!
//! When the lock's hazard handle is inactive (feature off, or the lock
//! was built without one) a watched acquisition collapses to a single
//! plain deadline wait — no slicing, no checks, no overhead.

use std::time::Instant;

use crate::raw::{ReadGuard, TimedHandle, TimedOut, WriteGuard};

/// Why a watched acquisition returned without the lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireError {
    /// The deadline passed. Same guarantees as [`TimedOut`]: the
    /// acquisition was fully undone.
    TimedOut,
    /// The process-global wait-for graph contains a cycle through the
    /// calling thread: every hold this wait depends on is itself
    /// blocked, transitively, on a lock this thread holds. Waiting
    /// longer cannot succeed; the acquisition was fully undone so the
    /// caller can release what it holds and retry in a consistent
    /// order.
    DeadlockDetected,
}

impl core::fmt::Display for AcquireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AcquireError::TimedOut => f.write_str("lock acquisition timed out"),
            AcquireError::DeadlockDetected => {
                f.write_str("lock acquisition abandoned: wait-for cycle detected")
            }
        }
    }
}

impl std::error::Error for AcquireError {}

impl From<TimedOut> for AcquireError {
    fn from(_: TimedOut) -> Self {
        AcquireError::TimedOut
    }
}

/// The sliced wait loop shared by the read and write flavors.
fn lock_watched<H: TimedHandle + ?Sized>(
    handle: &mut H,
    write: bool,
    deadline: Instant,
) -> Result<(), AcquireError> {
    let hazard = handle.hazard();
    let Some(interval) = hazard.watch_interval() else {
        // Inactive hazard handle: one plain deadline wait.
        return if write {
            handle.lock_write_deadline(deadline).map_err(Into::into)
        } else {
            handle.lock_read_deadline(deadline).map_err(Into::into)
        };
    };
    let start = Instant::now();
    loop {
        hazard.begin_wait();
        let slice = deadline.min(Instant::now() + interval);
        let granted = if write {
            handle.lock_write_deadline(slice)
        } else {
            handle.lock_read_deadline(slice)
        };
        match granted {
            Ok(()) => {
                // The wait edge is withdrawn here; ownership is
                // recorded when the caller wraps the hold in a guard.
                hazard.cancel_wait();
                hazard.note_progress(write);
                return Ok(());
            }
            Err(TimedOut) => {
                if Instant::now() >= deadline {
                    hazard.cancel_wait();
                    return Err(AcquireError::TimedOut);
                }
                if hazard.deadlock_check() {
                    hazard.cancel_wait();
                    return Err(AcquireError::DeadlockDetected);
                }
                if write {
                    hazard.note_writer_stall(start.elapsed());
                }
            }
        }
    }
}

/// Hazard-watched acquisition, available on every [`TimedHandle`]
/// (blanket impl). See the module docs for the wait-loop shape.
pub trait WatchedHandle: TimedHandle {
    /// Acquires for reading, running the hazard checks while blocked.
    fn lock_read_watched(&mut self, deadline: Instant) -> Result<(), AcquireError> {
        lock_watched(self, false, deadline)
    }

    /// Acquires for writing, running the hazard checks (including the
    /// starvation watchdog) while blocked.
    fn lock_write_watched(&mut self, deadline: Instant) -> Result<(), AcquireError> {
        lock_watched(self, true, deadline)
    }

    /// Watched read acquisition returning a guard.
    fn read_watched(&mut self, deadline: Instant) -> Result<ReadGuard<'_, Self>, AcquireError>
    where
        Self: Sized,
    {
        self.lock_read_watched(deadline)?;
        Ok(ReadGuard::new(self))
    }

    /// Watched write acquisition returning a guard.
    fn write_watched(&mut self, deadline: Instant) -> Result<WriteGuard<'_, Self>, AcquireError>
    where
        Self: Sized,
    {
        self.lock_write_watched(deadline)?;
        Ok(WriteGuard::new(self))
    }
}

impl<H: TimedHandle + ?Sized> WatchedHandle for H {}
