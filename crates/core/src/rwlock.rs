//! A data-carrying wrapper: `RwLock<T, L>` pairs any lock in this
//! workspace with a protected value, giving the familiar guard-deref API
//! on top of the paper's register-then-acquire model.

use crate::raw::{ReadGuard, RwHandle, RwLockFamily, WriteGuard};
use core::cell::UnsafeCell;
use core::fmt;
use core::ops::{Deref, DerefMut};
use oll_util::slots::SlotError;

/// A reader-writer lock protecting a value of type `T`, generic over the
/// lock algorithm `L` (GOLL, FOLL, ROLL, or any baseline).
///
/// ```
/// use oll_core::{FollLock, RwLock};
///
/// let lock = RwLock::new(FollLock::new(8), vec![1, 2, 3]);
/// let mut me = lock.owner().unwrap(); // registers this thread
/// assert_eq!(me.read().len(), 3);
/// me.write().push(4);
/// assert_eq!(me.read().len(), 4);
/// ```
pub struct RwLock<T, L: RwLockFamily> {
    lock: L,
    data: UnsafeCell<T>,
}

// SAFETY: the lock algorithm serializes writers against everything and
// readers against writers, so sharing `RwLock` requires the same bounds as
// `std::sync::RwLock`.
unsafe impl<T: Send, L: RwLockFamily> Send for RwLock<T, L> {}
unsafe impl<T: Send + Sync, L: RwLockFamily> Sync for RwLock<T, L> {}

impl<T, L: RwLockFamily> RwLock<T, L> {
    /// Wraps `value` behind `lock`.
    pub fn new(lock: L, value: T) -> Self {
        Self {
            lock,
            data: UnsafeCell::new(value),
        }
    }

    /// Registers the calling thread, returning its owner view. Holds one
    /// of the lock's `capacity` thread slots until dropped.
    pub fn owner(&self) -> Result<RwLockOwner<'_, T, L>, SlotError> {
        Ok(RwLockOwner {
            handle: self.lock.handle()?,
            data: &self.data,
        })
    }

    /// The underlying lock (for diagnostics).
    pub fn raw(&self) -> &L {
        &self.lock
    }

    /// Consumes the wrapper, returning the value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Mutable access without locking (the `&mut` proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: fmt::Debug, L: RwLockFamily> fmt::Debug for RwLock<T, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("algorithm", &self.lock.name())
            .finish_non_exhaustive()
    }
}

/// A registered thread's view of an [`RwLock`]: wraps the per-thread lock
/// handle and hands out data guards.
pub struct RwLockOwner<'l, T, L: RwLockFamily + 'l> {
    handle: L::Handle<'l>,
    data: &'l UnsafeCell<T>,
}

impl<'l, T, L: RwLockFamily> RwLockOwner<'l, T, L> {
    /// Acquires for reading and returns a guard dereferencing to `&T`.
    pub fn read(&mut self) -> RwLockReadGuard<'_, T, L::Handle<'l>> {
        let data = self.data.get();
        let inner = self.handle.read();
        // SAFETY: the lock is read-held for the guard's lifetime, so no
        // writer can alias; concurrent readers only take `&T`.
        RwLockReadGuard {
            data: unsafe { &*data },
            _inner: inner,
        }
    }

    /// Acquires for writing and returns a guard dereferencing to `&mut T`.
    pub fn write(&mut self) -> RwLockWriteGuard<'_, T, L::Handle<'l>> {
        let data = self.data.get();
        let inner = self.handle.write();
        // SAFETY: the lock is write-held (exclusive) for the guard's
        // lifetime.
        RwLockWriteGuard {
            data: unsafe { &mut *data },
            _inner: inner,
        }
    }

    /// Attempts a read acquisition without waiting.
    pub fn try_read(&mut self) -> Option<RwLockReadGuard<'_, T, L::Handle<'l>>> {
        let data = self.data.get();
        let inner = self.handle.try_read()?;
        // SAFETY: as in `read`.
        Some(RwLockReadGuard {
            data: unsafe { &*data },
            _inner: inner,
        })
    }

    /// Attempts a write acquisition without waiting.
    pub fn try_write(&mut self) -> Option<RwLockWriteGuard<'_, T, L::Handle<'l>>> {
        let data = self.data.get();
        let inner = self.handle.try_write()?;
        // SAFETY: as in `write`.
        Some(RwLockWriteGuard {
            data: unsafe { &mut *data },
            _inner: inner,
        })
    }

    /// Direct access to the underlying lock handle (e.g. for
    /// upgrade/downgrade on GOLL).
    pub fn handle(&mut self) -> &mut L::Handle<'l> {
        &mut self.handle
    }
}

#[cfg(not(loom))]
impl<'l, T, L: RwLockFamily> RwLockOwner<'l, T, L>
where
    L::Handle<'l>: crate::raw::TimedHandle,
{
    /// Acquires for reading, giving up after `timeout`; on `Err(TimedOut)`
    /// the acquisition left no trace and the owner may retry immediately.
    pub fn read_timeout(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<RwLockReadGuard<'_, T, L::Handle<'l>>, crate::raw::TimedOut> {
        self.read_deadline(std::time::Instant::now() + timeout)
    }

    /// Acquires for writing, giving up after `timeout`.
    pub fn write_timeout(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<RwLockWriteGuard<'_, T, L::Handle<'l>>, crate::raw::TimedOut> {
        self.write_deadline(std::time::Instant::now() + timeout)
    }

    /// Acquires for reading, giving up at `deadline`.
    pub fn read_deadline(
        &mut self,
        deadline: std::time::Instant,
    ) -> Result<RwLockReadGuard<'_, T, L::Handle<'l>>, crate::raw::TimedOut> {
        use crate::raw::TimedHandle as _;
        let data = self.data.get();
        let inner = self.handle.read_deadline(deadline)?;
        // SAFETY: as in `read`.
        Ok(RwLockReadGuard {
            data: unsafe { &*data },
            _inner: inner,
        })
    }

    /// Acquires for writing, giving up at `deadline`.
    pub fn write_deadline(
        &mut self,
        deadline: std::time::Instant,
    ) -> Result<RwLockWriteGuard<'_, T, L::Handle<'l>>, crate::raw::TimedOut> {
        use crate::raw::TimedHandle as _;
        let data = self.data.get();
        let inner = self.handle.write_deadline(deadline)?;
        // SAFETY: as in `write`.
        Ok(RwLockWriteGuard {
            data: unsafe { &mut *data },
            _inner: inner,
        })
    }
}

/// Guard dereferencing to the protected data for reading.
#[must_use = "the lock is released as soon as the guard is dropped"]
pub struct RwLockReadGuard<'g, T, H: RwHandle> {
    data: &'g T,
    _inner: ReadGuard<'g, H>,
}

impl<T, H: RwHandle> Deref for RwLockReadGuard<'_, T, H> {
    type Target = T;

    fn deref(&self) -> &T {
        self.data
    }
}

/// Guard dereferencing to the protected data for writing.
#[must_use = "the lock is released as soon as the guard is dropped"]
pub struct RwLockWriteGuard<'g, T, H: RwHandle> {
    data: &'g mut T,
    _inner: WriteGuard<'g, H>,
}

impl<T, H: RwHandle> Deref for RwLockWriteGuard<'_, T, H> {
    type Target = T;

    fn deref(&self) -> &T {
        self.data
    }
}

impl<T, H: RwHandle> DerefMut for RwLockWriteGuard<'_, T, H> {
    fn deref_mut(&mut self) -> &mut T {
        self.data
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::foll::FollLock;
    use crate::goll::GollLock;
    use crate::roll::RollLock;
    use std::sync::Arc;

    #[test]
    fn read_write_round_trip_all_algorithms() {
        fn check<L: RwLockFamily>(lock: L) {
            let rw = RwLock::new(lock, 0u64);
            {
                let mut me = rw.owner().unwrap();
                *me.write() += 5;
                assert_eq!(*me.read(), 5);
            }
            assert_eq!(rw.into_inner(), 5);
        }
        check(GollLock::new(2));
        check(FollLock::new(2));
        check(RollLock::new(2));
    }

    #[test]
    fn try_guards() {
        let rw = RwLock::new(FollLock::new(2), 1u32);
        let mut a = rw.owner().unwrap();
        let mut b = rw.owner().unwrap();
        let g = a.try_write().unwrap();
        assert!(b.try_read().is_none());
        drop(g);
        assert!(b.try_read().is_some());
    }

    #[test]
    fn get_mut_and_debug() {
        let mut rw = RwLock::new(GollLock::new(1), 7u8);
        *rw.get_mut() = 9;
        let mut me = rw.owner().unwrap();
        assert_eq!(*me.read(), 9);
        drop(me);
        assert!(format!("{rw:?}").contains("GOLL"));
    }

    #[test]
    fn concurrent_sum_is_exact() {
        const THREADS: usize = 4;
        const PER: usize = 1_000;
        let rw = Arc::new(RwLock::new(RollLock::new(THREADS), 0usize));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let rw = Arc::clone(&rw);
            handles.push(std::thread::spawn(move || {
                let mut me = rw.owner().unwrap();
                for _ in 0..PER {
                    *me.write() += 1;
                    let _v = *me.read();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut me = rw.owner().unwrap();
        assert_eq!(*me.read(), THREADS * PER);
    }
}
