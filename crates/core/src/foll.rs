//! The **FOLL** lock (§4.2, Figure 4 of the paper): a FIFO distributed
//! queue reader-writer lock extending the MCS mutex.
//!
//! Writers queue exactly as in the MCS mutex. Successive readers, however,
//! *share a single queue node* by arriving at that node's C-SNZI — so a
//! read-only workload never writes the tail pointer after the first
//! reader, eliminating the central point of contention that limits the
//! MCS-RW and KSUH locks.
//!
//! Reader nodes outlive individual acquisitions (many readers may still be
//! inside when the enqueuer leaves), so they are pool-allocated from a
//! ring of `capacity` nodes with a `FREE`/`IN_USE` flag (§4.2.1 proves one
//! node per thread suffices). We use indices into per-lock arrays instead
//! of raw pointers; besides being safe Rust, index+generation-free reuse
//! is exactly the ring discipline the paper's recycling argument assumes.

use crate::raw::{RwHandle, RwLockFamily};
use oll_csnzi::{ArrivalPolicy, CSnzi, Ticket, TreeShape};
use oll_util::backoff::{spin_until, Backoff, BackoffPolicy};
use oll_util::slots::{SlotError, SlotGuard, SlotRegistry};
use oll_util::sync::{AtomicBool, AtomicU32, Ordering};
use oll_util::CachePadded;

/// A packed reference to a queue node: `0` is null; otherwise bit 0 is the
/// node kind (1 = reader) and the remaining bits are `index + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct NodeRef(u32);

impl NodeRef {
    pub(crate) const NIL: Self = Self(0);

    pub(crate) fn reader(idx: usize) -> Self {
        Self((((idx as u32) + 1) << 1) | 1)
    }

    pub(crate) fn writer(idx: usize) -> Self {
        Self(((idx as u32) + 1) << 1)
    }

    pub(crate) fn is_nil(self) -> bool {
        self.0 == 0
    }

    pub(crate) fn is_reader(self) -> bool {
        !self.is_nil() && (self.0 & 1) == 1
    }

    pub(crate) fn index(self) -> usize {
        debug_assert!(!self.is_nil());
        ((self.0 >> 1) - 1) as usize
    }

    pub(crate) fn raw(self) -> u32 {
        self.0
    }

    pub(crate) fn from_raw(raw: u32) -> Self {
        Self(raw)
    }
}

/// A writer's queue node: the MCS node (`qNext`, `spin`).
pub(crate) struct WriterNode {
    pub(crate) qnext: AtomicU32,
    pub(crate) spin: AtomicBool,
    /// ROLL only: predecessor link for the backward search. Unused (but
    /// cheap) in FOLL.
    pub(crate) prev: AtomicU32,
}

impl WriterNode {
    fn new() -> Self {
        Self {
            qnext: AtomicU32::new(NodeRef::NIL.raw()),
            spin: AtomicBool::new(false),
            prev: AtomicU32::new(NodeRef::NIL.raw()),
        }
    }
}

/// A reader queue node: MCS fields plus the shared C-SNZI and the pool
/// ring fields (`allocState`, `next`).
pub(crate) struct ReaderNode {
    pub(crate) csnzi: CSnzi,
    pub(crate) qnext: AtomicU32,
    pub(crate) spin: AtomicBool,
    /// `true` = IN_USE, `false` = FREE.
    pub(crate) in_use: AtomicBool,
    /// Immutable ring successor for pool traversal.
    pub(crate) ring_next: usize,
    /// ROLL only: predecessor link.
    pub(crate) prev: AtomicU32,
}

impl ReaderNode {
    fn new(shape: TreeShape, ring_next: usize, lazy_tree: bool) -> Self {
        Self {
            // "when just allocated, has a closed C-SNZI with no surplus"
            csnzi: if lazy_tree {
                CSnzi::new_closed_lazy(shape)
            } else {
                CSnzi::new_closed(shape)
            },
            qnext: AtomicU32::new(NodeRef::NIL.raw()),
            spin: AtomicBool::new(false),
            in_use: AtomicBool::new(false),
            ring_next,
            prev: AtomicU32::new(NodeRef::NIL.raw()),
        }
    }
}

/// Shared queue state for FOLL and ROLL (ROLL reuses every piece and adds
/// the backward search).
pub(crate) struct QueueCore {
    pub(crate) tail: CachePadded<AtomicU32>,
    pub(crate) writer_nodes: Box<[CachePadded<WriterNode>]>,
    pub(crate) reader_nodes: Box<[CachePadded<ReaderNode>]>,
    pub(crate) slots: SlotRegistry,
    pub(crate) backoff: BackoffPolicy,
    pub(crate) arrival_threshold: u32,
}

impl QueueCore {
    pub(crate) fn new(
        capacity: usize,
        shape: TreeShape,
        backoff: BackoffPolicy,
        arrival_threshold: u32,
        lazy_tree: bool,
    ) -> Self {
        let capacity = capacity.max(1);
        Self {
            tail: CachePadded::new(AtomicU32::new(NodeRef::NIL.raw())),
            writer_nodes: (0..capacity)
                .map(|_| CachePadded::new(WriterNode::new()))
                .collect(),
            reader_nodes: (0..capacity)
                .map(|i| CachePadded::new(ReaderNode::new(shape, (i + 1) % capacity, lazy_tree)))
                .collect(),
            slots: SlotRegistry::new(capacity),
            backoff,
            arrival_threshold,
        }
    }

    pub(crate) fn load_tail(&self) -> NodeRef {
        NodeRef::from_raw(self.tail.load(Ordering::Acquire))
    }

    pub(crate) fn cas_tail(&self, old: NodeRef, new: NodeRef) -> bool {
        self.tail
            .compare_exchange(old.raw(), new.raw(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    pub(crate) fn swap_tail(&self, new: NodeRef) -> NodeRef {
        NodeRef::from_raw(self.tail.swap(new.raw(), Ordering::AcqRel))
    }

    pub(crate) fn rnode(&self, idx: usize) -> &ReaderNode {
        &self.reader_nodes[idx]
    }

    pub(crate) fn wnode(&self, idx: usize) -> &WriterNode {
        &self.writer_nodes[idx]
    }

    pub(crate) fn set_qnext(&self, node: NodeRef, next: NodeRef) {
        let cell = if node.is_reader() {
            &self.rnode(node.index()).qnext
        } else {
            &self.wnode(node.index()).qnext
        };
        cell.store(next.raw(), Ordering::Release);
    }

    /// Clears a successor's spin flag (releases the lock to it).
    pub(crate) fn clear_spin(&self, node: NodeRef) {
        let cell = if node.is_reader() {
            &self.rnode(node.index()).spin
        } else {
            &self.wnode(node.index()).spin
        };
        cell.store(false, Ordering::Release);
    }

    /// `AllocReaderNode` (Figure 4): claim a FREE node from the ring,
    /// starting at the thread's default node.
    pub(crate) fn alloc_reader_node(&self, slot: usize) -> usize {
        let mut idx = slot;
        let mut backoff = Backoff::with_policy(self.backoff);
        loop {
            let node = self.rnode(idx);
            if !node.in_use.load(Ordering::Relaxed)
                && node
                    .in_use
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                debug_assert!(!node.csnzi.query().open, "free nodes are always closed");
                debug_assert!(!node.csnzi.query().nonzero);
                return idx;
            }
            idx = node.ring_next;
            if idx == slot {
                // §4.2.1 proves a free node always exists with one node per
                // thread; a full wrap can only be transient contention.
                backoff.backoff();
            }
        }
    }

    /// `FreeReaderNode`: return a node to the pool. At most one thread
    /// frees a node before it is reallocated (§4.2.1), so a plain store
    /// suffices, exactly as in the paper.
    pub(crate) fn free_reader_node(&self, idx: usize) {
        let node = self.rnode(idx);
        debug_assert!(node.in_use.load(Ordering::Relaxed));
        debug_assert!(
            !node.csnzi.query().open && !node.csnzi.query().nonzero,
            "recycled nodes must have a closed, empty C-SNZI"
        );
        node.in_use.store(false, Ordering::Release);
    }

    /// The writer half of `WriterLock`, shared verbatim by FOLL and ROLL
    /// except for when the reader-predecessor's C-SNZI gets closed:
    /// FOLL closes immediately (`wait_for_active` = false); ROLL first
    /// waits for the predecessor's readers to become active, which is what
    /// lets later readers overtake us and join them (§4.3).
    pub(crate) fn writer_lock(&self, slot: usize, wait_for_active: bool) {
        let me = NodeRef::writer(slot);
        let node = self.wnode(slot);
        node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
        node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
        let pred = self.swap_tail(me);
        if pred.is_nil() {
            return; // lock acquired
        }
        // Set our spin flag *before* publishing the qNext link: our
        // predecessor finds us only through qNext, so it cannot clear the
        // flag before we set it.
        node.spin.store(true, Ordering::Relaxed);
        node.prev.store(pred.raw(), Ordering::Release);
        self.set_qnext(pred, me);
        if pred.is_reader() {
            let pnode = self.rnode(pred.index());
            // Node recycling: wait until the enqueuer has opened the
            // C-SNZI of this node incarnation (§4.2).
            spin_until(self.backoff, || pnode.csnzi.query().open);
            if wait_for_active {
                // ROLL: let readers keep joining until the group holds the
                // lock.
                spin_until(self.backoff, || !pnode.spin.load(Ordering::Acquire));
            }
            if pnode.csnzi.close() {
                // No readers will signal us: the group is (or became)
                // empty. Wait for the lock to reach the predecessor node
                // through the queue, then take over and recycle it.
                spin_until(self.backoff, || !pnode.spin.load(Ordering::Acquire));
                self.free_reader_node(pred.index());
            } else {
                // The last departing reader will clear our flag.
                spin_until(self.backoff, || !node.spin.load(Ordering::Acquire));
            }
        } else {
            spin_until(self.backoff, || !node.spin.load(Ordering::Acquire));
        }
    }

    /// `WriterUnlock` (Figure 4) — identical to the MCS mutex release.
    pub(crate) fn writer_unlock(&self, slot: usize) {
        let me = NodeRef::writer(slot);
        let node = self.wnode(slot);
        if NodeRef::from_raw(node.qnext.load(Ordering::Acquire)).is_nil() {
            if self.cas_tail(me, NodeRef::NIL) {
                return;
            }
            // Someone is linking in behind us; wait for the link.
            spin_until(self.backoff, || {
                !NodeRef::from_raw(node.qnext.load(Ordering::Acquire)).is_nil()
            });
        }
        let succ = NodeRef::from_raw(node.qnext.load(Ordering::Acquire));
        self.clear_spin(succ);
        node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed); // clean up
    }

    /// `ReaderUnlock` (Figure 4), shared by FOLL and ROLL.
    pub(crate) fn reader_unlock(&self, depart_from: usize, ticket: Ticket) {
        let node = self.rnode(depart_from);
        if node.csnzi.depart(ticket) {
            return;
        }
        // Last departure from a closed C-SNZI: a writer closed it after
        // linking in behind this node, so qNext is already set; signal it
        // and recycle the node.
        let succ = NodeRef::from_raw(node.qnext.load(Ordering::Acquire));
        debug_assert!(!succ.is_nil(), "the closing writer linked in first");
        self.clear_spin(succ);
        node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed); // clean up
        self.free_reader_node(depart_from);
    }
}

/// Builder for [`FollLock`].
#[derive(Debug, Clone)]
pub struct FollBuilder {
    capacity: usize,
    shape: Option<TreeShape>,
    backoff: BackoffPolicy,
    arrival_threshold: u32,
    lazy_tree: bool,
}

impl FollBuilder {
    /// Starts a builder for a lock used by at most `capacity` concurrent
    /// threads.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            shape: None,
            backoff: BackoffPolicy::default(),
            arrival_threshold: ArrivalPolicy::DEFAULT_THRESHOLD,
            lazy_tree: false,
        }
    }

    /// Defers each pooled reader node's C-SNZI tree allocation until the
    /// node first sees a tree arrival (§2.2's space optimization): a lock
    /// that never experiences read contention allocates no trees at all.
    pub fn lazy_tree(mut self, lazy: bool) -> Self {
        self.lazy_tree = lazy;
        self
    }

    /// Overrides the per-node C-SNZI tree shape (default: one leaf per
    /// thread).
    pub fn tree_shape(mut self, shape: TreeShape) -> Self {
        self.shape = Some(shape);
        self
    }

    /// Overrides the busy-wait backoff tuning (§5.1 tunes this per lock).
    pub fn backoff(mut self, policy: BackoffPolicy) -> Self {
        self.backoff = policy;
        self
    }

    /// Sets the per-thread failed-CAS count before C-SNZI arrivals move to
    /// the tree.
    pub fn arrival_threshold(mut self, threshold: u32) -> Self {
        self.arrival_threshold = threshold;
        self
    }

    /// Builds the lock.
    pub fn build(self) -> FollLock {
        let capacity = self.capacity.max(1);
        FollLock {
            core: QueueCore::new(
                capacity,
                self.shape
                    .unwrap_or_else(|| TreeShape::for_threads(capacity)),
                self.backoff,
                self.arrival_threshold,
                self.lazy_tree,
            ),
        }
    }
}

/// The FIFO OLL reader-writer lock (§4.2).
///
/// ```
/// use oll_core::{FollLock, RwHandle, RwLockFamily};
///
/// let lock = FollLock::new(4); // up to 4 concurrently registered threads
/// let mut me = lock.handle().unwrap();
/// {
///     let _shared = me.read();
/// }
/// {
///     let _exclusive = me.write();
/// }
/// ```
pub struct FollLock {
    core: QueueCore,
}

impl FollLock {
    /// Creates a lock for at most `capacity` concurrent threads.
    pub fn new(capacity: usize) -> Self {
        FollBuilder::new(capacity).build()
    }

    /// Starts a [`FollBuilder`].
    pub fn builder(capacity: usize) -> FollBuilder {
        FollBuilder::new(capacity)
    }

    /// Whether the queue is currently empty (racy; for diagnostics).
    pub fn is_queue_empty(&self) -> bool {
        self.core.load_tail().is_nil()
    }
}

impl RwLockFamily for FollLock {
    type Handle<'a> = FollHandle<'a>;

    fn handle(&self) -> Result<FollHandle<'_>, SlotError> {
        let slot = SlotGuard::claim(&self.core.slots)?;
        let policy = ArrivalPolicy::new(self.core.arrival_threshold);
        Ok(FollHandle {
            core: &self.core,
            slot,
            policy,
            session: None,
            write_held: false,
        })
    }

    fn capacity(&self) -> usize {
        self.core.slots.capacity()
    }

    fn name(&self) -> &'static str {
        "FOLL"
    }
}

/// Per-thread handle for [`FollLock`] (the paper's `Local` record).
pub struct FollHandle<'a> {
    core: &'a QueueCore,
    slot: SlotGuard<'a>,
    policy: ArrivalPolicy,
    /// `(depart_from, ticket)` while holding for reading.
    session: Option<(usize, Ticket)>,
    write_held: bool,
}

impl FollHandle<'_> {
    fn slot_idx(&self) -> usize {
        self.slot.slot()
    }
}

impl RwHandle for FollHandle<'_> {
    /// `ReaderLock` (Figure 4).
    fn lock_read(&mut self) {
        debug_assert!(self.session.is_none() && !self.write_held);
        let core = self.core;
        let slot = self.slot_idx();
        let mut rnode: Option<usize> = None;
        let mut backoff = Backoff::with_policy(core.backoff);
        loop {
            let tail = core.load_tail();
            if tail.is_nil() {
                // Empty queue: enqueue a reader node we immediately own.
                let r = rnode.take().unwrap_or_else(|| core.alloc_reader_node(slot));
                let node = core.rnode(r);
                node.spin.store(false, Ordering::Relaxed);
                node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                if core.cas_tail(NodeRef::NIL, NodeRef::reader(r)) {
                    // Only now that the node is enqueued may its C-SNZI
                    // open (§4.2 explains why this ordering is vital).
                    node.csnzi.open();
                    let ticket = node.csnzi.arrive(&mut self.policy, slot);
                    if ticket.arrived() {
                        self.session = Some((r, ticket));
                        return;
                    }
                    // A writer already queued behind us and closed the
                    // C-SNZI; our node stays in the queue for it.
                    rnode = None;
                } else {
                    rnode = Some(r); // keep the allocation for the retry
                }
            } else if !tail.is_reader() {
                // Tail is a writer: enqueue a reader node behind it.
                let r = rnode.take().unwrap_or_else(|| core.alloc_reader_node(slot));
                let node = core.rnode(r);
                node.spin.store(true, Ordering::Relaxed);
                node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                if core.cas_tail(tail, NodeRef::reader(r)) {
                    node.prev.store(tail.raw(), Ordering::Release);
                    core.set_qnext(tail, NodeRef::reader(r));
                    node.csnzi.open();
                    let ticket = node.csnzi.arrive(&mut self.policy, slot);
                    if ticket.arrived() {
                        self.session = Some((r, ticket));
                        spin_until(core.backoff, || !node.spin.load(Ordering::Acquire));
                        return;
                    }
                    rnode = None;
                } else {
                    rnode = Some(r);
                }
            } else {
                // Tail is a reader node: share it via its C-SNZI.
                let node = core.rnode(tail.index());
                let ticket = node.csnzi.arrive(&mut self.policy, slot);
                if ticket.arrived() {
                    if let Some(n) = rnode.take() {
                        core.free_reader_node(n);
                    }
                    self.session = Some((tail.index(), ticket));
                    spin_until(core.backoff, || !node.spin.load(Ordering::Acquire));
                    return;
                }
                // C-SNZI closed ⇒ a writer queued behind that node ⇒ the
                // tail changed; retry.
                backoff.backoff();
            }
        }
    }

    fn unlock_read(&mut self) {
        let (depart_from, ticket) = self.session.take().expect("unlock_read without read hold");
        self.core.reader_unlock(depart_from, ticket);
    }

    fn lock_write(&mut self) {
        debug_assert!(self.session.is_none() && !self.write_held);
        self.core.writer_lock(self.slot_idx(), false);
        self.write_held = true;
    }

    fn unlock_write(&mut self) {
        debug_assert!(self.write_held, "unlock_write without write hold");
        self.write_held = false;
        self.core.writer_unlock(self.slot_idx());
    }

    /// Non-blocking read attempt: succeeds if the queue is empty (we
    /// enqueue and immediately own) or the tail is an *active* reader node
    /// we can join without waiting.
    fn try_lock_read(&mut self) -> bool {
        debug_assert!(self.session.is_none() && !self.write_held);
        let core = self.core;
        let slot = self.slot_idx();
        let tail = core.load_tail();
        if tail.is_nil() {
            let r = core.alloc_reader_node(slot);
            let node = core.rnode(r);
            node.spin.store(false, Ordering::Relaxed);
            node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
            node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
            if core.cas_tail(NodeRef::NIL, NodeRef::reader(r)) {
                node.csnzi.open();
                let ticket = node.csnzi.arrive(&mut self.policy, slot);
                if ticket.arrived() {
                    self.session = Some((r, ticket));
                    return true;
                }
                // Writer overtook us between open and arrive; the node is
                // queued and the writer owns its recycling now.
                return false;
            }
            core.free_reader_node(r);
            false
        } else if tail.is_reader() {
            let node = core.rnode(tail.index());
            // Only join without waiting: the node's readers must already
            // be active.
            if node.spin.load(Ordering::Acquire) {
                return false;
            }
            let ticket = node.csnzi.arrive(&mut self.policy, slot);
            if !ticket.arrived() {
                return false;
            }
            // `spin` never goes back to true for an enqueued node, so the
            // acquisition is immediate.
            self.session = Some((tail.index(), ticket));
            true
        } else {
            false
        }
    }

    /// Non-blocking write attempt: succeeds only when the queue is empty.
    fn try_lock_write(&mut self) -> bool {
        debug_assert!(self.session.is_none() && !self.write_held);
        let core = self.core;
        let slot = self.slot_idx();
        let node = core.wnode(slot);
        node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
        node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
        if core.cas_tail(NodeRef::NIL, NodeRef::writer(slot)) {
            self.write_held = true;
            true
        } else {
            false
        }
    }
}

impl Drop for FollHandle<'_> {
    fn drop(&mut self) {
        debug_assert!(
            self.session.is_none() && !self.write_held,
            "FOLL handle dropped while holding the lock"
        );
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering as O};
    use std::sync::Arc;

    #[test]
    fn node_ref_packing() {
        assert!(NodeRef::NIL.is_nil());
        let r = NodeRef::reader(5);
        assert!(r.is_reader() && !r.is_nil());
        assert_eq!(r.index(), 5);
        let w = NodeRef::writer(5);
        assert!(!w.is_reader() && !w.is_nil());
        assert_eq!(w.index(), 5);
        assert_ne!(r, w);
    }

    #[test]
    fn uncontended_read_write() {
        let lock = FollLock::new(4);
        let mut h = lock.handle().unwrap();
        h.lock_read();
        h.unlock_read();
        // The reader node stays queued after the last departure — FOLL's
        // read-only steady state. A subsequent writer recycles it.
        assert!(!lock.is_queue_empty());
        h.lock_write();
        h.unlock_write();
        assert!(lock.is_queue_empty());
    }

    #[test]
    fn queue_drains_after_read() {
        let lock = FollLock::new(4);
        let mut h1 = lock.handle().unwrap();
        let mut h2 = lock.handle().unwrap();
        h1.lock_read();
        h2.lock_read(); // shares h1's node
        h1.unlock_read();
        h2.unlock_read();
        // The reader node stays queued (nothing closed it) — this is the
        // FOLL steady state for read-only workloads: one node, zero
        // surplus, open.
        assert!(!lock.is_queue_empty());
        // A writer can still get in promptly.
        h1.lock_write();
        h1.unlock_write();
        assert!(lock.is_queue_empty());
    }

    #[test]
    fn try_write_fails_while_read_held() {
        let lock = FollLock::new(2);
        let mut r = lock.handle().unwrap();
        let mut w = lock.handle().unwrap();
        r.lock_read();
        assert!(!w.try_lock_write());
        r.unlock_read();
        // The reader node is still queued, so conservative try_write still
        // fails; a full write lock works.
        w.lock_write();
        w.unlock_write();
        assert!(w.try_lock_write());
        w.unlock_write();
    }

    #[test]
    fn try_read_joins_active_readers() {
        let lock = FollLock::new(3);
        let mut r1 = lock.handle().unwrap();
        let mut r2 = lock.handle().unwrap();
        r1.lock_read();
        assert!(r2.try_lock_read());
        r1.unlock_read();
        r2.unlock_read();
    }

    #[test]
    fn try_read_fails_while_write_held() {
        let lock = FollLock::new(2);
        let mut w = lock.handle().unwrap();
        let mut r = lock.handle().unwrap();
        w.lock_write();
        assert!(!r.try_lock_read());
        w.unlock_write();
        assert!(r.try_lock_read());
        r.unlock_read();
    }

    #[test]
    fn writers_are_mutually_exclusive() {
        const THREADS: usize = 4;
        const ITERS: usize = 2_000;
        let lock = Arc::new(FollLock::new(THREADS));
        let counter = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                for _ in 0..ITERS {
                    h.lock_write();
                    assert_eq!(counter.fetch_add(1, O::SeqCst), 0);
                    counter.fetch_sub(1, O::SeqCst);
                    h.unlock_write();
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert!(lock.is_queue_empty());
    }

    #[test]
    fn mixed_readers_writers_exclusion_stress() {
        const THREADS: usize = 6;
        const ITERS: usize = 1_500;
        let lock = Arc::new(FollLock::new(THREADS));
        let state = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let lock = Arc::clone(&lock);
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                let mut rng = oll_util::XorShift64::for_thread(7, tid);
                for _ in 0..ITERS {
                    if rng.percent(70) {
                        h.lock_read();
                        assert!(state.fetch_add(1, O::SeqCst) >= 0);
                        state.fetch_sub(1, O::SeqCst);
                        h.unlock_read();
                    } else {
                        h.lock_write();
                        assert_eq!(state.swap(-1, O::SeqCst), 0);
                        state.store(0, O::SeqCst);
                        h.unlock_write();
                    }
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
    }

    #[test]
    fn read_only_workload_touches_tail_once() {
        // The headline claim of §4.2: after the first reader enqueues a
        // node, subsequent readers only arrive/depart the C-SNZI; the tail
        // word is never written again.
        let lock = FollLock::new(4);
        let mut h1 = lock.handle().unwrap();
        let mut h2 = lock.handle().unwrap();
        h1.lock_read();
        let tail_after_first = lock.core.tail.load(O::SeqCst);
        for _ in 0..100 {
            h2.lock_read();
            h2.unlock_read();
        }
        assert_eq!(lock.core.tail.load(O::SeqCst), tail_after_first);
        h1.unlock_read();
        assert_eq!(lock.core.tail.load(O::SeqCst), tail_after_first);
    }

    #[test]
    fn node_pool_invariants_under_churn() {
        const THREADS: usize = 4;
        const ITERS: usize = 3_000;
        let lock = Arc::new(FollLock::new(THREADS));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let lock = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                let mut rng = oll_util::XorShift64::for_thread(13, tid);
                for _ in 0..ITERS {
                    if rng.percent(50) {
                        h.lock_read();
                        h.unlock_read();
                    } else {
                        h.lock_write();
                        h.unlock_write();
                    }
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        // After quiescence at most one node may remain queued (a reader
        // node from a final read acquisition); all others must be FREE
        // with closed, empty C-SNZIs.
        let queued = lock.core.load_tail();
        let mut in_use = 0;
        for i in 0..THREADS {
            let n = lock.core.rnode(i);
            if n.in_use.load(O::SeqCst) {
                in_use += 1;
                assert!(queued.is_reader() && queued.index() == i);
            } else {
                assert!(!n.csnzi.query().open);
                assert!(!n.csnzi.query().nonzero);
            }
        }
        assert!(in_use <= 1);
    }

    #[test]
    #[should_panic(expected = "unlock_read without read hold")]
    fn unbalanced_unlock_panics() {
        let lock = FollLock::new(1);
        let mut h = lock.handle().unwrap();
        h.unlock_read();
    }
}
