//! The **FOLL** lock (§4.2, Figure 4 of the paper): a FIFO distributed
//! queue reader-writer lock extending the MCS mutex.
//!
//! Writers queue exactly as in the MCS mutex. Successive readers, however,
//! *share a single queue node* by arriving at that node's C-SNZI — so a
//! read-only workload never writes the tail pointer after the first
//! reader, eliminating the central point of contention that limits the
//! MCS-RW and KSUH locks.
//!
//! Reader nodes outlive individual acquisitions (many readers may still be
//! inside when the enqueuer leaves), so they are pool-allocated from a
//! ring of `capacity` nodes with a `FREE`/`IN_USE` flag (§4.2.1 proves one
//! node per thread suffices). We use indices into per-lock arrays instead
//! of raw pointers; besides being safe Rust, index+generation-free reuse
//! is exactly the ring discipline the paper's recycling argument assumes.

use crate::cohort::{CohortGate, CohortHold, CohortRelease, DEFAULT_COHORT_BATCH};
use crate::raw::{RwHandle, RwLockFamily};
use oll_csnzi::{ArrivalPolicy, CSnzi, CancelOutcome, LeafCursor, Ticket, TreeShape};
use oll_hazard::Hazard;
use oll_telemetry::{LockEvent, Telemetry, Timer};
use oll_util::backoff::{spin_until, Backoff, BackoffPolicy};
use oll_util::fault;
use oll_util::knobs::TuningKnobs;
use oll_util::slots::{SlotError, SlotGuard, SlotRegistry};
use oll_util::sync::{AtomicBool, AtomicU32, Ordering};
use oll_util::CachePadded;

/// Hand-off state of a queue node, generalizing Figure 4's boolean `spin`
/// flag so that timed acquisitions can *cancel* a wait.
///
/// The MCS-style hand-off gives each waiting node exactly one granter (its
/// queue predecessor, or the last departing reader of a closed reader
/// node). Cancellation races that grant; the node's state word is the
/// arbiter, with a single CAS deciding who is responsible for the node:
///
/// * granter CAS `WAITING → GRANTED` wins: the waiter (or its canceller)
///   owns the lock and must release it normally;
/// * canceller CAS `WAITING → ABANDONED` wins: the waiter is gone, and the
///   *granter* performs the release on its behalf when the grant arrives
///   ([`QueueCore::grant`] cascades over abandoned nodes).
///
/// Abandoned reader nodes are recycled by the granter (they are closed and
/// empty, exactly the pool invariant). Abandoned *writer* nodes belong to a
/// thread slot, so the granter cannot recycle them; it marks them
/// `RELEASED` and the owning handle reclaims the node before its next
/// writer-side operation.
pub mod node_state {
    /// The node's owner holds the lock (also the unqueued/initial state —
    /// Figure 4's `spin = false`).
    pub const GRANTED: u32 = 0;
    /// Waiting for the predecessor's grant (Figure 4's `spin = true`).
    pub const WAITING: u32 = 1;
    /// The waiter timed out and left; the granter releases on its behalf.
    pub const ABANDONED: u32 = 2;
    /// Writer nodes only: the granter finished the abandoned release and
    /// the owning handle may now reuse the node.
    pub const RELEASED: u32 = 3;
}
use node_state::{ABANDONED, GRANTED, RELEASED, WAITING};

/// Outcome of a timed write acquisition that did not get the lock.
pub(crate) enum WriteTimeout {
    /// The cancel undid everything; the writer node is immediately
    /// reusable.
    Clean,
    /// The node was left `ABANDONED` in the queue; the handle must
    /// [`QueueCore::reclaim_writer_node`] before the node's next use.
    Abandoned,
}

/// A packed reference to a queue node: `0` is null; otherwise bit 0 is the
/// node kind (1 = reader) and the remaining bits are `index + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct NodeRef(u32);

impl NodeRef {
    pub(crate) const NIL: Self = Self(0);

    pub(crate) fn reader(idx: usize) -> Self {
        Self((((idx as u32) + 1) << 1) | 1)
    }

    pub(crate) fn writer(idx: usize) -> Self {
        Self(((idx as u32) + 1) << 1)
    }

    pub(crate) fn is_nil(self) -> bool {
        self.0 == 0
    }

    pub(crate) fn is_reader(self) -> bool {
        !self.is_nil() && (self.0 & 1) == 1
    }

    pub(crate) fn index(self) -> usize {
        debug_assert!(!self.is_nil());
        ((self.0 >> 1) - 1) as usize
    }

    pub(crate) fn raw(self) -> u32 {
        self.0
    }

    pub(crate) fn from_raw(raw: u32) -> Self {
        Self(raw)
    }
}

/// A writer's queue node: the MCS node (`qNext`, hand-off `state`).
pub(crate) struct WriterNode {
    pub(crate) qnext: AtomicU32,
    pub(crate) state: AtomicU32,
    /// ROLL only: predecessor link for the backward search. Unused (but
    /// cheap) in FOLL.
    pub(crate) prev: AtomicU32,
}

impl WriterNode {
    fn new() -> Self {
        Self {
            qnext: AtomicU32::new(NodeRef::NIL.raw()),
            state: AtomicU32::new(GRANTED),
            prev: AtomicU32::new(NodeRef::NIL.raw()),
        }
    }
}

/// A reader queue node: MCS fields plus the shared C-SNZI and the pool
/// ring fields (`allocState`, `next`).
pub(crate) struct ReaderNode {
    pub(crate) csnzi: CSnzi,
    pub(crate) qnext: AtomicU32,
    pub(crate) state: AtomicU32,
    /// `true` = IN_USE, `false` = FREE.
    pub(crate) in_use: AtomicBool,
    /// Immutable ring successor for pool traversal.
    pub(crate) ring_next: usize,
    /// ROLL only: predecessor link.
    pub(crate) prev: AtomicU32,
}

/// How each pooled reader node materializes its C-SNZI tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TreeMode {
    /// Allocate the full tree up front (the paper's default).
    Eager,
    /// Defer allocation until the node's first tree arrival (§2.2).
    Lazy,
    /// Start root-only and let measured contention inflate (and quiet
    /// spells deflate) the tree at runtime.
    Adaptive,
}

impl ReaderNode {
    fn new(
        shape: TreeShape,
        ring_next: usize,
        mode: TreeMode,
        telemetry: Telemetry,
        knobs: std::sync::Arc<TuningKnobs>,
    ) -> Self {
        // "when just allocated, has a closed C-SNZI with no surplus"
        let mut csnzi = match mode {
            TreeMode::Eager => CSnzi::new_closed(shape),
            TreeMode::Lazy => CSnzi::new_closed_lazy(shape),
            // The configured shape caps the inflated tree; the adaptive
            // constructor shrinks it further to the detected parallelism.
            TreeMode::Adaptive => CSnzi::new_closed_adaptive(shape.leaf_count().max(1)),
        };
        csnzi.attach_telemetry(telemetry);
        csnzi.attach_knobs(knobs);
        Self {
            csnzi,
            qnext: AtomicU32::new(NodeRef::NIL.raw()),
            state: AtomicU32::new(GRANTED),
            in_use: AtomicBool::new(false),
            ring_next,
            prev: AtomicU32::new(NodeRef::NIL.raw()),
        }
    }
}

/// Shared queue state for FOLL and ROLL (ROLL reuses every piece and adds
/// the backward search).
pub(crate) struct QueueCore {
    pub(crate) tail: CachePadded<AtomicU32>,
    pub(crate) writer_nodes: Box<[CachePadded<WriterNode>]>,
    pub(crate) reader_nodes: Box<[CachePadded<ReaderNode>]>,
    pub(crate) slots: SlotRegistry,
    /// Live tuning knobs (backoff caps, cohort batch, C-SNZI deflation
    /// hysteresis); shared between the builder, every pooled node, and an
    /// optional online controller.
    pub(crate) knobs: std::sync::Arc<TuningKnobs>,
    pub(crate) arrival_threshold: u32,
    pub(crate) telemetry: Telemetry,
    pub(crate) hazard: Hazard,
    /// NUMA cohort writer gate (per-socket writer queues layered over
    /// this global queue); `None` = plain single-tail writer path.
    pub(crate) cohort: Option<Box<CohortGate>>,
}

impl QueueCore {
    pub(crate) fn new(
        capacity: usize,
        shape: TreeShape,
        knobs: std::sync::Arc<TuningKnobs>,
        arrival_threshold: u32,
        tree_mode: TreeMode,
        telemetry: Telemetry,
    ) -> Self {
        let capacity = capacity.max(1);
        let hazard = Hazard::new();
        hazard.attach_telemetry(&telemetry);
        Self {
            tail: CachePadded::new(AtomicU32::new(NodeRef::NIL.raw())),
            writer_nodes: (0..capacity)
                .map(|_| CachePadded::new(WriterNode::new()))
                .collect(),
            reader_nodes: (0..capacity)
                .map(|i| {
                    CachePadded::new(ReaderNode::new(
                        shape,
                        (i + 1) % capacity,
                        tree_mode,
                        telemetry.clone(),
                        knobs.clone(),
                    ))
                })
                .collect(),
            slots: SlotRegistry::new(capacity),
            knobs,
            arrival_threshold,
            telemetry,
            hazard,
            cohort: None,
        }
    }

    /// Backoff policy for a wait loop about to start, sampled once per
    /// episode from the live knobs (a steered cap applies from the next
    /// episode on — wait loops never re-read mid-spin).
    #[inline]
    pub(crate) fn backoff(&self) -> BackoffPolicy {
        self.knobs.backoff_policy()
    }

    /// Classifies a successful per-node C-SNZI arrival for telemetry.
    #[inline]
    pub(crate) fn note_arrival(&self, ticket: Ticket) {
        self.telemetry.incr(if ticket.is_root() {
            LockEvent::ArriveDirect
        } else {
            LockEvent::ArriveTree
        });
    }

    /// Counts a release hand-off by what the lock was handed to.
    #[inline]
    fn note_handoff(&self, succ: NodeRef) {
        self.telemetry.incr(if succ.is_reader() {
            LockEvent::HandoffToReaders
        } else {
            LockEvent::HandoffToWriter
        });
    }

    pub(crate) fn load_tail(&self) -> NodeRef {
        NodeRef::from_raw(self.tail.load(Ordering::Acquire))
    }

    pub(crate) fn cas_tail(&self, old: NodeRef, new: NodeRef) -> bool {
        self.tail
            .compare_exchange(old.raw(), new.raw(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    pub(crate) fn swap_tail(&self, new: NodeRef) -> NodeRef {
        NodeRef::from_raw(self.tail.swap(new.raw(), Ordering::AcqRel))
    }

    pub(crate) fn rnode(&self, idx: usize) -> &ReaderNode {
        &self.reader_nodes[idx]
    }

    pub(crate) fn wnode(&self, idx: usize) -> &WriterNode {
        &self.writer_nodes[idx]
    }

    pub(crate) fn set_qnext(&self, node: NodeRef, next: NodeRef) {
        let cell = if node.is_reader() {
            &self.rnode(node.index()).qnext
        } else {
            &self.wnode(node.index()).qnext
        };
        cell.store(next.raw(), Ordering::Release);
    }

    fn state_cell(&self, node: NodeRef) -> &AtomicU32 {
        if node.is_reader() {
            &self.rnode(node.index()).state
        } else {
            &self.wnode(node.index()).state
        }
    }

    /// Hands the lock to `node` (Figure 4's `spin := false`), cascading
    /// over abandoned waiters: if `node`'s owner cancelled its acquisition,
    /// the grant performs the release the owner would have performed —
    /// recycling an abandoned reader node and granting the writer linked
    /// behind it, or running an abandoned writer's `WriterUnlock` — and the
    /// cascade continues until the grant lands on a live waiter (or the
    /// queue empties).
    pub(crate) fn grant(&self, node: NodeRef) {
        let mut cur = node;
        loop {
            match self.state_cell(cur).compare_exchange(
                WAITING,
                GRANTED,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // The node reference is the trace causality token the
                    // waiter stamped on its `enqueued` marker; this joins
                    // the hand-off edge from our side.
                    self.telemetry.trace_granted(u64::from(cur.raw()));
                    return;
                }
                Err(observed) => {
                    debug_assert_eq!(observed, ABANDONED, "grant raced a non-cancel transition");
                    self.telemetry.incr(LockEvent::GrantCascade);
                    if cur.is_reader() {
                        // An abandoned reader node is closed and empty with
                        // the closing writer already linked behind it (both
                        // abandonment paths establish this before the
                        // ABANDONED store becomes visible). Recycle it and
                        // pass the lock on.
                        let n = self.rnode(cur.index());
                        debug_assert!(!n.csnzi.query().open && !n.csnzi.query().nonzero);
                        let succ = NodeRef::from_raw(n.qnext.load(Ordering::Acquire));
                        debug_assert!(
                            !succ.is_nil(),
                            "abandoned reader nodes always have a queued successor"
                        );
                        n.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                        self.free_reader_node(cur.index());
                        cur = succ;
                    } else {
                        // Release on the abandoned writer's behalf, then let
                        // its owner reclaim the node. `writer_unlock` grants
                        // the successor itself (cascading further if needed).
                        let slot = cur.index();
                        self.writer_unlock(slot);
                        self.wnode(slot).state.store(RELEASED, Ordering::Release);
                        return;
                    }
                }
            }
        }
    }

    /// Blocks until an abandoned writer node's takeover release finishes,
    /// then resets it for reuse. Must be called (once) before the node's
    /// next enqueue after a [`WriteTimeout::Abandoned`].
    pub(crate) fn reclaim_writer_node(&self, slot: usize) {
        let node = self.wnode(slot);
        spin_until(self.backoff(), || {
            node.state.load(Ordering::Acquire) == RELEASED
        });
        node.state.store(GRANTED, Ordering::Relaxed);
    }

    /// Cancels a read acquisition that is still waiting on `idx`'s grant
    /// (the timed reader's undo). On return the caller holds nothing and
    /// owes nothing; any hand-off obligation picked up in the race with a
    /// concurrent grant is discharged here.
    pub(crate) fn cancel_read_session(&self, idx: usize, ticket: Ticket) {
        self.telemetry.incr(LockEvent::Cancel);
        let node = self.rnode(idx);
        match node.csnzi.cancel(ticket) {
            CancelOutcome::Undone => {
                // Other readers remain arrived, or the node is simply back
                // to surplus zero. Either way it stays queued — reader
                // nodes outlive acquisitions by design, and a waiting
                // empty node is still joinable (ROLL) and recyclable by
                // the next writer.
            }
            CancelOutcome::MustHandOff => {
                // We were the last departer of a *closed* node: the
                // closing writer linked in behind and expects the lock.
                // If the node is still waiting, leave the obligation with
                // the future granter; if the grant already arrived, we own
                // the lock and release it exactly as `reader_unlock` does.
                fault::inject("foll.read.cancel-vs-grant");
                if node
                    .state
                    .compare_exchange(WAITING, ABANDONED, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    let succ = NodeRef::from_raw(node.qnext.load(Ordering::Acquire));
                    debug_assert!(!succ.is_nil(), "the closing writer linked in first");
                    self.grant(succ);
                    node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                    self.free_reader_node(idx);
                }
            }
        }
    }

    /// `AllocReaderNode` (Figure 4): claim a FREE node from the ring,
    /// starting at the thread's default node.
    pub(crate) fn alloc_reader_node(&self, slot: usize) -> usize {
        let mut idx = slot;
        let mut backoff = Backoff::with_policy(self.backoff());
        loop {
            let node = self.rnode(idx);
            if !node.in_use.load(Ordering::Relaxed)
                && node
                    .in_use
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                debug_assert!(!node.csnzi.query().open, "free nodes are always closed");
                debug_assert!(!node.csnzi.query().nonzero);
                return idx;
            }
            idx = node.ring_next;
            if idx == slot {
                // §4.2.1 proves a free node always exists with one node per
                // thread; a full wrap can only be transient contention.
                backoff.backoff();
            }
        }
    }

    /// `FreeReaderNode`: return a node to the pool. At most one thread
    /// frees a node before it is reallocated (§4.2.1), so a plain store
    /// suffices, exactly as in the paper.
    pub(crate) fn free_reader_node(&self, idx: usize) {
        let node = self.rnode(idx);
        debug_assert!(node.in_use.load(Ordering::Relaxed));
        debug_assert!(
            !node.csnzi.query().open && !node.csnzi.query().nonzero,
            "recycled nodes must have a closed, empty C-SNZI"
        );
        node.in_use.store(false, Ordering::Release);
    }

    /// The writer half of `WriterLock`, shared verbatim by FOLL and ROLL
    /// except for when the reader-predecessor's C-SNZI gets closed:
    /// FOLL closes immediately (`wait_for_active` = false); ROLL first
    /// waits for the predecessor's readers to become active, which is what
    /// lets later readers overtake us and join them (§4.3).
    pub(crate) fn writer_lock(&self, slot: usize, wait_for_active: bool) {
        let acquire = self.telemetry.begin_write();
        let me = NodeRef::writer(slot);
        let node = self.wnode(slot);
        node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
        node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
        let pred = self.swap_tail(me);
        if pred.is_nil() {
            self.telemetry.incr(LockEvent::WriteFast);
            self.telemetry.record_write_acquire(&acquire);
            return; // lock acquired
        }
        self.telemetry.incr(LockEvent::WriteSlow);
        // Set our state to WAITING *before* publishing the qNext link: our
        // predecessor finds us only through qNext, so it cannot grant us
        // before we start waiting.
        node.state.store(WAITING, Ordering::Relaxed);
        node.prev.store(pred.raw(), Ordering::Release);
        self.set_qnext(pred, me);
        fault::inject("foll.write.enqueued");
        if pred.is_reader() {
            let pnode = self.rnode(pred.index());
            // Node recycling: wait until the enqueuer has opened the
            // C-SNZI of this node incarnation (§4.2).
            spin_until(self.backoff(), || pnode.csnzi.query().open);
            if wait_for_active {
                // ROLL: let readers keep joining until the group holds the
                // lock. The predecessor reader node cannot be ABANDONED
                // here: its C-SNZI is still open, so no canceller ever saw
                // `MustHandOff` on it.
                self.telemetry.trace_enqueued(u64::from(pred.raw()));
                spin_until(self.backoff(), || {
                    pnode.state.load(Ordering::Acquire) == GRANTED
                });
            }
            if pnode.csnzi.close() {
                // No readers will signal us: the group is (or became)
                // empty. Wait for the lock to reach the predecessor node
                // through the queue, then take over and recycle it. (The
                // close saw surplus zero, so no arrived reader exists to
                // cancel and abandon the node — it can only be GRANTED.)
                fault::inject("foll.write.closed-empty");
                self.telemetry.trace_enqueued(u64::from(pred.raw()));
                spin_until(self.backoff(), || {
                    pnode.state.load(Ordering::Acquire) == GRANTED
                });
                self.free_reader_node(pred.index());
            } else {
                // The last departing reader will grant us.
                fault::inject("foll.write.waiting");
                self.telemetry.trace_enqueued(u64::from(me.raw()));
                spin_until(self.backoff(), || {
                    node.state.load(Ordering::Acquire) == GRANTED
                });
            }
        } else {
            fault::inject("foll.write.waiting");
            self.telemetry.trace_enqueued(u64::from(me.raw()));
            spin_until(self.backoff(), || {
                node.state.load(Ordering::Acquire) == GRANTED
            });
        }
        self.telemetry.record_write_acquire(&acquire);
    }

    /// Timed [`writer_lock`](Self::writer_lock): gives up at `deadline`,
    /// undoing the acquisition. Returns which undo path was taken — after
    /// [`WriteTimeout::Abandoned`] the slot's writer node is still in the
    /// queue and must be [reclaimed](Self::reclaim_writer_node) before its
    /// next use.
    #[cfg(not(loom))]
    pub(crate) fn writer_lock_deadline(
        &self,
        slot: usize,
        wait_for_active: bool,
        deadline: std::time::Instant,
    ) -> Result<(), WriteTimeout> {
        use oll_util::backoff::spin_until_deadline;

        let acquire = self.telemetry.begin_write();
        let me = NodeRef::writer(slot);
        let node = self.wnode(slot);
        node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
        node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
        let pred = self.swap_tail(me);
        if pred.is_nil() {
            self.telemetry.incr(LockEvent::WriteFast);
            self.telemetry.record_write_acquire(&acquire);
            return Ok(()); // lock acquired
        }
        self.telemetry.incr(LockEvent::WriteSlow);
        node.state.store(WAITING, Ordering::Relaxed);
        node.prev.store(pred.raw(), Ordering::Release);
        self.set_qnext(pred, me);
        fault::inject("foll.write.enqueued");
        if pred.is_reader() {
            let pnode = self.rnode(pred.index());
            // Untimed on purpose: the enqueuer opens the C-SNZI within a
            // few instructions of the CAS that made the node visible.
            spin_until(self.backoff(), || pnode.csnzi.query().open);
            if wait_for_active {
                // ROLL's courtesy wait; on timeout just close early — the
                // acquisition degrades to FOLL behaviour but stays correct.
                self.telemetry.trace_enqueued(u64::from(pred.raw()));
                spin_until_deadline(self.backoff(), deadline, || {
                    pnode.state.load(Ordering::Acquire) == GRANTED
                });
            }
            if pnode.csnzi.close() {
                fault::inject("foll.write.closed-empty");
                self.telemetry.trace_enqueued(u64::from(pred.raw()));
                if spin_until_deadline(self.backoff(), deadline, || {
                    pnode.state.load(Ordering::Acquire) == GRANTED
                }) {
                    self.free_reader_node(pred.index());
                    self.telemetry.record_write_acquire(&acquire);
                    return Ok(());
                }
                // Timed out waiting for the takeover. Abandon *our own*
                // node first — a plain store is enough, since our only
                // granter works through `pnode`, which is still WAITING —
                // then race the grant for `pnode`.
                node.state.store(ABANDONED, Ordering::Release);
                fault::inject("foll.write.abandon-pred");
                if pnode
                    .state
                    .compare_exchange(WAITING, ABANDONED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // `pnode`'s granter will recycle it and release on our
                    // behalf (cascade), ending in a RELEASED store.
                    Err(WriteTimeout::Abandoned)
                } else {
                    // The grant reached `pnode` first: the lock is ours
                    // (we closed its empty C-SNZI, so no reader signals
                    // us). Un-abandon — no granter can have seen the store,
                    // it would have had to go through `pnode` — and
                    // release normally.
                    node.state.store(GRANTED, Ordering::Relaxed);
                    self.free_reader_node(pred.index());
                    self.writer_unlock(slot);
                    Err(WriteTimeout::Clean)
                }
            } else {
                fault::inject("foll.write.waiting");
                self.telemetry.trace_enqueued(u64::from(me.raw()));
                if spin_until_deadline(self.backoff(), deadline, || {
                    node.state.load(Ordering::Acquire) == GRANTED
                }) {
                    self.telemetry.record_write_acquire(&acquire);
                    return Ok(());
                }
                self.cancel_writer_wait(slot)
            }
        } else {
            fault::inject("foll.write.waiting");
            self.telemetry.trace_enqueued(u64::from(me.raw()));
            if spin_until_deadline(self.backoff(), deadline, || {
                node.state.load(Ordering::Acquire) == GRANTED
            }) {
                self.telemetry.record_write_acquire(&acquire);
                return Ok(());
            }
            self.cancel_writer_wait(slot)
        }
    }

    /// Races the pending grant for our own writer node: either we abandon
    /// it (the granter releases on our behalf) or the grant already
    /// arrived and we release normally.
    #[cfg(not(loom))]
    fn cancel_writer_wait(&self, slot: usize) -> Result<(), WriteTimeout> {
        fault::inject("foll.write.abandon-self");
        if self
            .wnode(slot)
            .state
            .compare_exchange(WAITING, ABANDONED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            Err(WriteTimeout::Abandoned)
        } else {
            self.writer_unlock(slot);
            Err(WriteTimeout::Clean)
        }
    }

    /// `WriterUnlock` (Figure 4) — identical to the MCS mutex release.
    /// Returns whether the lock was handed to a queued successor (`false`
    /// = the queue emptied), which the cohort gate uses to classify the
    /// release as an outward hand-off.
    pub(crate) fn writer_unlock(&self, slot: usize) -> bool {
        let me = NodeRef::writer(slot);
        let node = self.wnode(slot);
        if NodeRef::from_raw(node.qnext.load(Ordering::Acquire)).is_nil() {
            if self.cas_tail(me, NodeRef::NIL) {
                return false;
            }
            // Someone is linking in behind us; wait for the link.
            spin_until(self.backoff(), || {
                !NodeRef::from_raw(node.qnext.load(Ordering::Acquire)).is_nil()
            });
        }
        let succ = NodeRef::from_raw(node.qnext.load(Ordering::Acquire));
        self.note_handoff(succ);
        self.grant(succ);
        node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed); // clean up
        true
    }

    /// `ReaderUnlock` (Figure 4), shared by FOLL and ROLL.
    pub(crate) fn reader_unlock(&self, depart_from: usize, ticket: Ticket) {
        let node = self.rnode(depart_from);
        if node.csnzi.depart(ticket) {
            return;
        }
        // Last departure from a closed C-SNZI: a writer closed it after
        // linking in behind this node, so qNext is already set; signal it
        // and recycle the node.
        let succ = NodeRef::from_raw(node.qnext.load(Ordering::Acquire));
        debug_assert!(!succ.is_nil(), "the closing writer linked in first");
        fault::inject("foll.read.handoff");
        self.note_handoff(succ);
        self.grant(succ);
        node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed); // clean up
        self.free_reader_node(depart_from);
    }
}

/// Builder for [`FollLock`].
#[derive(Debug, Clone)]
pub struct FollBuilder {
    capacity: usize,
    shape: Option<TreeShape>,
    backoff: BackoffPolicy,
    arrival_threshold: u32,
    lazy_tree: bool,
    adaptive: bool,
    #[cfg(not(loom))]
    biased: bool,
    cohort: bool,
    cohort_batch: u32,
    cohort_ranks: Option<usize>,
    telemetry_name: Option<String>,
    knobs: Option<std::sync::Arc<TuningKnobs>>,
}

impl FollBuilder {
    /// Starts a builder for a lock used by at most `capacity` concurrent
    /// threads.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            shape: None,
            backoff: BackoffPolicy::default(),
            arrival_threshold: ArrivalPolicy::DEFAULT_THRESHOLD,
            lazy_tree: false,
            adaptive: false,
            #[cfg(not(loom))]
            biased: false,
            cohort: false,
            cohort_batch: DEFAULT_COHORT_BATCH,
            cohort_ranks: None,
            telemetry_name: None,
            knobs: None,
        }
    }

    /// Shares `knobs` as the lock's live policy source. [`build`](Self::build)
    /// writes the builder's configured backoff and cohort-batch values into
    /// it, then every component (wait loops, cohort gate, adaptive C-SNZIs)
    /// reads from it — the hook an online controller uses to steer the lock
    /// while it runs. Without this call the lock gets a private block at the
    /// same defaults.
    pub fn tuning(mut self, knobs: std::sync::Arc<TuningKnobs>) -> Self {
        self.knobs = Some(knobs);
        self
    }

    /// Enables the NUMA cohort writer gate: each locality rank (socket)
    /// gets its own writer queue, and releases hand the lock to a
    /// same-socket waiter up to the [batch bound](Self::cohort_batch)
    /// before releasing through the global queue. On single-socket
    /// machines (or when topology detection falls back) every writer
    /// shares one cohort and behaviour degrades to the plain writer path.
    pub fn cohort(mut self, cohort: bool) -> Self {
        self.cohort = cohort;
        self
    }

    /// Sets the cohort batch bound: how many consecutive same-socket
    /// hand-offs one cohort tenure may perform before the release is
    /// forced through the global queue (default
    /// [`DEFAULT_COHORT_BATCH`](crate::cohort::DEFAULT_COHORT_BATCH)).
    /// Clamped to ≥ 1. No effect unless [`cohort`](Self::cohort) is on.
    pub fn cohort_batch(mut self, batch: u32) -> Self {
        self.cohort_batch = batch;
        self
    }

    /// Overrides the detected cohort (socket) count — for tests and
    /// pinned-thread deployments that partition writers explicitly. The
    /// default is `oll_util::topology::rank_count()`.
    pub fn cohort_ranks(mut self, ranks: usize) -> Self {
        self.cohort_ranks = Some(ranks);
        self
    }

    /// Enables BRAVO-style reader biasing for
    /// [`build_biased`](Self::build_biased): biased reads bypass the lock
    /// through the process-global visible-readers table (zero shared
    /// RMWs) until a writer revokes the bias.
    #[cfg(not(loom))]
    pub fn biased(mut self, biased: bool) -> Self {
        self.biased = biased;
        self
    }

    /// Builds the lock wrapped in the [`Bravo`](crate::Bravo) biasing
    /// layer. The wrapper passes straight through unless
    /// [`biased(true)`](Self::biased) was set, so one call site serves
    /// both configurations.
    #[cfg(not(loom))]
    pub fn build_biased(self) -> crate::Bravo<FollLock> {
        let biased = self.biased;
        let lock = self.build();
        // One knob block steers both layers: the wrapper's re-arm
        // multiplier and bias permission live next to the queue's knobs.
        let knobs = lock.knobs().clone();
        crate::Bravo::wrapping(lock, biased).tuning(knobs)
    }

    /// Names this lock's telemetry instance (default `"FOLL#<seq>"`).
    /// No effect unless built with the `telemetry` feature.
    pub fn telemetry_name(mut self, name: &str) -> Self {
        self.telemetry_name = Some(name.to_string());
        self
    }

    /// Defers each pooled reader node's C-SNZI tree allocation until the
    /// node first sees a tree arrival (§2.2's space optimization): a lock
    /// that never experiences read contention allocates no trees at all.
    pub fn lazy_tree(mut self, lazy: bool) -> Self {
        self.lazy_tree = lazy;
        self
    }

    /// Makes every pooled reader node's C-SNZI *adaptive*: arrivals start
    /// root-only and the tree inflates only once root CAS failures prove
    /// contention, deflating back after a quiet spell. Supersedes
    /// [`lazy_tree`](Self::lazy_tree); an explicit
    /// [`tree_shape`](Self::tree_shape) caps the inflated leaf count.
    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Overrides the per-node C-SNZI tree shape (default: one leaf per
    /// thread).
    pub fn tree_shape(mut self, shape: TreeShape) -> Self {
        self.shape = Some(shape);
        self
    }

    /// Overrides the busy-wait backoff tuning (§5.1 tunes this per lock).
    pub fn backoff(mut self, policy: BackoffPolicy) -> Self {
        self.backoff = policy;
        self
    }

    /// Sets the per-thread failed-CAS count before C-SNZI arrivals move to
    /// the tree.
    pub fn arrival_threshold(mut self, threshold: u32) -> Self {
        self.arrival_threshold = threshold;
        self
    }

    /// Builds the lock.
    pub fn build(self) -> FollLock {
        let capacity = self.capacity.max(1);
        let telemetry = Telemetry::register("FOLL");
        if let Some(name) = &self.telemetry_name {
            telemetry.rename(name);
        }
        let knobs = self.knobs.unwrap_or_else(TuningKnobs::shared);
        knobs.set_backoff_policy(self.backoff);
        knobs.set_cohort_batch(self.cohort_batch);
        let mut core = QueueCore::new(
            capacity,
            self.shape
                .unwrap_or_else(|| TreeShape::for_threads(capacity)),
            knobs,
            self.arrival_threshold,
            if self.adaptive {
                TreeMode::Adaptive
            } else if self.lazy_tree {
                TreeMode::Lazy
            } else {
                TreeMode::Eager
            },
            telemetry,
        );
        if self.cohort {
            let ranks = self
                .cohort_ranks
                .unwrap_or_else(oll_util::topology::rank_count);
            core.cohort = Some(Box::new(CohortGate::new(
                capacity,
                ranks,
                core.knobs.clone(),
            )));
        }
        FollLock { core }
    }
}

/// The FIFO OLL reader-writer lock (§4.2).
///
/// ```
/// use oll_core::{FollLock, RwHandle, RwLockFamily};
///
/// let lock = FollLock::new(4); // up to 4 concurrently registered threads
/// let mut me = lock.handle().unwrap();
/// {
///     let _shared = me.read();
/// }
/// {
///     let _exclusive = me.write();
/// }
/// ```
pub struct FollLock {
    core: QueueCore,
}

impl FollLock {
    /// Creates a lock for at most `capacity` concurrent threads.
    pub fn new(capacity: usize) -> Self {
        FollBuilder::new(capacity).build()
    }

    /// Starts a [`FollBuilder`].
    pub fn builder(capacity: usize) -> FollBuilder {
        FollBuilder::new(capacity)
    }

    /// Whether the queue is currently empty (racy; for diagnostics).
    pub fn is_queue_empty(&self) -> bool {
        self.core.load_tail().is_nil()
    }

    /// Whether this lock's reader-node C-SNZIs resize themselves at
    /// runtime (built with [`FollBuilder::adaptive`]).
    pub fn is_adaptive(&self) -> bool {
        self.core.reader_nodes[0].csnzi.is_adaptive()
    }

    /// Whether any pooled reader node's C-SNZI currently routes arrivals
    /// through its tree (racy; for diagnostics and tests).
    pub fn is_inflated(&self) -> bool {
        self.core.reader_nodes.iter().any(|n| n.csnzi.is_inflated())
    }

    /// Whether writers go through the NUMA cohort gate
    /// (built with [`FollBuilder::cohort`]).
    pub fn is_cohort(&self) -> bool {
        self.core.cohort.is_some()
    }

    /// Number of writer cohorts (0 when the cohort gate is off).
    pub fn cohort_count(&self) -> usize {
        self.core.cohort.as_ref().map_or(0, |g| g.cohorts())
    }

    /// The cohort batch bound (0 when the cohort gate is off).
    pub fn cohort_batch(&self) -> u32 {
        self.core.cohort.as_ref().map_or(0, |g| g.batch_limit())
    }

    /// The live tuning-knob block this lock reads (share it with a
    /// controller to steer the lock while it runs).
    pub fn knobs(&self) -> &std::sync::Arc<TuningKnobs> {
        &self.core.knobs
    }
}

impl RwLockFamily for FollLock {
    type Handle<'a> = FollHandle<'a>;

    fn handle(&self) -> Result<FollHandle<'_>, SlotError> {
        let slot = SlotGuard::claim(&self.core.slots)?;
        let policy = ArrivalPolicy::new(self.core.arrival_threshold);
        Ok(FollHandle {
            core: &self.core,
            slot,
            policy,
            cursor: LeafCursor::new(),
            session: None,
            write_held: false,
            pending_reclaim: false,
            cohort_hold: None,
            cohort_reclaim: false,
            cohort_pin: None,
            cohort_cache: None,
            hold: Timer::inactive(),
        })
    }

    fn capacity(&self) -> usize {
        self.core.slots.capacity()
    }

    fn name(&self) -> &'static str {
        "FOLL"
    }

    fn telemetry(&self) -> Telemetry {
        self.core.telemetry.clone()
    }

    fn hazard(&self) -> Hazard {
        self.core.hazard.clone()
    }

    fn tuning_knobs(&self) -> Option<&std::sync::Arc<TuningKnobs>> {
        Some(&self.core.knobs)
    }
}

/// Per-thread handle for [`FollLock`] (the paper's `Local` record).
pub struct FollHandle<'a> {
    core: &'a QueueCore,
    slot: SlotGuard<'a>,
    policy: ArrivalPolicy,
    /// Cached C-SNZI leaf: topology-placed on first tree arrival, then
    /// sticky until a leaf-level CAS failure migrates it. Reader nodes all
    /// share one tree shape, so the cursor carries across pooled nodes.
    cursor: LeafCursor,
    /// `(depart_from, ticket)` while holding for reading.
    session: Option<(usize, Ticket)>,
    write_held: bool,
    /// A timed write abandoned this slot's writer node in the queue; it
    /// must be reclaimed before the node's next use. Also set when a
    /// cohort release lends the node to a running batch.
    pending_reclaim: bool,
    /// Proof of the current cohort-gated write hold (cohort builds only).
    cohort_hold: Option<CohortHold>,
    /// A timed cohort write abandoned this slot's cohort node; it must be
    /// reclaimed before the node's next use.
    cohort_reclaim: bool,
    /// Explicit cohort override set via [`set_cohort`](Self::set_cohort).
    cohort_pin: Option<usize>,
    /// Resolved cohort index, cached on first writer use so the hot path
    /// skips the thread-local topology lookup. Any index is correct —
    /// a stale cache merely costs placement quality — so the cache is
    /// only invalidated by [`set_cohort`](Self::set_cohort).
    cohort_cache: Option<usize>,
    /// Started when an acquisition succeeds, recorded as hold time at
    /// release. One outstanding acquisition per handle, so one timer.
    hold: Timer,
}

impl FollHandle<'_> {
    fn slot_idx(&self) -> usize {
        self.slot.slot()
    }

    /// Finishes any pending reclaim of this slot's writer node (after a
    /// timed write abandoned it). Must run before every writer-node use.
    fn ensure_writer_node(&mut self) {
        if self.pending_reclaim {
            self.core.reclaim_writer_node(self.slot_idx());
            self.pending_reclaim = false;
        }
    }

    /// Finishes any pending reclaim of this slot's cohort node (after a
    /// timed cohort write abandoned it).
    fn ensure_cohort_node(&mut self) {
        if self.cohort_reclaim {
            self.core.cohort_reclaim_node(self.slot_idx());
            self.cohort_reclaim = false;
        }
    }

    /// Pins this handle's writer acquisitions to cohort `cohort` (modulo
    /// the lock's cohort count) instead of deriving the cohort from the
    /// calling thread's topology. For tests and explicitly-placed
    /// threads; no effect unless the lock was built with
    /// [`FollBuilder::cohort`].
    pub fn set_cohort(&mut self, cohort: usize) {
        self.cohort_pin = Some(cohort);
        self.cohort_cache = None;
    }

    /// The cohort this handle's writer acquisitions queue on, resolved
    /// once and cached (see `cohort_cache`).
    fn cohort_index(&mut self) -> usize {
        match self.cohort_cache {
            Some(c) => c,
            None => {
                let c = self.core.pick_cohort(self.cohort_pin);
                self.cohort_cache = Some(c);
                c
            }
        }
    }
}

impl RwHandle for FollHandle<'_> {
    fn hazard(&self) -> Hazard {
        self.core.hazard.clone()
    }

    /// `ReaderLock` (Figure 4).
    fn lock_read(&mut self) {
        debug_assert!(self.session.is_none() && !self.write_held);
        let core = self.core;
        let slot = self.slot_idx();
        let acquire = core.telemetry.begin_read();
        let mut rnode: Option<usize> = None;
        let mut backoff = Backoff::with_policy(core.backoff());
        loop {
            let tail = core.load_tail();
            if tail.is_nil() {
                // Empty queue: enqueue a reader node we immediately own.
                let r = rnode.take().unwrap_or_else(|| core.alloc_reader_node(slot));
                let node = core.rnode(r);
                node.state.store(GRANTED, Ordering::Relaxed);
                node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                if core.cas_tail(NodeRef::NIL, NodeRef::reader(r)) {
                    // Only now that the node is enqueued may its C-SNZI
                    // open (§4.2 explains why this ordering is vital).
                    node.csnzi.open();
                    let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
                    if ticket.arrived() {
                        core.note_arrival(ticket);
                        core.telemetry.incr(LockEvent::ReadFast);
                        core.telemetry.record_read_acquire(&acquire);
                        self.hold = core.telemetry.timer();
                        self.session = Some((r, ticket));
                        return;
                    }
                    // A writer already queued behind us and closed the
                    // C-SNZI; our node stays in the queue for it.
                    rnode = None;
                } else {
                    rnode = Some(r); // keep the allocation for the retry
                }
            } else if !tail.is_reader() {
                // Tail is a writer: enqueue a reader node behind it.
                let r = rnode.take().unwrap_or_else(|| core.alloc_reader_node(slot));
                let node = core.rnode(r);
                node.state.store(WAITING, Ordering::Relaxed);
                node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                if core.cas_tail(tail, NodeRef::reader(r)) {
                    node.prev.store(tail.raw(), Ordering::Release);
                    core.set_qnext(tail, NodeRef::reader(r));
                    node.csnzi.open();
                    let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
                    if ticket.arrived() {
                        core.note_arrival(ticket);
                        core.telemetry.incr(LockEvent::ReadSlow);
                        self.session = Some((r, ticket));
                        fault::inject("foll.read.waiting");
                        core.telemetry
                            .trace_enqueued(u64::from(NodeRef::reader(r).raw()));
                        spin_until(core.backoff(), || {
                            node.state.load(Ordering::Acquire) == GRANTED
                        });
                        core.telemetry.record_read_acquire(&acquire);
                        self.hold = core.telemetry.timer();
                        return;
                    }
                    rnode = None;
                } else {
                    rnode = Some(r);
                }
            } else {
                // Tail is a reader node: share it via its C-SNZI.
                let node = core.rnode(tail.index());
                let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
                if ticket.arrived() {
                    if let Some(n) = rnode.take() {
                        core.free_reader_node(n);
                    }
                    core.note_arrival(ticket);
                    // Joining a node whose readers are already active is a
                    // fast-path read (the spin below falls straight
                    // through); a still-waiting node means we queued. The
                    // classifying load is skipped entirely in
                    // telemetry-free builds.
                    if !Telemetry::enabled() || node.state.load(Ordering::Acquire) == GRANTED {
                        core.telemetry.incr(LockEvent::ReadFast);
                    } else {
                        core.telemetry.incr(LockEvent::ReadSlow);
                        core.telemetry.trace_enqueued(u64::from(tail.raw()));
                    }
                    self.session = Some((tail.index(), ticket));
                    fault::inject("foll.read.waiting");
                    spin_until(core.backoff(), || {
                        node.state.load(Ordering::Acquire) == GRANTED
                    });
                    core.telemetry.record_read_acquire(&acquire);
                    self.hold = core.telemetry.timer();
                    return;
                }
                // C-SNZI closed ⇒ a writer queued behind that node ⇒ the
                // tail changed; retry.
                backoff.backoff();
            }
        }
    }

    fn unlock_read(&mut self) {
        let (depart_from, ticket) = self.session.take().expect("unlock_read without read hold");
        self.core.telemetry.record_read_hold(&self.hold);
        self.core.reader_unlock(depart_from, ticket);
    }

    fn lock_write(&mut self) {
        debug_assert!(self.session.is_none() && !self.write_held);
        if self.core.cohort.is_some() {
            let cohort = self.cohort_index();
            if self.core.cohort_bypass_ready(cohort) {
                // Uncontended: the gate has nothing to batch, so skip it
                // and acquire like a plain writer. `cohort_hold` stays
                // `None`, making the release the plain `writer_unlock`.
                self.ensure_writer_node();
                self.core.writer_lock(self.slot_idx(), false);
            } else {
                self.ensure_cohort_node();
                let hold = self.core.cohort_lock(
                    self.slot_idx(),
                    cohort,
                    false,
                    &mut self.pending_reclaim,
                );
                self.cohort_hold = Some(hold);
            }
        } else {
            self.ensure_writer_node();
            self.core.writer_lock(self.slot_idx(), false);
        }
        self.hold = self.core.telemetry.timer();
        self.write_held = true;
    }

    fn unlock_write(&mut self) {
        debug_assert!(self.write_held, "unlock_write without write hold");
        self.write_held = false;
        self.core.telemetry.record_write_hold(&self.hold);
        let slot = self.slot_idx();
        match self.cohort_hold.take() {
            Some(hold) => {
                let outcome = self.core.cohort_release(slot, hold.cohort, Some(hold));
                if hold.owner_slot == slot {
                    // LocalHandoff: our global writer node stays in the
                    // queue, lent to the batch; reclaim before its next
                    // use. A global release through our own node means we
                    // discharged it ourselves — including a node lent out
                    // earlier whose batch circled back to us — so any
                    // pending reclaim is already satisfied.
                    self.pending_reclaim = outcome == CohortRelease::LocalHandoff;
                }
            }
            None => {
                self.core.writer_unlock(slot);
            }
        }
    }

    /// Non-blocking read attempt: succeeds if the queue is empty (we
    /// enqueue and immediately own) or the tail is an *active* reader node
    /// we can join without waiting.
    fn try_lock_read(&mut self) -> bool {
        debug_assert!(self.session.is_none() && !self.write_held);
        let core = self.core;
        let slot = self.slot_idx();
        let tail = core.load_tail();
        if tail.is_nil() {
            let r = core.alloc_reader_node(slot);
            let node = core.rnode(r);
            node.state.store(GRANTED, Ordering::Relaxed);
            node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
            node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
            if core.cas_tail(NodeRef::NIL, NodeRef::reader(r)) {
                node.csnzi.open();
                let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
                if ticket.arrived() {
                    core.note_arrival(ticket);
                    core.telemetry.incr(LockEvent::ReadFast);
                    self.hold = core.telemetry.timer();
                    self.session = Some((r, ticket));
                    return true;
                }
                // Writer overtook us between open and arrive; the node is
                // queued and the writer owns its recycling now.
                return false;
            }
            core.free_reader_node(r);
            false
        } else if tail.is_reader() {
            let node = core.rnode(tail.index());
            // Only join without waiting: the node's readers must already
            // be active.
            if node.state.load(Ordering::Acquire) != GRANTED {
                return false;
            }
            let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
            if !ticket.arrived() {
                return false;
            }
            // An enqueued node never leaves GRANTED, so the acquisition is
            // immediate.
            core.note_arrival(ticket);
            core.telemetry.incr(LockEvent::ReadFast);
            self.hold = core.telemetry.timer();
            self.session = Some((tail.index(), ticket));
            true
        } else {
            false
        }
    }

    /// Non-blocking write attempt: succeeds only when the queue is empty.
    fn try_lock_write(&mut self) -> bool {
        debug_assert!(self.session.is_none() && !self.write_held);
        self.ensure_writer_node();
        let core = self.core;
        let slot = self.slot_idx();
        let node = core.wnode(slot);
        node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
        node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
        if core.cas_tail(NodeRef::NIL, NodeRef::writer(slot)) {
            core.telemetry.incr(LockEvent::WriteFast);
            self.hold = core.telemetry.timer();
            self.write_held = true;
            true
        } else {
            false
        }
    }
}

#[cfg(not(loom))]
impl crate::raw::TimedHandle for FollHandle<'_> {
    /// `ReaderLock` with a deadline: identical to [`lock_read`] until a
    /// wait starts; a timed-out wait departs the C-SNZI (undoing the
    /// arrival) and discharges any hand-off obligation picked up in the
    /// race with the grant.
    ///
    /// [`lock_read`]: RwHandle::lock_read
    fn lock_read_deadline(
        &mut self,
        deadline: std::time::Instant,
    ) -> Result<(), crate::raw::TimedOut> {
        use oll_util::backoff::spin_until_deadline;

        debug_assert!(self.session.is_none() && !self.write_held);
        let core = self.core;
        let slot = self.slot_idx();
        let acquire = core.telemetry.begin_read();
        let mut rnode: Option<usize> = None;
        let mut backoff = Backoff::with_policy(core.backoff());
        loop {
            let tail = core.load_tail();
            if tail.is_nil() {
                let r = rnode.take().unwrap_or_else(|| core.alloc_reader_node(slot));
                let node = core.rnode(r);
                node.state.store(GRANTED, Ordering::Relaxed);
                node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                if core.cas_tail(NodeRef::NIL, NodeRef::reader(r)) {
                    node.csnzi.open();
                    let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
                    if ticket.arrived() {
                        // Empty-queue enqueue grants immediately — no wait,
                        // so nothing left to time out on.
                        core.note_arrival(ticket);
                        core.telemetry.incr(LockEvent::ReadFast);
                        core.telemetry.record_read_acquire(&acquire);
                        self.hold = core.telemetry.timer();
                        self.session = Some((r, ticket));
                        return Ok(());
                    }
                    rnode = None;
                } else {
                    rnode = Some(r);
                }
            } else if !tail.is_reader() {
                let r = rnode.take().unwrap_or_else(|| core.alloc_reader_node(slot));
                let node = core.rnode(r);
                node.state.store(WAITING, Ordering::Relaxed);
                node.qnext.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                node.prev.store(NodeRef::NIL.raw(), Ordering::Relaxed);
                if core.cas_tail(tail, NodeRef::reader(r)) {
                    node.prev.store(tail.raw(), Ordering::Release);
                    core.set_qnext(tail, NodeRef::reader(r));
                    node.csnzi.open();
                    let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
                    if ticket.arrived() {
                        core.note_arrival(ticket);
                        core.telemetry.incr(LockEvent::ReadSlow);
                        fault::inject("foll.read.waiting");
                        core.telemetry
                            .trace_enqueued(u64::from(NodeRef::reader(r).raw()));
                        if spin_until_deadline(core.backoff(), deadline, || {
                            node.state.load(Ordering::Acquire) == GRANTED
                        }) {
                            core.telemetry.record_read_acquire(&acquire);
                            self.hold = core.telemetry.timer();
                            self.session = Some((r, ticket));
                            return Ok(());
                        }
                        fault::inject("foll.read.timeout");
                        core.telemetry.incr(LockEvent::Timeout);
                        core.cancel_read_session(r, ticket);
                        return Err(crate::raw::TimedOut);
                    }
                    rnode = None;
                } else {
                    rnode = Some(r);
                }
            } else {
                let node = core.rnode(tail.index());
                let ticket = node.csnzi.arrive_cached(&mut self.policy, &mut self.cursor);
                if ticket.arrived() {
                    if let Some(n) = rnode.take() {
                        core.free_reader_node(n);
                    }
                    core.note_arrival(ticket);
                    // Same fast/slow classification as the untimed path;
                    // the extra load vanishes in telemetry-free builds.
                    if !Telemetry::enabled() || node.state.load(Ordering::Acquire) == GRANTED {
                        core.telemetry.incr(LockEvent::ReadFast);
                    } else {
                        core.telemetry.incr(LockEvent::ReadSlow);
                        core.telemetry.trace_enqueued(u64::from(tail.raw()));
                    }
                    fault::inject("foll.read.waiting");
                    if spin_until_deadline(core.backoff(), deadline, || {
                        node.state.load(Ordering::Acquire) == GRANTED
                    }) {
                        core.telemetry.record_read_acquire(&acquire);
                        self.hold = core.telemetry.timer();
                        self.session = Some((tail.index(), ticket));
                        return Ok(());
                    }
                    fault::inject("foll.read.timeout");
                    core.telemetry.incr(LockEvent::Timeout);
                    core.cancel_read_session(tail.index(), ticket);
                    return Err(crate::raw::TimedOut);
                }
                backoff.backoff();
            }
            if std::time::Instant::now() >= deadline {
                // Give up between attempts: nothing is enqueued or arrived
                // at this point, so only the spare allocation needs
                // returning.
                if let Some(n) = rnode.take() {
                    core.free_reader_node(n);
                }
                core.telemetry.incr(LockEvent::Timeout);
                return Err(crate::raw::TimedOut);
            }
        }
    }

    fn lock_write_deadline(
        &mut self,
        deadline: std::time::Instant,
    ) -> Result<(), crate::raw::TimedOut> {
        use crate::cohort::CohortTimeout;

        debug_assert!(self.session.is_none() && !self.write_held);
        // Uncontended cohort builds bypass the gate (see `lock_write`)
        // and fall through to the plain timed writer path below.
        let cohort = if self.core.cohort.is_some() {
            let c = self.cohort_index();
            if self.core.cohort_bypass_ready(c) {
                None
            } else {
                Some(c)
            }
        } else {
            None
        };
        if let Some(cohort) = cohort {
            self.ensure_cohort_node();
            return match self.core.cohort_lock_deadline(
                self.slot_idx(),
                cohort,
                false,
                deadline,
                &mut self.pending_reclaim,
            ) {
                Ok(hold) => {
                    self.cohort_hold = Some(hold);
                    self.hold = self.core.telemetry.timer();
                    self.write_held = true;
                    Ok(())
                }
                Err(CohortTimeout::Clean) => {
                    self.core.telemetry.incr(LockEvent::Timeout);
                    Err(crate::raw::TimedOut)
                }
                Err(CohortTimeout::WriterAbandoned) => {
                    self.core.telemetry.incr(LockEvent::Timeout);
                    self.core.telemetry.incr(LockEvent::Cancel);
                    self.pending_reclaim = true;
                    Err(crate::raw::TimedOut)
                }
                Err(CohortTimeout::CohortAbandoned) => {
                    self.core.telemetry.incr(LockEvent::Timeout);
                    self.core.telemetry.incr(LockEvent::Cancel);
                    self.cohort_reclaim = true;
                    Err(crate::raw::TimedOut)
                }
            };
        }
        self.ensure_writer_node();
        match self
            .core
            .writer_lock_deadline(self.slot_idx(), false, deadline)
        {
            Ok(()) => {
                self.hold = self.core.telemetry.timer();
                self.write_held = true;
                Ok(())
            }
            Err(WriteTimeout::Clean) => {
                self.core.telemetry.incr(LockEvent::Timeout);
                Err(crate::raw::TimedOut)
            }
            Err(WriteTimeout::Abandoned) => {
                self.core.telemetry.incr(LockEvent::Timeout);
                self.core.telemetry.incr(LockEvent::Cancel);
                self.pending_reclaim = true;
                Err(crate::raw::TimedOut)
            }
        }
    }
}

impl Drop for FollHandle<'_> {
    fn drop(&mut self) {
        debug_assert!(
            self.session.is_none() && !self.write_held,
            "FOLL handle dropped while holding the lock"
        );
        // The slot (and with it the writer node) is released on drop; make
        // sure no abandoned-release is still running against the node.
        self.ensure_writer_node();
        self.ensure_cohort_node();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering as O};
    use std::sync::Arc;

    #[test]
    fn node_ref_packing() {
        assert!(NodeRef::NIL.is_nil());
        let r = NodeRef::reader(5);
        assert!(r.is_reader() && !r.is_nil());
        assert_eq!(r.index(), 5);
        let w = NodeRef::writer(5);
        assert!(!w.is_reader() && !w.is_nil());
        assert_eq!(w.index(), 5);
        assert_ne!(r, w);
    }

    #[test]
    fn uncontended_read_write() {
        let lock = FollLock::new(4);
        let mut h = lock.handle().unwrap();
        h.lock_read();
        h.unlock_read();
        // The reader node stays queued after the last departure — FOLL's
        // read-only steady state. A subsequent writer recycles it.
        assert!(!lock.is_queue_empty());
        h.lock_write();
        h.unlock_write();
        assert!(lock.is_queue_empty());
    }

    #[test]
    fn queue_drains_after_read() {
        let lock = FollLock::new(4);
        let mut h1 = lock.handle().unwrap();
        let mut h2 = lock.handle().unwrap();
        h1.lock_read();
        h2.lock_read(); // shares h1's node
        h1.unlock_read();
        h2.unlock_read();
        // The reader node stays queued (nothing closed it) — this is the
        // FOLL steady state for read-only workloads: one node, zero
        // surplus, open.
        assert!(!lock.is_queue_empty());
        // A writer can still get in promptly.
        h1.lock_write();
        h1.unlock_write();
        assert!(lock.is_queue_empty());
    }

    #[test]
    fn try_write_fails_while_read_held() {
        let lock = FollLock::new(2);
        let mut r = lock.handle().unwrap();
        let mut w = lock.handle().unwrap();
        r.lock_read();
        assert!(!w.try_lock_write());
        r.unlock_read();
        // The reader node is still queued, so conservative try_write still
        // fails; a full write lock works.
        w.lock_write();
        w.unlock_write();
        assert!(w.try_lock_write());
        w.unlock_write();
    }

    #[test]
    fn try_read_joins_active_readers() {
        let lock = FollLock::new(3);
        let mut r1 = lock.handle().unwrap();
        let mut r2 = lock.handle().unwrap();
        r1.lock_read();
        assert!(r2.try_lock_read());
        r1.unlock_read();
        r2.unlock_read();
    }

    #[test]
    fn try_read_fails_while_write_held() {
        let lock = FollLock::new(2);
        let mut w = lock.handle().unwrap();
        let mut r = lock.handle().unwrap();
        w.lock_write();
        assert!(!r.try_lock_read());
        w.unlock_write();
        assert!(r.try_lock_read());
        r.unlock_read();
    }

    #[test]
    fn writers_are_mutually_exclusive() {
        const THREADS: usize = 4;
        const ITERS: usize = 2_000;
        let lock = Arc::new(FollLock::new(THREADS));
        let counter = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                for _ in 0..ITERS {
                    h.lock_write();
                    assert_eq!(counter.fetch_add(1, O::SeqCst), 0);
                    counter.fetch_sub(1, O::SeqCst);
                    h.unlock_write();
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert!(lock.is_queue_empty());
    }

    #[test]
    fn mixed_readers_writers_exclusion_stress() {
        const THREADS: usize = 6;
        const ITERS: usize = 1_500;
        let lock = Arc::new(FollLock::new(THREADS));
        let state = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let lock = Arc::clone(&lock);
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                let mut rng = oll_util::XorShift64::for_thread(7, tid);
                for _ in 0..ITERS {
                    if rng.percent(70) {
                        h.lock_read();
                        assert!(state.fetch_add(1, O::SeqCst) >= 0);
                        state.fetch_sub(1, O::SeqCst);
                        h.unlock_read();
                    } else {
                        h.lock_write();
                        assert_eq!(state.swap(-1, O::SeqCst), 0);
                        state.store(0, O::SeqCst);
                        h.unlock_write();
                    }
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
    }

    #[test]
    fn read_only_workload_touches_tail_once() {
        // The headline claim of §4.2: after the first reader enqueues a
        // node, subsequent readers only arrive/depart the C-SNZI; the tail
        // word is never written again.
        let lock = FollLock::new(4);
        let mut h1 = lock.handle().unwrap();
        let mut h2 = lock.handle().unwrap();
        h1.lock_read();
        let tail_after_first = lock.core.tail.load(O::SeqCst);
        for _ in 0..100 {
            h2.lock_read();
            h2.unlock_read();
        }
        assert_eq!(lock.core.tail.load(O::SeqCst), tail_after_first);
        h1.unlock_read();
        assert_eq!(lock.core.tail.load(O::SeqCst), tail_after_first);
    }

    #[test]
    fn node_pool_invariants_under_churn() {
        const THREADS: usize = 4;
        const ITERS: usize = 3_000;
        let lock = Arc::new(FollLock::new(THREADS));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let lock = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                let mut rng = oll_util::XorShift64::for_thread(13, tid);
                for _ in 0..ITERS {
                    if rng.percent(50) {
                        h.lock_read();
                        h.unlock_read();
                    } else {
                        h.lock_write();
                        h.unlock_write();
                    }
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        // After quiescence at most one node may remain queued (a reader
        // node from a final read acquisition); all others must be FREE
        // with closed, empty C-SNZIs.
        let queued = lock.core.load_tail();
        let mut in_use = 0;
        for i in 0..THREADS {
            let n = lock.core.rnode(i);
            if n.in_use.load(O::SeqCst) {
                in_use += 1;
                assert!(queued.is_reader() && queued.index() == i);
            } else {
                assert!(!n.csnzi.query().open);
                assert!(!n.csnzi.query().nonzero);
            }
        }
        assert!(in_use <= 1);
    }

    #[test]
    #[should_panic(expected = "unlock_read without read hold")]
    fn unbalanced_unlock_panics() {
        let lock = FollLock::new(1);
        let mut h = lock.handle().unwrap();
        h.unlock_read();
    }
}
