//! The common reader-writer-lock interface all locks in this workspace
//! implement.
//!
//! The design mirrors the paper's API shape: every algorithm has per-thread
//! `Local` state (default queue nodes, C-SNZI tickets, arrival policy), so
//! a thread first **registers** with a lock to obtain a handle ([`RwLockFamily::handle`]), and all
//! lock operations go through the handle. A handle supports one outstanding
//! acquisition at a time (exactly like the paper's `Local` record); the
//! RAII guards returned by [`RwHandle::read`] / [`RwHandle::write`] enforce
//! balanced lock/unlock pairs at compile time.

use oll_hazard::Hazard;
use oll_util::slots::SlotError;

/// A reader-writer lock whose per-thread state lives in a handle.
pub trait RwLockFamily: Send + Sync {
    /// The per-thread handle type.
    type Handle<'a>: RwHandle
    where
        Self: 'a;

    /// Registers the calling thread, claiming one of the lock's thread
    /// slots. Fails if more than `capacity` handles are live at once.
    fn handle(&self) -> Result<Self::Handle<'_>, SlotError>;

    /// Maximum number of concurrently registered threads.
    fn capacity(&self) -> usize;

    /// A short, stable name for harness output (e.g. `"FOLL"`).
    fn name(&self) -> &'static str;

    /// This lock's telemetry handle. Instrumented locks (GOLL, FOLL,
    /// ROLL, the Solaris-like baseline) return their live handle when
    /// built with the `telemetry` feature; the default is an inert
    /// handle, so uninstrumented baselines need no code.
    fn telemetry(&self) -> oll_telemetry::Telemetry {
        oll_telemetry::Telemetry::disabled()
    }

    /// This lock's hazard handle (panic poisoning, deadlock detection,
    /// starvation watchdog — see `oll-hazard`). Locks in this workspace
    /// return their live handle when built with the `hazard` feature;
    /// the default is an inert handle that records nothing.
    fn hazard(&self) -> Hazard {
        Hazard::disabled()
    }

    /// The live tuning-knob block this lock reads its policy values
    /// from, when it has one. The OLL locks (and the [`Bravo`] wrapper)
    /// return their shared [`TuningKnobs`]; baselines with no steerable
    /// policy keep the `None` default. `SelfTuning` uses this to steer a
    /// wrapped lock without separate plumbing.
    ///
    /// [`Bravo`]: crate::Bravo
    /// [`TuningKnobs`]: oll_util::knobs::TuningKnobs
    fn tuning_knobs(&self) -> Option<&std::sync::Arc<oll_util::knobs::TuningKnobs>> {
        None
    }
}

/// A registered thread's view of a reader-writer lock.
///
/// The raw `lock_*`/`unlock_*` methods exist for the benchmark harness
/// (which measures acquire/release pairs directly); application code should
/// prefer [`read`](Self::read) and [`write`](Self::write), whose guards
/// cannot be unbalanced.
///
/// # Contract
/// A handle has at most one outstanding acquisition. `unlock_read` must
/// follow `lock_read` (and similarly for writes) on the *same* handle;
/// implementations panic on misuse rather than corrupt the lock.
pub trait RwHandle {
    /// Acquires the lock for reading (shared).
    fn lock_read(&mut self);

    /// Releases a read acquisition.
    fn unlock_read(&mut self);

    /// Acquires the lock for writing (exclusive).
    fn lock_write(&mut self);

    /// Releases a write acquisition.
    fn unlock_write(&mut self);

    /// Attempts a read acquisition without waiting for conflicting
    /// holders. May fail spuriously under contention.
    fn try_lock_read(&mut self) -> bool;

    /// Attempts a write acquisition without waiting. May fail spuriously
    /// under contention.
    fn try_lock_write(&mut self) -> bool;

    /// The owning lock's hazard handle (same handle as
    /// [`RwLockFamily::hazard`]; inert by default). Guard construction
    /// and drop route their poison/ownership bookkeeping through it.
    fn hazard(&self) -> Hazard {
        Hazard::disabled()
    }

    /// Acquires for reading and returns a guard that releases on drop.
    fn read(&mut self) -> ReadGuard<'_, Self>
    where
        Self: Sized,
    {
        self.lock_read();
        ReadGuard::new(self)
    }

    /// Acquires for writing and returns a guard that releases on drop.
    fn write(&mut self) -> WriteGuard<'_, Self>
    where
        Self: Sized,
    {
        self.lock_write();
        WriteGuard::new(self)
    }

    /// Attempts a read acquisition, returning a guard on success.
    fn try_read(&mut self) -> Option<ReadGuard<'_, Self>>
    where
        Self: Sized,
    {
        if self.try_lock_read() {
            Some(ReadGuard::new(self))
        } else {
            None
        }
    }

    /// Attempts a write acquisition, returning a guard on success.
    fn try_write(&mut self) -> Option<WriteGuard<'_, Self>>
    where
        Self: Sized,
    {
        if self.try_lock_write() {
            Some(WriteGuard::new(self))
        } else {
            None
        }
    }

    /// Like [`read`](Self::read), but reports whether a previous write
    /// holder panicked (with a [`PoisonPolicy::Poison`] policy armed —
    /// see `oll-hazard`). The lock *is* acquired either way; the `Err`
    /// arm carries the guard so the caller can inspect the protected
    /// state and [`Hazard::clear_poison`] after restoring invariants.
    /// Without the `hazard` feature this is exactly `Ok(self.read())`.
    ///
    /// [`PoisonPolicy::Poison`]: oll_hazard::PoisonPolicy::Poison
    /// [`Hazard::clear_poison`]: oll_hazard::Hazard::clear_poison
    fn read_checked(&mut self) -> Result<ReadGuard<'_, Self>, PoisonError<ReadGuard<'_, Self>>>
    where
        Self: Sized,
    {
        let guard = self.read();
        if guard.handle.hazard().is_poisoned() {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    /// Like [`write`](Self::write), but reports poisoning; see
    /// [`read_checked`](Self::read_checked).
    fn write_checked(&mut self) -> Result<WriteGuard<'_, Self>, PoisonError<WriteGuard<'_, Self>>>
    where
        Self: Sized,
    {
        let guard = self.write();
        if guard.handle.hazard().is_poisoned() {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }
}

/// The lock was acquired, but a previous write holder panicked inside
/// its critical section (under a `Poison` policy) and nobody has called
/// `clear_poison` yet. Carries the guard: acquisition succeeded and the
/// caller decides whether the protected state is salvageable — the same
/// shape as [`std::sync::PoisonError`].
pub struct PoisonError<G> {
    guard: G,
}

impl<G> PoisonError<G> {
    /// Wraps a guard acquired on a poisoned lock.
    pub fn new(guard: G) -> Self {
        Self { guard }
    }

    /// Consumes the error, yielding the guard it carries.
    pub fn into_inner(self) -> G {
        self.guard
    }

    /// The guard, by shared reference.
    pub fn get_ref(&self) -> &G {
        &self.guard
    }

    /// The guard, by exclusive reference.
    pub fn get_mut(&mut self) -> &mut G {
        &mut self.guard
    }
}

impl<G> core::fmt::Debug for PoisonError<G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PoisonError").finish_non_exhaustive()
    }
}

impl<G> core::fmt::Display for PoisonError<G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("lock poisoned: a write holder panicked in its critical section")
    }
}

impl<G> std::error::Error for PoisonError<G> {}

/// A timed acquisition gave up: the deadline passed before the lock could
/// be acquired. The acquisition was fully undone — no ticket, queue node,
/// or waiter registration is left behind, and the handle may immediately
/// retry or acquire in the other mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOut;

impl core::fmt::Display for TimedOut {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("lock acquisition timed out")
    }
}

impl std::error::Error for TimedOut {}

/// Timed, cancellable acquisition.
///
/// A deadline acquisition either succeeds (having the same effect as the
/// untimed `lock_*`) or returns `Err(TimedOut)` having *no* effect: the
/// implementation must undo any partial arrival — depart the C-SNZI or
/// un-arrive a direct-count ticket, excise its node from the wait queue
/// without breaking the hand-off chain — before reporting the timeout.
///
/// Best-effort timing: if the lock becomes available the acquisition may
/// succeed even after the deadline (a success is never converted to a
/// timeout once the thread has been granted ownership — lock hand-off is
/// irrevocable, so the grant must be kept or released, and keeping it is
/// both cheaper and what callers expect from, e.g., `pthread`'s timed
/// locks).
///
/// Unavailable under loom (wall-clock time has no meaning in a model
/// checker); the timed paths are exercised by the fault-injection suites.
#[cfg(not(loom))]
pub trait TimedHandle: RwHandle {
    /// Acquires for reading (shared), giving up at `deadline`.
    fn lock_read_deadline(&mut self, deadline: std::time::Instant) -> Result<(), TimedOut>;

    /// Acquires for writing (exclusive), giving up at `deadline`.
    fn lock_write_deadline(&mut self, deadline: std::time::Instant) -> Result<(), TimedOut>;

    /// Acquires for reading with a relative timeout.
    fn lock_read_timeout(&mut self, timeout: std::time::Duration) -> Result<(), TimedOut> {
        let deadline = std::time::Instant::now() + timeout;
        self.lock_read_deadline(deadline)
    }

    /// Acquires for writing with a relative timeout.
    fn lock_write_timeout(&mut self, timeout: std::time::Duration) -> Result<(), TimedOut> {
        let deadline = std::time::Instant::now() + timeout;
        self.lock_write_deadline(deadline)
    }

    /// Deadline-bounded read acquisition returning a guard.
    fn read_deadline(
        &mut self,
        deadline: std::time::Instant,
    ) -> Result<ReadGuard<'_, Self>, TimedOut>
    where
        Self: Sized,
    {
        self.lock_read_deadline(deadline)?;
        Ok(ReadGuard::new(self))
    }

    /// Deadline-bounded write acquisition returning a guard.
    fn write_deadline(
        &mut self,
        deadline: std::time::Instant,
    ) -> Result<WriteGuard<'_, Self>, TimedOut>
    where
        Self: Sized,
    {
        self.lock_write_deadline(deadline)?;
        Ok(WriteGuard::new(self))
    }

    /// Timeout-bounded read acquisition returning a guard.
    fn read_timeout(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<ReadGuard<'_, Self>, TimedOut>
    where
        Self: Sized,
    {
        self.read_deadline(std::time::Instant::now() + timeout)
    }

    /// Timeout-bounded write acquisition returning a guard.
    fn write_timeout(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<WriteGuard<'_, Self>, TimedOut>
    where
        Self: Sized,
    {
        self.write_deadline(std::time::Instant::now() + timeout)
    }
}

/// Write-upgrade support (§3.2.1 of the paper). Implemented by locks that
/// can atomically convert a *sole* read hold into a write hold.
pub trait UpgradableHandle: RwHandle {
    /// Attempts to upgrade the current read acquisition to a write
    /// acquisition. Returns `true` on success. On failure the thread
    /// *keeps holding the lock for reading* (the paper's semantics).
    ///
    /// Must only be called while this handle holds a read acquisition.
    fn try_upgrade(&mut self) -> bool;

    /// Converts the current write acquisition into a read acquisition
    /// without releasing the lock in between.
    ///
    /// Must only be called while this handle holds a write acquisition.
    fn downgrade(&mut self);
}

/// RAII guard for a read acquisition.
#[must_use = "the lock is released as soon as the guard is dropped"]
pub struct ReadGuard<'h, H: RwHandle> {
    handle: &'h mut H,
}

impl<'h, H: RwHandle> ReadGuard<'h, H> {
    /// Wraps an already-acquired read hold, recording the acquisition
    /// with the lock's hazard handle.
    pub(crate) fn new(handle: &'h mut H) -> Self {
        handle.hazard().on_guard_acquire(false);
        ReadGuard { handle }
    }
}

impl<H: RwHandle> Drop for ReadGuard<'_, H> {
    fn drop(&mut self) {
        // Hazard bookkeeping runs *before* the release: a panicking
        // holder's poison mark must be visible to the waiters the
        // unlock wakes.
        self.handle.hazard().on_guard_drop(false);
        self.handle.unlock_read();
    }
}

/// RAII guard for a write acquisition.
#[must_use = "the lock is released as soon as the guard is dropped"]
pub struct WriteGuard<'h, H: RwHandle> {
    handle: &'h mut H,
}

impl<'h, H: RwHandle> WriteGuard<'h, H> {
    /// Wraps an already-acquired write hold, recording the acquisition
    /// with the lock's hazard handle.
    pub(crate) fn new(handle: &'h mut H) -> Self {
        handle.hazard().on_guard_acquire(true);
        WriteGuard { handle }
    }
}

impl<H: RwHandle> Drop for WriteGuard<'_, H> {
    fn drop(&mut self) {
        // Poison (policy permitting) before the unlock hands the lock
        // to the next waiter — see ReadGuard::drop.
        self.handle.hazard().on_guard_drop(true);
        self.handle.unlock_write();
    }
}

impl<'h, H: UpgradableHandle> WriteGuard<'h, H> {
    /// Downgrades this write guard to a read guard without unlocking.
    pub fn downgrade(self) -> ReadGuard<'h, H> {
        // Move the handle out without running our drop (which would
        // unlock_write).
        let this = core::mem::ManuallyDrop::new(self);
        // SAFETY: `this` is never used again and its Drop is suppressed.
        let handle: &'h mut H = unsafe { core::ptr::read(&this.handle) };
        // For the hazard layer a downgrade is a write release plus a
        // read acquisition that never lets the lock go in between.
        handle.hazard().on_guard_drop(true);
        handle.downgrade();
        ReadGuard::new(handle)
    }
}

impl<'h, H: UpgradableHandle> ReadGuard<'h, H> {
    /// Attempts to upgrade this read guard to a write guard. On failure
    /// the read guard is returned unchanged (the lock stays read-held).
    pub fn try_upgrade(self) -> Result<WriteGuard<'h, H>, Self> {
        let mut this = core::mem::ManuallyDrop::new(self);
        if this.handle.try_upgrade() {
            // SAFETY: `this` is never used again and its Drop is suppressed.
            let handle: &'h mut H = unsafe { core::ptr::read(&this.handle) };
            // Mirror of WriteGuard::downgrade: read release + write
            // acquisition, atomically from the lock's point of view.
            handle.hazard().on_guard_drop(false);
            Ok(WriteGuard::new(handle))
        } else {
            // SAFETY: as above; we rebuild the read guard without
            // re-running the acquisition hook (the hold is unchanged).
            let handle: &'h mut H = unsafe { core::ptr::read(&this.handle) };
            Err(ReadGuard { handle })
        }
    }
}
