//! The common reader-writer-lock interface all locks in this workspace
//! implement.
//!
//! The design mirrors the paper's API shape: every algorithm has per-thread
//! `Local` state (default queue nodes, C-SNZI tickets, arrival policy), so
//! a thread first **registers** with a lock to obtain a handle ([`RwLockFamily::handle`]), and all
//! lock operations go through the handle. A handle supports one outstanding
//! acquisition at a time (exactly like the paper's `Local` record); the
//! RAII guards returned by [`RwHandle::read`] / [`RwHandle::write`] enforce
//! balanced lock/unlock pairs at compile time.

use oll_util::slots::SlotError;

/// A reader-writer lock whose per-thread state lives in a handle.
pub trait RwLockFamily: Send + Sync {
    /// The per-thread handle type.
    type Handle<'a>: RwHandle
    where
        Self: 'a;

    /// Registers the calling thread, claiming one of the lock's thread
    /// slots. Fails if more than `capacity` handles are live at once.
    fn handle(&self) -> Result<Self::Handle<'_>, SlotError>;

    /// Maximum number of concurrently registered threads.
    fn capacity(&self) -> usize;

    /// A short, stable name for harness output (e.g. `"FOLL"`).
    fn name(&self) -> &'static str;
}

/// A registered thread's view of a reader-writer lock.
///
/// The raw `lock_*`/`unlock_*` methods exist for the benchmark harness
/// (which measures acquire/release pairs directly); application code should
/// prefer [`read`](Self::read) and [`write`](Self::write), whose guards
/// cannot be unbalanced.
///
/// # Contract
/// A handle has at most one outstanding acquisition. `unlock_read` must
/// follow `lock_read` (and similarly for writes) on the *same* handle;
/// implementations panic on misuse rather than corrupt the lock.
pub trait RwHandle {
    /// Acquires the lock for reading (shared).
    fn lock_read(&mut self);

    /// Releases a read acquisition.
    fn unlock_read(&mut self);

    /// Acquires the lock for writing (exclusive).
    fn lock_write(&mut self);

    /// Releases a write acquisition.
    fn unlock_write(&mut self);

    /// Attempts a read acquisition without waiting for conflicting
    /// holders. May fail spuriously under contention.
    fn try_lock_read(&mut self) -> bool;

    /// Attempts a write acquisition without waiting. May fail spuriously
    /// under contention.
    fn try_lock_write(&mut self) -> bool;

    /// Acquires for reading and returns a guard that releases on drop.
    fn read(&mut self) -> ReadGuard<'_, Self>
    where
        Self: Sized,
    {
        self.lock_read();
        ReadGuard { handle: self }
    }

    /// Acquires for writing and returns a guard that releases on drop.
    fn write(&mut self) -> WriteGuard<'_, Self>
    where
        Self: Sized,
    {
        self.lock_write();
        WriteGuard { handle: self }
    }

    /// Attempts a read acquisition, returning a guard on success.
    fn try_read(&mut self) -> Option<ReadGuard<'_, Self>>
    where
        Self: Sized,
    {
        if self.try_lock_read() {
            Some(ReadGuard { handle: self })
        } else {
            None
        }
    }

    /// Attempts a write acquisition, returning a guard on success.
    fn try_write(&mut self) -> Option<WriteGuard<'_, Self>>
    where
        Self: Sized,
    {
        if self.try_lock_write() {
            Some(WriteGuard { handle: self })
        } else {
            None
        }
    }
}

/// Write-upgrade support (§3.2.1 of the paper). Implemented by locks that
/// can atomically convert a *sole* read hold into a write hold.
pub trait UpgradableHandle: RwHandle {
    /// Attempts to upgrade the current read acquisition to a write
    /// acquisition. Returns `true` on success. On failure the thread
    /// *keeps holding the lock for reading* (the paper's semantics).
    ///
    /// Must only be called while this handle holds a read acquisition.
    fn try_upgrade(&mut self) -> bool;

    /// Converts the current write acquisition into a read acquisition
    /// without releasing the lock in between.
    ///
    /// Must only be called while this handle holds a write acquisition.
    fn downgrade(&mut self);
}

/// RAII guard for a read acquisition.
#[must_use = "the lock is released as soon as the guard is dropped"]
pub struct ReadGuard<'h, H: RwHandle> {
    handle: &'h mut H,
}

impl<H: RwHandle> Drop for ReadGuard<'_, H> {
    fn drop(&mut self) {
        self.handle.unlock_read();
    }
}

/// RAII guard for a write acquisition.
#[must_use = "the lock is released as soon as the guard is dropped"]
pub struct WriteGuard<'h, H: RwHandle> {
    handle: &'h mut H,
}

impl<H: RwHandle> Drop for WriteGuard<'_, H> {
    fn drop(&mut self) {
        self.handle.unlock_write();
    }
}

impl<'h, H: UpgradableHandle> WriteGuard<'h, H> {
    /// Downgrades this write guard to a read guard without unlocking.
    pub fn downgrade(self) -> ReadGuard<'h, H> {
        // Move the handle out without running our drop (which would
        // unlock_write).
        let this = core::mem::ManuallyDrop::new(self);
        // SAFETY: `this` is never used again and its Drop is suppressed.
        let handle: &'h mut H = unsafe { core::ptr::read(&this.handle) };
        handle.downgrade();
        ReadGuard { handle }
    }
}

impl<'h, H: UpgradableHandle> ReadGuard<'h, H> {
    /// Attempts to upgrade this read guard to a write guard. On failure
    /// the read guard is returned unchanged (the lock stays read-held).
    pub fn try_upgrade(self) -> Result<WriteGuard<'h, H>, Self> {
        let mut this = core::mem::ManuallyDrop::new(self);
        if this.handle.try_upgrade() {
            // SAFETY: `this` is never used again and its Drop is suppressed.
            let handle: &'h mut H = unsafe { core::ptr::read(&this.handle) };
            Ok(WriteGuard { handle })
        } else {
            // SAFETY: as above; we rebuild the read guard.
            let handle: &'h mut H = unsafe { core::ptr::read(&this.handle) };
            Err(ReadGuard { handle })
        }
    }
}
