//! The decision policy for [`SelfTuning`](super::SelfTuning): classify
//! one completed sampling window into a contention *regime*, and map each
//! regime to a coherent set of [`TuningKnobs`] values.
//!
//! The policy is deliberately a small decision table, not an optimizer:
//! every regime's knob set is a configuration a human would have picked
//! by hand for that workload (the fig. 5 sweeps are exactly these
//! hand-picked points), so the controller can never steer the lock
//! anywhere the static builds have not already been measured. What the
//! controller adds is *selection* — moving between those known-good
//! points as the observed read/write mix and revocation cost change.

use oll_util::backoff::BackoffPolicy;
use oll_util::knobs::{
    TuningKnobs, DEFAULT_COHORT_BATCH, DEFAULT_DEFLATE_AFTER, DEFAULT_REARM_MULTIPLIER,
};

/// The contention regime a sampling window is classified into.
///
/// Discriminants are stable (they are packed into the `tuner_flip` trace
/// token as `old << 8 | new`) — append, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Regime {
    /// Reads dominate and writers are rare: bias aggressively toward the
    /// zero-RMW read path and let C-SNZI trees stay inflated longer.
    ReadHeavy = 0,
    /// No clear winner: the documented default knob values (the regime
    /// every lock starts in).
    Mixed = 1,
    /// Writers are frequent (or bias revocations are thrashing): disarm
    /// reader bias, deflate C-SNZIs quickly, batch cohort hand-offs
    /// harder, and spin longer before yielding (writer critical sections
    /// hand over quickly).
    WriteHeavy = 2,
}

impl Regime {
    /// All regimes, in discriminant order.
    pub const ALL: [Regime; 3] = [Regime::ReadHeavy, Regime::Mixed, Regime::WriteHeavy];

    /// Recovers a regime from its stable discriminant (unknown values
    /// decode as [`Mixed`](Regime::Mixed) — the do-nothing regime).
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => Regime::ReadHeavy,
            2 => Regime::WriteHeavy,
            _ => Regime::Mixed,
        }
    }

    /// Stable snake_case name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Regime::ReadHeavy => "read_heavy",
            Regime::Mixed => "mixed",
            Regime::WriteHeavy => "write_heavy",
        }
    }
}

/// What one completed sampling window observed — deltas since the
/// previous window, never absolute totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Read acquisitions (fast + slow) attributed to the window.
    pub reads: u64,
    /// Write acquisitions (fast + slow) attributed to the window.
    pub writes: u64,
    /// Slow-path entries among those acquisitions (the sampling clock:
    /// a window closes after `TuningConfig::window` of these).
    pub slow: u64,
    /// BRAVO bias revocations (telemetry builds; 0 otherwise).
    pub revocations: u64,
    /// C-SNZI root CAS failures (telemetry builds; 0 otherwise) — the
    /// root-contention signal that the adaptive trees are under-inflated.
    pub root_cas_fails: u64,
}

impl WindowStats {
    /// Total acquisitions in the window.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Classification thresholds. Defaults follow the paper's workload
/// taxonomy: fig. 5's read-mostly panels are ≥ 90% reads, and reader
/// bias stops paying for itself well before writes reach a third of the
/// mix (BRAVO's own break-even analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyConfig {
    /// A window is [`ReadHeavy`](Regime::ReadHeavy) when reads make up
    /// at least this percentage of acquisitions (default 90).
    pub read_heavy_pct: u32,
    /// A window is [`WriteHeavy`](Regime::WriteHeavy) when writes make
    /// up at least this percentage of acquisitions (default 30).
    pub write_heavy_pct: u32,
    /// A window with more bias revocations than this is
    /// [`WriteHeavy`](Regime::WriteHeavy) regardless of the mix: each
    /// revocation is a full reader-table scan, so a thrashing bias costs
    /// more than it saves even at high read fractions (default 8).
    pub revocation_limit: u64,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            read_heavy_pct: 90,
            write_heavy_pct: 30,
            revocation_limit: 8,
        }
    }
}

/// [`Regime::ReadHeavy`]'s deflation hysteresis: keep C-SNZI trees
/// inflated 4× longer than the default — quiet spells between reader
/// bursts should not collapse the tree readers are about to need.
pub const READ_HEAVY_DEFLATE_AFTER: u32 = 256;

/// [`Regime::WriteHeavy`]'s deflation hysteresis: collapse quickly —
/// every tree level a departing reader walks delays the waiting writer.
pub const WRITE_HEAVY_DEFLATE_AFTER: u32 = 16;

/// [`Regime::WriteHeavy`]'s cohort batch bound: double the default
/// same-socket hand-off budget, trading short-term remote fairness for
/// cache-resident writer throughput while writers dominate anyway.
pub const WRITE_HEAVY_COHORT_BATCH: u32 = 128;

/// [`Regime::WriteHeavy`]'s backoff: spin past the default cap before
/// yielding (writer hand-offs are quick, a yield quantum is not).
pub const WRITE_HEAVY_BACKOFF: BackoffPolicy = BackoffPolicy {
    spin_limit: 8,
    yield_limit: 12,
};

/// Classifies one window. Empty windows (an explicit
/// [`tick`](super::SelfTuning::tick) on an idle lock) are
/// [`Mixed`](Regime::Mixed): no evidence, no steering.
pub fn classify(stats: &WindowStats, cfg: &PolicyConfig) -> Regime {
    let total = stats.total();
    if total == 0 {
        return Regime::Mixed;
    }
    if stats.revocations > cfg.revocation_limit {
        return Regime::WriteHeavy;
    }
    if stats.writes * 100 >= total * u64::from(cfg.write_heavy_pct) {
        Regime::WriteHeavy
    } else if stats.reads * 100 >= total * u64::from(cfg.read_heavy_pct) {
        Regime::ReadHeavy
    } else {
        Regime::Mixed
    }
}

/// Writes `regime`'s knob set into `knobs` — the whole set, every time:
/// regimes are coherent configurations, and partial application after a
/// flip sequence could otherwise leave a hybrid no one measured.
pub fn apply(regime: Regime, knobs: &TuningKnobs) {
    match regime {
        Regime::ReadHeavy => {
            knobs.set_bias_allowed(true);
            // Re-arm almost immediately after a revocation: writers are
            // rare, so revocation overhead is already bounded and the
            // bias pays from the first bypassed read.
            knobs.set_rearm_multiplier(1);
            knobs.set_deflate_after(READ_HEAVY_DEFLATE_AFTER);
            knobs.set_cohort_batch(DEFAULT_COHORT_BATCH);
            knobs.set_backoff_policy(BackoffPolicy::default());
        }
        Regime::Mixed => {
            knobs.set_bias_allowed(true);
            knobs.set_rearm_multiplier(DEFAULT_REARM_MULTIPLIER);
            knobs.set_deflate_after(DEFAULT_DEFLATE_AFTER);
            knobs.set_cohort_batch(DEFAULT_COHORT_BATCH);
            knobs.set_backoff_policy(BackoffPolicy::default());
        }
        Regime::WriteHeavy => {
            knobs.set_bias_allowed(false);
            knobs.set_rearm_multiplier(DEFAULT_REARM_MULTIPLIER);
            knobs.set_deflate_after(WRITE_HEAVY_DEFLATE_AFTER);
            knobs.set_cohort_batch(WRITE_HEAVY_COHORT_BATCH);
            knobs.set_backoff_policy(WRITE_HEAVY_BACKOFF);
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn stats(reads: u64, writes: u64) -> WindowStats {
        WindowStats {
            reads,
            writes,
            slow: reads.min(writes),
            ..WindowStats::default()
        }
    }

    #[test]
    fn classification_thresholds() {
        let cfg = PolicyConfig::default();
        assert_eq!(classify(&stats(0, 0), &cfg), Regime::Mixed);
        assert_eq!(classify(&stats(95, 5), &cfg), Regime::ReadHeavy);
        assert_eq!(classify(&stats(90, 10), &cfg), Regime::ReadHeavy);
        assert_eq!(classify(&stats(80, 20), &cfg), Regime::Mixed);
        assert_eq!(classify(&stats(70, 30), &cfg), Regime::WriteHeavy);
        assert_eq!(classify(&stats(0, 50), &cfg), Regime::WriteHeavy);
    }

    #[test]
    fn revocation_thrash_overrides_a_read_heavy_mix() {
        let cfg = PolicyConfig::default();
        let mut s = stats(99, 1);
        s.revocations = cfg.revocation_limit + 1;
        assert_eq!(classify(&s, &cfg), Regime::WriteHeavy);
        s.revocations = cfg.revocation_limit;
        assert_eq!(classify(&s, &cfg), Regime::ReadHeavy);
    }

    #[test]
    fn apply_writes_the_full_regime_set() {
        let k = TuningKnobs::new();
        apply(Regime::WriteHeavy, &k);
        assert!(!k.bias_allowed());
        assert_eq!(k.deflate_after(), WRITE_HEAVY_DEFLATE_AFTER);
        assert_eq!(k.cohort_batch(), WRITE_HEAVY_COHORT_BATCH);
        assert_eq!(k.backoff_policy(), WRITE_HEAVY_BACKOFF);

        apply(Regime::Mixed, &k);
        assert!(k.bias_allowed());
        assert_eq!(k.deflate_after(), DEFAULT_DEFLATE_AFTER);
        assert_eq!(k.rearm_multiplier(), DEFAULT_REARM_MULTIPLIER);
        assert_eq!(k.cohort_batch(), DEFAULT_COHORT_BATCH);
        assert_eq!(k.backoff_policy(), BackoffPolicy::default());

        apply(Regime::ReadHeavy, &k);
        assert!(k.bias_allowed());
        assert_eq!(k.rearm_multiplier(), 1);
        assert_eq!(k.deflate_after(), READ_HEAVY_DEFLATE_AFTER);
    }

    #[test]
    fn regime_discriminants_round_trip() {
        for r in Regime::ALL {
            assert_eq!(Regime::from_u8(r as u8), r);
        }
        assert_eq!(Regime::from_u8(200), Regime::Mixed);
    }
}
