//! The OLL scalable reader-writer locks (*Scalable Reader-Writer Locks*,
//! Lev, Luchangco & Olszewski, SPAA 2009).
//!
//! Three lock algorithms that eliminate updates to central shared data on
//! the reader path by tracking readers with a [closable scalable nonzero
//! indicator](oll_csnzi::CSnzi) instead of a counter:
//!
//! * [`GollLock`] — the **G**eneral OLL lock (§3): Solaris-kernel-style,
//!   with a mutex-protected wait queue, pluggable [`FairnessPolicy`], and
//!   write [upgrade/downgrade](UpgradableHandle) support.
//! * [`FollLock`] — the **F**IFO OLL lock (§4.2): an MCS-queue lock where
//!   successive readers share one queue node through its C-SNZI.
//! * [`RollLock`] — the **R**eader-preference OLL lock (§4.3): FOLL with a
//!   doubly-linked queue that lets readers overtake waiting writers to
//!   join a waiting reader group.
//!
//! All locks (including the baselines in `oll-baselines`) implement
//! [`RwLockFamily`]: register a per-thread handle, then acquire through it.
//! [`RwLock`] wraps a value for guard-deref ergonomics. [`Bravo`] layers
//! BRAVO-style reader biasing over any of them, giving read-mostly
//! workloads a fast path with zero shared-memory RMWs per acquisition.
//!
//! ```
//! use oll_core::{RollLock, RwHandle, RwLockFamily};
//!
//! let lock = RollLock::new(4); // up to 4 concurrent threads
//! let mut me = lock.handle().unwrap();
//! {
//!     let _shared = me.read();
//!     // ... read the protected state ...
//! }
//! {
//!     let _exclusive = me.write();
//!     // ... mutate the protected state ...
//! }
//! ```

#![warn(missing_docs)]

#[cfg(not(loom))]
pub mod bravo;
pub mod cohort;
pub mod foll;
pub mod goll;
pub mod raw;
pub mod roll;
pub mod rwlock;
#[cfg(not(loom))]
pub mod tuning;
#[cfg(not(loom))]
pub mod watch;

#[cfg(not(loom))]
pub use bravo::{Bravo, BravoHandle, DEFAULT_REARM_MULTIPLIER};
pub use cohort::DEFAULT_COHORT_BATCH;
pub use foll::{node_state, FollBuilder, FollLock};
pub use goll::{FairnessPolicy, GollBuilder, GollLock};
#[cfg(not(loom))]
pub use raw::TimedHandle;
pub use raw::{
    PoisonError, ReadGuard, RwHandle, RwLockFamily, TimedOut, UpgradableHandle, WriteGuard,
};
pub use roll::{RollBuilder, RollLock};
pub use rwlock::{RwLock, RwLockOwner, RwLockReadGuard, RwLockWriteGuard};
#[cfg(not(loom))]
pub use tuning::{policy::PolicyConfig, policy::Regime, SelfTuning, TunedHandle, TuningConfig};
#[cfg(not(loom))]
pub use watch::{AcquireError, WatchedHandle};

pub use oll_util::knobs::TuningKnobs;
