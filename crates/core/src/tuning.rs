//! Contention-aware self-tuning: [`SelfTuning`] closes the telemetry loop
//! by feeding a lock's own observed behaviour back into its
//! [`TuningKnobs`] through a small online policy controller.
//!
//! # Sampling without a timer thread
//!
//! The controller has no thread and no timer in the default build. Its
//! clock is the lock's own *slow path*: every acquisition that fails the
//! initial `try_lock_*` increments a shared window counter, and when
//! [`TuningConfig::window`] slow entries have accumulated, the thread
//! that crosses the threshold — and wins a CAS on a single decider gate —
//! closes the window: it snapshots the counter deltas, classifies the
//! window into a [`Regime`], and (subject to hysteresis and cooldown)
//! stores the regime's knob set. Threads that lose the gate race just
//! continue into their acquisition; a decision is never worth waiting
//! for.
//!
//! This gives the zero-overhead property the BRAVO bias already has: an
//! uncontended lock never enters the slow path, so the controller never
//! runs — handles count their fast acquisitions in a plain handle-local
//! integer (no shared RMW, no fence) that is only flushed to the shared
//! counters when a slow entry or [`TunedHandle::flush`] happens anyway.
//! A lock that settles into the bypassed read path pays *nothing* per
//! acquisition for having a controller attached.
//!
//! For deployments that want wall-clock-paced decisions even under pure
//! fast-path traffic (e.g. driven from the `oll-obs` sampler daemon's
//! loop), [`SelfTuning::tick`] closes a window explicitly; the same
//! entry point makes every controller decision deterministic in tests.
//!
//! # Stability
//!
//! Two mechanisms bound oscillation:
//!
//! 1. **Hysteresis** — a regime change is applied only after the *same*
//!    proposed regime has won [`TuningConfig::hysteresis`] consecutive
//!    windows. A square-wave workload that alternates regimes every
//!    window therefore produces *zero* flips (each window resets the
//!    streak), while a genuine phase change flips exactly once.
//! 2. **Cooldown** — after a flip, proposals are held for
//!    [`TuningConfig::cooldown`] further windows, capping the decision
//!    rate at one flip per `hysteresis + cooldown` windows even under
//!    adversarial workloads.
//!
//! Held proposals are still visible (`tuner_hold` telemetry/trace
//! events), so the trace analyzer can show *why* the controller did not
//! move.

pub mod policy;

use crate::raw::{RwHandle, RwLockFamily, TimedHandle, TimedOut, UpgradableHandle};
use oll_hazard::Hazard;
use oll_telemetry::{LockEvent, Telemetry};
use oll_util::fault;
use oll_util::knobs::TuningKnobs;
use oll_util::slots::SlotError;
use policy::{PolicyConfig, Regime, WindowStats};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Controller pacing: how often windows close and how reluctantly the
/// policy moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningConfig {
    /// Slow-path entries per sampling window (default 64). Smaller
    /// windows react faster but classify noisier mixes.
    pub window: u32,
    /// Consecutive windows the same new regime must win before it is
    /// applied (default 2). `1` disables hysteresis.
    pub hysteresis: u32,
    /// Windows after a flip during which further proposals are held
    /// (default 2). `0` disables the cooldown.
    pub cooldown: u32,
}

impl Default for TuningConfig {
    fn default() -> Self {
        Self {
            window: 64,
            hysteresis: 2,
            cooldown: 2,
        }
    }
}

/// Shared controller state. All fields are `Relaxed`: they are heuristic
/// inputs and bookkeeping, never synchronization — the single-decider
/// gate is the only acquire/release edge, and even that only protects
/// the `prev_*` delta baselines from concurrent deciders.
struct CtlShared {
    /// Total read acquisitions flushed by handles (fast + slow).
    reads: AtomicU64,
    /// Total write acquisitions flushed by handles (fast + slow).
    writes: AtomicU64,
    /// Total slow-path entries.
    slow: AtomicU64,
    /// Slow entries since the last window close (the sampling clock).
    window_slow: AtomicU32,
    /// Single-decider gate: the thread that CASes this `false → true`
    /// owns the window close; everyone else skips.
    deciding: AtomicBool,
    /// Completed windows (`tuner_sample` count).
    windows: AtomicU64,
    /// Applied regime changes (`tuner_flip` count).
    flips: AtomicU64,
    /// Proposals suppressed by hysteresis or cooldown (`tuner_hold`).
    holds: AtomicU64,
    /// Currently applied [`Regime`] discriminant.
    regime: AtomicU32,
    /// Regime proposed by the most recent disagreeing window.
    pending_regime: AtomicU32,
    /// Consecutive windows that proposed `pending_regime`.
    pending_streak: AtomicU32,
    /// Windows remaining before a new flip may be applied.
    cooldown_left: AtomicU32,
    /// Delta baselines: totals as of the last window close.
    prev_reads: AtomicU64,
    prev_writes: AtomicU64,
    prev_slow: AtomicU64,
    prev_revocations: AtomicU64,
    prev_root_cas_fails: AtomicU64,
}

impl CtlShared {
    fn new() -> Self {
        Self {
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            window_slow: AtomicU32::new(0),
            deciding: AtomicBool::new(false),
            windows: AtomicU64::new(0),
            flips: AtomicU64::new(0),
            holds: AtomicU64::new(0),
            regime: AtomicU32::new(Regime::Mixed as u32),
            pending_regime: AtomicU32::new(Regime::Mixed as u32),
            pending_streak: AtomicU32::new(0),
            cooldown_left: AtomicU32::new(0),
            prev_reads: AtomicU64::new(0),
            prev_writes: AtomicU64::new(0),
            prev_slow: AtomicU64::new(0),
            prev_revocations: AtomicU64::new(0),
            prev_root_cas_fails: AtomicU64::new(0),
        }
    }
}

/// A lock wrapped with the online policy controller.
///
/// Wrap any [`RwLockFamily`] whose `tuning_knobs()` returns its live
/// knob block (every OLL lock and the [`Bravo`](crate::Bravo) wrapper
/// does); the controller steers those knobs from the lock's own observed
/// read/write mix, slow-path fraction, and — on telemetry builds — bias
/// revocation and C-SNZI root-contention deltas. Wrapping a lock without
/// knobs is harmless: the controller still classifies, but its stores go
/// to a private knob block nobody reads.
///
/// ```
/// use oll_core::raw::{RwHandle, RwLockFamily};
/// use oll_core::{FollBuilder, SelfTuning};
///
/// let lock = SelfTuning::new(FollBuilder::new(4).build_biased());
/// let mut h = lock.handle().unwrap();
/// let guard = h.read();
/// drop(guard);
/// ```
pub struct SelfTuning<L: RwLockFamily> {
    inner: L,
    knobs: Arc<TuningKnobs>,
    telemetry: Telemetry,
    ctl: CtlShared,
    config: TuningConfig,
    policy: PolicyConfig,
}

impl<L: RwLockFamily> SelfTuning<L> {
    /// Wraps `inner` with the default pacing and policy thresholds.
    pub fn new(inner: L) -> Self {
        Self::with_config(inner, TuningConfig::default(), PolicyConfig::default())
    }

    /// Wraps `inner` with explicit pacing and thresholds (tests use a
    /// `window` of 1 plus [`tick`](Self::tick) for determinism).
    pub fn with_config(inner: L, config: TuningConfig, policy: PolicyConfig) -> Self {
        let knobs = inner
            .tuning_knobs()
            .cloned()
            .unwrap_or_else(TuningKnobs::shared);
        let telemetry = inner.telemetry();
        Self {
            inner,
            knobs,
            telemetry,
            ctl: CtlShared::new(),
            config: TuningConfig {
                window: config.window.max(1),
                hysteresis: config.hysteresis.max(1),
                cooldown: config.cooldown,
            },
            policy,
        }
    }

    /// The wrapped lock.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Unwraps the controller, returning the inner lock (its knobs keep
    /// whatever values the controller last stored).
    pub fn into_inner(self) -> L {
        self.inner
    }

    /// The knob block the controller steers (shared with the inner
    /// lock's components).
    pub fn knobs(&self) -> &Arc<TuningKnobs> {
        &self.knobs
    }

    /// The currently applied regime.
    pub fn regime(&self) -> Regime {
        Regime::from_u8(self.ctl.regime.load(Ordering::Relaxed) as u8)
    }

    /// Completed sampling windows.
    pub fn windows(&self) -> u64 {
        self.ctl.windows.load(Ordering::Relaxed)
    }

    /// Applied regime changes.
    pub fn flips(&self) -> u64 {
        self.ctl.flips.load(Ordering::Relaxed)
    }

    /// Proposals held back by hysteresis or cooldown.
    pub fn holds(&self) -> u64 {
        self.ctl.holds.load(Ordering::Relaxed)
    }

    /// Closes a sampling window *now*, regardless of how many slow
    /// entries have accumulated — the entry point for wall-clock-paced
    /// steering (the `oll-obs` sampler loop) and for deterministic
    /// tests. No-op if another thread is mid-decision.
    pub fn tick(&self) {
        self.try_close_window();
    }

    /// Window-close attempt: win the decider gate or walk away.
    fn try_close_window(&self) {
        if self
            .ctl
            .deciding
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.ctl.window_slow.store(0, Ordering::Relaxed);
        self.decide();
        self.ctl.deciding.store(false, Ordering::Release);
    }

    /// Snapshots this window's deltas, moving the baselines forward.
    /// Gate-holder only (the `prev_*` swaps are not idempotent).
    fn window_delta(&self) -> WindowStats {
        let c = &self.ctl;
        let reads = c.reads.load(Ordering::Relaxed);
        let writes = c.writes.load(Ordering::Relaxed);
        let slow = c.slow.load(Ordering::Relaxed);
        // Telemetry enrichment: absolute event counters diffed against
        // our stored baselines. Inactive telemetry reads as all-zero.
        let (rev, cas) = match self.telemetry.snapshot() {
            Some(s) => (
                s.get(LockEvent::BiasRevoke),
                s.get(LockEvent::CsnziRootCasFail),
            ),
            None => (0, 0),
        };
        WindowStats {
            reads: reads.saturating_sub(c.prev_reads.swap(reads, Ordering::Relaxed)),
            writes: writes.saturating_sub(c.prev_writes.swap(writes, Ordering::Relaxed)),
            slow: slow.saturating_sub(c.prev_slow.swap(slow, Ordering::Relaxed)),
            revocations: rev.saturating_sub(c.prev_revocations.swap(rev, Ordering::Relaxed)),
            root_cas_fails: cas.saturating_sub(c.prev_root_cas_fails.swap(cas, Ordering::Relaxed)),
        }
    }

    /// One controller decision. Gate-holder only.
    fn decide(&self) {
        let stats = self.window_delta();
        self.ctl.windows.fetch_add(1, Ordering::Relaxed);
        self.telemetry.incr(LockEvent::TunerSample);
        let proposed = policy::classify(&stats, &self.policy);
        // The arm/disarm race window: a fault plan targeting this site
        // yields the decider between classification and application,
        // letting readers/writers interleave with a half-made decision.
        fault::inject_yield_only("tuning.decide");
        let current = Regime::from_u8(self.ctl.regime.load(Ordering::Relaxed) as u8);
        let cooldown = self.ctl.cooldown_left.load(Ordering::Relaxed);
        if proposed == current {
            // Agreement: clear any pending streak and burn cooldown.
            self.ctl.pending_streak.store(0, Ordering::Relaxed);
            if cooldown > 0 {
                self.ctl
                    .cooldown_left
                    .store(cooldown - 1, Ordering::Relaxed);
            }
            return;
        }
        let pending = Regime::from_u8(self.ctl.pending_regime.load(Ordering::Relaxed) as u8);
        let streak = if proposed == pending {
            self.ctl.pending_streak.load(Ordering::Relaxed) + 1
        } else {
            1
        };
        self.ctl
            .pending_regime
            .store(proposed as u32, Ordering::Relaxed);
        self.ctl.pending_streak.store(streak, Ordering::Relaxed);
        if streak >= self.config.hysteresis && cooldown == 0 {
            policy::apply(proposed, &self.knobs);
            self.ctl.regime.store(proposed as u32, Ordering::Relaxed);
            self.ctl.pending_streak.store(0, Ordering::Relaxed);
            self.ctl
                .cooldown_left
                .store(self.config.cooldown, Ordering::Relaxed);
            self.ctl.flips.fetch_add(1, Ordering::Relaxed);
            self.telemetry
                .record_policy_flip((u64::from(current as u8) << 8) | u64::from(proposed as u8));
        } else {
            if cooldown > 0 {
                self.ctl
                    .cooldown_left
                    .store(cooldown - 1, Ordering::Relaxed);
            }
            self.ctl.holds.fetch_add(1, Ordering::Relaxed);
            self.telemetry.incr(LockEvent::TunerHold);
        }
    }
}

impl<L: RwLockFamily> RwLockFamily for SelfTuning<L> {
    type Handle<'a>
        = TunedHandle<'a, L>
    where
        Self: 'a;

    fn handle(&self) -> Result<Self::Handle<'_>, SlotError> {
        Ok(TunedHandle {
            inner: self.inner.handle()?,
            lock: self,
            fast_reads: 0,
            fast_writes: 0,
        })
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn name(&self) -> &'static str {
        // Deliberately transparent: a tuned FOLL reports as FOLL so
        // per-lock results stay comparable; "tuned or not" is a
        // run-level fact (the fig5 JSON member name, the lockstat flag).
        self.inner.name()
    }

    fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    fn hazard(&self) -> Hazard {
        self.inner.hazard()
    }

    fn tuning_knobs(&self) -> Option<&Arc<TuningKnobs>> {
        Some(&self.knobs)
    }
}

/// Per-thread handle for [`SelfTuning`]: a try-then-block wrapper over
/// the inner lock's handle.
///
/// `lock_read`/`lock_write` first attempt the inner `try_lock_*` — a
/// success takes exactly the inner lock's fast path (for a biased lock,
/// the zero-RMW bypass) plus one handle-local counter increment. Only a
/// failed try is a *slow entry*: it flushes the local counters, ticks
/// the sampling window, and falls back to the inner blocking path.
pub struct TunedHandle<'a, L: RwLockFamily + 'a> {
    inner: L::Handle<'a>,
    lock: &'a SelfTuning<L>,
    /// Fast read acquisitions not yet flushed to the shared counters.
    fast_reads: u32,
    /// Fast write acquisitions not yet flushed to the shared counters.
    fast_writes: u32,
}

impl<'a, L: RwLockFamily> TunedHandle<'a, L> {
    /// The wrapped handle (e.g. to reach lock-specific extensions).
    pub fn inner(&mut self) -> &mut L::Handle<'a> {
        &mut self.inner
    }

    /// Publishes the handle-local fast-path counts to the shared
    /// controller counters. Runs automatically on every slow entry and
    /// on drop; obs-driven deployments call it before
    /// [`SelfTuning::tick`] so purely-fast-path handles are visible.
    pub fn flush(&mut self) {
        if self.fast_reads > 0 {
            self.lock
                .ctl
                .reads
                .fetch_add(u64::from(self.fast_reads), Ordering::Relaxed);
            self.fast_reads = 0;
        }
        if self.fast_writes > 0 {
            self.lock
                .ctl
                .writes
                .fetch_add(u64::from(self.fast_writes), Ordering::Relaxed);
            self.fast_writes = 0;
        }
    }

    /// Records a slow-path entry and closes the window if this entry
    /// filled it.
    fn note_slow(&mut self, write: bool) {
        self.flush();
        let ctl = &self.lock.ctl;
        if write {
            ctl.writes.fetch_add(1, Ordering::Relaxed);
        } else {
            ctl.reads.fetch_add(1, Ordering::Relaxed);
        }
        ctl.slow.fetch_add(1, Ordering::Relaxed);
        let filled = ctl.window_slow.fetch_add(1, Ordering::Relaxed) + 1;
        if filled >= self.lock.config.window {
            self.lock.try_close_window();
        }
    }
}

impl<L: RwLockFamily> RwHandle for TunedHandle<'_, L> {
    fn lock_read(&mut self) {
        if self.inner.try_lock_read() {
            self.fast_reads = self.fast_reads.saturating_add(1);
            return;
        }
        self.note_slow(false);
        self.inner.lock_read();
    }

    fn unlock_read(&mut self) {
        self.inner.unlock_read();
    }

    fn lock_write(&mut self) {
        if self.inner.try_lock_write() {
            self.fast_writes = self.fast_writes.saturating_add(1);
            return;
        }
        self.note_slow(true);
        self.inner.lock_write();
    }

    fn unlock_write(&mut self) {
        self.inner.unlock_write();
    }

    fn try_lock_read(&mut self) -> bool {
        if self.inner.try_lock_read() {
            self.fast_reads = self.fast_reads.saturating_add(1);
            true
        } else {
            false
        }
    }

    fn try_lock_write(&mut self) -> bool {
        if self.inner.try_lock_write() {
            self.fast_writes = self.fast_writes.saturating_add(1);
            true
        } else {
            false
        }
    }

    fn hazard(&self) -> Hazard {
        self.inner.hazard()
    }
}

impl<L: RwLockFamily> Drop for TunedHandle<'_, L> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(not(loom))]
impl<'a, L: RwLockFamily> TimedHandle for TunedHandle<'a, L>
where
    L::Handle<'a>: TimedHandle,
{
    fn lock_read_deadline(&mut self, deadline: std::time::Instant) -> Result<(), TimedOut> {
        if self.inner.try_lock_read() {
            self.fast_reads = self.fast_reads.saturating_add(1);
            return Ok(());
        }
        self.note_slow(false);
        self.inner.lock_read_deadline(deadline)
    }

    fn lock_write_deadline(&mut self, deadline: std::time::Instant) -> Result<(), TimedOut> {
        if self.inner.try_lock_write() {
            self.fast_writes = self.fast_writes.saturating_add(1);
            return Ok(());
        }
        self.note_slow(true);
        self.inner.lock_write_deadline(deadline)
    }
}

impl<'a, L: RwLockFamily> UpgradableHandle for TunedHandle<'a, L>
where
    L::Handle<'a>: UpgradableHandle,
{
    fn try_upgrade(&mut self) -> bool {
        self.inner.try_upgrade()
    }

    fn downgrade(&mut self) {
        self.inner.downgrade();
    }
}
