//! The **GOLL** lock (§3.2 of the paper): the general OLL reader-writer
//! lock, modeled on the Solaris kernel lock with the central lockword
//! replaced by a C-SNZI.
//!
//! State encoding (the C-SNZI *is* the lockword):
//!
//! | C-SNZI state            | lock state                          |
//! |-------------------------|-------------------------------------|
//! | open, surplus = 0       | free                                |
//! | closed, surplus = 0     | write-acquired                      |
//! | open, surplus > 0       | read-acquired                       |
//! | closed, surplus > 0     | read-acquired, writer(s) waiting    |
//!
//! Readers acquire with `Arrive` and release with `Depart`; writers
//! acquire with `CloseIfEmpty`/`Close` and release with `Open`/
//! `OpenWithArrivals`. Conflicting requests queue on a mutex-protected
//! wait queue (the turnstile role), and releases *hand over* ownership:
//! a woken thread already owns the lock.

use crate::raw::{RwHandle, RwLockFamily, UpgradableHandle};
use oll_csnzi::{ArrivalPolicy, CSnzi, LeafCursor, Ticket, TreeShape};
use oll_hazard::Hazard;
use oll_telemetry::{LockEvent, Telemetry, Timer};
use oll_util::event::{Event, GroupEvent, WaitStrategy};
use oll_util::fault;
use oll_util::slots::{SlotError, SlotGuard, SlotRegistry};
use oll_util::{CachePadded, SpinMutex};
use std::collections::VecDeque;
use std::sync::Arc;

/// Queuing policy for conflicting lock requests.
///
/// The paper's evaluation (§5.1) uses the Solaris policy: "readers hand
/// the lock over to writers, and writers hand the lock over to readers" —
/// [`Alternating`](FairnessPolicy::Alternating). The queue mutex makes the
/// policy pluggable ("allows a sophisticated queuing policy", §1); strict
/// [`Fifo`](FairnessPolicy::Fifo) is also provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FairnessPolicy {
    /// Releases hand the lock to the group at the head of the queue.
    Fifo,
    /// Writers hand over to *all* waiting readers; readers hand over to
    /// the first waiting writer (the Solaris/paper evaluation policy).
    #[default]
    Alternating,
    /// Every release prefers waiting readers; writers advance only when
    /// no readers wait. Maximizes read throughput; writers may starve
    /// under a sustained reader stream (compare ROLL, §4.3).
    ReaderPreference,
    /// Every release prefers the first waiting writer; readers advance
    /// only when no writers wait. Keeps data maximally fresh; readers may
    /// starve under a sustained writer stream.
    WriterPreference,
}

enum Group {
    Readers {
        event: Arc<GroupEvent>,
        /// Highest priority among the group's members.
        priority: u8,
    },
    Writer {
        event: Arc<Event>,
        priority: u8,
    },
}

/// What a releasing thread hands the lock to.
enum Handoff {
    /// Nobody waiting: actually release.
    None,
    /// A single writer: the lock is already in (or stays in) the
    /// closed-empty state; just wake it.
    Writer(Arc<Event>),
    /// One or more groups of readers, `total` threads in all.
    Readers {
        groups: Vec<Arc<GroupEvent>>,
        total: u64,
        /// Whether writers remain queued (the reopened C-SNZI must then
        /// stay closed so new readers keep queuing behind them).
        writers_remain: bool,
    },
}

struct WaitQueue {
    groups: VecDeque<Group>,
    num_writers: usize,
}

impl WaitQueue {
    fn new() -> Self {
        Self {
            groups: VecDeque::new(),
            num_writers: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    fn enqueue_writer(&mut self, strategy: WaitStrategy, priority: u8) -> Arc<Event> {
        let ev = Arc::new(Event::new(strategy));
        self.groups.push_back(Group::Writer {
            event: Arc::clone(&ev),
            priority,
        });
        self.num_writers += 1;
        ev
    }

    /// Joins the readers group at the tail, or starts a new one. Reader
    /// groups only coalesce at the tail, so two reader groups are never
    /// adjacent in the queue.
    fn join_readers(&mut self, strategy: WaitStrategy, priority: u8) -> Arc<GroupEvent> {
        if let Some(Group::Readers {
            event,
            priority: group_prio,
        }) = self.groups.back_mut()
        {
            *group_prio = (*group_prio).max(priority);
            let g = Arc::clone(event);
            g.join();
            return g;
        }
        let g = Arc::new(GroupEvent::new(strategy));
        g.join();
        self.groups.push_back(Group::Readers {
            event: Arc::clone(&g),
            priority,
        });
        g
    }

    /// Highest priority among queued writers, if any.
    fn max_writer_priority(&self) -> Option<u8> {
        self.groups
            .iter()
            .filter_map(|g| match g {
                Group::Writer { priority, .. } => Some(*priority),
                Group::Readers { .. } => None,
            })
            .max()
    }

    /// Highest priority among queued reader groups, if any.
    fn max_reader_priority(&self) -> Option<u8> {
        self.groups
            .iter()
            .filter_map(|g| match g {
                Group::Readers { priority, .. } => Some(*priority),
                Group::Writer { .. } => None,
            })
            .max()
    }

    fn pop_front(&mut self) -> Handoff {
        match self.groups.pop_front() {
            None => Handoff::None,
            Some(Group::Writer { event, .. }) => {
                self.num_writers -= 1;
                Handoff::Writer(event)
            }
            Some(Group::Readers { event, .. }) => {
                let total = event.members() as u64;
                Handoff::Readers {
                    groups: vec![event],
                    total,
                    writers_remain: self.num_writers > 0,
                }
            }
        }
    }

    /// Removes *every* readers group (Alternating writer-release).
    fn drain_all_readers(&mut self) -> Handoff {
        let mut groups = Vec::new();
        let mut total = 0u64;
        self.groups.retain(|g| match g {
            Group::Readers { event, .. } => {
                total += event.members() as u64;
                groups.push(Arc::clone(event));
                false
            }
            Group::Writer { .. } => true,
        });
        if groups.is_empty() {
            Handoff::None
        } else {
            Handoff::Readers {
                groups,
                total,
                writers_remain: self.num_writers > 0,
            }
        }
    }

    /// Removes the highest-priority writer (earliest among ties —
    /// turnstiles order by priority, then FIFO).
    fn take_first_writer(&mut self) -> Handoff {
        let best = self
            .groups
            .iter()
            .enumerate()
            .filter_map(|(i, g)| match g {
                Group::Writer { priority, .. } => Some((i, *priority)),
                Group::Readers { .. } => None,
            })
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)));
        match best {
            Some((i, _)) => match self.groups.remove(i) {
                Some(Group::Writer { event, .. }) => {
                    self.num_writers -= 1;
                    Handoff::Writer(event)
                }
                _ => unreachable!("index located a writer"),
            },
            None => Handoff::None,
        }
    }

    /// Chooses the hand-off target for a releasing *writer*.
    fn has_waiting_readers(&self) -> bool {
        self.num_writers < self.groups.len()
    }

    /// Prefer readers: wake every waiting reader if any exist, else the
    /// first writer.
    fn readers_first(&mut self) -> Handoff {
        if self.has_waiting_readers() {
            self.drain_all_readers()
        } else {
            self.take_first_writer()
        }
    }

    /// The §5.1 policy with priorities: "writers hand the lock over to
    /// readers (unless a higher-priority writer is waiting)".
    fn readers_first_unless_higher_priority_writer(&mut self) -> Handoff {
        match (self.max_reader_priority(), self.max_writer_priority()) {
            (Some(rp), Some(wp)) if wp > rp => self.take_first_writer(),
            (Some(_), _) => self.drain_all_readers(),
            (None, Some(_)) => self.take_first_writer(),
            (None, None) => Handoff::None,
        }
    }

    /// Prefer writers: wake the first writer if any exists, else every
    /// waiting reader.
    fn writers_first(&mut self) -> Handoff {
        if self.num_writers > 0 {
            self.take_first_writer()
        } else {
            self.drain_all_readers()
        }
    }

    /// Chooses the hand-off target for a releasing *writer*.
    fn dequeue_for_writer_release(&mut self, policy: FairnessPolicy) -> Handoff {
        match policy {
            FairnessPolicy::Fifo => self.pop_front(),
            FairnessPolicy::Alternating => self.readers_first_unless_higher_priority_writer(),
            FairnessPolicy::ReaderPreference => self.readers_first(),
            FairnessPolicy::WriterPreference => self.writers_first(),
        }
    }

    /// Chooses the hand-off target for a releasing *reader*.
    fn dequeue_for_reader_release(&mut self, policy: FairnessPolicy) -> Handoff {
        match policy {
            FairnessPolicy::Fifo => self.pop_front(),
            FairnessPolicy::Alternating | FairnessPolicy::WriterPreference => self.writers_first(),
            FairnessPolicy::ReaderPreference => self.readers_first(),
        }
    }

    /// A timed-out reader abandons its queued group. Returns `true` if the
    /// group was still queued (the member left; an emptied group is
    /// removed); `false` means a releaser already dequeued the group — its
    /// `OpenWithArrivals` counted this member, so the caller must consume
    /// the hand-off instead of leaving.
    fn leave_reader_group(&mut self, target: &Arc<GroupEvent>) -> bool {
        let Some(idx) = self.groups.iter().position(|g| match g {
            Group::Readers { event, .. } => Arc::ptr_eq(event, target),
            Group::Writer { .. } => false,
        }) else {
            return false;
        };
        if target.leave() == 0 {
            // Last member out: drop the empty group so no releaser wakes
            // (and pre-arrives for) a group nobody belongs to.
            self.groups.remove(idx);
        }
        true
    }

    /// A timed-out writer excises its queue entry. Returns `true` if the
    /// entry was still queued; `false` means a releaser already dequeued it
    /// and the lock is being (or has been) handed to this writer — the
    /// caller must accept ownership and release it.
    fn remove_writer(&mut self, target: &Arc<Event>) -> bool {
        let Some(idx) = self.groups.iter().position(|g| match g {
            Group::Writer { event, .. } => Arc::ptr_eq(event, target),
            Group::Readers { .. } => false,
        }) else {
            return false;
        };
        self.groups.remove(idx);
        self.num_writers -= 1;
        true
    }
}

/// Builder for [`GollLock`].
#[derive(Debug, Clone)]
pub struct GollBuilder {
    capacity: usize,
    shape: Option<TreeShape>,
    strategy: WaitStrategy,
    policy: FairnessPolicy,
    arrival_threshold: u32,
    lazy_tree: bool,
    adaptive: bool,
    #[cfg(not(loom))]
    biased: bool,
    telemetry_name: Option<String>,
    knobs: Option<std::sync::Arc<oll_util::knobs::TuningKnobs>>,
}

impl GollBuilder {
    /// Starts a builder for a lock used by at most `capacity` concurrent
    /// threads.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            shape: None,
            strategy: WaitStrategy::SpinThenYield,
            policy: FairnessPolicy::Alternating,
            arrival_threshold: ArrivalPolicy::DEFAULT_THRESHOLD,
            lazy_tree: false,
            adaptive: false,
            #[cfg(not(loom))]
            biased: false,
            telemetry_name: None,
            knobs: None,
        }
    }

    /// Shares `knobs` as the lock's live policy source (the adaptive
    /// C-SNZI's deflation hysteresis reads from it) — the hook an online
    /// controller uses to steer the lock while it runs. Without this call
    /// the lock gets a private block at the documented defaults.
    pub fn tuning(mut self, knobs: std::sync::Arc<oll_util::knobs::TuningKnobs>) -> Self {
        self.knobs = Some(knobs);
        self
    }

    /// Enables BRAVO-style reader biasing for
    /// [`build_biased`](Self::build_biased): biased reads bypass the lock
    /// through the process-global visible-readers table (zero shared
    /// RMWs) until a writer revokes the bias.
    #[cfg(not(loom))]
    pub fn biased(mut self, biased: bool) -> Self {
        self.biased = biased;
        self
    }

    /// Builds the lock wrapped in the [`Bravo`](crate::Bravo) biasing
    /// layer. The wrapper passes straight through unless
    /// [`biased(true)`](Self::biased) was set, so one call site serves
    /// both configurations.
    #[cfg(not(loom))]
    pub fn build_biased(self) -> crate::Bravo<GollLock> {
        let biased = self.biased;
        let lock = self.build();
        // One knob block steers both layers: the wrapper's re-arm
        // multiplier and bias permission live next to the lock's knobs.
        let knobs = lock.knobs().clone();
        crate::Bravo::wrapping(lock, biased).tuning(knobs)
    }

    /// Names this lock's telemetry instance (default `"GOLL#<seq>"`).
    /// No effect unless built with the `telemetry` feature.
    pub fn telemetry_name(mut self, name: &str) -> Self {
        self.telemetry_name = Some(name.to_string());
        self
    }

    /// Defers the C-SNZI tree allocation until the first contended
    /// arrival (§2.2's space optimization). Uncontended locks then cost a
    /// single cache line.
    pub fn lazy_tree(mut self, lazy: bool) -> Self {
        self.lazy_tree = lazy;
        self
    }

    /// Overrides the C-SNZI tree shape (default: one leaf per thread).
    pub fn tree_shape(mut self, shape: TreeShape) -> Self {
        self.shape = Some(shape);
        self
    }

    /// Makes the C-SNZI adaptive: it starts root-only (one cache line,
    /// no tree), inflates a topology-sized tree when arrivals measure
    /// contention, and deflates back to root-only routing after a quiet
    /// spell. Supersedes [`lazy_tree`](Self::lazy_tree); an explicit
    /// [`tree_shape`](Self::tree_shape) caps the inflated leaf count.
    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Sets how waiters burn time (default: spin-then-yield, like the
    /// paper's spin-based condition variables).
    pub fn wait_strategy(mut self, strategy: WaitStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the queuing policy (default: Alternating, as in §5.1).
    pub fn fairness(mut self, policy: FairnessPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the per-thread failed-CAS count before arrivals move to the
    /// C-SNZI tree.
    pub fn arrival_threshold(mut self, threshold: u32) -> Self {
        self.arrival_threshold = threshold;
        self
    }

    /// Builds the lock.
    pub fn build(self) -> GollLock {
        let capacity = self.capacity.max(1);
        let shape = self
            .shape
            .unwrap_or_else(|| TreeShape::for_threads(capacity));
        let telemetry = Telemetry::register("GOLL");
        if let Some(name) = &self.telemetry_name {
            telemetry.rename(name);
        }
        let mut csnzi = if self.adaptive {
            let max_leaves = self.shape.map_or(capacity, |s| s.leaf_count().max(1));
            CSnzi::new_adaptive(max_leaves)
        } else if self.lazy_tree {
            CSnzi::new_lazy(shape)
        } else {
            CSnzi::new(shape)
        };
        csnzi.attach_telemetry(telemetry.clone());
        let knobs = self
            .knobs
            .unwrap_or_else(oll_util::knobs::TuningKnobs::shared);
        csnzi.attach_knobs(knobs.clone());
        let hazard = Hazard::new();
        hazard.attach_telemetry(&telemetry);
        GollLock {
            csnzi,
            queue: CachePadded::new(SpinMutex::new(WaitQueue::new())),
            slots: SlotRegistry::new(capacity),
            strategy: self.strategy,
            policy: self.policy,
            arrival_threshold: self.arrival_threshold,
            telemetry,
            hazard,
            knobs,
        }
    }
}

/// The general OLL reader-writer lock (§3.2).
///
/// ```
/// use oll_core::{FairnessPolicy, GollLock, RwHandle, RwLockFamily, UpgradableHandle};
///
/// let lock = GollLock::builder(4)
///     .fairness(FairnessPolicy::Alternating) // the paper's §5.1 policy
///     .build();
/// let mut me = lock.handle().unwrap();
///
/// // Check-then-act with an atomic upgrade (§3.2.1):
/// me.lock_read();
/// if me.try_upgrade() {
///     // sole reader: now write-held with no release window
///     me.unlock_write();
/// } else {
///     me.unlock_read();
/// }
/// ```
pub struct GollLock {
    csnzi: CSnzi,
    queue: CachePadded<SpinMutex<WaitQueue>>,
    slots: SlotRegistry,
    strategy: WaitStrategy,
    policy: FairnessPolicy,
    arrival_threshold: u32,
    telemetry: Telemetry,
    hazard: Hazard,
    knobs: std::sync::Arc<oll_util::knobs::TuningKnobs>,
}

impl GollLock {
    /// Creates a lock for at most `capacity` concurrent threads with the
    /// paper's default configuration.
    pub fn new(capacity: usize) -> Self {
        GollBuilder::new(capacity).build()
    }

    /// Starts a [`GollBuilder`].
    pub fn builder(capacity: usize) -> GollBuilder {
        GollBuilder::new(capacity)
    }

    /// Diagnostic snapshot of the C-SNZI root (racy).
    pub fn csnzi_snapshot(&self) -> oll_csnzi::RootWord {
        self.csnzi.root_snapshot()
    }

    /// Whether this lock's C-SNZI adapts its tree at runtime.
    pub fn is_adaptive(&self) -> bool {
        self.csnzi.is_adaptive()
    }

    /// Whether reader arrivals may currently be routed to the C-SNZI tree
    /// (tracks inflation state on an adaptive lock).
    pub fn is_inflated(&self) -> bool {
        self.csnzi.is_inflated()
    }

    /// The live tuning-knob block this lock reads (share it with a
    /// controller to steer the lock while it runs).
    pub fn knobs(&self) -> &std::sync::Arc<oll_util::knobs::TuningKnobs> {
        &self.knobs
    }

    fn signal(&self, handoff: Handoff) {
        // The wait-event address doubles as the trace causality token:
        // it is the one value both the granting and the woken thread
        // share, so `granted` here joins the grantee's `enqueued`.
        match handoff {
            Handoff::None => {}
            Handoff::Writer(ev) => {
                self.telemetry.trace_granted(Arc::as_ptr(&ev) as u64);
                ev.signal();
            }
            Handoff::Readers { groups, .. } => {
                for g in groups {
                    self.telemetry.trace_granted(Arc::as_ptr(&g) as u64);
                    g.signal_all();
                }
            }
        }
    }
}

impl RwLockFamily for GollLock {
    type Handle<'a> = GollHandle<'a>;

    fn handle(&self) -> Result<GollHandle<'_>, SlotError> {
        let slot = SlotGuard::claim(&self.slots)?;
        Ok(GollHandle {
            lock: self,
            _slot: slot,
            policy: ArrivalPolicy::new(self.arrival_threshold),
            cursor: LeafCursor::new(),
            read_ticket: None,
            write_held: false,
            priority: 0,
            hold: Timer::inactive(),
        })
    }

    fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    fn name(&self) -> &'static str {
        "GOLL"
    }

    fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    fn hazard(&self) -> Hazard {
        self.hazard.clone()
    }

    fn tuning_knobs(&self) -> Option<&std::sync::Arc<oll_util::knobs::TuningKnobs>> {
        Some(&self.knobs)
    }
}

/// Per-thread handle for [`GollLock`] (the paper's `Local` record plus the
/// thread's arrival policy).
pub struct GollHandle<'a> {
    lock: &'a GollLock,
    /// Capacity reservation: held purely for its RAII release (the leaf
    /// cursor, not the slot index, now drives C-SNZI placement).
    _slot: SlotGuard<'a>,
    policy: ArrivalPolicy,
    /// Cached C-SNZI leaf: topology-placed on first tree arrival, then
    /// sticky until a leaf-level CAS failure migrates it.
    cursor: LeafCursor,
    read_ticket: Option<Ticket>,
    write_held: bool,
    priority: u8,
    /// Started when an acquisition succeeds, recorded as hold time at
    /// release. One outstanding acquisition per handle, so one timer.
    hold: Timer,
}

impl GollHandle<'_> {
    /// Sets this thread's queuing priority (default 0). Under the
    /// [`Alternating`](FairnessPolicy::Alternating) policy, a releasing
    /// writer hands the lock to waiting readers *unless a strictly
    /// higher-priority writer is waiting* (§5.1's Solaris behavior), and
    /// among waiting writers the highest priority goes first (the
    /// turnstile is a priority queue, §3.1). Only affects contended
    /// acquisitions that reach the wait queue.
    pub fn set_priority(&mut self, priority: u8) {
        self.priority = priority;
    }

    /// This thread's queuing priority.
    pub fn priority(&self) -> u8 {
        self.priority
    }

    /// Classifies a successful C-SNZI arrival for telemetry: root-word
    /// arrivals hit the shared line, tree arrivals a distributed one.
    #[inline]
    fn note_arrival(&self, ticket: Ticket) {
        self.lock.telemetry.incr(if ticket.is_root() {
            LockEvent::ArriveDirect
        } else {
            LockEvent::ArriveTree
        });
    }
}

impl RwHandle for GollHandle<'_> {
    fn hazard(&self) -> Hazard {
        self.lock.hazard.clone()
    }

    fn lock_read(&mut self) {
        debug_assert!(self.read_ticket.is_none() && !self.write_held);
        let acquire = self.lock.telemetry.begin_read();
        loop {
            // Fast path: in the absence of conflicting requests this is the
            // only step, and it never touches the queue mutex.
            let ticket = self
                .lock
                .csnzi
                .arrive_cached(&mut self.policy, &mut self.cursor);
            if ticket.arrived() {
                self.note_arrival(ticket);
                self.lock.telemetry.incr(LockEvent::ReadFast);
                self.lock.telemetry.record_read_acquire(&acquire);
                self.hold = self.lock.telemetry.timer();
                self.read_ticket = Some(ticket);
                return;
            }
            // C-SNZI closed: a writer owns or has claimed the lock.
            fault::inject("goll.read.before-queue-mutex");
            let mut q = self.lock.queue.lock();
            if self.lock.csnzi.query().open {
                // The writer released before we got the mutex; retry.
                drop(q);
                continue;
            }
            let group = q.join_readers(self.lock.strategy, self.priority);
            self.lock.telemetry.incr(LockEvent::ReadSlow);
            self.lock
                .telemetry
                .trace_enqueued(Arc::as_ptr(&group) as u64);
            drop(q);
            // The releasing thread pre-arrives at the root on our behalf
            // (OpenWithArrivals), so we depart directly from the root.
            group.wait();
            self.lock.telemetry.record_read_acquire(&acquire);
            self.hold = self.lock.telemetry.timer();
            self.read_ticket = Some(Ticket::ROOT);
            return;
        }
    }

    fn unlock_read(&mut self) {
        let ticket = self
            .read_ticket
            .take()
            .expect("unlock_read without read hold");
        self.lock.telemetry.record_read_hold(&self.hold);
        if self.lock.csnzi.depart(ticket) {
            return;
        }
        // We are the last departer of a *closed* C-SNZI: the lock is now in
        // the write-acquired state and we must hand it to a waiter.
        fault::inject("goll.unlock_read.before-handoff");
        let mut q = self.lock.queue.lock();
        let handoff = q.dequeue_for_reader_release(self.lock.policy);
        match handoff {
            Handoff::Writer(_) => {
                // Closed-and-empty is exactly the write-acquired state;
                // nothing to change.
                self.lock.telemetry.incr(LockEvent::HandoffToWriter);
                drop(q);
            }
            Handoff::Readers {
                total,
                writers_remain,
                ..
            } => {
                self.lock.telemetry.incr(LockEvent::HandoffToReaders);
                // Policy let readers overtake the writer that closed the
                // C-SNZI (or that writer's timed acquisition was cancelled
                // and only readers remain); reopen directly into the
                // read-acquired state, staying closed iff writers remain.
                self.lock.csnzi.open_with_arrivals(total, writers_remain);
                drop(q);
            }
            Handoff::None => {
                // Untimed-only operation would make this unreachable (a
                // closed C-SNZI under read hold implies an enqueued
                // writer), but that writer may since have cancelled its
                // timed acquisition, leaving the queue empty. Reopen.
                self.lock.csnzi.open();
                drop(q);
            }
        }
        self.lock.signal(handoff);
    }

    fn lock_write(&mut self) {
        debug_assert!(self.read_ticket.is_none() && !self.write_held);
        let acquire = self.lock.telemetry.begin_write();
        // Fast path: free lock.
        if self.lock.csnzi.close_if_empty() {
            self.lock.telemetry.incr(LockEvent::WriteFast);
            self.lock.telemetry.record_write_acquire(&acquire);
            self.hold = self.lock.telemetry.timer();
            self.write_held = true;
            return;
        }
        let mut q = self.lock.queue.lock();
        // Close (sets the "write wanted" state): if it returns true the
        // lock was free after all and we own it.
        if self.lock.csnzi.close() {
            self.lock.telemetry.incr(LockEvent::WriteSlow);
            drop(q);
            self.lock.telemetry.record_write_acquire(&acquire);
            self.hold = self.lock.telemetry.timer();
            self.write_held = true;
            return;
        }
        let ev = q.enqueue_writer(self.lock.strategy, self.priority);
        self.lock.telemetry.incr(LockEvent::WriteSlow);
        self.lock.telemetry.trace_enqueued(Arc::as_ptr(&ev) as u64);
        drop(q);
        // Whoever releases the lock hands it to us in the write-acquired
        // state before signaling.
        ev.wait();
        self.lock.telemetry.record_write_acquire(&acquire);
        self.hold = self.lock.telemetry.timer();
        self.write_held = true;
    }

    fn unlock_write(&mut self) {
        debug_assert!(self.write_held, "unlock_write without write hold");
        self.write_held = false;
        self.lock.telemetry.record_write_hold(&self.hold);
        let mut q = self.lock.queue.lock();
        let handoff = q.dequeue_for_writer_release(self.lock.policy);
        match handoff {
            Handoff::None => {
                self.lock.csnzi.open();
                drop(q);
            }
            Handoff::Writer(_) => {
                // Lock stays closed-empty (write-acquired) for the next
                // writer.
                self.lock.telemetry.incr(LockEvent::HandoffToWriter);
                drop(q);
            }
            Handoff::Readers {
                total,
                writers_remain,
                ..
            } => {
                self.lock.telemetry.incr(LockEvent::HandoffToReaders);
                self.lock.csnzi.open_with_arrivals(total, writers_remain);
                drop(q);
            }
        }
        self.lock.signal(handoff);
    }

    fn try_lock_read(&mut self) -> bool {
        debug_assert!(self.read_ticket.is_none() && !self.write_held);
        let ticket = self
            .lock
            .csnzi
            .arrive_cached(&mut self.policy, &mut self.cursor);
        if ticket.arrived() {
            self.note_arrival(ticket);
            self.lock.telemetry.incr(LockEvent::ReadFast);
            self.hold = self.lock.telemetry.timer();
            self.read_ticket = Some(ticket);
            true
        } else {
            false
        }
    }

    fn try_lock_write(&mut self) -> bool {
        debug_assert!(self.read_ticket.is_none() && !self.write_held);
        if self.lock.csnzi.close_if_empty() {
            self.lock.telemetry.incr(LockEvent::WriteFast);
            self.hold = self.lock.telemetry.timer();
            self.write_held = true;
            true
        } else {
            false
        }
    }
}

#[cfg(not(loom))]
impl crate::raw::TimedHandle for GollHandle<'_> {
    fn lock_read_deadline(&mut self, deadline: std::time::Instant) -> Result<(), crate::TimedOut> {
        debug_assert!(self.read_ticket.is_none() && !self.write_held);
        let acquire = self.lock.telemetry.begin_read();
        loop {
            let ticket = self
                .lock
                .csnzi
                .arrive_cached(&mut self.policy, &mut self.cursor);
            if ticket.arrived() {
                self.note_arrival(ticket);
                self.lock.telemetry.incr(LockEvent::ReadFast);
                self.lock.telemetry.record_read_acquire(&acquire);
                self.hold = self.lock.telemetry.timer();
                self.read_ticket = Some(ticket);
                return Ok(());
            }
            // Closed; nothing is held yet, so a pre-queue timeout is free.
            if std::time::Instant::now() >= deadline {
                self.lock.telemetry.incr(LockEvent::Timeout);
                return Err(crate::TimedOut);
            }
            fault::inject("goll.read.before-queue-mutex");
            let mut q = self.lock.queue.lock();
            if self.lock.csnzi.query().open {
                drop(q);
                continue;
            }
            let group = q.join_readers(self.lock.strategy, self.priority);
            self.lock.telemetry.incr(LockEvent::ReadSlow);
            self.lock
                .telemetry
                .trace_enqueued(Arc::as_ptr(&group) as u64);
            drop(q);
            fault::inject("goll.read.queued");
            if group.wait_deadline(deadline) {
                self.lock.telemetry.record_read_acquire(&acquire);
                self.hold = self.lock.telemetry.timer();
                self.read_ticket = Some(Ticket::ROOT);
                return Ok(());
            }
            // Timed out. Race: a releaser may concurrently dequeue our
            // group and pre-arrive on our behalf. The queue mutex is the
            // arbiter — if the group is still queued we can leave it;
            // otherwise the hand-off already counted us and we must take
            // the read hold and then undo it with a normal release.
            fault::inject("goll.read.timeout");
            let mut q = self.lock.queue.lock();
            if q.leave_reader_group(&group) {
                drop(q);
                self.lock.telemetry.incr(LockEvent::Timeout);
                self.lock.telemetry.incr(LockEvent::Cancel);
                return Err(crate::TimedOut);
            }
            drop(q);
            fault::inject("goll.read.cancel-vs-handoff");
            group.wait();
            self.hold = self.lock.telemetry.timer();
            self.read_ticket = Some(Ticket::ROOT);
            self.unlock_read();
            self.lock.telemetry.incr(LockEvent::Timeout);
            return Err(crate::TimedOut);
        }
    }

    fn lock_write_deadline(&mut self, deadline: std::time::Instant) -> Result<(), crate::TimedOut> {
        debug_assert!(self.read_ticket.is_none() && !self.write_held);
        let acquire = self.lock.telemetry.begin_write();
        if self.lock.csnzi.close_if_empty() {
            self.lock.telemetry.incr(LockEvent::WriteFast);
            self.lock.telemetry.record_write_acquire(&acquire);
            self.hold = self.lock.telemetry.timer();
            self.write_held = true;
            return Ok(());
        }
        fault::inject("goll.write.before-queue-mutex");
        let mut q = self.lock.queue.lock();
        if self.lock.csnzi.close() {
            self.lock.telemetry.incr(LockEvent::WriteSlow);
            drop(q);
            self.lock.telemetry.record_write_acquire(&acquire);
            self.hold = self.lock.telemetry.timer();
            self.write_held = true;
            return Ok(());
        }
        // Expired before enqueueing: leave without a queue entry. Our
        // `close` may have moved the C-SNZI to closed-with-readers with no
        // writer queued; the last departing reader handles that (its
        // dequeue finds nothing and reopens).
        if std::time::Instant::now() >= deadline {
            drop(q);
            self.lock.telemetry.incr(LockEvent::Timeout);
            return Err(crate::TimedOut);
        }
        let ev = q.enqueue_writer(self.lock.strategy, self.priority);
        self.lock.telemetry.incr(LockEvent::WriteSlow);
        self.lock.telemetry.trace_enqueued(Arc::as_ptr(&ev) as u64);
        drop(q);
        fault::inject("goll.write.queued");
        if ev.wait_deadline(deadline) {
            self.lock.telemetry.record_write_acquire(&acquire);
            self.hold = self.lock.telemetry.timer();
            self.write_held = true;
            return Ok(());
        }
        // Timed out; same arbitration as the read path. An entry still
        // queued can be excised; a dequeued entry means a releaser is
        // handing us the lock in the write-acquired state — accept it,
        // then release normally.
        fault::inject("goll.write.timeout");
        let mut q = self.lock.queue.lock();
        if q.remove_writer(&ev) {
            drop(q);
            self.lock.telemetry.incr(LockEvent::Timeout);
            self.lock.telemetry.incr(LockEvent::Cancel);
            return Err(crate::TimedOut);
        }
        drop(q);
        fault::inject("goll.write.cancel-vs-handoff");
        ev.wait();
        self.hold = self.lock.telemetry.timer();
        self.write_held = true;
        self.unlock_write();
        self.lock.telemetry.incr(LockEvent::Timeout);
        Err(crate::TimedOut)
    }
}

impl UpgradableHandle for GollHandle<'_> {
    fn try_upgrade(&mut self) -> bool {
        let ticket = self
            .read_ticket
            .take()
            .expect("try_upgrade without read hold");
        // §3.2.1: trade our arrival for a direct arrival at the root, then
        // we are the sole holder iff the root shows exactly (direct = 1,
        // tree = 0). The upgrade commits by CASing that word (open flavor)
        // to closed-empty, consuming our arrival.
        let ticket = self.lock.csnzi.trade_to_direct(ticket);
        if self.lock.csnzi.try_upgrade_sole_direct() {
            self.lock.telemetry.incr(LockEvent::Upgrade);
            self.lock.telemetry.record_read_hold(&self.hold);
            self.hold = self.lock.telemetry.timer();
            self.write_held = true;
            true
        } else {
            // Keep holding for reading (with the traded root ticket).
            self.lock.telemetry.incr(LockEvent::UpgradeFail);
            self.read_ticket = Some(ticket);
            false
        }
    }

    fn downgrade(&mut self) {
        debug_assert!(self.write_held, "downgrade without write hold");
        self.write_held = false;
        self.lock.telemetry.incr(LockEvent::Downgrade);
        self.lock.telemetry.record_write_hold(&self.hold);
        // Atomically become a reader, bringing any waiting readers along
        // (they would otherwise sit behind us even though the lock is now
        // read-held).
        let mut q = self.lock.queue.lock();
        let handoff = match self.lock.policy {
            // Non-FIFO policies bring every waiting reader along with the
            // downgrade (they can all share the read hold).
            FairnessPolicy::Alternating
            | FairnessPolicy::ReaderPreference
            | FairnessPolicy::WriterPreference => q.drain_all_readers(),
            FairnessPolicy::Fifo => {
                if matches!(q.groups.front(), Some(Group::Readers { .. })) {
                    q.pop_front()
                } else {
                    Handoff::None
                }
            }
        };
        match &handoff {
            Handoff::Readers { total, .. } => {
                self.lock.telemetry.incr(LockEvent::HandoffToReaders);
                let close = !q.is_empty();
                self.lock.csnzi.open_with_arrivals(total + 1, close);
            }
            Handoff::None => {
                let close = !q.is_empty();
                self.lock.csnzi.open_with_arrivals(1, close);
            }
            Handoff::Writer(_) => unreachable!("downgrade never dequeues writers"),
        }
        drop(q);
        self.lock.signal(handoff);
        self.hold = self.lock.telemetry.timer();
        self.read_ticket = Some(Ticket::ROOT);
    }
}

impl Drop for GollHandle<'_> {
    fn drop(&mut self) {
        debug_assert!(
            self.read_ticket.is_none() && !self.write_held,
            "GOLL handle dropped while holding the lock"
        );
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc as StdArc;

    #[test]
    fn uncontended_read_and_write() {
        let lock = GollLock::new(4);
        let mut h = lock.handle().unwrap();
        h.lock_read();
        h.unlock_read();
        h.lock_write();
        h.unlock_write();
        // Lock ends free.
        let w = lock.csnzi_snapshot();
        assert_eq!((w.surplus(), w.open), (0, true));
    }

    #[test]
    fn guards_release_on_drop() {
        let lock = GollLock::new(2);
        let mut h = lock.handle().unwrap();
        {
            let _g = h.read();
        }
        {
            let _g = h.write();
        }
        assert!(lock.csnzi_snapshot().open);
    }

    #[test]
    fn multiple_concurrent_readers() {
        let lock = GollLock::new(4);
        let mut h1 = lock.handle().unwrap();
        let mut h2 = lock.handle().unwrap();
        h1.lock_read();
        h2.lock_read();
        assert!(lock.csnzi_snapshot().surplus() >= 1);
        h1.unlock_read();
        h2.unlock_read();
        assert_eq!(lock.csnzi_snapshot().surplus(), 0);
    }

    #[test]
    fn try_write_fails_while_read_held() {
        let lock = GollLock::new(2);
        let mut r = lock.handle().unwrap();
        let mut w = lock.handle().unwrap();
        r.lock_read();
        assert!(!w.try_lock_write());
        r.unlock_read();
        assert!(w.try_lock_write());
        w.unlock_write();
    }

    #[test]
    fn try_read_fails_while_write_held() {
        let lock = GollLock::new(2);
        let mut w = lock.handle().unwrap();
        let mut r = lock.handle().unwrap();
        w.lock_write();
        assert!(!r.try_lock_read());
        w.unlock_write();
        assert!(r.try_lock_read());
        r.unlock_read();
    }

    #[test]
    fn capacity_enforced() {
        let lock = GollLock::new(1);
        let _h = lock.handle().unwrap();
        assert!(lock.handle().is_err());
    }

    #[test]
    fn upgrade_sole_reader_succeeds() {
        let lock = GollLock::new(2);
        let mut h = lock.handle().unwrap();
        h.lock_read();
        assert!(h.try_upgrade());
        // Now write-held: no readers may enter.
        let mut r = lock.handle().unwrap();
        assert!(!r.try_lock_read());
        h.unlock_write();
        assert!(r.try_lock_read());
        r.unlock_read();
    }

    #[test]
    fn upgrade_fails_with_two_readers_and_keeps_read_hold() {
        let lock = GollLock::new(2);
        let mut h1 = lock.handle().unwrap();
        let mut h2 = lock.handle().unwrap();
        h1.lock_read();
        h2.lock_read();
        assert!(!h1.try_upgrade());
        // h1 still holds for reading.
        h2.unlock_read();
        assert!(h1.try_upgrade());
        h1.unlock_write();
    }

    #[test]
    fn downgrade_lets_readers_in() {
        let lock = GollLock::new(2);
        let mut w = lock.handle().unwrap();
        let mut r = lock.handle().unwrap();
        w.lock_write();
        w.downgrade();
        // Now read-held: other readers may join, writers may not.
        assert!(r.try_lock_read());
        r.unlock_read();
        w.unlock_read();
        let snap = lock.csnzi_snapshot();
        assert_eq!((snap.surplus(), snap.open), (0, true));
    }

    #[test]
    fn guard_level_upgrade_round_trip() {
        let lock = GollLock::new(2);
        let mut h = lock.handle().unwrap();
        let g = h.read();
        let Ok(g) = g.try_upgrade() else {
            panic!("sole reader upgrades");
        };
        let _g = g.downgrade();
    }

    #[test]
    fn writers_exclude_each_other() {
        const THREADS: usize = 4;
        const ITERS: usize = 2_000;
        let lock = StdArc::new(GollLock::new(THREADS));
        let counter = StdArc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = StdArc::clone(&lock);
            let counter = StdArc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                for _ in 0..ITERS {
                    h.lock_write();
                    let v = counter.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(v, 0, "another writer inside the critical section");
                    counter.fetch_sub(1, Ordering::SeqCst);
                    h.unlock_write();
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert!(lock.csnzi_snapshot().open);
    }

    #[test]
    fn readers_and_writers_exclude() {
        rw_exclusion_stress(FairnessPolicy::Alternating);
    }

    #[test]
    fn readers_and_writers_exclude_fifo() {
        rw_exclusion_stress(FairnessPolicy::Fifo);
    }

    fn rw_exclusion_stress(policy: FairnessPolicy) {
        const THREADS: usize = 6;
        const ITERS: usize = 1_500;
        let lock = StdArc::new(GollLock::builder(THREADS).fairness(policy).build());
        // counter > 0: readers inside; counter == -1: a writer inside.
        let state = StdArc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let lock = StdArc::clone(&lock);
            let state = StdArc::clone(&state);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                let mut rng = oll_util::XorShift64::for_thread(42, tid);
                for _ in 0..ITERS {
                    if rng.percent(70) {
                        h.lock_read();
                        let s = state.fetch_add(1, Ordering::SeqCst);
                        assert!(s >= 0, "reader entered while writer inside");
                        state.fetch_sub(1, Ordering::SeqCst);
                        h.unlock_read();
                    } else {
                        h.lock_write();
                        let s = state.swap(-1, Ordering::SeqCst);
                        assert_eq!(s, 0, "writer entered while lock held");
                        state.store(0, Ordering::SeqCst);
                        h.unlock_write();
                    }
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        let w = lock.csnzi_snapshot();
        assert_eq!((w.surplus(), w.open), (0, true));
    }

    #[test]
    fn spin_then_park_strategy_works() {
        const THREADS: usize = 4;
        let lock = StdArc::new(
            GollLock::builder(THREADS)
                .wait_strategy(WaitStrategy::SpinThenPark)
                .build(),
        );
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = StdArc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                for _ in 0..500 {
                    h.lock_write();
                    h.unlock_write();
                    h.lock_read();
                    h.unlock_read();
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
    }

    /// Sets up: W0 holds for writing; one reader and one writer queue
    /// behind it (in that order); W0 releases. Returns which class entered
    /// first ('R' or 'W').
    fn first_after_writer_release(policy: FairnessPolicy) -> char {
        use std::sync::atomic::AtomicU8;
        use std::time::Duration;

        let lock = StdArc::new(GollLock::builder(4).fairness(policy).build());
        let mut w0 = lock.handle().unwrap();
        w0.lock_write();

        let first = StdArc::new(AtomicU8::new(0));
        let mut threads = Vec::new();
        {
            let lock = StdArc::clone(&lock);
            let first = StdArc::clone(&first);
            threads.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                h.lock_read();
                let _ = first.compare_exchange(0, b'R', Ordering::SeqCst, Ordering::SeqCst);
                h.unlock_read();
            }));
        }
        std::thread::sleep(Duration::from_millis(30)); // reader enqueues first
        {
            let lock = StdArc::clone(&lock);
            let first = StdArc::clone(&first);
            threads.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                h.lock_write();
                let _ = first.compare_exchange(0, b'W', Ordering::SeqCst, Ordering::SeqCst);
                h.unlock_write();
            }));
        }
        std::thread::sleep(Duration::from_millis(30)); // writer enqueues second
        w0.unlock_write();
        for t in threads {
            t.join().unwrap();
        }
        first.load(Ordering::SeqCst) as char
    }

    #[test]
    fn writer_release_handoff_order_follows_policy() {
        // Reader enqueued first, so FIFO and the reader-preferring
        // policies all wake it first; WriterPreference jumps the writer
        // over it.
        assert_eq!(first_after_writer_release(FairnessPolicy::Fifo), 'R');
        assert_eq!(first_after_writer_release(FairnessPolicy::Alternating), 'R');
        assert_eq!(
            first_after_writer_release(FairnessPolicy::ReaderPreference),
            'R'
        );
        assert_eq!(
            first_after_writer_release(FairnessPolicy::WriterPreference),
            'W'
        );
    }

    #[test]
    fn reader_preference_policy_exclusion_stress() {
        rw_exclusion_stress(FairnessPolicy::ReaderPreference);
    }

    #[test]
    fn writer_preference_policy_exclusion_stress() {
        rw_exclusion_stress(FairnessPolicy::WriterPreference);
    }

    #[test]
    #[should_panic(expected = "unlock_read without read hold")]
    fn unbalanced_unlock_panics() {
        let lock = GollLock::new(1);
        let mut h = lock.handle().unwrap();
        h.unlock_read();
    }
}
