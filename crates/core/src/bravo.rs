//! BRAVO-style reader biasing: a zero-shared-write read fast path over
//! any [`RwLockFamily`] lock.
//!
//! The paper's C-SNZI distributes reader arrivals across a tree, but every
//! read acquisition still performs at least one shared-memory RMW (a root
//! or leaf CAS). BRAVO (Dice & Kogan, "BRAVO — Biased Locking for
//! Reader-Writer Locks") removes even that: while a lock is *biased*
//! toward readers, a reader publishes itself in a process-global
//! [visible-readers table](VisibleReaders) — a CAS on a hashed,
//! effectively thread-private cache line — rechecks the lock's `rbias`
//! flag, and is done, never touching the lock word at all. A writer
//! *revokes* the bias: it acquires the underlying lock (stalling new
//! slow-path readers and writers), clears `rbias` (stalling new fast-path
//! readers), then scans the table and waits out every published reader.
//! Fissile Locks (Dice & Kogan, arXiv:2003.05025) showed this bias/revoke
//! pattern composes as a wrapper over an arbitrary underlying lock, which
//! is exactly what [`Bravo<L>`] is.
//!
//! # Memory ordering
//!
//! The reader's *publish → recheck `rbias`* and the writer's *clear
//! `rbias` → scan table* form a store-buffering pattern: each side writes
//! one location then reads the other's. Both sides use `SeqCst` (the
//! publish CAS and `rbias` recheck on the reader; the `rbias` store and
//! the scan loads on the writer) so at least one of them observes the
//! other — either the writer sees the published slot and waits, or the
//! reader sees `rbias == false` and withdraws. Weaker orderings admit
//! executions where *both* proceed, i.e. a reader and writer inside the
//! critical section together.
//!
//! # Re-arming
//!
//! Revocation is expensive (a full table scan) and its cost scales with
//! how long readers hold the lock, so the bias must not flap on mixed
//! workloads. Following BRAVO, each revocation measures its own duration
//! and inhibits re-arming for `revocation_time × multiplier` (default
//! ×[`DEFAULT_REARM_MULTIPLIER`]): the more revocation costs, the longer
//! the lock stays unbiased, bounding the worst-case slowdown from biasing
//! at roughly `1/multiplier`. A slow-path reader that finds the inhibit
//! window expired re-arms the bias.

use crate::raw::{RwHandle, RwLockFamily, TimedHandle, TimedOut, UpgradableHandle};
use oll_hazard::Hazard;
use oll_telemetry::{LockEvent, Telemetry, Timer};
use oll_util::backoff::{spin_until, spin_until_deadline, BackoffPolicy};
use oll_util::fault;
use oll_util::knobs::TuningKnobs;
use oll_util::slots::{SlotError, VisibleReaders};
use oll_util::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Default revocation-inhibit multiplier: after a revocation taking `t`
/// ns, the bias may not re-arm for `9 × t` ns, bounding the throughput
/// lost to revocations at ~10% of a write-heavy run (BRAVO's `N`). The
/// live value is read from the lock's [`TuningKnobs`].
pub const DEFAULT_REARM_MULTIPLIER: u32 = oll_util::knobs::DEFAULT_REARM_MULTIPLIER;

/// Nanoseconds since a process-global epoch; monotonic and cheap enough
/// for the inhibit-window bookkeeping (read on the slow path only).
fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// Process-unique nonzero lock ids (0 means "empty" in the table).
fn next_lock_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

enum Table {
    Global,
    Private(VisibleReaders),
}

/// A reader-biasing layer over any [`RwLockFamily`] lock.
///
/// While the bias is armed, read acquisitions complete through the
/// process-global visible-readers table with **zero shared-memory RMWs**;
/// writers revoke the bias before their first exclusive section and the
/// bias re-arms adaptively once the measured revocation cost has been
/// amortized. Construct with [`Bravo::new`] (biasing on) or
/// [`Bravo::wrapping`] (explicit on/off — off is a pure pass-through, so
/// one code path serves both `--biased` and plain runs).
///
/// ```
/// use oll_core::{Bravo, RollLock, RwHandle, RwLockFamily};
///
/// let lock = Bravo::new(RollLock::new(4));
/// let mut me = lock.handle().unwrap();
/// {
///     let _shared = me.read(); // zero shared RMWs while biased
/// }
/// {
///     let _exclusive = me.write(); // revokes the bias first
/// }
/// ```
pub struct Bravo<L> {
    inner: L,
    /// Reader bias flag: `true` = readers may use the table fast path.
    rbias: CachePadded<AtomicBool>,
    /// `now_ns()` before which the bias must not re-arm.
    inhibit_until_ns: AtomicU64,
    lock_id: usize,
    /// Live policy values (re-arm multiplier, revoke-scan backoff, bias
    /// permission). Defaults to a private block; a controller steers the
    /// lock by sharing one via [`Bravo::tuning`].
    knobs: Arc<TuningKnobs>,
    table: Table,
    enabled: bool,
    hazard: Hazard,
}

impl<L> Bravo<L> {
    /// Wraps `inner` with reader biasing enabled.
    pub fn new(inner: L) -> Self {
        Self::wrapping(inner, true)
    }

    /// Wraps `inner`, biasing only if `biased`. With `biased == false`
    /// every operation passes straight through to the underlying lock.
    pub fn wrapping(inner: L, biased: bool) -> Self {
        Self {
            inner,
            rbias: CachePadded::new(AtomicBool::new(biased)),
            inhibit_until_ns: AtomicU64::new(0),
            lock_id: next_lock_id(),
            knobs: TuningKnobs::shared(),
            table: Table::Global,
            enabled: biased,
            hazard: Hazard::new(),
        }
    }

    /// Sets the revocation-inhibit multiplier (default
    /// [`DEFAULT_REARM_MULTIPLIER`]). `0` re-arms immediately after every
    /// revocation — maximum reader throughput, maximum writer cost.
    /// Writes into the current [`TuningKnobs`]; call after
    /// [`Bravo::tuning`] if both are used.
    pub fn rearm_multiplier(self, multiplier: u32) -> Self {
        self.knobs.set_rearm_multiplier(multiplier);
        self
    }

    /// Sets the backoff policy a revoking writer uses while waiting out
    /// published readers (clamped by `MAX_SPIN_EXPONENT` like every other
    /// spin in this workspace). Writes into the current [`TuningKnobs`];
    /// call after [`Bravo::tuning`] if both are used.
    pub fn backoff(self, policy: BackoffPolicy) -> Self {
        self.knobs.set_backoff_policy(policy);
        self
    }

    /// Shares `knobs` as this lock's live policy source, replacing the
    /// private default block — the hook an online controller (or a test)
    /// uses to steer the re-arm multiplier, revoke-scan backoff, and bias
    /// permission while the lock runs.
    pub fn tuning(mut self, knobs: Arc<TuningKnobs>) -> Self {
        self.knobs = knobs;
        self
    }

    /// The live tuning-knob block this lock reads.
    pub fn knobs(&self) -> &Arc<TuningKnobs> {
        &self.knobs
    }

    /// Gives this lock a private visible-readers table with at least
    /// `slots` entries instead of the process-global one. Meant for tests
    /// that need collision behavior (or its absence) to be deterministic
    /// regardless of what other locks in the process are doing.
    pub fn private_table(mut self, slots: usize) -> Self {
        self.table = Table::Private(VisibleReaders::with_slots(slots));
        self
    }

    /// Whether biasing is enabled (construction-time choice).
    pub fn is_biased(&self) -> bool {
        self.enabled
    }

    /// Whether the bias is currently armed (racy; for tests/diagnostics).
    pub fn bias_armed(&self) -> bool {
        self.enabled && self.rbias.load(Ordering::Relaxed)
    }

    /// The wrapped lock.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Unwraps into the underlying lock.
    pub fn into_inner(self) -> L {
        self.inner
    }

    fn table(&self) -> &VisibleReaders {
        match &self.table {
            Table::Global => VisibleReaders::global(),
            Table::Private(t) => t,
        }
    }
}

impl<L: RwLockFamily> RwLockFamily for Bravo<L> {
    type Handle<'a>
        = BravoHandle<'a, L>
    where
        Self: 'a,
        L: 'a;

    fn handle(&self) -> Result<Self::Handle<'_>, SlotError> {
        self.hazard.attach_telemetry(&self.inner.telemetry());
        Ok(BravoHandle {
            lock: self,
            inner: self.inner.handle()?,
            fast_slot: None,
            hold: Timer::inactive(),
            telemetry: self.inner.telemetry(),
        })
    }

    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn telemetry(&self) -> Telemetry {
        self.inner.telemetry()
    }

    fn hazard(&self) -> Hazard {
        self.hazard.clone()
    }

    fn tuning_knobs(&self) -> Option<&Arc<TuningKnobs>> {
        Some(&self.knobs)
    }
}

/// Unlocks the underlying write lock if dropped during a panic unwind.
///
/// Armed between the underlying write grant and the end of the revocation
/// scan: a panic inside the scan (e.g. an injected fault) must not leave
/// the inner lock exclusively held forever, or every later acquirer —
/// including the poison-aware ones — would hang instead of observing the
/// poisoned state.
struct UnlockOnUnwind<'h, H: RwHandle + ?Sized> {
    inner: &'h mut H,
    armed: bool,
}

impl<H: RwHandle + ?Sized> Drop for UnlockOnUnwind<'_, H> {
    fn drop(&mut self) {
        if self.armed {
            self.inner.unlock_write();
        }
    }
}

/// Erases a published visible-readers slot if dropped during unwind.
///
/// Armed between the table publish and the fast path's success return: a
/// panic in that window (the `rbias` recheck or an injected fault) would
/// otherwise leave a ghost entry that every future revocation scan waits
/// on forever.
struct EraseOnUnwind<'t> {
    table: &'t VisibleReaders,
    slot: usize,
    armed: bool,
}

impl Drop for EraseOnUnwind<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.table.erase(self.slot);
        }
    }
}

/// A registered thread's view of a [`Bravo`] lock.
///
/// Wraps the underlying lock's handle; the only extra per-thread state is
/// which path the current read hold took (`fast_slot`), so a release can
/// undo exactly what the acquisition did.
pub struct BravoHandle<'a, L: RwLockFamily> {
    lock: &'a Bravo<L>,
    inner: L::Handle<'a>,
    /// `Some(slot)` while this handle holds a fast-path (table) read.
    fast_slot: Option<usize>,
    /// Hold timer for fast-path reads (the inner handle times its own).
    hold: Timer,
    telemetry: Telemetry,
}

impl<L: RwLockFamily> BravoHandle<'_, L> {
    /// Attempts the biased fast path. On success the slot is published
    /// and recorded in `fast_slot`. On failure (bias off, collision, or
    /// revocation racing the publish) any published slot has been erased
    /// — the "undo" the timed paths rely on.
    fn try_fast_read(&mut self) -> bool {
        let lock = self.lock;
        if !(lock.enabled && lock.rbias.load(Ordering::SeqCst) && lock.hazard.bias_allowed()) {
            return false;
        }
        let timer = self.telemetry.begin_read();
        let table = lock.table();
        let slot = table.slot_index(lock.lock_id);
        if !table.publish(slot, lock.lock_id) {
            self.telemetry.incr(LockEvent::BiasSlotCollision);
            return false;
        }
        // From here until the success return the slot is published but not
        // yet recorded in `fast_slot`, so guard `Drop` cannot undo it — a
        // panic (injected or otherwise) must erase it on the way out.
        let mut unwind = EraseOnUnwind {
            table,
            slot,
            armed: true,
        };
        fault::inject("bravo.read.published");
        // The recheck half of the store-buffering pattern (see module
        // docs): if a writer cleared `rbias` concurrently it may have
        // scanned past our slot already, so we must withdraw.
        if !lock.rbias.load(Ordering::SeqCst) {
            drop(unwind);
            fault::inject("bravo.read.withdrawn");
            return false;
        }
        self.telemetry.incr(LockEvent::BiasGrant);
        self.telemetry.incr(LockEvent::ReadFast);
        self.telemetry.record_read_acquire(&timer);
        self.hold = self.telemetry.timer();
        unwind.armed = false;
        self.fast_slot = Some(slot);
        true
    }

    /// Re-arms the bias if the inhibit window has expired. Called while
    /// holding an *underlying* read acquisition, which excludes every
    /// writer (revocations run under the underlying write lock), so the
    /// store cannot race a revocation scan.
    fn maybe_rearm(&mut self) {
        let lock = self.lock;
        if lock.enabled
            && !lock.rbias.load(Ordering::Relaxed)
            && lock.hazard.bias_allowed()
            && lock.knobs.bias_allowed()
            && now_ns() >= lock.inhibit_until_ns.load(Ordering::Relaxed)
        {
            lock.rbias.store(true, Ordering::SeqCst);
            self.telemetry.incr(LockEvent::BiasRearm);
        }
    }

    /// Revokes the bias: clears `rbias`, waits out every published
    /// reader, and starts the inhibit window. Must be called while
    /// holding the underlying write lock (which is what serializes
    /// revocations against each other and against re-arms). An associated
    /// fn (not `&mut self`) so callers can keep a disjoint `&mut` borrow
    /// of the inner handle for the unwind guard around the scan.
    fn revoke_bias(lock: &Bravo<L>, telemetry: &Telemetry) {
        // `rbias == false` while we hold the underlying write lock means
        // the last revocation completed and nothing re-armed since; no
        // fast reader can be active (the fast path requires the flag),
        // so the scan can be skipped.
        if !(lock.enabled && lock.rbias.load(Ordering::SeqCst)) {
            return;
        }
        let start = Instant::now();
        lock.rbias.store(false, Ordering::SeqCst);
        fault::inject("bravo.write.revoke-scan");
        let table = lock.table();
        for i in 0..table.len() {
            if table.load(i) == lock.lock_id {
                fault::inject("bravo.write.revoke-mid-scan");
                spin_until(lock.knobs.backoff_policy(), || {
                    table.load(i) != lock.lock_id
                });
            }
        }
        let took = start.elapsed().as_nanos() as u64;
        lock.inhibit_until_ns.store(
            now_ns().saturating_add(took.saturating_mul(u64::from(lock.knobs.rearm_multiplier()))),
            Ordering::Relaxed,
        );
        telemetry.incr(LockEvent::BiasRevoke);
    }

    /// Non-blocking revocation for the `try` path: clears `rbias` and
    /// scans the table once. If a published reader is sighted the bias is
    /// restored and `false` returned — waiting the reader out would turn
    /// `try_lock_write` into a blocking call (and deadlock a thread that
    /// probes for a writer while another of its handles holds a fast
    /// read). Must be called while holding the underlying write lock.
    fn try_revoke_bias(lock: &Bravo<L>, telemetry: &Telemetry) -> bool {
        if !(lock.enabled && lock.rbias.load(Ordering::SeqCst)) {
            return true;
        }
        lock.rbias.store(false, Ordering::SeqCst);
        fault::inject("bravo.write.revoke-scan");
        let table = lock.table();
        if (0..table.len()).any(|i| table.load(i) == lock.lock_id) {
            // Safe to restore while we hold the underlying write lock:
            // no other writer can be mid-revoke.
            lock.rbias.store(true, Ordering::SeqCst);
            return false;
        }
        lock.inhibit_until_ns.store(now_ns(), Ordering::Relaxed);
        telemetry.incr(LockEvent::BiasRevoke);
        true
    }

    /// Deadline-bounded revocation for the timed write path: like
    /// [`Self::revoke_bias`] but gives up (restoring the bias) if a
    /// published reader outlasts `deadline`. Must be called while holding
    /// the underlying write lock. Returns `false` on timeout.
    fn revoke_bias_deadline(lock: &Bravo<L>, telemetry: &Telemetry, deadline: Instant) -> bool {
        if !(lock.enabled && lock.rbias.load(Ordering::SeqCst)) {
            return true;
        }
        let start = Instant::now();
        lock.rbias.store(false, Ordering::SeqCst);
        fault::inject("bravo.write.revoke-scan");
        let table = lock.table();
        for i in 0..table.len() {
            if table.load(i) == lock.lock_id {
                fault::inject("bravo.write.revoke-mid-scan");
                if !spin_until_deadline(lock.knobs.backoff_policy(), deadline, || {
                    table.load(i) != lock.lock_id
                }) {
                    // Safe to restore while we hold the underlying write
                    // lock: no other writer can be mid-revoke.
                    lock.rbias.store(true, Ordering::SeqCst);
                    return false;
                }
            }
        }
        let took = start.elapsed().as_nanos() as u64;
        lock.inhibit_until_ns.store(
            now_ns().saturating_add(took.saturating_mul(u64::from(lock.knobs.rearm_multiplier()))),
            Ordering::Relaxed,
        );
        telemetry.incr(LockEvent::BiasRevoke);
        true
    }
}

impl<L: RwLockFamily> RwHandle for BravoHandle<'_, L> {
    fn hazard(&self) -> Hazard {
        self.lock.hazard.clone()
    }

    fn lock_read(&mut self) {
        if self.try_fast_read() {
            return;
        }
        self.inner.lock_read();
        self.maybe_rearm();
    }

    fn unlock_read(&mut self) {
        match self.fast_slot.take() {
            Some(slot) => {
                self.telemetry.record_read_hold(&self.hold);
                debug_assert_eq!(self.lock.table().load(slot), self.lock.lock_id);
                self.lock.table().erase(slot);
            }
            None => self.inner.unlock_read(),
        }
    }

    fn lock_write(&mut self) {
        self.inner.lock_write();
        let mut unwind = UnlockOnUnwind {
            inner: &mut self.inner,
            armed: true,
        };
        Self::revoke_bias(self.lock, &self.telemetry);
        unwind.armed = false;
    }

    fn unlock_write(&mut self) {
        self.inner.unlock_write();
    }

    fn try_lock_read(&mut self) -> bool {
        if self.try_fast_read() {
            return true;
        }
        if self.inner.try_lock_read() {
            self.maybe_rearm();
            return true;
        }
        false
    }

    fn try_lock_write(&mut self) -> bool {
        if !self.inner.try_lock_write() {
            return false;
        }
        let mut unwind = UnlockOnUnwind {
            inner: &mut self.inner,
            armed: true,
        };
        if !Self::try_revoke_bias(self.lock, &self.telemetry) {
            // A fast reader is published; waiting it out would block, so
            // the probe fails like it would against an underlying reader.
            // The guard's drop performs the undo on this path too.
            return false;
        }
        unwind.armed = false;
        true
    }
}

#[cfg(not(loom))]
impl<'a, L: RwLockFamily> TimedHandle for BravoHandle<'a, L>
where
    L::Handle<'a>: TimedHandle,
{
    fn lock_read_deadline(&mut self, deadline: Instant) -> Result<(), TimedOut> {
        // The fast path never blocks; on failure it has already undone
        // any published slot, leaving no trace (the timed contract).
        if self.try_fast_read() {
            return Ok(());
        }
        self.inner.lock_read_deadline(deadline)?;
        self.maybe_rearm();
        Ok(())
    }

    fn lock_write_deadline(&mut self, deadline: Instant) -> Result<(), TimedOut> {
        self.inner.lock_write_deadline(deadline)?;
        // The underlying grant alone does not establish exclusion — fast
        // readers are invisible to the inner lock — so the revocation
        // scan honors the deadline too: if a published reader outlasts
        // it, undo the grant (via the guard's drop) and report a timeout.
        let mut unwind = UnlockOnUnwind {
            inner: &mut self.inner,
            armed: true,
        };
        if !Self::revoke_bias_deadline(self.lock, &self.telemetry, deadline) {
            return Err(TimedOut);
        }
        unwind.armed = false;
        Ok(())
    }
}

impl<'a, L: RwLockFamily> UpgradableHandle for BravoHandle<'a, L>
where
    L::Handle<'a>: UpgradableHandle,
{
    fn try_upgrade(&mut self) -> bool {
        let lock = self.lock;
        match self.fast_slot {
            // Slow-path read hold: let the underlying lock check for
            // rival *underlying* readers, then make sure no *fast*
            // readers are hiding in the table. The table check must not
            // block (two readers upgrading must both be able to fail),
            // so on sighting one we restore the bias and downgrade back.
            None => {
                if !self.inner.try_upgrade() {
                    return false;
                }
                if lock.enabled && lock.rbias.load(Ordering::SeqCst) {
                    lock.rbias.store(false, Ordering::SeqCst);
                    let table = lock.table();
                    let occupied = (0..table.len()).any(|i| table.load(i) == lock.lock_id);
                    if occupied {
                        // Safe to restore while we hold the underlying
                        // write lock: no other writer can be mid-revoke.
                        lock.rbias.store(true, Ordering::SeqCst);
                        self.inner.downgrade();
                        self.telemetry.incr(LockEvent::UpgradeFail);
                        return false;
                    }
                    lock.inhibit_until_ns.store(now_ns(), Ordering::Relaxed);
                    self.telemetry.incr(LockEvent::BiasRevoke);
                }
                true
            }
            // Fast-path read hold: we are invisible to the underlying
            // lock, so "sole reader" means taking the underlying write
            // lock outright and finding no *other* published reader.
            Some(slot) => {
                if !self.inner.try_lock_write() {
                    self.telemetry.incr(LockEvent::UpgradeFail);
                    return false;
                }
                lock.rbias.store(false, Ordering::SeqCst);
                let table = lock.table();
                let rival = (0..table.len()).any(|i| i != slot && table.load(i) == lock.lock_id);
                if rival {
                    lock.rbias.store(true, Ordering::SeqCst);
                    self.inner.unlock_write();
                    self.telemetry.incr(LockEvent::UpgradeFail);
                    return false;
                }
                self.telemetry.record_read_hold(&self.hold);
                table.erase(slot);
                self.fast_slot = None;
                lock.inhibit_until_ns.store(now_ns(), Ordering::Relaxed);
                self.telemetry.incr(LockEvent::BiasRevoke);
                self.telemetry.incr(LockEvent::Upgrade);
                true
            }
        }
    }

    fn downgrade(&mut self) {
        self.inner.downgrade();
        self.maybe_rearm();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::goll::GollLock;
    use crate::roll::RollLock;
    use std::sync::atomic::{AtomicU32, AtomicUsize};
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn fast_path_read_round_trip() {
        let lock = Bravo::new(RollLock::new(2)).private_table(64);
        assert!(lock.is_biased());
        assert!(lock.bias_armed());
        let mut h = lock.handle().unwrap();
        for _ in 0..100 {
            h.lock_read();
            assert!(h.fast_slot.is_some(), "biased read must take the table");
            h.unlock_read();
        }
        assert!(lock.bias_armed(), "pure reads never revoke");
    }

    #[test]
    fn disabled_wrapper_is_pass_through() {
        let lock = Bravo::wrapping(RollLock::new(2), false).private_table(64);
        assert!(!lock.is_biased());
        assert!(!lock.bias_armed());
        let mut h = lock.handle().unwrap();
        h.lock_read();
        assert!(h.fast_slot.is_none());
        h.unlock_read();
        h.lock_write();
        h.unlock_write();
        assert!(!lock.bias_armed(), "disabled lock never arms");
    }

    #[test]
    fn writer_revokes_and_reader_rearms() {
        let lock = Bravo::new(RollLock::new(2))
            .private_table(64)
            .rearm_multiplier(0);
        let mut h = lock.handle().unwrap();
        h.lock_write();
        assert!(!lock.bias_armed(), "write acquisition revokes the bias");
        h.unlock_write();
        // With multiplier 0 the inhibit window is already over, so the
        // next slow-path read re-arms.
        h.lock_read();
        h.unlock_read();
        assert!(lock.bias_armed(), "slow read past the window re-arms");
        // And the read after that is fast again.
        h.lock_read();
        assert!(h.fast_slot.is_some());
        h.unlock_read();
    }

    #[test]
    fn large_multiplier_inhibits_rearm() {
        let lock = Bravo::new(RollLock::new(2))
            .private_table(64)
            .rearm_multiplier(u32::MAX);
        let mut h = lock.handle().unwrap();
        // Force a revocation that waits on a published reader so the
        // measured revocation time (and thus the window) is nonzero.
        let lock2 = &lock;
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            let b2 = &barrier;
            s.spawn(move || {
                let mut r = lock2.handle().unwrap();
                r.lock_read();
                b2.wait();
                std::thread::sleep(Duration::from_millis(2));
                r.unlock_read();
            });
            barrier.wait();
            h.lock_write();
            h.unlock_write();
        });
        assert!(!lock.bias_armed());
        h.lock_read();
        h.unlock_read();
        assert!(
            !lock.bias_armed(),
            "saturating window must still be inhibiting"
        );
    }

    #[test]
    fn rw_exclusion_stress() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 2_000;
        let lock = Bravo::new(GollLock::new(THREADS)).private_table(256);
        let value = AtomicU32::new(0);
        let readers_inside = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for tid in 0..THREADS {
                let lock = &lock;
                let value = &value;
                let readers_inside = &readers_inside;
                s.spawn(move || {
                    let mut h = lock.handle().unwrap();
                    let mut rng = oll_util::XorShift64::for_thread(11, tid);
                    for _ in 0..ROUNDS {
                        if rng.percent(80) {
                            h.lock_read();
                            readers_inside.fetch_add(1, Ordering::SeqCst);
                            let v = value.load(Ordering::SeqCst);
                            assert_eq!(v % 2, 0, "writer active during read");
                            readers_inside.fetch_sub(1, Ordering::SeqCst);
                            h.unlock_read();
                        } else {
                            h.lock_write();
                            assert_eq!(
                                readers_inside.load(Ordering::SeqCst),
                                0,
                                "reader visible inside write section"
                            );
                            value.fetch_add(1, Ordering::SeqCst);
                            value.fetch_add(1, Ordering::SeqCst);
                            h.unlock_write();
                        }
                    }
                });
            }
        });
        assert_eq!(value.load(Ordering::SeqCst) % 2, 0);
    }

    #[test]
    fn try_paths_work_and_undo() {
        let lock = Bravo::new(RollLock::new(2)).private_table(64);
        let mut a = lock.handle().unwrap();
        let mut b = lock.handle().unwrap();
        assert!(a.try_lock_read());
        assert!(a.fast_slot.is_some());
        // A published fast reader makes the probe fail without blocking,
        // and the bias survives the failed attempt.
        assert!(!b.try_lock_write(), "fast reader must repel try-writer");
        assert!(lock.bias_armed());
        a.unlock_read();
        assert!(b.try_lock_write());
        assert!(!lock.bias_armed());
        b.unlock_write();
    }

    #[test]
    fn upgrade_from_fast_read_when_sole() {
        let lock = Bravo::new(GollLock::new(2)).private_table(64);
        let mut h = lock.handle().unwrap();
        h.lock_read();
        assert!(h.fast_slot.is_some());
        assert!(h.try_upgrade(), "sole fast reader must upgrade");
        assert!(h.fast_slot.is_none());
        h.unlock_write();
    }

    #[test]
    fn upgrade_fails_with_rival_fast_reader_and_keeps_read() {
        let lock = Bravo::new(GollLock::new(2)).private_table(64);
        let mut a = lock.handle().unwrap();
        a.lock_read();
        std::thread::scope(|s| {
            let lock = &lock;
            s.spawn(move || {
                let mut b = lock.handle().unwrap();
                b.lock_read();
                // b usually lands in its own slot; a hash collision would
                // route it to the underlying lock instead, and either way
                // a's published slot must make the upgrade fail.
                assert!(!b.try_upgrade(), "rival fast reader visible");
                b.unlock_read();
            });
        });
        // After the rival left, the (re-armed or still-armed) upgrade works.
        assert!(a.try_upgrade());
        a.downgrade();
        a.unlock_read();
    }

    #[test]
    fn upgrade_from_slow_read_revokes_fast_rivals_check() {
        // Reader bias off at the moment of the slow read (post-write),
        // so the read lands on the underlying lock; upgrade must succeed
        // when the table is empty.
        let lock = Bravo::new(GollLock::new(2))
            .private_table(64)
            .rearm_multiplier(u32::MAX);
        let mut h = lock.handle().unwrap();
        h.lock_write();
        h.unlock_write();
        h.lock_read();
        assert!(h.fast_slot.is_none(), "inhibited bias forces slow path");
        assert!(h.try_upgrade());
        h.unlock_write();
    }

    #[cfg(not(loom))]
    #[test]
    fn timed_read_fast_path_and_timeout_undo() {
        let lock = Bravo::new(GollLock::new(2)).private_table(64);
        let mut a = lock.handle().unwrap();
        // Fast path satisfies the deadline read instantly.
        assert!(a
            .lock_read_deadline(Instant::now() + Duration::from_secs(1))
            .is_ok());
        assert!(a.fast_slot.is_some());
        a.unlock_read();

        // A held write forces the timed read onto the underlying slow
        // path, where it must time out cleanly (no slot left behind).
        a.lock_write();
        std::thread::scope(|s| {
            let lock = &lock;
            s.spawn(move || {
                let mut b = lock.handle().unwrap();
                let r = b.lock_read_deadline(Instant::now() + Duration::from_millis(10));
                assert_eq!(r, Err(TimedOut));
                assert!(b.fast_slot.is_none());
            });
        });
        a.unlock_write();
        // The failed reader left nothing: a fresh writer needs no wait.
        let table_empty = (0..lock.table().len()).all(|i| lock.table().load(i) != lock.lock_id);
        assert!(table_empty, "timed-out reader left a published slot");
    }

    #[cfg(not(loom))]
    #[test]
    fn timed_write_revokes() {
        let lock = Bravo::new(GollLock::new(2)).private_table(64);
        let mut h = lock.handle().unwrap();
        assert!(h
            .lock_write_deadline(Instant::now() + Duration::from_secs(1))
            .is_ok());
        assert!(!lock.bias_armed(), "timed write must still revoke");
        h.unlock_write();
    }

    #[test]
    fn facade_methods_delegate() {
        let lock = Bravo::new(RollLock::new(3)).private_table(64);
        assert_eq!(lock.capacity(), 3);
        assert_eq!(lock.name(), "ROLL");
        assert_eq!(lock.inner().capacity(), 3);
        let inner = lock.into_inner();
        assert_eq!(inner.capacity(), 3);
    }

    #[test]
    fn guards_compose_with_bravo() {
        let lock = Bravo::new(GollLock::new(2)).private_table(64);
        let mut h = lock.handle().unwrap();
        {
            let _r = h.read();
        }
        {
            let _w = h.write();
        }
        let r = h.read();
        match r.try_upgrade() {
            Ok(w) => drop(w.downgrade()),
            Err(r) => drop(r),
        };
    }
}
