//! NUMA cohort writer gate: per-socket writer queues with batched
//! inter-node hand-off, layered over the shared global FIFO queue.
//!
//! Every writer in FOLL/ROLL normally swings on one global queue tail, so
//! write-heavy workloads pay a cross-socket cache-line migration per
//! hand-off. Cohort locking (Fissile Locks, RMA locks) fixes that by
//! preferring same-node successors: the gate gives each locality rank
//! (socket, per [`oll_util::topology`]) its own writer-queue tail, and a
//! releasing writer hands the lock to the next waiter *in its own cohort*
//! — a same-socket transfer — up to a tunable batch bound before it must
//! release through the global queue, where remote cohorts (and readers)
//! wait.
//!
//! The gate is a layer *above* the unchanged global queue, not a
//! replacement for it:
//!
//! * An uncontended writer bypasses the gate entirely: when its cohort
//!   queue is empty *and* the global queue is idle there is nothing to
//!   batch, so the handle takes the plain writer path (two atomic RMWs,
//!   same as a cohort-free build) and releases with the plain
//!   `writer_unlock`. The check is heuristic — losing the race merely
//!   queues the writer globally, which the protocol already admits.
//! * A writer first enqueues on its cohort tail (an MCS-style CAS-free
//!   `swap`). The cohort **head** proceeds to the ordinary global
//!   [`QueueCore::writer_lock`]; everyone behind it spins on its cohort
//!   node.
//! * Release resolves the cohort successor first. While the running batch
//!   is under the bound, the grant word passes the lock itself
//!   (`WITH_LOCK`, with the batch counter and the global owner node) —
//!   the global queue is never touched, and the owner's global writer
//!   node stays in place, lent to the batch.
//! * Once the batch bound is hit (or the cohort empties), the releaser
//!   runs the global release *first* and only then passes bare cohort
//!   headship on, so the successor re-queues globally **behind** any
//!   remote writer already waiting. A lone remote writer is therefore
//!   never passed over more than `cohort_batch` times: the starvation
//!   bound.
//!
//! Cohort nodes reuse the existing four-state
//! [`node_state`](crate::node_state) word, so timed acquisitions cancel
//! exactly like global ones: a timed-out waiter CASes `WAITING →
//! ABANDONED` and the granter excises the node from the cohort queue,
//! marking it `RELEASED` for the owner to reclaim.
//!
//! On hardware where topology detection falls back (one locality rank),
//! every writer lands in one cohort and the gate degrades to a single
//! extra tail word in front of today's single-tail behaviour.

use crate::foll::node_state::{ABANDONED, GRANTED, RELEASED, WAITING};
#[cfg(not(loom))]
use crate::foll::WriteTimeout;
use crate::foll::{NodeRef, QueueCore};
use oll_telemetry::LockEvent;
use oll_util::backoff::spin_until;
use oll_util::fault;
use oll_util::knobs::TuningKnobs;
use oll_util::sync::{AtomicU32, AtomicU64, Ordering};
use oll_util::CachePadded;

/// Default batch bound: local hand-offs per cohort tenure before the
/// release is forced through the global queue. The live value is read
/// from the lock's [`TuningKnobs`].
pub const DEFAULT_COHORT_BATCH: u32 = oll_util::knobs::DEFAULT_COHORT_BATCH;

/// Grant-word flag: the hand-off carries the global lock itself (the
/// grantee inherits the owner's place in the global queue). Absent, the
/// hand-off carries bare cohort headship and the grantee must acquire
/// the global lock on its own.
const WITH_LOCK: u64 = 1 << 63;

/// Packs a lock-carrying grant word: the batch counter in bits `32..63`
/// and the raw [`NodeRef`] of the *global* owner node in the low 32.
fn pack_grant(owner: NodeRef, batch: u32) -> u64 {
    debug_assert_eq!(u64::from(batch) >> 31, 0);
    WITH_LOCK | (u64::from(batch) << 32) | u64::from(owner.raw())
}

/// Trace causality token for a cohort node. High bit set so it can never
/// collide with the [`NodeRef`] raw values the global queue stamps on its
/// `enqueued`/`granted` markers.
fn cohort_token(slot: usize) -> u64 {
    u64::from(0x8000_0000u32 | (slot as u32 + 1))
}

/// One slot's cohort-queue node: the MCS link and hand-off state plus the
/// packed grant word the granter deposits before flipping the state.
pub(crate) struct CohortNode {
    /// Cohort successor as `slot + 1`; `0` = nil.
    qnext: AtomicU32,
    /// Four-state hand-off word ([`node_state`](crate::node_state)).
    state: AtomicU32,
    /// What the grant carried; valid only after `state` reads `GRANTED`.
    grant: AtomicU64,
}

impl CohortNode {
    fn new() -> Self {
        Self {
            qnext: AtomicU32::new(0),
            state: AtomicU32::new(GRANTED),
            grant: AtomicU64::new(0),
        }
    }
}

/// The per-lock cohort gate: one writer-queue tail per locality rank and
/// one cohort node per thread slot.
pub(crate) struct CohortGate {
    /// Per-cohort queue tails (`slot + 1`; `0` = empty).
    ctails: Box<[CachePadded<AtomicU32>]>,
    /// One cohort node per thread slot (same indexing as writer nodes).
    nodes: Box<[CachePadded<CohortNode>]>,
    /// Live knobs; the batch bound (≥ 1) is read per release so a
    /// controller can re-balance local throughput against remote
    /// starvation while the lock runs.
    knobs: std::sync::Arc<TuningKnobs>,
    /// Number of cohorts (≥ 1).
    cohorts: usize,
}

impl CohortGate {
    pub(crate) fn new(capacity: usize, cohorts: usize, knobs: std::sync::Arc<TuningKnobs>) -> Self {
        let cohorts = cohorts.max(1);
        Self {
            ctails: (0..cohorts)
                .map(|_| CachePadded::new(AtomicU32::new(0)))
                .collect(),
            nodes: (0..capacity.max(1))
                .map(|_| CachePadded::new(CohortNode::new()))
                .collect(),
            knobs,
            cohorts,
        }
    }

    pub(crate) fn cohorts(&self) -> usize {
        self.cohorts
    }

    pub(crate) fn batch_limit(&self) -> u32 {
        self.knobs.cohort_batch()
    }

    fn node(&self, slot: usize) -> &CohortNode {
        &self.nodes[slot]
    }
}

/// Proof of a cohort-gated write hold: which cohort queue we came through,
/// whose *global* writer node actually holds the lock (the batch may have
/// inherited it from an earlier cohort member), and how many local
/// hand-offs this tenure has already burned.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CohortHold {
    pub(crate) cohort: usize,
    pub(crate) owner_slot: usize,
    pub(crate) batch: u32,
}

/// How a cohort release discharged the lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CohortRelease {
    /// The lock passed to a same-cohort waiter; the owner's global node
    /// stays lent out (its handle must reclaim before the node's next
    /// use if the owner is the releaser).
    LocalHandoff,
    /// Released through the global queue; the releaser's own node held
    /// the lock, so it is immediately reusable.
    GlobalReleasedOwn,
    /// Released through the global queue on behalf of another slot's
    /// node (that node was marked `RELEASED` for its owner to reclaim).
    GlobalReleasedForeign,
    /// Nothing global to release (the caller held only cohort headship).
    NoGlobal,
}

/// Outcome of a timed cohort write acquisition that did not get the lock.
#[cfg(not(loom))]
pub(crate) enum CohortTimeout {
    /// Everything was undone; both of the slot's nodes are reusable.
    Clean,
    /// The *global* writer node was left `ABANDONED` in the global queue
    /// (the handle must `reclaim_writer_node` before its next use).
    WriterAbandoned,
    /// The *cohort* node was left `ABANDONED` in its cohort queue (the
    /// handle must [`QueueCore::cohort_reclaim_node`] before its next
    /// use).
    CohortAbandoned,
}

impl QueueCore {
    /// Whether a cohort-gated writer may skip the cohort queue entirely
    /// and acquire like a plain writer: nobody waits in its cohort and
    /// the global queue is idle, so the gate has nothing to batch and
    /// would only add its two bookkeeping RMWs (the cohort-tail swap and
    /// the release-side tail CAS) to an uncontended acquisition.
    ///
    /// The check is a heuristic, not a lock: losing the race after a
    /// stale read just means the bypasser enqueues on the global queue
    /// like any remote writer, which the protocol already admits. A
    /// running batch can never be missed — while the lock circulates
    /// locally the owner's lent global node keeps the global tail
    /// non-nil, so the bypass never fires mid-batch.
    pub(crate) fn cohort_bypass_ready(&self, cohort: usize) -> bool {
        let gate = self
            .cohort
            .as_ref()
            .expect("cohort_bypass_ready without a gate");
        gate.ctails[cohort].load(Ordering::Acquire) == 0 && self.load_tail().is_nil()
    }

    /// Which cohort the current acquisition should queue on: an explicit
    /// handle pin, else the calling thread's detected locality rank.
    pub(crate) fn pick_cohort(&self, pinned: Option<usize>) -> usize {
        let gate = self.cohort.as_ref().expect("pick_cohort without a gate");
        match pinned {
            Some(c) => c % gate.cohorts,
            None => oll_util::topology::cohort_of_current() % gate.cohorts,
        }
    }

    /// Cohort-gated `WriterLock`: enqueue on the cohort tail, then either
    /// receive the lock directly from a same-cohort predecessor or become
    /// cohort head and take the ordinary global
    /// [`writer_lock`](Self::writer_lock) path.
    ///
    /// `pending_reclaim` is the handle's abandoned-global-node flag; the
    /// reclaim is deferred until this call actually needs the global
    /// writer node (a `WITH_LOCK` grant never touches it — it may still
    /// be lent to a running batch).
    pub(crate) fn cohort_lock(
        &self,
        slot: usize,
        cohort: usize,
        wait_for_active: bool,
        pending_reclaim: &mut bool,
    ) -> CohortHold {
        let gate = self.cohort.as_ref().expect("cohort_lock without a gate");
        let me = gate.node(slot);
        me.qnext.store(0, Ordering::Relaxed);
        let pred = gate.ctails[cohort].swap(slot as u32 + 1, Ordering::AcqRel);
        if pred == 0 {
            // Cohort head: acquire the global lock the ordinary way.
            self.ensure_global_node(slot, pending_reclaim);
            self.writer_lock(slot, wait_for_active);
            return CohortHold {
                cohort,
                owner_slot: slot,
                batch: 0,
            };
        }
        let acquire = self.telemetry.begin_write();
        // WAITING before the link store: the predecessor finds us only
        // through qnext, so it cannot grant us before we start waiting.
        me.state.store(WAITING, Ordering::Relaxed);
        gate.node(pred as usize - 1)
            .qnext
            .store(slot as u32 + 1, Ordering::Release);
        fault::inject("cohort.write.enqueued");
        self.telemetry.trace_enqueued(cohort_token(slot));
        spin_until(self.backoff(), || {
            me.state.load(Ordering::Acquire) == GRANTED
        });
        let word = me.grant.load(Ordering::Acquire);
        if word & WITH_LOCK != 0 {
            // Same-socket hand-off: we inherit the owner's global node.
            self.telemetry.incr(LockEvent::WriteSlow);
            self.telemetry.record_write_acquire(&acquire);
            CohortHold {
                cohort,
                owner_slot: NodeRef::from_raw((word & 0xFFFF_FFFF) as u32).index(),
                batch: ((word >> 32) & 0x7FFF_FFFF) as u32,
            }
        } else {
            // Bare cohort headship: the previous batch released globally
            // (or relinquished); take the global path from here.
            self.ensure_global_node(slot, pending_reclaim);
            self.writer_lock(slot, wait_for_active);
            CohortHold {
                cohort,
                owner_slot: slot,
                batch: 0,
            }
        }
    }

    /// Timed [`cohort_lock`](Self::cohort_lock). Gives up at `deadline`,
    /// undoing the acquisition; the variant says which of the slot's two
    /// queue nodes (if any) was left behind for later reclaim.
    #[cfg(not(loom))]
    pub(crate) fn cohort_lock_deadline(
        &self,
        slot: usize,
        cohort: usize,
        wait_for_active: bool,
        deadline: std::time::Instant,
        pending_reclaim: &mut bool,
    ) -> Result<CohortHold, CohortTimeout> {
        use oll_util::backoff::spin_until_deadline;

        let gate = self.cohort.as_ref().expect("cohort_lock without a gate");
        let me = gate.node(slot);
        me.qnext.store(0, Ordering::Relaxed);
        let pred = gate.ctails[cohort].swap(slot as u32 + 1, Ordering::AcqRel);
        if pred == 0 {
            self.ensure_global_node(slot, pending_reclaim);
            return match self.writer_lock_deadline(slot, wait_for_active, deadline) {
                Ok(()) => Ok(CohortHold {
                    cohort,
                    owner_slot: slot,
                    batch: 0,
                }),
                Err(wt) => {
                    // We still head the cohort: pass headship on (or
                    // detach the tail) before reporting the timeout.
                    self.cohort_release(slot, cohort, None);
                    Err(match wt {
                        WriteTimeout::Clean => CohortTimeout::Clean,
                        WriteTimeout::Abandoned => CohortTimeout::WriterAbandoned,
                    })
                }
            };
        }
        let acquire = self.telemetry.begin_write();
        me.state.store(WAITING, Ordering::Relaxed);
        gate.node(pred as usize - 1)
            .qnext
            .store(slot as u32 + 1, Ordering::Release);
        fault::inject("cohort.write.enqueued");
        self.telemetry.trace_enqueued(cohort_token(slot));
        let timed_out = !spin_until_deadline(self.backoff(), deadline, || {
            me.state.load(Ordering::Acquire) == GRANTED
        });
        if timed_out {
            fault::inject("cohort.write.abandon-self");
            if me
                .state
                .compare_exchange(WAITING, ABANDONED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // The granter will excise us and mark the node RELEASED.
                return Err(CohortTimeout::CohortAbandoned);
            }
            // The grant beat the cancel; undo it below.
        }
        let word = me.grant.load(Ordering::Acquire);
        if word & WITH_LOCK != 0 {
            let hold = CohortHold {
                cohort,
                owner_slot: NodeRef::from_raw((word & 0xFFFF_FFFF) as u32).index(),
                batch: ((word >> 32) & 0x7FFF_FFFF) as u32,
            };
            if timed_out {
                // Granted at the wire: release properly, report timeout.
                // The outcome governs our global node exactly as in an
                // ordinary unlock — lent out on a local hand-off,
                // discharged (clearing any earlier lend) on a global
                // release through it.
                let outcome = self.cohort_release(slot, cohort, Some(hold));
                if hold.owner_slot == slot {
                    *pending_reclaim = outcome == CohortRelease::LocalHandoff;
                }
                return Err(CohortTimeout::Clean);
            }
            self.telemetry.incr(LockEvent::WriteSlow);
            self.telemetry.record_write_acquire(&acquire);
            return Ok(hold);
        }
        if timed_out {
            self.cohort_release(slot, cohort, None);
            return Err(CohortTimeout::Clean);
        }
        self.ensure_global_node(slot, pending_reclaim);
        match self.writer_lock_deadline(slot, wait_for_active, deadline) {
            Ok(()) => Ok(CohortHold {
                cohort,
                owner_slot: slot,
                batch: 0,
            }),
            Err(wt) => {
                self.cohort_release(slot, cohort, None);
                Err(match wt {
                    WriteTimeout::Clean => CohortTimeout::Clean,
                    WriteTimeout::Abandoned => CohortTimeout::WriterAbandoned,
                })
            }
        }
    }

    /// Cohort-gated release. With a `hold` this discharges the global
    /// lock (locally while the batch bound allows, globally otherwise);
    /// with `None` it merely passes cohort headship on (the timed-out
    /// head's relinquish path). Cascades over abandoned cohort waiters,
    /// excising them like the global queue's grant does.
    pub(crate) fn cohort_release(
        &self,
        me_slot: usize,
        cohort: usize,
        hold: Option<CohortHold>,
    ) -> CohortRelease {
        let gate = self.cohort.as_ref().expect("cohort_release without a gate");
        let me = gate.node(me_slot);
        let mut succ = me.qnext.load(Ordering::Acquire);
        if succ == 0 {
            fault::inject("cohort.release.tail-cas");
            if gate.ctails[cohort]
                .compare_exchange(me_slot as u32 + 1, 0, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Cohort empty: the lock (if held) goes out globally.
                return match hold {
                    Some(h) => self.cohort_global_release(me_slot, h),
                    None => CohortRelease::NoGlobal,
                };
            }
            // Someone is linking in behind us; wait for the link.
            spin_until(self.backoff(), || me.qnext.load(Ordering::Acquire) != 0);
            succ = me.qnext.load(Ordering::Acquire);
        }
        me.qnext.store(0, Ordering::Relaxed);
        // Decide what the successor gets: the lock itself (batch bound
        // permitting) or bare headship after a global release.
        let (word, outcome) = match hold {
            Some(h) if h.batch < gate.batch_limit() => (
                pack_grant(NodeRef::writer(h.owner_slot), h.batch + 1),
                CohortRelease::LocalHandoff,
            ),
            Some(h) => {
                self.telemetry.incr(LockEvent::CohortBatchExhausted);
                // Global release *first*, so the successor re-queues
                // behind any remote writer already waiting globally —
                // this is what bounds remote starvation at `batch_limit`.
                (0, self.cohort_global_release(me_slot, h))
            }
            None => (0, CohortRelease::NoGlobal),
        };
        let mut cur = succ;
        loop {
            let node = gate.node(cur as usize - 1);
            node.grant.store(word, Ordering::Release);
            match node
                .state
                .compare_exchange(WAITING, GRANTED, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    if word & WITH_LOCK != 0 {
                        self.telemetry.incr(LockEvent::CohortLocalHandoff);
                    }
                    self.telemetry.trace_granted(cohort_token(cur as usize - 1));
                    return outcome;
                }
                Err(observed) => {
                    debug_assert_eq!(
                        observed, ABANDONED,
                        "cohort grant raced a non-cancel transition"
                    );
                    self.telemetry.incr(LockEvent::GrantCascade);
                    let mut nxt = node.qnext.load(Ordering::Acquire);
                    if nxt == 0 {
                        fault::inject("cohort.release.tail-cas");
                        if gate.ctails[cohort]
                            .compare_exchange(cur, 0, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            node.state.store(RELEASED, Ordering::Release);
                            // Queue emptied mid-cascade: a lock still in
                            // hand must go out globally after all.
                            return match (word & WITH_LOCK != 0, hold) {
                                (true, Some(h)) => self.cohort_global_release(me_slot, h),
                                _ => outcome,
                            };
                        }
                        spin_until(self.backoff(), || node.qnext.load(Ordering::Acquire) != 0);
                        nxt = node.qnext.load(Ordering::Acquire);
                    }
                    node.qnext.store(0, Ordering::Relaxed);
                    node.state.store(RELEASED, Ordering::Release);
                    cur = nxt;
                }
            }
        }
    }

    /// Releases the batch's global lock: runs `writer_unlock` on the
    /// *owner's* node (possibly another slot's) and, when it is foreign,
    /// marks it `RELEASED` so its handle's pending reclaim completes.
    fn cohort_global_release(&self, me_slot: usize, hold: CohortHold) -> CohortRelease {
        if self.writer_unlock(hold.owner_slot) {
            // The global queue had a waiter: the hand-off left the
            // cohort, so it may cross a socket boundary.
            self.telemetry.incr(LockEvent::CohortRemoteHandoff);
        }
        if hold.owner_slot == me_slot {
            CohortRelease::GlobalReleasedOwn
        } else {
            self.wnode(hold.owner_slot)
                .state
                .store(RELEASED, Ordering::Release);
            CohortRelease::GlobalReleasedForeign
        }
    }

    /// Blocks until an abandoned cohort node's excision finishes, then
    /// resets it for reuse (the cohort analogue of
    /// [`reclaim_writer_node`](Self::reclaim_writer_node)).
    pub(crate) fn cohort_reclaim_node(&self, slot: usize) {
        let gate = self.cohort.as_ref().expect("cohort reclaim without a gate");
        let node = gate.node(slot);
        spin_until(self.backoff(), || {
            node.state.load(Ordering::Acquire) == RELEASED
        });
        node.qnext.store(0, Ordering::Relaxed);
        node.state.store(GRANTED, Ordering::Relaxed);
    }

    /// Finishes a deferred reclaim of the slot's *global* writer node
    /// right before a code path that needs it.
    fn ensure_global_node(&self, slot: usize, pending_reclaim: &mut bool) {
        if *pending_reclaim {
            self.reclaim_writer_node(slot);
            *pending_reclaim = false;
        }
    }
}
