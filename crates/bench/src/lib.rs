//! Benchmark support crate; see the `benches/` directory.
