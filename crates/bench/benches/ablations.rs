//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! * `ablation_csnzi_vs_counter` — the mechanism behind the whole paper:
//!   C-SNZI arrive/depart vs. a centralized atomic counter, single-thread
//!   overhead and multi-thread shared-write traffic (§2.2).
//! * `ablation_tree_shape` — root-only vs. flat vs. two-level trees
//!   (§2.2's node-choice discussion).
//! * `ablation_arrival_policy` — direct-vs-tree arrival thresholds
//!   (§5.1's dual-counter heuristic).
//! * `ablation_node_pool` — FOLL reader-node allocate/free (§4.2.1).
//! * `ablation_roll_hint` — ROLL with and without the cached
//!   last-reader-node pointer (§4.3).
//! * `ablation_adaptive_inflation` — adaptive (root-only-until-contended)
//!   C-SNZI vs. the statically built tree, uncontended and inflated
//!   (DESIGN.md §10).
//! * `ablation_bravo_bias` — the BRAVO reader-biasing layer vs. the
//!   adaptive and static GOLL builds across write mixes (DESIGN.md §11):
//!   biased reads should win at 0–1% writes and the revocation cost must
//!   not sink the 50%-writes mix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oll_core::{FairnessPolicy, FollLock, GollLock, RollLock, RwHandle, RwLockFamily};
use oll_csnzi::{ArrivalPolicy, CSnzi, Snzi, TreeShape};
use oll_util::sync::{AtomicU64, Ordering};
use oll_workloads::config::WorkloadConfig;
use oll_workloads::runner::run_throughput;
use std::sync::Barrier;
use std::time::{Duration, Instant};

const THREADS: usize = 4;

fn short<'c>(
    c: &'c mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'c, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    g
}

/// Runs `per_thread_op` on `THREADS` threads, `iters` times total, and
/// returns the wall time for all threads to finish.
fn parallel_time(iters: u64, per_thread_op: impl Fn(usize, u64) + Sync) -> Duration {
    let per_thread = (iters as usize / THREADS).max(1) as u64;
    let barrier = Barrier::new(THREADS);
    let spans: std::sync::Mutex<Vec<(Instant, Instant)>> = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for tid in 0..THREADS {
            let barrier = &barrier;
            let spans = &spans;
            let op = &per_thread_op;
            scope.spawn(move || {
                barrier.wait();
                let start = Instant::now();
                op(tid, per_thread);
                let end = Instant::now();
                spans.lock().unwrap().push((start, end));
            });
        }
    });
    let spans = spans.into_inner().unwrap();
    let s = spans.iter().map(|x| x.0).min().unwrap();
    let e = spans.iter().map(|x| x.1).max().unwrap();
    e.duration_since(s)
}

fn ablation_csnzi_vs_counter(c: &mut Criterion) {
    let mut g = short(c, "ablation_csnzi_vs_counter");

    // Single-thread overhead: the cost a reader pays when there is no
    // contention (the paper keeps this small by arriving at the root).
    g.bench_function("counter/1thread", |b| {
        let counter = AtomicU64::new(0);
        b.iter(|| {
            counter.fetch_add(1, Ordering::AcqRel);
            counter.fetch_sub(1, Ordering::AcqRel);
        });
    });
    g.bench_function("csnzi_direct/1thread", |b| {
        let c = CSnzi::new(TreeShape::flat(THREADS));
        b.iter(|| {
            let t = c.arrive_direct();
            c.depart(t);
        });
    });
    g.bench_function("csnzi_tree/1thread", |b| {
        let c = CSnzi::new(TreeShape::flat(THREADS));
        b.iter(|| {
            let t = c.arrive_tree(0);
            c.depart(t);
        });
    });
    g.bench_function("snzi/1thread", |b| {
        let s = Snzi::new(TreeShape::flat(THREADS));
        let mut p = ArrivalPolicy::default();
        b.iter(|| {
            let t = s.arrive(&mut p, 0);
            s.depart(t);
        });
    });

    // Multi-thread traffic: every counter op hits one cache line; tree
    // arrivals at distinct leaves do not (§2.2).
    g.bench_function(
        BenchmarkId::new("counter", format!("{THREADS}threads")),
        |b| {
            b.iter_custom(|iters| {
                let counter = AtomicU64::new(0);
                parallel_time(iters, |_tid, n| {
                    for _ in 0..n {
                        counter.fetch_add(1, Ordering::AcqRel);
                        counter.fetch_sub(1, Ordering::AcqRel);
                    }
                })
            });
        },
    );
    g.bench_function(
        BenchmarkId::new("csnzi_tree", format!("{THREADS}threads")),
        |b| {
            b.iter_custom(|iters| {
                let c = CSnzi::new(TreeShape::flat(THREADS));
                parallel_time(iters, |tid, n| {
                    for _ in 0..n {
                        let t = c.arrive_tree(tid);
                        c.depart(t);
                    }
                })
            });
        },
    );
    g.finish();
}

fn ablation_tree_shape(c: &mut Criterion) {
    let mut g = short(c, "ablation_tree_shape");
    let shapes: [(&str, TreeShape); 4] = [
        ("root_only", TreeShape::ROOT_ONLY),
        ("flat4", TreeShape::flat(4)),
        ("flat16", TreeShape::flat(16)),
        (
            "fanout4_depth2",
            TreeShape {
                fanout: 4,
                depth: 2,
            },
        ),
    ];
    for (name, shape) in shapes {
        g.bench_function(BenchmarkId::new("arrive_depart", name), |b| {
            b.iter_custom(|iters| {
                let cs = CSnzi::new(shape);
                parallel_time(iters, |tid, n| {
                    let mut p = ArrivalPolicy::always_tree();
                    for _ in 0..n {
                        let t = cs.arrive(&mut p, tid);
                        cs.depart(t);
                    }
                })
            });
        });
    }
    g.finish();
}

fn ablation_arrival_policy(c: &mut Criterion) {
    let mut g = short(c, "ablation_arrival_policy");
    for (name, threshold) in [
        ("always_direct", u32::MAX),
        ("default", 2),
        ("always_tree", 0),
    ] {
        g.bench_function(BenchmarkId::new("threshold", name), |b| {
            b.iter_custom(|iters| {
                let cs = CSnzi::new(TreeShape::flat(THREADS));
                parallel_time(iters, |tid, n| {
                    let mut p = ArrivalPolicy::new(threshold);
                    for _ in 0..n {
                        let t = cs.arrive(&mut p, tid);
                        cs.depart(t);
                    }
                })
            });
        });
    }
    g.finish();
}

fn ablation_node_pool(c: &mut Criterion) {
    let mut g = short(c, "ablation_node_pool");
    // The pool cost shows up on read↔write alternation (each write forces
    // the reader node to be recycled); pure reads reuse a node forever.
    for (name, read_pct) in [("read_only", 100u32), ("alternating", 50)] {
        g.bench_function(BenchmarkId::new("foll_mix", name), |b| {
            b.iter_custom(|iters| {
                let config = WorkloadConfig {
                    threads: THREADS,
                    read_pct,
                    acquisitions_per_thread: (iters as usize / THREADS).max(1),
                    critical_work: 0,
                    outside_work: 0,
                    seed: 9,
                    runs: 1,
                    verify: false,
                };
                let r = run_throughput(oll_workloads::LockKind::Foll, &config);
                let done = config.total_acquisitions() as f64;
                r.elapsed.mul_f64(iters as f64 / done)
            });
        });
    }
    g.finish();
}

fn ablation_roll_hint(c: &mut Criterion) {
    let mut g = short(c, "ablation_roll_hint");
    for (name, hint) in [("with_hint", true), ("without_hint", false)] {
        g.bench_function(BenchmarkId::new("read95", name), |b| {
            b.iter_custom(|iters| {
                let lock = RollLock::builder(THREADS).last_reader_hint(hint).build();
                let per_thread = (iters as usize / THREADS).max(1);
                parallel_time(iters, |tid, _n| {
                    let mut h = lock.handle().unwrap();
                    let mut rng = oll_util::XorShift64::for_thread(17, tid);
                    for _ in 0..per_thread {
                        if rng.percent(95) {
                            h.lock_read();
                            h.unlock_read();
                        } else {
                            h.lock_write();
                            h.unlock_write();
                        }
                    }
                })
            });
        });
    }
    g.finish();
}

fn ablation_goll_policy(c: &mut Criterion) {
    // §3: the queue mutex makes GOLL's fairness policy pluggable. Measure
    // what each policy costs on a mixed workload.
    let mut g = short(c, "ablation_goll_policy");
    for (name, policy) in [
        ("fifo", FairnessPolicy::Fifo),
        ("alternating", FairnessPolicy::Alternating),
        ("reader_pref", FairnessPolicy::ReaderPreference),
        ("writer_pref", FairnessPolicy::WriterPreference),
    ] {
        g.bench_function(BenchmarkId::new("read90", name), |b| {
            b.iter_custom(|iters| {
                let lock = GollLock::builder(THREADS).fairness(policy).build();
                let per_thread = (iters as usize / THREADS).max(1);
                parallel_time(iters, |tid, _n| {
                    let mut h = lock.handle().unwrap();
                    let mut rng = oll_util::XorShift64::for_thread(23, tid);
                    for _ in 0..per_thread {
                        if rng.percent(90) {
                            h.lock_read();
                            h.unlock_read();
                        } else {
                            h.lock_write();
                            h.unlock_write();
                        }
                    }
                })
            });
        });
    }
    g.finish();
}

fn ablation_lazy_tree(c: &mut Criterion) {
    // §2.2: lazy tree allocation trades first-contact latency for
    // footprint. Measure steady-state read cost with each mode.
    let mut g = short(c, "ablation_lazy_tree");
    for (name, lazy) in [("eager", false), ("lazy", true)] {
        g.bench_function(BenchmarkId::new("foll_read", name), |b| {
            b.iter_custom(|iters| {
                let lock = FollLock::builder(THREADS).lazy_tree(lazy).build();
                let per_thread = (iters as usize / THREADS).max(1);
                parallel_time(iters, |_tid, _n| {
                    let mut h = lock.handle().unwrap();
                    for _ in 0..per_thread {
                        h.lock_read();
                        h.unlock_read();
                    }
                })
            });
        });
    }
    g.finish();
}

fn ablation_adaptive_inflation(c: &mut Criterion) {
    // DESIGN.md §10: an adaptive C-SNZI starts root-only and inflates
    // under measured contention. The interesting costs are (a) the
    // uncontended root-only path, which must track the eager tree's
    // direct-arrival cost (no tree nodes are even allocated), and
    // (b) post-inflation tree traffic, which must recover the static
    // tree's multi-thread arrival throughput.
    let mut g = short(c, "ablation_adaptive_inflation");

    g.bench_function("root_only/1thread", |b| {
        let cs = CSnzi::new_adaptive(THREADS);
        let mut p = ArrivalPolicy::default();
        b.iter(|| {
            let t = cs.arrive(&mut p, 0);
            cs.depart(t);
        });
    });

    // Pinning arrivals to the tree inflates the adaptive C-SNZI on the
    // first arrival, so the whole measurement runs on the inflated tree.
    for (name, adaptive) in [("static_tree", false), ("adaptive_inflated", true)] {
        g.bench_function(
            BenchmarkId::new("tree_arrivals", format!("{name}_{THREADS}threads")),
            |b| {
                b.iter_custom(|iters| {
                    let cs = if adaptive {
                        CSnzi::new_adaptive(THREADS)
                    } else {
                        CSnzi::new(TreeShape::flat(THREADS))
                    };
                    parallel_time(iters, |tid, n| {
                        let mut p = ArrivalPolicy::always_tree();
                        for _ in 0..n {
                            let t = cs.arrive(&mut p, tid);
                            cs.depart(t);
                        }
                    })
                });
            },
        );
    }

    // Lock level: the fig5 `--adaptive` path. Uncontended reads stay on
    // the root in adaptive mode; the contended mix pays the inflation
    // once and then runs on the tree like the eager build.
    for (name, adaptive) in [("eager", false), ("adaptive", true)] {
        g.bench_function(BenchmarkId::new("goll_read_1thread", name), |b| {
            let lock = GollLock::builder(THREADS).adaptive(adaptive).build();
            let mut h = lock.handle().unwrap();
            b.iter(|| {
                h.lock_read();
                h.unlock_read();
            });
        });
        g.bench_function(
            BenchmarkId::new("goll_read90", format!("{name}_{THREADS}threads")),
            |b| {
                b.iter_custom(|iters| {
                    let lock = GollLock::builder(THREADS).adaptive(adaptive).build();
                    let per_thread = (iters as usize / THREADS).max(1);
                    parallel_time(iters, |tid, _n| {
                        let mut h = lock.handle().unwrap();
                        let mut rng = oll_util::XorShift64::for_thread(31, tid);
                        for _ in 0..per_thread {
                            if rng.percent(90) {
                                h.lock_read();
                                h.unlock_read();
                            } else {
                                h.lock_write();
                                h.unlock_write();
                            }
                        }
                    })
                });
            },
        );
    }
    g.finish();
}

fn ablation_bravo_bias(c: &mut Criterion) {
    // DESIGN.md §11: with the bias armed, a read acquisition is one CAS
    // on an effectively-private visible-readers slot — zero shared-memory
    // RMWs. Sweep write fractions to show where the bias pays (read-only
    // and read-mostly) and what revocation costs as writes grow. Each
    // lock gets a private table so concurrently running benches cannot
    // collide in the process-global one.
    fn mixed<L: RwLockFamily + Sync>(lock: &L, read_pct: u32, iters: u64) -> Duration {
        let per_thread = (iters as usize / THREADS).max(1);
        parallel_time(iters, |tid, _n| {
            let mut h = lock.handle().unwrap();
            let mut rng = oll_util::XorShift64::for_thread(41, tid);
            for _ in 0..per_thread {
                if rng.percent(read_pct) {
                    h.lock_read();
                    h.unlock_read();
                } else {
                    h.lock_write();
                    h.unlock_write();
                }
            }
        })
    }

    let mut g = short(c, "ablation_bravo_bias");
    for write_pct in [0u32, 1, 10, 50] {
        let read_pct = 100 - write_pct;
        let tag = format!("write{write_pct}_{THREADS}threads");
        g.bench_function(BenchmarkId::new("biased", &tag), |b| {
            b.iter_custom(|iters| {
                let lock = GollLock::builder(THREADS)
                    .biased(true)
                    .build_biased()
                    .private_table(64);
                mixed(&lock, read_pct, iters)
            });
        });
        g.bench_function(BenchmarkId::new("adaptive", &tag), |b| {
            b.iter_custom(|iters| {
                let lock = GollLock::builder(THREADS).adaptive(true).build();
                mixed(&lock, read_pct, iters)
            });
        });
        g.bench_function(BenchmarkId::new("static", &tag), |b| {
            b.iter_custom(|iters| {
                let lock = GollLock::builder(THREADS).build();
                mixed(&lock, read_pct, iters)
            });
        });
    }
    g.finish();
}

/// Plot generation dominates wall time on small machines; see fig5.rs.
fn plain() -> Criterion {
    Criterion::default().without_plots()
}

criterion_group! {
    name = ablations;
    config = plain();
    targets = ablation_csnzi_vs_counter,
        ablation_tree_shape,
        ablation_arrival_policy,
        ablation_node_pool,
        ablation_roll_hint,
        ablation_goll_policy,
        ablation_lazy_tree,
        ablation_adaptive_inflation,
        ablation_bravo_bias
}
criterion_main!(ablations);
