//! Criterion benchmarks regenerating every panel of Figure 5.
//!
//! Each benchmark group is one panel (a read/write mix); each benchmark
//! within it is one `lock × thread-count` point of the paper's series.
//! The measured quantity is the wall time for all threads to complete
//! their acquisitions, just as in §5.1 — Criterion's `iter_custom` hands
//! the total iteration count to the same runner the `fig5` binary uses,
//! so throughput (acquires/s) is `iters / time`.
//!
//! Thread counts are scaled to the host (the paper swept 1..=256 on a
//! 256-hardware-thread T5440; see EXPERIMENTS.md for the mapping).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oll_workloads::config::{Fig5Panel, LockKind, WorkloadConfig};
use oll_workloads::runner::run_throughput;
use std::time::Duration;

fn thread_counts() -> Vec<usize> {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    // One point below, at, and above the hardware parallelism, so the
    // oversubscription knee is visible on any host.
    let mut v = vec![1, 2, 4];
    for t in [hw, hw * 2] {
        if !v.contains(&t) {
            v.push(t);
        }
    }
    v.sort_unstable();
    v
}

fn bench_panel(c: &mut Criterion, panel: Fig5Panel) {
    let mut group = c.benchmark_group(format!(
        "fig5{}",
        match panel {
            Fig5Panel::A => "a_read100",
            Fig5Panel::B => "b_read99",
            Fig5Panel::C => "c_read95",
            Fig5Panel::D => "d_read80",
            Fig5Panel::E => "e_read50",
            Fig5Panel::F => "f_read0",
        }
    ));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for kind in LockKind::FIGURE5 {
        for threads in thread_counts() {
            group.throughput(Throughput::Elements(1));
            group.bench_with_input(
                BenchmarkId::new(kind.name().replace(' ', "-"), threads),
                &threads,
                |b, &threads| {
                    b.iter_custom(|iters| {
                        let config = WorkloadConfig {
                            threads,
                            read_pct: panel.read_pct(),
                            acquisitions_per_thread: (iters as usize / threads).max(1),
                            critical_work: 0,
                            outside_work: 0,
                            seed: 0x5EED_2009,
                            runs: 1,
                            verify: false,
                        };
                        let r = run_throughput(kind, &config);
                        // Scale the measured time to the requested iters so
                        // Criterion's per-element math stays exact.
                        let done = config.total_acquisitions() as f64;
                        r.elapsed.mul_f64(iters as f64 / done)
                    });
                },
            );
        }
    }
    group.finish();
}

fn fig5a(c: &mut Criterion) {
    bench_panel(c, Fig5Panel::A);
}
fn fig5b(c: &mut Criterion) {
    bench_panel(c, Fig5Panel::B);
}
fn fig5c(c: &mut Criterion) {
    bench_panel(c, Fig5Panel::C);
}
fn fig5d(c: &mut Criterion) {
    bench_panel(c, Fig5Panel::D);
}
fn fig5e(c: &mut Criterion) {
    bench_panel(c, Fig5Panel::E);
}
fn fig5f(c: &mut Criterion) {
    bench_panel(c, Fig5Panel::F);
}

/// Plot generation dominates wall time on small machines and adds nothing
/// to the recorded numbers; keep the default configuration plot-free.
fn plain() -> Criterion {
    Criterion::default().without_plots()
}

criterion_group! {
    name = fig5;
    config = plain();
    targets = fig5a, fig5b, fig5c, fig5d, fig5e, fig5f
}
criterion_main!(fig5);
