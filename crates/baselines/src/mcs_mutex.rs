//! The MCS queue mutex (Mellor-Crummey & Scott, 1991) — §4.1 of the
//! paper, and the substrate FOLL/ROLL extend.
//!
//! Each waiting thread spins on a flag in its *own* queue node; the lock
//! itself is a single tail pointer. Index-based nodes (one per thread
//! slot) replace the paper's per-thread records.

use oll_core::raw::{RwHandle, RwLockFamily};
use oll_hazard::Hazard;
use oll_util::backoff::{spin_until, BackoffPolicy};
use oll_util::slots::{SlotError, SlotGuard, SlotRegistry};
use oll_util::sync::{AtomicBool, AtomicU32, Ordering};
use oll_util::CachePadded;

const NIL: u32 = u32::MAX;

struct Node {
    next: AtomicU32,
    spin: AtomicBool,
}

/// The MCS queue mutex.
pub struct McsMutex {
    tail: CachePadded<AtomicU32>,
    nodes: Box<[CachePadded<Node>]>,
    slots: SlotRegistry,
    backoff: BackoffPolicy,
    hazard: Hazard,
}

impl McsMutex {
    /// Creates a mutex for at most `capacity` concurrent threads.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            tail: CachePadded::new(AtomicU32::new(NIL)),
            nodes: (0..capacity)
                .map(|_| {
                    CachePadded::new(Node {
                        next: AtomicU32::new(NIL),
                        spin: AtomicBool::new(false),
                    })
                })
                .collect(),
            slots: SlotRegistry::new(capacity),
            backoff: BackoffPolicy::default(),
            hazard: Hazard::new(),
        }
    }

    /// Acquires the mutex on behalf of thread `slot`.
    pub fn acquire(&self, slot: usize) {
        let node = &self.nodes[slot];
        node.next.store(NIL, Ordering::Relaxed);
        let pred = self.tail.swap(slot as u32, Ordering::AcqRel);
        if pred == NIL {
            return;
        }
        node.spin.store(true, Ordering::Relaxed);
        self.nodes[pred as usize]
            .next
            .store(slot as u32, Ordering::Release);
        spin_until(self.backoff, || !node.spin.load(Ordering::Acquire));
    }

    /// Releases the mutex held by thread `slot`.
    pub fn release(&self, slot: usize) {
        let node = &self.nodes[slot];
        if node.next.load(Ordering::Acquire) == NIL {
            if self
                .tail
                .compare_exchange(slot as u32, NIL, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            spin_until(self.backoff, || node.next.load(Ordering::Acquire) != NIL);
        }
        let succ = node.next.load(Ordering::Acquire) as usize;
        self.nodes[succ].spin.store(false, Ordering::Release);
    }
}

impl RwLockFamily for McsMutex {
    type Handle<'a> = McsMutexHandle<'a>;

    fn handle(&self) -> Result<McsMutexHandle<'_>, SlotError> {
        let slot = SlotGuard::claim(&self.slots)?;
        Ok(McsMutexHandle { lock: self, slot })
    }

    fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    fn name(&self) -> &'static str {
        "MCS-mutex"
    }

    fn hazard(&self) -> Hazard {
        self.hazard.clone()
    }
}

/// Per-thread handle for [`McsMutex`]. Reads and writes are both
/// exclusive — this adapter exists so the harness can show what treating a
/// reader-writer workload as mutual exclusion costs.
pub struct McsMutexHandle<'a> {
    lock: &'a McsMutex,
    slot: SlotGuard<'a>,
}

impl RwHandle for McsMutexHandle<'_> {
    fn hazard(&self) -> Hazard {
        self.lock.hazard.clone()
    }

    fn lock_read(&mut self) {
        self.lock.acquire(self.slot.slot());
    }

    fn unlock_read(&mut self) {
        self.lock.release(self.slot.slot());
    }

    fn lock_write(&mut self) {
        self.lock.acquire(self.slot.slot());
    }

    fn unlock_write(&mut self) {
        self.lock.release(self.slot.slot());
    }

    fn try_lock_read(&mut self) -> bool {
        self.try_lock_write()
    }

    fn try_lock_write(&mut self) -> bool {
        let slot = self.slot.slot();
        let node = &self.lock.nodes[slot];
        node.next.store(NIL, Ordering::Relaxed);
        self.lock
            .tail
            .compare_exchange(NIL, slot as u32, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering as O};
    use std::sync::Arc;

    #[test]
    fn acquire_release_single() {
        let m = McsMutex::new(2);
        m.acquire(0);
        m.release(0);
        m.acquire(1);
        m.release(1);
        assert_eq!(m.tail.load(O::SeqCst), NIL);
    }

    #[test]
    fn try_lock_respects_holder() {
        let m = McsMutex::new(2);
        let mut a = m.handle().unwrap();
        let mut b = m.handle().unwrap();
        assert!(a.try_lock_write());
        assert!(!b.try_lock_write());
        a.unlock_write();
        assert!(b.try_lock_write());
        b.unlock_write();
    }

    #[test]
    fn counter_under_contention() {
        const THREADS: usize = 6;
        const ITERS: usize = 3_000;
        let m = Arc::new(McsMutex::new(THREADS));
        let counter = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let m = Arc::clone(&m);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut h = m.handle().unwrap();
                for _ in 0..ITERS {
                    h.lock_write();
                    assert_eq!(counter.fetch_add(1, O::SeqCst), 0);
                    counter.fetch_sub(1, O::SeqCst);
                    h.unlock_write();
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(m.tail.load(O::SeqCst), NIL);
    }
}
