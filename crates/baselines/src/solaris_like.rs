//! The Solaris-kernel-style reader-writer lock (§3.1 of the paper).
//!
//! A single central lockword holds the reader count plus `writeLocked`,
//! `writeWanted`, and `hasWaiters` bits. Conflicting threads enqueue in a
//! turnstile — here, a spin-mutex-protected queue of waiter groups — after
//! atomically setting the waiter bits, and releasing threads *hand over*
//! ownership: the lockword is moved directly to the next holder's state
//! before they are woken, so "threads always own the lock upon awakening".
//!
//! This is the user-space reproduction the paper itself benchmarks ("the
//! Solaris implementation cannot be used in user-space", §5.1), with the
//! same alternating hand-off policy and spin-based waiting. Its scaling
//! problem — every reader CASes the shared lockword twice per critical
//! section — is exactly what the GOLL lock's C-SNZI removes.

use oll_core::raw::{RwHandle, RwLockFamily};
use oll_hazard::Hazard;
use oll_telemetry::{LockEvent, Telemetry, Timer};
use oll_util::backoff::{Backoff, BackoffPolicy};
use oll_util::event::{Event, GroupEvent, WaitStrategy};
use oll_util::slots::{SlotError, SlotGuard, SlotRegistry};
use oll_util::sync::{AtomicU64, Ordering};
use oll_util::{CachePadded, SpinMutex};
use std::collections::VecDeque;
use std::sync::Arc;

const WRITE_LOCKED: u64 = 0b001;
const WRITE_WANTED: u64 = 0b010;
const HAS_WAITERS: u64 = 0b100;
const READER_UNIT: u64 = 0b1000;

#[derive(Clone, Copy, PartialEq, Eq)]
struct Word(u64);

impl Word {
    fn readers(self) -> u64 {
        self.0 / READER_UNIT
    }
    fn write_locked(self) -> bool {
        self.0 & WRITE_LOCKED != 0
    }
    fn write_wanted(self) -> bool {
        self.0 & WRITE_WANTED != 0
    }
    fn has_waiters(self) -> bool {
        self.0 & HAS_WAITERS != 0
    }
    fn make(readers: u64, locked: bool, wanted: bool, waiters: bool) -> Self {
        Word(
            readers * READER_UNIT
                + if locked { WRITE_LOCKED } else { 0 }
                + if wanted { WRITE_WANTED } else { 0 }
                + if waiters { HAS_WAITERS } else { 0 },
        )
    }
}

enum Group {
    Readers(Arc<GroupEvent>),
    Writer(Arc<Event>),
}

struct Turnstile {
    groups: VecDeque<Group>,
    num_writers: usize,
}

/// The Solaris-like central-lockword reader-writer lock.
pub struct SolarisLikeRwLock {
    word: CachePadded<AtomicU64>,
    turnstile: CachePadded<SpinMutex<Turnstile>>,
    slots: SlotRegistry,
    strategy: WaitStrategy,
    backoff: BackoffPolicy,
    telemetry: Telemetry,
    hazard: Hazard,
}

impl SolarisLikeRwLock {
    /// Creates a lock for at most `capacity` concurrent threads with
    /// spin-based waiters (the paper's configuration).
    pub fn new(capacity: usize) -> Self {
        Self::with_strategy(capacity, WaitStrategy::SpinThenYield)
    }

    /// Creates a lock with an explicit waiter strategy.
    pub fn with_strategy(capacity: usize, strategy: WaitStrategy) -> Self {
        let telemetry = Telemetry::register("Solaris-like");
        let hazard = Hazard::new();
        hazard.attach_telemetry(&telemetry);
        Self {
            word: CachePadded::new(AtomicU64::new(0)),
            turnstile: CachePadded::new(SpinMutex::new(Turnstile {
                groups: VecDeque::new(),
                num_writers: 0,
            })),
            slots: SlotRegistry::new(capacity.max(1)),
            strategy,
            backoff: BackoffPolicy::default(),
            telemetry,
            hazard,
        }
    }

    fn load(&self) -> Word {
        Word(self.word.load(Ordering::Acquire))
    }

    fn cas(&self, old: Word, new: Word) -> bool {
        self.word
            .compare_exchange(old.0, new.0, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Hand-off after a write release or a last-reader release; must be
    /// called with the turnstile locked and the lock still owned by the
    /// caller. Returns the signal to deliver after the mutex drops.
    fn handover(&self, ts: &mut Turnstile, release_by_writer: bool) -> Option<HandoffSignal> {
        // Alternating policy, as in GOLL and the kernel: writers hand to
        // all waiting readers; readers hand to the first waiting writer.
        let prefer_readers = release_by_writer;
        if prefer_readers {
            let mut groups = Vec::new();
            let mut total = 0u64;
            ts.groups.retain(|g| match g {
                Group::Readers(g) => {
                    total += g.members() as u64;
                    groups.push(Arc::clone(g));
                    false
                }
                Group::Writer(_) => true,
            });
            if !groups.is_empty() {
                let word = Word::make(total, false, ts.num_writers > 0, !ts.groups.is_empty());
                self.word.store(word.0, Ordering::Release);
                return Some(HandoffSignal::Readers(groups));
            }
        }
        // Take the first writer, if any.
        if ts.num_writers > 0 {
            let pos = ts
                .groups
                .iter()
                .position(|g| matches!(g, Group::Writer(_)))
                .expect("num_writers > 0");
            let Some(Group::Writer(ev)) = ts.groups.remove(pos) else {
                unreachable!("position() found a writer")
            };
            ts.num_writers -= 1;
            let word = Word::make(0, true, ts.num_writers > 0, !ts.groups.is_empty());
            self.word.store(word.0, Ordering::Release);
            return Some(HandoffSignal::Writer(ev));
        }
        // Only reader groups left (a reader released with readers waiting —
        // possible when a writer timed between them): wake them all.
        let mut groups = Vec::new();
        let mut total = 0u64;
        while let Some(g) = ts.groups.pop_front() {
            match g {
                Group::Readers(g) => {
                    total += g.members() as u64;
                    groups.push(g);
                }
                Group::Writer(_) => unreachable!("num_writers was 0"),
            }
        }
        if groups.is_empty() {
            // Spurious hasWaiters: actually free the lock.
            self.word.store(0, Ordering::Release);
            None
        } else {
            let word = Word::make(total, false, false, false);
            self.word.store(word.0, Ordering::Release);
            Some(HandoffSignal::Readers(groups))
        }
    }
}

enum HandoffSignal {
    Writer(Arc<Event>),
    Readers(Vec<Arc<GroupEvent>>),
}

impl SolarisLikeRwLock {
    /// Counts a hand-off by the kind of successor it wakes. The wait-event
    /// address doubles as the trace causality token, matching what each
    /// waiter stamped on its `enqueued` marker.
    fn note_handoff(&self, sig: &Option<HandoffSignal>) {
        match sig {
            None => {}
            Some(HandoffSignal::Writer(ev)) => {
                self.telemetry.incr(LockEvent::HandoffToWriter);
                self.telemetry.trace_granted(Arc::as_ptr(ev) as u64);
            }
            Some(HandoffSignal::Readers(groups)) => {
                self.telemetry.incr(LockEvent::HandoffToReaders);
                for g in groups {
                    self.telemetry.trace_granted(Arc::as_ptr(g) as u64);
                }
            }
        }
    }
}

fn deliver(sig: Option<HandoffSignal>) {
    match sig {
        None => {}
        Some(HandoffSignal::Writer(ev)) => ev.signal(),
        Some(HandoffSignal::Readers(groups)) => {
            for g in groups {
                g.signal_all();
            }
        }
    }
}

impl RwLockFamily for SolarisLikeRwLock {
    type Handle<'a> = SolarisLikeHandle<'a>;

    fn handle(&self) -> Result<SolarisLikeHandle<'_>, SlotError> {
        let slot = SlotGuard::claim(&self.slots)?;
        Ok(SolarisLikeHandle {
            lock: self,
            slot,
            hold: Timer::inactive(),
        })
    }

    fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    fn name(&self) -> &'static str {
        "Solaris-like"
    }

    fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    fn hazard(&self) -> Hazard {
        self.hazard.clone()
    }
}

/// Per-thread handle for [`SolarisLikeRwLock`].
pub struct SolarisLikeHandle<'a> {
    lock: &'a SolarisLikeRwLock,
    #[allow(dead_code)]
    slot: SlotGuard<'a>,
    /// Hold-time timer for the handle's outstanding acquisition.
    hold: Timer,
}

impl RwHandle for SolarisLikeHandle<'_> {
    fn hazard(&self) -> Hazard {
        self.lock.hazard.clone()
    }

    fn lock_read(&mut self) {
        let lock = self.lock;
        let acquire = lock.telemetry.begin_read();
        let mut b = Backoff::with_policy(lock.backoff);
        loop {
            let w = lock.load();
            // Fast path: no conflicting request.
            if !w.write_locked() && !w.write_wanted() {
                if lock.cas(w, Word(w.0 + READER_UNIT)) {
                    lock.telemetry.incr(LockEvent::ReadFast);
                    lock.telemetry.record_read_acquire(&acquire);
                    self.hold = lock.telemetry.timer();
                    return;
                }
                b.backoff();
                continue;
            }
            // Conflict: enqueue under the turnstile mutex, setting
            // hasWaiters atomically so releasers cannot miss us.
            let mut ts = lock.turnstile.lock();
            let w = lock.load();
            if !w.write_locked() && !w.write_wanted() {
                drop(ts);
                continue; // conflict vanished; retry fast path
            }
            if !w.has_waiters() && !lock.cas(w, Word(w.0 | HAS_WAITERS)) {
                drop(ts);
                continue; // lockword moved; re-evaluate
            }
            let group = match ts.groups.back() {
                Some(Group::Readers(g)) => {
                    let g = Arc::clone(g);
                    g.join();
                    g
                }
                _ => {
                    let g = Arc::new(GroupEvent::new(lock.strategy));
                    g.join();
                    ts.groups.push_back(Group::Readers(Arc::clone(&g)));
                    g
                }
            };
            lock.telemetry.incr(LockEvent::ReadSlow);
            lock.telemetry.trace_enqueued(Arc::as_ptr(&group) as u64);
            drop(ts);
            group.wait();
            // Ownership was handed over: the releaser already counted us
            // into the lockword.
            lock.telemetry.record_read_acquire(&acquire);
            self.hold = lock.telemetry.timer();
            return;
        }
    }

    fn unlock_read(&mut self) {
        let lock = self.lock;
        lock.telemetry.record_read_hold(&self.hold);
        loop {
            let w = lock.load();
            debug_assert!(w.readers() > 0, "unlock_read without read hold");
            if w.readers() > 1 || !w.has_waiters() {
                if lock.cas(w, Word(w.0 - READER_UNIT)) {
                    return;
                }
                continue;
            }
            // Last reader with waiters: hand over instead of releasing.
            let mut ts = lock.turnstile.lock();
            // Re-check under the mutex (a reader may have slipped in? No:
            // writeWanted blocks new readers, and waiters imply a writer —
            // but re-check anyway to stay robust to policy changes).
            let w = lock.load();
            if w.readers() > 1 || !w.has_waiters() {
                drop(ts);
                continue;
            }
            let sig = lock.handover(&mut ts, false);
            lock.note_handoff(&sig);
            drop(ts);
            deliver(sig);
            return;
        }
    }

    fn lock_write(&mut self) {
        let lock = self.lock;
        let acquire = lock.telemetry.begin_write();
        let mut b = Backoff::with_policy(lock.backoff);
        loop {
            let w = lock.load();
            if w.readers() == 0 && !w.write_locked() && !w.has_waiters() {
                // Free (possibly with a stale writeWanted): take it.
                if lock.cas(w, Word::make(0, true, false, false)) {
                    lock.telemetry.incr(LockEvent::WriteFast);
                    lock.telemetry.record_write_acquire(&acquire);
                    self.hold = lock.telemetry.timer();
                    return;
                }
                b.backoff();
                continue;
            }
            let mut ts = lock.turnstile.lock();
            let w = lock.load();
            if w.readers() == 0 && !w.write_locked() && !w.has_waiters() {
                drop(ts);
                continue;
            }
            if lock.cas(w, Word(w.0 | HAS_WAITERS | WRITE_WANTED)) {
                let ev = Arc::new(Event::new(lock.strategy));
                ts.groups.push_back(Group::Writer(Arc::clone(&ev)));
                ts.num_writers += 1;
                lock.telemetry.incr(LockEvent::WriteSlow);
                lock.telemetry.trace_enqueued(Arc::as_ptr(&ev) as u64);
                drop(ts);
                ev.wait();
                lock.telemetry.record_write_acquire(&acquire);
                self.hold = lock.telemetry.timer();
                return;
            }
            drop(ts);
        }
    }

    fn unlock_write(&mut self) {
        let lock = self.lock;
        lock.telemetry.record_write_hold(&self.hold);
        loop {
            let w = lock.load();
            debug_assert!(w.write_locked(), "unlock_write without write hold");
            if !w.has_waiters() {
                if lock.cas(w, Word(0)) {
                    return;
                }
                continue;
            }
            let mut ts = lock.turnstile.lock();
            let w = lock.load();
            if !w.has_waiters() {
                drop(ts);
                continue;
            }
            let sig = lock.handover(&mut ts, true);
            lock.note_handoff(&sig);
            drop(ts);
            deliver(sig);
            return;
        }
    }

    fn try_lock_read(&mut self) -> bool {
        let w = self.lock.load();
        if !w.write_locked() && !w.write_wanted() && self.lock.cas(w, Word(w.0 + READER_UNIT)) {
            self.lock.telemetry.incr(LockEvent::ReadFast);
            self.hold = self.lock.telemetry.timer();
            true
        } else {
            false
        }
    }

    fn try_lock_write(&mut self) -> bool {
        let w = self.lock.load();
        if w.readers() == 0
            && !w.write_locked()
            && !w.has_waiters()
            && self.lock.cas(w, Word::make(0, true, false, false))
        {
            self.lock.telemetry.incr(LockEvent::WriteFast);
            self.hold = self.lock.telemetry.timer();
            true
        } else {
            false
        }
    }
}

#[cfg(not(loom))]
impl oll_core::raw::TimedHandle for SolarisLikeHandle<'_> {
    /// Timed read via turnstile excision: a timed-out waiter removes
    /// itself from its reader group under the turnstile mutex. If the
    /// hand-off already counted it into the lockword, it instead waits for
    /// the (imminent) signal, takes ownership, and releases normally.
    /// Waiter bits left stale by a departure (`hasWaiters`, `writeWanted`)
    /// are recomputed by the next release's `handover`.
    fn lock_read_deadline(
        &mut self,
        deadline: std::time::Instant,
    ) -> Result<(), oll_core::TimedOut> {
        let lock = self.lock;
        let acquire = lock.telemetry.begin_read();
        let mut b = Backoff::with_policy(lock.backoff);
        loop {
            let w = lock.load();
            if !w.write_locked() && !w.write_wanted() {
                if lock.cas(w, Word(w.0 + READER_UNIT)) {
                    lock.telemetry.incr(LockEvent::ReadFast);
                    lock.telemetry.record_read_acquire(&acquire);
                    self.hold = lock.telemetry.timer();
                    return Ok(());
                }
                b.backoff();
                if std::time::Instant::now() >= deadline {
                    lock.telemetry.incr(LockEvent::Timeout);
                    return Err(oll_core::TimedOut);
                }
                continue;
            }
            if std::time::Instant::now() >= deadline {
                lock.telemetry.incr(LockEvent::Timeout);
                return Err(oll_core::TimedOut);
            }
            let mut ts = lock.turnstile.lock();
            let w = lock.load();
            if !w.write_locked() && !w.write_wanted() {
                drop(ts);
                continue;
            }
            if !w.has_waiters() && !lock.cas(w, Word(w.0 | HAS_WAITERS)) {
                drop(ts);
                continue;
            }
            let group = match ts.groups.back() {
                Some(Group::Readers(g)) => {
                    let g = Arc::clone(g);
                    g.join();
                    g
                }
                _ => {
                    let g = Arc::new(GroupEvent::new(lock.strategy));
                    g.join();
                    ts.groups.push_back(Group::Readers(Arc::clone(&g)));
                    g
                }
            };
            lock.telemetry.incr(LockEvent::ReadSlow);
            lock.telemetry.trace_enqueued(Arc::as_ptr(&group) as u64);
            drop(ts);
            if group.wait_deadline(deadline) {
                // Handed over: already counted into the word.
                lock.telemetry.record_read_acquire(&acquire);
                self.hold = lock.telemetry.timer();
                return Ok(());
            }
            // Timed out: arbitrate against the hand-off under the mutex.
            let mut ts = lock.turnstile.lock();
            let pos = ts
                .groups
                .iter()
                .position(|g| matches!(g, Group::Readers(g) if Arc::ptr_eq(g, &group)));
            if let Some(idx) = pos {
                // Still queued: step out before any releaser counts us.
                if group.leave() == 0 {
                    ts.groups.remove(idx);
                }
                drop(ts);
                lock.telemetry.incr(LockEvent::Timeout);
                lock.telemetry.incr(LockEvent::Cancel);
                return Err(oll_core::TimedOut);
            }
            // A releaser dequeued the group — we are counted into the
            // lockword as a reader. Wait for the signal, then undo via the
            // normal release path.
            drop(ts);
            group.wait();
            self.hold = lock.telemetry.timer();
            self.unlock_read();
            lock.telemetry.incr(LockEvent::Timeout);
            return Err(oll_core::TimedOut);
        }
    }

    fn lock_write_deadline(
        &mut self,
        deadline: std::time::Instant,
    ) -> Result<(), oll_core::TimedOut> {
        let lock = self.lock;
        let acquire = lock.telemetry.begin_write();
        let mut b = Backoff::with_policy(lock.backoff);
        loop {
            let w = lock.load();
            if w.readers() == 0 && !w.write_locked() && !w.has_waiters() {
                if lock.cas(w, Word::make(0, true, false, false)) {
                    lock.telemetry.incr(LockEvent::WriteFast);
                    lock.telemetry.record_write_acquire(&acquire);
                    self.hold = lock.telemetry.timer();
                    return Ok(());
                }
                b.backoff();
                if std::time::Instant::now() >= deadline {
                    lock.telemetry.incr(LockEvent::Timeout);
                    return Err(oll_core::TimedOut);
                }
                continue;
            }
            if std::time::Instant::now() >= deadline {
                lock.telemetry.incr(LockEvent::Timeout);
                return Err(oll_core::TimedOut);
            }
            let mut ts = lock.turnstile.lock();
            let w = lock.load();
            if w.readers() == 0 && !w.write_locked() && !w.has_waiters() {
                drop(ts);
                continue;
            }
            if lock.cas(w, Word(w.0 | HAS_WAITERS | WRITE_WANTED)) {
                let ev = Arc::new(Event::new(lock.strategy));
                ts.groups.push_back(Group::Writer(Arc::clone(&ev)));
                ts.num_writers += 1;
                lock.telemetry.incr(LockEvent::WriteSlow);
                lock.telemetry.trace_enqueued(Arc::as_ptr(&ev) as u64);
                drop(ts);
                if ev.wait_deadline(deadline) {
                    lock.telemetry.record_write_acquire(&acquire);
                    self.hold = lock.telemetry.timer();
                    return Ok(());
                }
                let mut ts = lock.turnstile.lock();
                let pos = ts
                    .groups
                    .iter()
                    .position(|g| matches!(g, Group::Writer(e) if Arc::ptr_eq(e, &ev)));
                if let Some(idx) = pos {
                    ts.groups.remove(idx);
                    ts.num_writers -= 1;
                    drop(ts);
                    lock.telemetry.incr(LockEvent::Timeout);
                    lock.telemetry.incr(LockEvent::Cancel);
                    return Err(oll_core::TimedOut);
                }
                // Hand-off already made us the write holder.
                drop(ts);
                ev.wait();
                self.hold = lock.telemetry.timer();
                self.unlock_write();
                lock.telemetry.incr(LockEvent::Timeout);
                return Err(oll_core::TimedOut);
            }
            drop(ts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering as O};
    use std::sync::Arc as StdArc;

    #[test]
    fn word_packing() {
        let w = Word::make(5, true, false, true);
        assert_eq!(w.readers(), 5);
        assert!(w.write_locked());
        assert!(!w.write_wanted());
        assert!(w.has_waiters());
    }

    #[test]
    fn uncontended_round_trip() {
        let lock = SolarisLikeRwLock::new(2);
        let mut h = lock.handle().unwrap();
        h.lock_read();
        h.unlock_read();
        h.lock_write();
        h.unlock_write();
        assert_eq!(lock.word.load(O::SeqCst), 0);
    }

    #[test]
    fn try_paths() {
        let lock = SolarisLikeRwLock::new(3);
        let mut r = lock.handle().unwrap();
        let mut w = lock.handle().unwrap();
        assert!(r.try_lock_read());
        assert!(!w.try_lock_write());
        r.unlock_read();
        assert!(w.try_lock_write());
        assert!(!r.try_lock_read());
        w.unlock_write();
    }

    #[test]
    fn writer_handoff_wakes_waiting_readers() {
        let lock = StdArc::new(SolarisLikeRwLock::new(4));
        let mut w = lock.handle().unwrap();
        w.lock_write();
        let readers_in = StdArc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let lock = StdArc::clone(&lock);
            let readers_in = StdArc::clone(&readers_in);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                h.lock_read();
                readers_in.fetch_add(1, O::SeqCst);
                h.unlock_read();
            }));
        }
        // Give readers time to hit the slow path and enqueue.
        std::thread::sleep(std::time::Duration::from_millis(30));
        w.unlock_write();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(readers_in.load(O::SeqCst), 3);
        assert_eq!(lock.word.load(O::SeqCst), 0);
    }

    #[test]
    fn exclusion_stress_both_strategies() {
        for strategy in [WaitStrategy::SpinThenYield, WaitStrategy::SpinThenPark] {
            const THREADS: usize = 6;
            let lock = StdArc::new(SolarisLikeRwLock::with_strategy(THREADS, strategy));
            let state = StdArc::new(AtomicI64::new(0));
            let mut handles = Vec::new();
            for tid in 0..THREADS {
                let lock = StdArc::clone(&lock);
                let state = StdArc::clone(&state);
                handles.push(std::thread::spawn(move || {
                    let mut h = lock.handle().unwrap();
                    let mut rng = oll_util::XorShift64::for_thread(31, tid);
                    for _ in 0..1_000 {
                        if rng.percent(70) {
                            h.lock_read();
                            assert!(state.fetch_add(1, O::SeqCst) >= 0);
                            state.fetch_sub(1, O::SeqCst);
                            h.unlock_read();
                        } else {
                            h.lock_write();
                            assert_eq!(state.swap(-1, O::SeqCst), 0);
                            state.store(0, O::SeqCst);
                            h.unlock_write();
                        }
                    }
                }));
            }
            for t in handles {
                t.join().unwrap();
            }
            assert_eq!(lock.word.load(O::SeqCst), 0);
        }
    }
}
