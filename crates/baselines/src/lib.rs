//! Baseline reader-writer locks the paper compares against or builds on
//! (*Scalable Reader-Writer Locks*, SPAA 2009).
//!
//! Every lock here implements [`oll_core::RwLockFamily`], so the Figure 5
//! harness and the integration test suite drive them interchangeably with
//! the OLL locks:
//!
//! * [`CentralizedRwLock`] — one CAS word; the strawman of §1.
//! * [`SolarisLikeRwLock`] — central lockword + turnstile hand-off (§3.1);
//!   the lock GOLL improves on, benchmarked in Figure 5 as "Solaris Like".
//! * [`McsMutex`] — the MCS queue mutex (§4.1), substrate of FOLL/ROLL.
//! * [`McsRwLock`] — Mellor-Crummey & Scott's fair queue RW lock \[11\],
//!   plus its reader-preference ([`McsRwReaderPref`]) and
//!   writer-preference ([`McsRwWriterPref`]) siblings.
//! * [`KsuhLock`] — Krieger et al.'s doubly-linked-queue RW lock \[8\],
//!   the paper's fastest MCS-style competitor, benchmarked in Figure 5.
//! * [`PerThreadRwLock`] — Hsieh & Weihl's private-mutex-per-thread
//!   design \[7\]: scalable reads bought with O(threads) writes.
//! * [`StdRwLock`] — `std::sync::RwLock` for a platform sanity line.

#![warn(missing_docs)]

pub mod centralized;
pub mod ksuh;
pub mod mcs_mutex;
pub mod mcs_rw;
pub mod mcs_rw_pref;
pub mod per_thread;
pub mod solaris_like;
pub mod std_rw;

pub use centralized::CentralizedRwLock;
pub use ksuh::KsuhLock;
pub use mcs_mutex::McsMutex;
pub use mcs_rw::McsRwLock;
pub use mcs_rw_pref::{McsRwReaderPref, McsRwWriterPref};
pub use per_thread::PerThreadRwLock;
pub use solaris_like::SolarisLikeRwLock;
pub use std_rw::StdRwLock;
