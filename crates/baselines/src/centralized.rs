//! The naive centralized reader-writer lock: one CAS-able word holding a
//! reader count and a writer flag.
//!
//! This is the strawman every scalable-lock paper (including §1 of ours)
//! opens with: correct, simple, and serializing — every acquisition and
//! every release is a compare-and-swap on the same cache line, so
//! read-only workloads degrade as threads are added. It doubles as the
//! "counter" side of the `ablation_csnzi_vs_counter` benchmark.
//!
//! Word layout: bit 0 = write-locked, bit 1 = write-wanted (so writers are
//! not starved by a steady reader stream), bits 2.. = reader count.

use oll_core::raw::{RwHandle, RwLockFamily};
use oll_hazard::Hazard;
use oll_util::backoff::{Backoff, BackoffPolicy};
use oll_util::slots::{SlotError, SlotGuard, SlotRegistry};
use oll_util::sync::{AtomicU64, Ordering};
use oll_util::CachePadded;

const WRITE_LOCKED: u64 = 0b01;
const WRITE_WANTED: u64 = 0b10;
const READER_UNIT: u64 = 0b100;

/// The centralized CAS-word reader-writer lock.
pub struct CentralizedRwLock {
    word: CachePadded<AtomicU64>,
    slots: SlotRegistry,
    backoff: BackoffPolicy,
    hazard: Hazard,
}

impl CentralizedRwLock {
    /// Creates a lock for at most `capacity` concurrent threads.
    pub fn new(capacity: usize) -> Self {
        Self {
            word: CachePadded::new(AtomicU64::new(0)),
            slots: SlotRegistry::new(capacity.max(1)),
            backoff: BackoffPolicy::default(),
            hazard: Hazard::new(),
        }
    }

    fn try_read_once(&self) -> bool {
        let w = self.word.load(Ordering::Acquire);
        if w & (WRITE_LOCKED | WRITE_WANTED) != 0 {
            return false;
        }
        self.word
            .compare_exchange(w, w + READER_UNIT, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    fn try_write_once(&self) -> bool {
        // Claim only from the fully free or write-wanted-by-us states.
        let w = self.word.load(Ordering::Acquire);
        if w & !WRITE_WANTED != 0 {
            return false;
        }
        self.word
            .compare_exchange(w, WRITE_LOCKED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

impl RwLockFamily for CentralizedRwLock {
    type Handle<'a> = CentralizedHandle<'a>;

    fn handle(&self) -> Result<CentralizedHandle<'_>, SlotError> {
        let slot = SlotGuard::claim(&self.slots)?;
        Ok(CentralizedHandle { lock: self, slot })
    }

    fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    fn name(&self) -> &'static str {
        "Centralized"
    }

    fn hazard(&self) -> Hazard {
        self.hazard.clone()
    }
}

/// Per-thread handle for [`CentralizedRwLock`].
pub struct CentralizedHandle<'a> {
    lock: &'a CentralizedRwLock,
    #[allow(dead_code)] // held for capacity accounting, like every lock here
    slot: SlotGuard<'a>,
}

impl RwHandle for CentralizedHandle<'_> {
    fn hazard(&self) -> Hazard {
        self.lock.hazard.clone()
    }

    fn lock_read(&mut self) {
        let mut b = Backoff::with_policy(self.lock.backoff);
        while !self.lock.try_read_once() {
            b.backoff();
        }
    }

    fn unlock_read(&mut self) {
        let old = self.lock.word.fetch_sub(READER_UNIT, Ordering::AcqRel);
        debug_assert!(old >= READER_UNIT, "unlock_read without read hold");
    }

    fn lock_write(&mut self) {
        let mut b = Backoff::with_policy(self.lock.backoff);
        // Announce intent so readers stop streaming past us.
        loop {
            let w = self.lock.word.load(Ordering::Acquire);
            if w == 0 || w == WRITE_WANTED {
                if self
                    .lock
                    .word
                    .compare_exchange(w, WRITE_LOCKED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return;
                }
            } else if w & WRITE_WANTED == 0 && w & WRITE_LOCKED == 0 {
                // Readers inside and nobody has claimed intent: claim it.
                let _ = self.lock.word.compare_exchange(
                    w,
                    w | WRITE_WANTED,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
            b.backoff();
        }
    }

    fn unlock_write(&mut self) {
        let old = self.lock.word.swap(0, Ordering::AcqRel);
        debug_assert!(old & WRITE_LOCKED != 0, "unlock_write without write hold");
    }

    fn try_lock_read(&mut self) -> bool {
        self.lock.try_read_once()
    }

    fn try_lock_write(&mut self) -> bool {
        self.lock.try_write_once()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering as O};
    use std::sync::Arc;

    #[test]
    fn read_write_round_trip() {
        let lock = CentralizedRwLock::new(2);
        let mut h = lock.handle().unwrap();
        h.lock_read();
        h.unlock_read();
        h.lock_write();
        h.unlock_write();
        assert_eq!(lock.word.load(O::SeqCst), 0);
    }

    #[test]
    fn readers_share_writers_exclude() {
        let lock = CentralizedRwLock::new(3);
        let mut r1 = lock.handle().unwrap();
        let mut r2 = lock.handle().unwrap();
        let mut w = lock.handle().unwrap();
        r1.lock_read();
        assert!(r2.try_lock_read());
        assert!(!w.try_lock_write());
        r1.unlock_read();
        r2.unlock_read();
        assert!(w.try_lock_write());
        assert!(!r1.try_lock_read());
        w.unlock_write();
    }

    #[test]
    fn write_wanted_blocks_new_readers() {
        let lock = CentralizedRwLock::new(3);
        let mut r1 = lock.handle().unwrap();
        let mut r2 = lock.handle().unwrap();
        r1.lock_read();
        // Simulate a writer announcing intent.
        lock.word.fetch_or(WRITE_WANTED, O::SeqCst);
        assert!(!r2.try_lock_read());
        lock.word.fetch_and(!WRITE_WANTED, O::SeqCst);
        assert!(r2.try_lock_read());
        r1.unlock_read();
        r2.unlock_read();
    }

    #[test]
    fn exclusion_stress() {
        const THREADS: usize = 6;
        let lock = Arc::new(CentralizedRwLock::new(THREADS));
        let state = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let lock = Arc::clone(&lock);
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                let mut rng = oll_util::XorShift64::for_thread(21, tid);
                for _ in 0..1_500 {
                    if rng.percent(70) {
                        h.lock_read();
                        assert!(state.fetch_add(1, O::SeqCst) >= 0);
                        state.fetch_sub(1, O::SeqCst);
                        h.unlock_read();
                    } else {
                        h.lock_write();
                        assert_eq!(state.swap(-1, O::SeqCst), 0);
                        state.store(0, O::SeqCst);
                        h.unlock_write();
                    }
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(lock.word.load(O::SeqCst), 0);
    }
}
