//! The fair MCS reader-writer lock (Mellor-Crummey & Scott, PPoPP'91) —
//! reference \[11\] of the paper.
//!
//! Extends the MCS mutex queue with reader/writer classes: a reader may
//! enter alongside an *active* reader predecessor, and each reader that
//! acquires the lock unblocks a waiting reader successor. A shared
//! `reader_count` and `next_writer` let the last leaving reader hand the
//! lock to the first queued writer.
//!
//! The paper's critique (§1): "every thread still updates the tail pointer
//! when it acquires the lock, and every reader updates the reader count
//! both when it acquires the lock and when it releases it. As a result,
//! this algorithm does not scale well under heavy read contention." Those
//! shared updates are all visible below.
//!
//! All atomics here use `SeqCst`: the published algorithm assumes
//! sequential consistency, and as a baseline its constant factors matter
//! far less than its shared-write pattern.

use oll_core::raw::{RwHandle, RwLockFamily};
use oll_hazard::Hazard;
use oll_util::backoff::{spin_until, BackoffPolicy};
use oll_util::slots::{SlotError, SlotGuard, SlotRegistry};
use oll_util::sync::{AtomicI64, AtomicU32, Ordering::SeqCst};
use oll_util::CachePadded;

const NIL: u32 = u32::MAX;

const CLASS_READER: u32 = 0;
const CLASS_WRITER: u32 = 1;

// node.state bits: bit 0 = blocked; bits 1..=2 = successor class.
const BLOCKED: u32 = 0b001;
const SUCC_NONE: u32 = 0b000;
const SUCC_READER: u32 = 0b010;
const SUCC_WRITER: u32 = 0b100;
const SUCC_MASK: u32 = 0b110;

struct Node {
    class: AtomicU32,
    next: AtomicU32,
    state: AtomicU32,
}

/// The fair MCS reader-writer lock.
pub struct McsRwLock {
    tail: CachePadded<AtomicU32>,
    reader_count: CachePadded<AtomicI64>,
    next_writer: CachePadded<AtomicU32>,
    nodes: Box<[CachePadded<Node>]>,
    slots: SlotRegistry,
    backoff: BackoffPolicy,
    hazard: Hazard,
}

impl McsRwLock {
    /// Creates a lock for at most `capacity` concurrent threads.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            tail: CachePadded::new(AtomicU32::new(NIL)),
            reader_count: CachePadded::new(AtomicI64::new(0)),
            next_writer: CachePadded::new(AtomicU32::new(NIL)),
            nodes: (0..capacity)
                .map(|_| {
                    CachePadded::new(Node {
                        class: AtomicU32::new(CLASS_READER),
                        next: AtomicU32::new(NIL),
                        state: AtomicU32::new(0),
                    })
                })
                .collect(),
            slots: SlotRegistry::new(capacity),
            backoff: BackoffPolicy::default(),
            hazard: Hazard::new(),
        }
    }

    fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    fn unblock(&self, i: usize) {
        self.node(i).state.fetch_and(!BLOCKED, SeqCst);
    }

    fn is_blocked(&self, i: usize) -> bool {
        self.node(i).state.load(SeqCst) & BLOCKED != 0
    }

    fn start_write(&self, me: usize) {
        let node = self.node(me);
        node.class.store(CLASS_WRITER, SeqCst);
        node.next.store(NIL, SeqCst);
        node.state.store(BLOCKED | SUCC_NONE, SeqCst);
        let pred = self.tail.swap(me as u32, SeqCst);
        if pred == NIL {
            // No predecessor: we may still have to wait for active readers.
            self.next_writer.store(me as u32, SeqCst);
            if self.reader_count.load(SeqCst) == 0
                && self.next_writer.swap(NIL, SeqCst) == me as u32
            {
                self.unblock(me);
            }
        } else {
            let pnode = self.node(pred as usize);
            pnode.state.fetch_or(SUCC_WRITER, SeqCst);
            pnode.next.store(me as u32, SeqCst);
        }
        spin_until(self.backoff, || !self.is_blocked(me));
    }

    fn start_read(&self, me: usize) {
        let node = self.node(me);
        node.class.store(CLASS_READER, SeqCst);
        node.next.store(NIL, SeqCst);
        node.state.store(BLOCKED | SUCC_NONE, SeqCst);
        let pred = self.tail.swap(me as u32, SeqCst);
        if pred == NIL {
            self.reader_count.fetch_add(1, SeqCst);
            self.unblock(me);
        } else {
            let pnode = self.node(pred as usize);
            // If the predecessor is a writer, or a still-blocked reader
            // with no successor yet (we register as its reader successor
            // atomically), we must wait to be unblocked.
            let must_wait = pnode.class.load(SeqCst) == CLASS_WRITER
                || pnode
                    .state
                    .compare_exchange(BLOCKED | SUCC_NONE, BLOCKED | SUCC_READER, SeqCst, SeqCst)
                    .is_ok();
            if must_wait {
                pnode.next.store(me as u32, SeqCst);
                spin_until(self.backoff, || !self.is_blocked(me));
            } else {
                // Active reader predecessor: enter immediately.
                self.reader_count.fetch_add(1, SeqCst);
                pnode.next.store(me as u32, SeqCst);
                self.unblock(me);
            }
        }
        // An acquiring reader unblocks a waiting reader successor (chained
        // wakeup).
        if node.state.load(SeqCst) & SUCC_MASK == SUCC_READER {
            spin_until(self.backoff, || node.next.load(SeqCst) != NIL);
            self.reader_count.fetch_add(1, SeqCst);
            self.unblock(node.next.load(SeqCst) as usize);
        }
    }

    fn end_read(&self, me: usize) {
        let node = self.node(me);
        if node.next.load(SeqCst) != NIL
            || self
                .tail
                .compare_exchange(me as u32, NIL, SeqCst, SeqCst)
                .is_err()
        {
            spin_until(self.backoff, || node.next.load(SeqCst) != NIL);
            if node.state.load(SeqCst) & SUCC_MASK == SUCC_WRITER {
                self.next_writer.store(node.next.load(SeqCst), SeqCst);
            }
        }
        if self.reader_count.fetch_sub(1, SeqCst) == 1 {
            // Last reader out: hand to the queued writer, if any.
            let w = self.next_writer.swap(NIL, SeqCst);
            if w != NIL {
                self.unblock(w as usize);
            }
        }
    }

    fn end_write(&self, me: usize) {
        let node = self.node(me);
        if node.next.load(SeqCst) != NIL
            || self
                .tail
                .compare_exchange(me as u32, NIL, SeqCst, SeqCst)
                .is_err()
        {
            spin_until(self.backoff, || node.next.load(SeqCst) != NIL);
            let succ = node.next.load(SeqCst) as usize;
            if self.node(succ).class.load(SeqCst) == CLASS_READER {
                self.reader_count.fetch_add(1, SeqCst);
            }
            self.unblock(succ);
        }
    }
}

impl RwLockFamily for McsRwLock {
    type Handle<'a> = McsRwHandle<'a>;

    fn handle(&self) -> Result<McsRwHandle<'_>, SlotError> {
        let slot = SlotGuard::claim(&self.slots)?;
        Ok(McsRwHandle { lock: self, slot })
    }

    fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    fn name(&self) -> &'static str {
        "MCS-RW"
    }

    fn hazard(&self) -> Hazard {
        self.hazard.clone()
    }
}

/// Per-thread handle for [`McsRwLock`].
pub struct McsRwHandle<'a> {
    lock: &'a McsRwLock,
    slot: SlotGuard<'a>,
}

impl RwHandle for McsRwHandle<'_> {
    fn hazard(&self) -> Hazard {
        self.lock.hazard.clone()
    }

    fn lock_read(&mut self) {
        self.lock.start_read(self.slot.slot());
    }

    fn unlock_read(&mut self) {
        self.lock.end_read(self.slot.slot());
    }

    fn lock_write(&mut self) {
        self.lock.start_write(self.slot.slot());
    }

    fn unlock_write(&mut self) {
        self.lock.end_write(self.slot.slot());
    }

    /// Conservative: succeeds only on an empty queue with no active
    /// readers.
    fn try_lock_read(&mut self) -> bool {
        let lock = self.lock;
        let me = self.slot.slot();
        if lock.tail.load(SeqCst) != NIL {
            return false;
        }
        let node = lock.node(me);
        node.class.store(CLASS_READER, SeqCst);
        node.next.store(NIL, SeqCst);
        node.state.store(BLOCKED | SUCC_NONE, SeqCst);
        if lock
            .tail
            .compare_exchange(NIL, me as u32, SeqCst, SeqCst)
            .is_err()
        {
            return false;
        }
        lock.reader_count.fetch_add(1, SeqCst);
        lock.unblock(me);
        // Honor the chained-wakeup duty even on the try path.
        if node.state.load(SeqCst) & SUCC_MASK == SUCC_READER {
            spin_until(lock.backoff, || node.next.load(SeqCst) != NIL);
            lock.reader_count.fetch_add(1, SeqCst);
            lock.unblock(node.next.load(SeqCst) as usize);
        }
        true
    }

    fn try_lock_write(&mut self) -> bool {
        let lock = self.lock;
        let me = self.slot.slot();
        if lock.tail.load(SeqCst) != NIL || lock.reader_count.load(SeqCst) != 0 {
            return false;
        }
        let node = lock.node(me);
        node.class.store(CLASS_WRITER, SeqCst);
        node.next.store(NIL, SeqCst);
        node.state.store(BLOCKED | SUCC_NONE, SeqCst);
        if lock
            .tail
            .compare_exchange(NIL, me as u32, SeqCst, SeqCst)
            .is_err()
        {
            return false;
        }
        lock.next_writer.store(me as u32, SeqCst);
        if lock.reader_count.load(SeqCst) == 0 && lock.next_writer.swap(NIL, SeqCst) == me as u32 {
            lock.unblock(me);
            true
        } else {
            // Readers slipped in between the emptiness check and the
            // enqueue. Blocking here would make a "try" call hang for as
            // long as those readers hold the lock (forever, if a guard
            // leaks), so withdraw instead: reclaim the hand-off token,
            // then dequeue — legal only while no departing reader claimed
            // the token and no successor linked behind us.
            if lock.next_writer.swap(NIL, SeqCst) == me as u32 {
                if lock
                    .tail
                    .compare_exchange(me as u32, NIL, SeqCst, SeqCst)
                    .is_ok()
                {
                    return false;
                }
                // A successor linked behind us: we are committed to the
                // queue. Re-arm the hand-off and re-run the grant check —
                // the readers may all have left while the token was
                // parked here, and then nobody else will unblock us.
                lock.next_writer.store(me as u32, SeqCst);
                if lock.reader_count.load(SeqCst) == 0
                    && lock.next_writer.swap(NIL, SeqCst) == me as u32
                {
                    lock.unblock(me);
                }
            }
            // Either a departing reader claimed the hand-off (it will
            // unblock us) or we re-armed it; the blocking protocol
            // finishes the acquisition.
            spin_until(lock.backoff, || !lock.is_blocked(me));
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64 as StdI64, Ordering as O};
    use std::sync::Arc;

    #[test]
    fn uncontended_round_trip() {
        let lock = McsRwLock::new(2);
        let mut h = lock.handle().unwrap();
        h.lock_read();
        h.unlock_read();
        h.lock_write();
        h.unlock_write();
        assert_eq!(lock.tail.load(SeqCst), NIL);
        assert_eq!(lock.reader_count.load(SeqCst), 0);
    }

    #[test]
    fn readers_share() {
        let lock = McsRwLock::new(3);
        let mut r1 = lock.handle().unwrap();
        let mut r2 = lock.handle().unwrap();
        r1.lock_read();
        r2.lock_read();
        assert_eq!(lock.reader_count.load(SeqCst), 2);
        r2.unlock_read();
        r1.unlock_read();
        assert_eq!(lock.reader_count.load(SeqCst), 0);
    }

    #[test]
    fn try_paths() {
        let lock = McsRwLock::new(3);
        let mut r = lock.handle().unwrap();
        let mut w = lock.handle().unwrap();
        assert!(r.try_lock_read());
        assert!(!w.try_lock_write());
        r.unlock_read();
        assert!(w.try_lock_write());
        assert!(!r.try_lock_read());
        w.unlock_write();
    }

    #[test]
    fn writer_waits_for_active_readers() {
        let lock = Arc::new(McsRwLock::new(3));
        let mut r = lock.handle().unwrap();
        r.lock_read();
        let l2 = Arc::clone(&lock);
        let entered = Arc::new(StdI64::new(0));
        let e2 = Arc::clone(&entered);
        let t = std::thread::spawn(move || {
            let mut w = l2.handle().unwrap();
            w.lock_write();
            e2.store(1, O::SeqCst);
            w.unlock_write();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(entered.load(O::SeqCst), 0, "writer must wait for reader");
        r.unlock_read();
        t.join().unwrap();
        assert_eq!(entered.load(O::SeqCst), 1);
    }

    #[test]
    fn exclusion_stress() {
        const THREADS: usize = 6;
        let lock = Arc::new(McsRwLock::new(THREADS));
        let state = Arc::new(StdI64::new(0));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let lock = Arc::clone(&lock);
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                let mut rng = oll_util::XorShift64::for_thread(77, tid);
                for _ in 0..1_500 {
                    if rng.percent(70) {
                        h.lock_read();
                        assert!(state.fetch_add(1, O::SeqCst) >= 0);
                        state.fetch_sub(1, O::SeqCst);
                        h.unlock_read();
                    } else {
                        h.lock_write();
                        assert_eq!(state.swap(-1, O::SeqCst), 0);
                        state.store(0, O::SeqCst);
                        h.unlock_write();
                    }
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(lock.tail.load(SeqCst), NIL);
        assert_eq!(lock.reader_count.load(SeqCst), 0);
    }
}
