//! The reader-preference and writer-preference MCS reader-writer locks
//! (Mellor-Crummey & Scott, PPoPP'91 — reference \[11\] of the paper
//! presents fair, reader-preference, and writer-preference versions; the
//! fair one lives in [`crate::mcs_rw`]).
//!
//! Both variants use the same skeleton: writers serialize among
//! themselves on an MCS queue (so writer hand-off is local spinning), and
//! contend with readers through one central word that packs the reader
//! count with a *writer-active* flag (and, for the writer-preference
//! variant, a *writer-interested* flag):
//!
//! * **Reader preference** ([`McsRwReaderPref`]): readers only defer to
//!   an *active* writer, never to queued ones — a steady reader stream
//!   can starve writers (the same trade ROLL makes with queue structure
//!   instead of a counter).
//! * **Writer preference** ([`McsRwWriterPref`]): readers defer to active
//!   *and interested* writers; a steady writer stream can starve readers.
//!
//! Like every centralized-counter lock, both make readers CAS a shared
//! word on each acquire and release — the cost the paper's C-SNZI
//! removes.

use oll_core::raw::{RwHandle, RwLockFamily};
use oll_hazard::Hazard;
use oll_util::backoff::{spin_until, Backoff, BackoffPolicy};
use oll_util::slots::{SlotError, SlotGuard, SlotRegistry};
use oll_util::sync::{AtomicBool, AtomicU32, AtomicU64, Ordering::SeqCst};
use oll_util::CachePadded;

const NIL: u32 = u32::MAX;

/// Writer-active flag: a writer holds the lock.
const WAFLAG: u64 = 0b01;
/// Writer-interested flag (writer-preference only): a writer is queued.
const WWFLAG: u64 = 0b10;
/// One reader in the count.
const RC_INCR: u64 = 0b100;

struct WriterNode {
    next: AtomicU32,
    spin: AtomicBool,
}

/// Shared skeleton: central `count+flags` word plus an MCS queue that
/// serializes writers.
struct Core {
    word: CachePadded<AtomicU64>,
    writer_tail: CachePadded<AtomicU32>,
    nodes: Box<[CachePadded<WriterNode>]>,
    slots: SlotRegistry,
    backoff: BackoffPolicy,
    hazard: Hazard,
}

impl Core {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            word: CachePadded::new(AtomicU64::new(0)),
            writer_tail: CachePadded::new(AtomicU32::new(NIL)),
            nodes: (0..capacity)
                .map(|_| {
                    CachePadded::new(WriterNode {
                        next: AtomicU32::new(NIL),
                        spin: AtomicBool::new(false),
                    })
                })
                .collect(),
            slots: SlotRegistry::new(capacity),
            backoff: BackoffPolicy::default(),
            hazard: Hazard::new(),
        }
    }

    /// MCS-acquire the writer queue: on return, this thread is the sole
    /// *candidate* writer (it still must claim `WAFLAG` against readers).
    fn writer_queue_acquire(&self, me: usize) {
        let node = &self.nodes[me];
        node.next.store(NIL, SeqCst);
        let pred = self.writer_tail.swap(me as u32, SeqCst);
        if pred == NIL {
            return;
        }
        node.spin.store(true, SeqCst);
        self.nodes[pred as usize].next.store(me as u32, SeqCst);
        spin_until(self.backoff, || !node.spin.load(SeqCst));
    }

    /// MCS-release the writer queue; returns `true` if a successor writer
    /// was handed the candidacy.
    fn writer_queue_release(&self, me: usize) -> bool {
        let node = &self.nodes[me];
        if node.next.load(SeqCst) == NIL {
            if self
                .writer_tail
                .compare_exchange(me as u32, NIL, SeqCst, SeqCst)
                .is_ok()
            {
                return false;
            }
            spin_until(self.backoff, || node.next.load(SeqCst) != NIL);
        }
        let succ = node.next.load(SeqCst) as usize;
        self.nodes[succ].spin.store(false, SeqCst);
        true
    }

    /// Reader entry: spin until none of `block_mask`'s flags are set,
    /// then count in.
    fn reader_enter(&self, block_mask: u64) {
        let mut b = Backoff::with_policy(self.backoff);
        loop {
            let w = self.word.load(SeqCst);
            if w & block_mask == 0
                && self
                    .word
                    .compare_exchange(w, w + RC_INCR, SeqCst, SeqCst)
                    .is_ok()
            {
                return;
            }
            b.backoff();
        }
    }

    fn try_reader_enter(&self, block_mask: u64) -> bool {
        let w = self.word.load(SeqCst);
        w & block_mask == 0
            && self
                .word
                .compare_exchange(w, w + RC_INCR, SeqCst, SeqCst)
                .is_ok()
    }

    fn reader_exit(&self) {
        let old = self.word.fetch_sub(RC_INCR, SeqCst);
        debug_assert!(old >= RC_INCR, "unlock_read without read hold");
    }
}

// ---------------------------------------------------------------------
// Reader preference
// ---------------------------------------------------------------------

/// The reader-preference MCS reader-writer lock.
pub struct McsRwReaderPref {
    core: Core,
}

impl McsRwReaderPref {
    /// Creates a lock for at most `capacity` concurrent threads.
    pub fn new(capacity: usize) -> Self {
        Self {
            core: Core::new(capacity),
        }
    }
}

impl RwLockFamily for McsRwReaderPref {
    type Handle<'a> = McsRwReaderPrefHandle<'a>;

    fn handle(&self) -> Result<McsRwReaderPrefHandle<'_>, SlotError> {
        let slot = SlotGuard::claim(&self.core.slots)?;
        Ok(McsRwReaderPrefHandle { lock: self, slot })
    }

    fn capacity(&self) -> usize {
        self.core.slots.capacity()
    }

    fn name(&self) -> &'static str {
        "MCS-RW-rp"
    }

    fn hazard(&self) -> Hazard {
        self.core.hazard.clone()
    }
}

/// Per-thread handle for [`McsRwReaderPref`].
pub struct McsRwReaderPrefHandle<'a> {
    lock: &'a McsRwReaderPref,
    slot: SlotGuard<'a>,
}

impl RwHandle for McsRwReaderPrefHandle<'_> {
    fn hazard(&self) -> Hazard {
        self.lock.core.hazard.clone()
    }

    fn lock_read(&mut self) {
        // Readers only wait out an *active* writer.
        self.lock.core.reader_enter(WAFLAG);
    }

    fn unlock_read(&mut self) {
        self.lock.core.reader_exit();
    }

    fn lock_write(&mut self) {
        let core = &self.lock.core;
        core.writer_queue_acquire(self.slot.slot());
        // Sole candidate: wait for a moment with no readers, claim WAFLAG.
        let mut b = Backoff::with_policy(core.backoff);
        loop {
            if core
                .word
                .compare_exchange(0, WAFLAG, SeqCst, SeqCst)
                .is_ok()
            {
                return;
            }
            b.backoff();
        }
    }

    fn unlock_write(&mut self) {
        let core = &self.lock.core;
        let old = core.word.fetch_sub(WAFLAG, SeqCst);
        debug_assert!(old & WAFLAG != 0, "unlock_write without write hold");
        core.writer_queue_release(self.slot.slot());
    }

    fn try_lock_read(&mut self) -> bool {
        self.lock.core.try_reader_enter(WAFLAG)
    }

    fn try_lock_write(&mut self) -> bool {
        let core = &self.lock.core;
        let me = self.slot.slot();
        // Non-blocking: claim queue candidacy only if the queue is empty,
        // then the word only if it is fully free; otherwise roll back.
        core.nodes[me].next.store(NIL, SeqCst);
        if core
            .writer_tail
            .compare_exchange(NIL, me as u32, SeqCst, SeqCst)
            .is_err()
        {
            return false;
        }
        if core
            .word
            .compare_exchange(0, WAFLAG, SeqCst, SeqCst)
            .is_ok()
        {
            true
        } else {
            core.writer_queue_release(me);
            false
        }
    }
}

// ---------------------------------------------------------------------
// Writer preference
// ---------------------------------------------------------------------

/// The writer-preference MCS reader-writer lock.
pub struct McsRwWriterPref {
    core: Core,
}

impl McsRwWriterPref {
    /// Creates a lock for at most `capacity` concurrent threads.
    pub fn new(capacity: usize) -> Self {
        Self {
            core: Core::new(capacity),
        }
    }
}

impl RwLockFamily for McsRwWriterPref {
    type Handle<'a> = McsRwWriterPrefHandle<'a>;

    fn handle(&self) -> Result<McsRwWriterPrefHandle<'_>, SlotError> {
        let slot = SlotGuard::claim(&self.core.slots)?;
        Ok(McsRwWriterPrefHandle { lock: self, slot })
    }

    fn capacity(&self) -> usize {
        self.core.slots.capacity()
    }

    fn name(&self) -> &'static str {
        "MCS-RW-wp"
    }

    fn hazard(&self) -> Hazard {
        self.core.hazard.clone()
    }
}

/// Per-thread handle for [`McsRwWriterPref`].
pub struct McsRwWriterPrefHandle<'a> {
    lock: &'a McsRwWriterPref,
    slot: SlotGuard<'a>,
}

impl RwHandle for McsRwWriterPrefHandle<'_> {
    fn hazard(&self) -> Hazard {
        self.lock.core.hazard.clone()
    }

    fn lock_read(&mut self) {
        // Readers defer to active *and* interested writers.
        self.lock.core.reader_enter(WAFLAG | WWFLAG);
    }

    fn unlock_read(&mut self) {
        self.lock.core.reader_exit();
    }

    fn lock_write(&mut self) {
        let core = &self.lock.core;
        core.writer_queue_acquire(self.slot.slot());
        // Sole candidate: announce interest (blocks new readers), wait for
        // existing readers to drain, then convert interest to activity.
        let mut b = Backoff::with_policy(core.backoff);
        loop {
            let w = core.word.load(SeqCst);
            if w & WWFLAG == 0 {
                // (Re-)assert interest; a predecessor's release may have
                // cleared it.
                core.word.fetch_or(WWFLAG, SeqCst);
                continue;
            }
            if w & WAFLAG == 0
                && w / RC_INCR == 0
                && core
                    .word
                    .compare_exchange(w, WAFLAG | WWFLAG, SeqCst, SeqCst)
                    .is_ok()
            {
                return;
            }
            b.backoff();
        }
    }

    fn unlock_write(&mut self) {
        let core = &self.lock.core;
        let me = self.slot.slot();
        let node = &core.nodes[me];
        // Peek for a successor *before* touching the word: if one exists,
        // keep WWFLAG up across the hand-off so readers stay blocked
        // (strict writer preference).
        let has_succ = node.next.load(SeqCst) != NIL
            || core
                .writer_tail
                .compare_exchange(me as u32, me as u32, SeqCst, SeqCst)
                .is_err();
        if has_succ {
            core.word.fetch_and(!WAFLAG, SeqCst);
        } else {
            core.word.fetch_and(!(WAFLAG | WWFLAG), SeqCst);
        }
        core.writer_queue_release(me);
    }

    fn try_lock_read(&mut self) -> bool {
        self.lock.core.try_reader_enter(WAFLAG | WWFLAG)
    }

    fn try_lock_write(&mut self) -> bool {
        let core = &self.lock.core;
        let me = self.slot.slot();
        core.nodes[me].next.store(NIL, SeqCst);
        if core
            .writer_tail
            .compare_exchange(NIL, me as u32, SeqCst, SeqCst)
            .is_err()
        {
            return false;
        }
        if core
            .word
            .compare_exchange(0, WAFLAG | WWFLAG, SeqCst, SeqCst)
            .is_ok()
        {
            true
        } else {
            // Roll back: clear any interest we implied and leave the queue.
            self.unlock_try_rollback();
            false
        }
    }
}

impl McsRwWriterPrefHandle<'_> {
    fn unlock_try_rollback(&mut self) {
        let core = &self.lock.core;
        let me = self.slot.slot();
        if !core.writer_queue_release(me) {
            // No successor: nothing else to clean (we never set flags).
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering as O};
    use std::sync::Arc;
    use std::time::Duration;

    fn round_trip<L: RwLockFamily>(lock: L) {
        let mut h = lock.handle().unwrap();
        h.lock_read();
        h.unlock_read();
        h.lock_write();
        h.unlock_write();
        h.lock_read();
        h.unlock_read();
    }

    #[test]
    fn both_variants_round_trip() {
        round_trip(McsRwReaderPref::new(2));
        round_trip(McsRwWriterPref::new(2));
    }

    #[test]
    fn readers_share_in_both() {
        fn check<L: RwLockFamily>(lock: L) {
            let mut a = lock.handle().unwrap();
            let mut b = lock.handle().unwrap();
            a.lock_read();
            assert!(b.try_lock_read(), "{}", lock.name());
            b.unlock_read();
            a.unlock_read();
        }
        check(McsRwReaderPref::new(2));
        check(McsRwWriterPref::new(2));
    }

    #[test]
    fn writer_excludes_in_both() {
        fn check<L: RwLockFamily>(lock: L) {
            let mut a = lock.handle().unwrap();
            let mut b = lock.handle().unwrap();
            a.lock_write();
            assert!(!b.try_lock_read(), "{}", lock.name());
            assert!(!b.try_lock_write(), "{}", lock.name());
            a.unlock_write();
        }
        check(McsRwReaderPref::new(2));
        check(McsRwWriterPref::new(2));
    }

    #[test]
    fn reader_pref_readers_pass_waiting_writers() {
        // A reader holds; a writer queues (candidate, cannot claim).
        // A second reader must still get in immediately — that is the
        // preference.
        let lock = Arc::new(McsRwReaderPref::new(3));
        let mut r1 = lock.handle().unwrap();
        r1.lock_read();
        let l2 = Arc::clone(&lock);
        let done = Arc::new(AtomicI64::new(0));
        let d2 = Arc::clone(&done);
        let w = std::thread::spawn(move || {
            let mut h = l2.handle().unwrap();
            h.lock_write();
            d2.store(1, O::SeqCst);
            h.unlock_write();
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(done.load(O::SeqCst), 0, "writer must still be waiting");
        let mut r2 = lock.handle().unwrap();
        assert!(
            r2.try_lock_read(),
            "reader preference: new reader enters past the waiting writer"
        );
        r2.unlock_read();
        r1.unlock_read();
        w.join().unwrap();
    }

    #[test]
    fn writer_pref_blocks_new_readers_while_writer_waits() {
        let lock = Arc::new(McsRwWriterPref::new(3));
        let mut r1 = lock.handle().unwrap();
        r1.lock_read();
        let l2 = Arc::clone(&lock);
        let done = Arc::new(AtomicI64::new(0));
        let d2 = Arc::clone(&done);
        let w = std::thread::spawn(move || {
            let mut h = l2.handle().unwrap();
            h.lock_write();
            d2.store(1, O::SeqCst);
            h.unlock_write();
        });
        // Wait until the writer has announced interest.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while lock.core.word.load(SeqCst) & WWFLAG == 0 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::yield_now();
        }
        let mut r2 = lock.handle().unwrap();
        assert!(
            !r2.try_lock_read(),
            "writer preference: new readers blocked while a writer waits"
        );
        r1.unlock_read();
        w.join().unwrap();
        assert!(r2.try_lock_read(), "free after writer completed");
        r2.unlock_read();
    }

    #[test]
    fn exclusion_stress_both() {
        fn stress<L: RwLockFamily + 'static>(lock: L) {
            const THREADS: usize = 5;
            let lock = Arc::new(lock);
            let state = Arc::new(AtomicI64::new(0));
            let mut handles = Vec::new();
            for tid in 0..THREADS {
                let lock = Arc::clone(&lock);
                let state = Arc::clone(&state);
                handles.push(std::thread::spawn(move || {
                    let mut h = lock.handle().unwrap();
                    let mut rng = oll_util::XorShift64::for_thread(91, tid);
                    for _ in 0..1_200 {
                        if rng.percent(70) {
                            h.lock_read();
                            assert!(state.fetch_add(1, O::SeqCst) >= 0);
                            state.fetch_sub(1, O::SeqCst);
                            h.unlock_read();
                        } else {
                            h.lock_write();
                            assert_eq!(state.swap(-1, O::SeqCst), 0);
                            state.store(0, O::SeqCst);
                            h.unlock_write();
                        }
                    }
                }));
            }
            for t in handles {
                t.join().unwrap();
            }
        }
        stress(McsRwReaderPref::new(5));
        stress(McsRwWriterPref::new(5));
    }
}
