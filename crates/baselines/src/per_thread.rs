//! The Hsieh–Weihl static per-thread-mutex reader-writer lock (IPPS'92) —
//! reference \[7\] of the paper.
//!
//! Each thread slot owns a private mutex. A reader acquires *its own*
//! mutex only — perfectly scalable reads with zero shared writes — while a
//! writer must acquire *all* of them in slot order. The paper's verdict
//! (§1): "this technique provides scalability for read-only workloads, \[but\]
//! it is feasible only for low numbers of threads as the burden placed on
//! writers becomes excessive at large thread counts." The Figure 5 harness
//! shows exactly that trade: flat, fast reads; writer cost linear in
//! capacity.

use oll_core::raw::{RwHandle, RwLockFamily};
use oll_hazard::Hazard;
use oll_util::backoff::{Backoff, BackoffPolicy};
use oll_util::slots::{SlotError, SlotGuard, SlotRegistry};
use oll_util::sync::{AtomicBool, Ordering};
use oll_util::CachePadded;

/// The per-thread-mutex reader-writer lock.
pub struct PerThreadRwLock {
    mutexes: Box<[CachePadded<AtomicBool>]>,
    slots: SlotRegistry,
    backoff: BackoffPolicy,
    hazard: Hazard,
}

impl PerThreadRwLock {
    /// Creates a lock for at most `capacity` concurrent threads.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            mutexes: (0..capacity)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            slots: SlotRegistry::new(capacity),
            backoff: BackoffPolicy::default(),
            hazard: Hazard::new(),
        }
    }

    fn acquire(&self, i: usize) {
        let mut b = Backoff::with_policy(self.backoff);
        while !self.try_acquire(i) {
            while self.mutexes[i].load(Ordering::Relaxed) {
                b.relax();
            }
        }
    }

    fn try_acquire(&self, i: usize) -> bool {
        self.mutexes[i]
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    fn release(&self, i: usize) {
        self.mutexes[i].store(false, Ordering::Release);
    }
}

impl RwLockFamily for PerThreadRwLock {
    type Handle<'a> = PerThreadHandle<'a>;

    fn handle(&self) -> Result<PerThreadHandle<'_>, SlotError> {
        let slot = SlotGuard::claim(&self.slots)?;
        Ok(PerThreadHandle { lock: self, slot })
    }

    fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    fn name(&self) -> &'static str {
        "Per-thread"
    }

    fn hazard(&self) -> Hazard {
        self.hazard.clone()
    }
}

/// Per-thread handle for [`PerThreadRwLock`].
pub struct PerThreadHandle<'a> {
    lock: &'a PerThreadRwLock,
    slot: SlotGuard<'a>,
}

impl RwHandle for PerThreadHandle<'_> {
    fn hazard(&self) -> Hazard {
        self.lock.hazard.clone()
    }

    fn lock_read(&mut self) {
        self.lock.acquire(self.slot.slot());
    }

    fn unlock_read(&mut self) {
        self.lock.release(self.slot.slot());
    }

    fn lock_write(&mut self) {
        // Fixed ascending order makes concurrent writers deadlock-free.
        for i in 0..self.lock.mutexes.len() {
            self.lock.acquire(i);
        }
    }

    fn unlock_write(&mut self) {
        for i in (0..self.lock.mutexes.len()).rev() {
            self.lock.release(i);
        }
    }

    fn try_lock_read(&mut self) -> bool {
        self.lock.try_acquire(self.slot.slot())
    }

    fn try_lock_write(&mut self) -> bool {
        for i in 0..self.lock.mutexes.len() {
            if !self.lock.try_acquire(i) {
                for j in (0..i).rev() {
                    self.lock.release(j);
                }
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering as O};
    use std::sync::Arc;

    #[test]
    fn reader_only_touches_its_own_mutex() {
        let lock = PerThreadRwLock::new(4);
        let mut h = lock.handle().unwrap();
        let me = 0; // first claimed slot
        h.lock_read();
        assert!(lock.mutexes[me].load(O::SeqCst));
        assert!(!lock.mutexes[1].load(O::SeqCst));
        h.unlock_read();
        assert!(!lock.mutexes[me].load(O::SeqCst));
    }

    #[test]
    fn writer_takes_everything() {
        let lock = PerThreadRwLock::new(3);
        let mut w = lock.handle().unwrap();
        w.lock_write();
        for m in lock.mutexes.iter() {
            assert!(m.load(O::SeqCst));
        }
        let mut r = lock.handle().unwrap();
        assert!(!r.try_lock_read());
        w.unlock_write();
        assert!(r.try_lock_read());
        r.unlock_read();
    }

    #[test]
    fn try_write_rolls_back() {
        let lock = PerThreadRwLock::new(3);
        let mut r = lock.handle().unwrap();
        let mut w = lock.handle().unwrap();
        r.lock_read();
        assert!(!w.try_lock_write());
        // All other mutexes must have been released on failure.
        let held: usize = lock.mutexes.iter().filter(|m| m.load(O::SeqCst)).count();
        assert_eq!(held, 1); // only the reader's own
        r.unlock_read();
        assert!(w.try_lock_write());
        w.unlock_write();
    }

    #[test]
    fn exclusion_stress() {
        const THREADS: usize = 6;
        let lock = Arc::new(PerThreadRwLock::new(THREADS));
        let state = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let lock = Arc::clone(&lock);
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                let mut rng = oll_util::XorShift64::for_thread(61, tid);
                for _ in 0..1_000 {
                    if rng.percent(70) {
                        h.lock_read();
                        assert!(state.fetch_add(1, O::SeqCst) >= 0);
                        state.fetch_sub(1, O::SeqCst);
                        h.unlock_read();
                    } else {
                        h.lock_write();
                        assert_eq!(state.swap(-1, O::SeqCst), 0);
                        state.store(0, O::SeqCst);
                        h.unlock_write();
                    }
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
    }
}
