//! `std::sync::RwLock` behind the workspace lock interface — a sanity
//! baseline: whatever the platform's general-purpose lock does, the
//! harness can compare it on the same workloads.

use oll_core::raw::{RwHandle, RwLockFamily};
use oll_hazard::Hazard;
use oll_util::slots::{SlotError, SlotGuard, SlotRegistry};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Adapter exposing `std::sync::RwLock<()>` as an [`RwLockFamily`].
pub struct StdRwLock {
    inner: RwLock<()>,
    slots: SlotRegistry,
    hazard: Hazard,
}

impl StdRwLock {
    /// Creates an adapter with `capacity` thread slots (for parity with
    /// the other locks; std itself has no capacity limit).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: RwLock::new(()),
            slots: SlotRegistry::new(capacity.max(1)),
            hazard: Hazard::new(),
        }
    }
}

impl RwLockFamily for StdRwLock {
    type Handle<'a> = StdRwHandle<'a>;

    fn handle(&self) -> Result<StdRwHandle<'_>, SlotError> {
        let slot = SlotGuard::claim(&self.slots)?;
        Ok(StdRwHandle {
            lock: self,
            _slot: slot,
            read_guard: None,
            write_guard: None,
        })
    }

    fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    fn name(&self) -> &'static str {
        "std::sync::RwLock"
    }

    fn hazard(&self) -> Hazard {
        self.hazard.clone()
    }
}

/// Per-thread handle for [`StdRwLock`]; stores the live std guard between
/// lock and unlock.
pub struct StdRwHandle<'a> {
    lock: &'a StdRwLock,
    _slot: SlotGuard<'a>,
    read_guard: Option<RwLockReadGuard<'a, ()>>,
    write_guard: Option<RwLockWriteGuard<'a, ()>>,
}

impl RwHandle for StdRwHandle<'_> {
    fn hazard(&self) -> Hazard {
        self.lock.hazard.clone()
    }

    /// std's native poison mark is absorbed (`into_inner`) rather than
    /// propagated: poisoning is the hazard layer's job, and the other
    /// families all stay acquirable after a panicking holder. Without
    /// this, one panicked writer would turn every later acquisition into
    /// a panic — and the try paths into permanent failures.
    fn lock_read(&mut self) {
        debug_assert!(self.read_guard.is_none() && self.write_guard.is_none());
        self.read_guard = Some(self.lock.inner.read().unwrap_or_else(|e| e.into_inner()));
    }

    fn unlock_read(&mut self) {
        drop(
            self.read_guard
                .take()
                .expect("unlock_read without read hold"),
        );
    }

    fn lock_write(&mut self) {
        debug_assert!(self.read_guard.is_none() && self.write_guard.is_none());
        self.write_guard = Some(self.lock.inner.write().unwrap_or_else(|e| e.into_inner()));
    }

    fn unlock_write(&mut self) {
        drop(
            self.write_guard
                .take()
                .expect("unlock_write without write hold"),
        );
    }

    fn try_lock_read(&mut self) -> bool {
        use std::sync::TryLockError;
        match self.lock.inner.try_read() {
            Ok(g) => {
                self.read_guard = Some(g);
                true
            }
            Err(TryLockError::Poisoned(e)) => {
                self.read_guard = Some(e.into_inner());
                true
            }
            Err(TryLockError::WouldBlock) => false,
        }
    }

    fn try_lock_write(&mut self) -> bool {
        use std::sync::TryLockError;
        match self.lock.inner.try_write() {
            Ok(g) => {
                self.write_guard = Some(g);
                true
            }
            Err(TryLockError::Poisoned(e)) => {
                self.write_guard = Some(e.into_inner());
                true
            }
            Err(TryLockError::WouldBlock) => false,
        }
    }
}

#[cfg(not(loom))]
impl oll_core::raw::TimedHandle for StdRwHandle<'_> {
    /// std has no native timed acquisition, so poll `try_read` under a
    /// deadline-bounded backoff. Unlike the queue locks this can starve
    /// under heavy contention, which is itself a useful baseline contrast.
    fn lock_read_deadline(
        &mut self,
        deadline: std::time::Instant,
    ) -> Result<(), oll_core::TimedOut> {
        use oll_util::backoff::{spin_until_deadline, BackoffPolicy};
        debug_assert!(self.read_guard.is_none() && self.write_guard.is_none());
        let inner = &self.lock.inner;
        let mut guard = None;
        if spin_until_deadline(BackoffPolicy::default(), deadline, || {
            match inner.try_read() {
                Ok(g) => {
                    guard = Some(g);
                    true
                }
                Err(std::sync::TryLockError::WouldBlock) => false,
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    guard = Some(e.into_inner());
                    true
                }
            }
        }) {
            self.read_guard = guard;
            Ok(())
        } else {
            Err(oll_core::TimedOut)
        }
    }

    fn lock_write_deadline(
        &mut self,
        deadline: std::time::Instant,
    ) -> Result<(), oll_core::TimedOut> {
        use oll_util::backoff::{spin_until_deadline, BackoffPolicy};
        debug_assert!(self.read_guard.is_none() && self.write_guard.is_none());
        let inner = &self.lock.inner;
        let mut guard = None;
        if spin_until_deadline(BackoffPolicy::default(), deadline, || {
            match inner.try_write() {
                Ok(g) => {
                    guard = Some(g);
                    true
                }
                Err(std::sync::TryLockError::WouldBlock) => false,
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    guard = Some(e.into_inner());
                    true
                }
            }
        }) {
            self.write_guard = guard;
            Ok(())
        } else {
            Err(oll_core::TimedOut)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let lock = StdRwLock::new(2);
        let mut h = lock.handle().unwrap();
        h.lock_read();
        h.unlock_read();
        h.lock_write();
        h.unlock_write();
    }

    #[test]
    fn try_paths() {
        let lock = StdRwLock::new(2);
        let mut a = lock.handle().unwrap();
        let mut b = lock.handle().unwrap();
        assert!(a.try_lock_write());
        assert!(!b.try_lock_read());
        a.unlock_write();
        assert!(b.try_lock_read());
        assert!(!a.try_lock_write());
        b.unlock_read();
    }

    #[test]
    #[should_panic(expected = "unlock_read without read hold")]
    fn unbalanced_unlock_panics() {
        let lock = StdRwLock::new(1);
        let mut h = lock.handle().unwrap();
        h.unlock_read();
    }
}
