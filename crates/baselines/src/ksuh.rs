//! The **KSUH** lock (Krieger, Stumm, Unrau & Hanna, ICPP'93) — the
//! paper's main distributed-queue competitor ("the fastest MCS-style
//! reader-writer lock we found", §5.1).
//!
//! Like the MCS reader-writer lock it keeps a queue of per-thread nodes,
//! but it eliminates the shared reader count and next-writer fields: the
//! queue is *doubly linked*, and a reader releasing the lock **splices
//! itself out** of the middle of the queue, so the set of active readers
//! is represented implicitly by the nodes still ahead of the first
//! writer. The last reader ahead of a writer discovers, when it splices,
//! that it is the queue head, and hands the lock over.
//!
//! The cost the paper criticizes remains: "the pointer to the tail of the
//! queue is still updated by every thread, whether reader or writer, and
//! so is still a significant point of contention" (§1).
//!
//! Splices of adjacent nodes are serialized by tiny per-node spinlocks
//! with a try-lock/validate/retry discipline (lock yourself, then your
//! predecessor, then re-validate the link). All queue-link atomics use
//! `SeqCst`: the activate-successor handshake relies on a total store
//! order between `spin` writes and `next` reads.

use oll_core::raw::{RwHandle, RwLockFamily};
use oll_hazard::Hazard;
use oll_util::backoff::{spin_until, Backoff, BackoffPolicy};
use oll_util::slots::{SlotError, SlotGuard, SlotRegistry};
use oll_util::sync::{AtomicBool, AtomicU32, Ordering::SeqCst};
use oll_util::CachePadded;

const NIL: u32 = u32::MAX;
const KIND_READER: u32 = 0;
const KIND_WRITER: u32 = 1;

struct Node {
    kind: AtomicU32,
    prev: AtomicU32,
    next: AtomicU32,
    /// `true` while the owner is waiting for the lock.
    spin: AtomicBool,
    /// Per-node splice lock.
    lk: AtomicBool,
}

/// The KSUH fair reader-writer lock.
pub struct KsuhLock {
    tail: CachePadded<AtomicU32>,
    nodes: Box<[CachePadded<Node>]>,
    slots: SlotRegistry,
    backoff: BackoffPolicy,
    hazard: Hazard,
}

impl KsuhLock {
    /// Creates a lock for at most `capacity` concurrent threads.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            tail: CachePadded::new(AtomicU32::new(NIL)),
            nodes: (0..capacity)
                .map(|_| {
                    CachePadded::new(Node {
                        kind: AtomicU32::new(KIND_READER),
                        prev: AtomicU32::new(NIL),
                        next: AtomicU32::new(NIL),
                        spin: AtomicBool::new(false),
                        lk: AtomicBool::new(false),
                    })
                })
                .collect(),
            slots: SlotRegistry::new(capacity),
            backoff: BackoffPolicy::default(),
            hazard: Hazard::new(),
        }
    }

    fn node(&self, i: u32) -> &Node {
        &self.nodes[i as usize]
    }

    fn lock_node(&self, i: u32) {
        let mut b = Backoff::with_policy(self.backoff);
        while self
            .node(i)
            .lk
            .compare_exchange(false, true, SeqCst, SeqCst)
            .is_err()
        {
            b.relax();
        }
    }

    fn try_lock_node(&self, i: u32) -> bool {
        self.node(i)
            .lk
            .compare_exchange(false, true, SeqCst, SeqCst)
            .is_ok()
    }

    fn unlock_node(&self, i: u32) {
        self.node(i).lk.store(false, SeqCst);
    }

    fn reader_lock(&self, me: u32) {
        let node = self.node(me);
        node.kind.store(KIND_READER, SeqCst);
        node.next.store(NIL, SeqCst);
        node.prev.store(NIL, SeqCst);
        node.spin.store(true, SeqCst);
        let pred = self.tail.swap(me, SeqCst);
        if pred == NIL {
            node.spin.store(false, SeqCst);
        } else {
            let pnode = self.node(pred);
            node.prev.store(pred, SeqCst);
            pnode.next.store(me, SeqCst);
            // If our predecessor is an *active* reader, enter immediately;
            // otherwise wait to be activated. (If the predecessor activates
            // concurrently, SeqCst guarantees that either we see its clear
            // spin here, or its post-activation propagation sees our link.)
            if pnode.kind.load(SeqCst) == KIND_READER && !pnode.spin.load(SeqCst) {
                node.spin.store(false, SeqCst);
            } else {
                spin_until(self.backoff, || !node.spin.load(SeqCst));
            }
        }
        // Chained wakeup: an acquiring reader activates a waiting reader
        // successor.
        let n = node.next.load(SeqCst);
        if n != NIL && self.node(n).kind.load(SeqCst) == KIND_READER {
            self.node(n).spin.store(false, SeqCst);
        }
    }

    fn reader_unlock(&self, me: u32) {
        let node = self.node(me);
        self.lock_node(me);
        // Lock our predecessor, re-validating `prev` after each attempt:
        // the predecessor may splice itself out while we chase it.
        let mut prev;
        let mut b = Backoff::with_policy(self.backoff);
        loop {
            prev = node.prev.load(SeqCst);
            if prev == NIL {
                break;
            }
            if self.try_lock_node(prev) {
                if node.prev.load(SeqCst) == prev {
                    break; // stable: prev cannot splice while we hold its lock
                }
                self.unlock_node(prev);
            }
            b.relax();
        }
        let mut next = node.next.load(SeqCst);
        if next == NIL {
            // Possibly the tail: try to detach. Clear the predecessor's
            // next *before* the CAS so a post-CAS enqueuer's link to the
            // predecessor is never overwritten.
            if prev != NIL {
                self.node(prev).next.store(NIL, SeqCst);
            }
            if self.tail.compare_exchange(me, prev, SeqCst, SeqCst).is_ok() {
                if prev != NIL {
                    self.unlock_node(prev);
                }
                self.unlock_node(me);
                return;
            }
            // Someone is enqueuing behind us; wait for the link, then
            // splice below (restoring the predecessor's next).
            spin_until(self.backoff, || node.next.load(SeqCst) != NIL);
            next = node.next.load(SeqCst);
        }
        let nnode = self.node(next);
        nnode.prev.store(prev, SeqCst);
        if prev == NIL {
            // We were the queue head: hand the lock over to our successor
            // (a writer gains exclusivity; a reader group gains the lock
            // and propagates).
            self.unlock_node(me);
            nnode.spin.store(false, SeqCst);
        } else {
            self.node(prev).next.store(next, SeqCst);
            self.unlock_node(prev);
            self.unlock_node(me);
        }
    }

    fn writer_lock(&self, me: u32) {
        let node = self.node(me);
        node.kind.store(KIND_WRITER, SeqCst);
        node.next.store(NIL, SeqCst);
        node.prev.store(NIL, SeqCst);
        node.spin.store(true, SeqCst);
        let pred = self.tail.swap(me, SeqCst);
        if pred == NIL {
            node.spin.store(false, SeqCst);
            return;
        }
        node.prev.store(pred, SeqCst);
        self.node(pred).next.store(me, SeqCst);
        spin_until(self.backoff, || !node.spin.load(SeqCst));
    }

    fn writer_unlock(&self, me: u32) {
        let node = self.node(me);
        // A writer is always the queue head while it holds the lock, and
        // waiting threads never splice, so no node locks are needed here —
        // this is exactly the MCS mutex release plus the prev reset.
        let mut next = node.next.load(SeqCst);
        if next == NIL {
            if self.tail.compare_exchange(me, NIL, SeqCst, SeqCst).is_ok() {
                return;
            }
            spin_until(self.backoff, || node.next.load(SeqCst) != NIL);
            next = node.next.load(SeqCst);
        }
        let nnode = self.node(next);
        nnode.prev.store(NIL, SeqCst);
        nnode.spin.store(false, SeqCst);
    }
}

impl RwLockFamily for KsuhLock {
    type Handle<'a> = KsuhHandle<'a>;

    fn handle(&self) -> Result<KsuhHandle<'_>, SlotError> {
        let slot = SlotGuard::claim(&self.slots)?;
        Ok(KsuhHandle { lock: self, slot })
    }

    fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    fn name(&self) -> &'static str {
        "KSUH"
    }

    fn hazard(&self) -> Hazard {
        self.hazard.clone()
    }
}

/// Per-thread handle for [`KsuhLock`].
pub struct KsuhHandle<'a> {
    lock: &'a KsuhLock,
    slot: SlotGuard<'a>,
}

impl RwHandle for KsuhHandle<'_> {
    fn hazard(&self) -> Hazard {
        self.lock.hazard.clone()
    }

    fn lock_read(&mut self) {
        self.lock.reader_lock(self.slot.slot() as u32);
    }

    fn unlock_read(&mut self) {
        self.lock.reader_unlock(self.slot.slot() as u32);
    }

    fn lock_write(&mut self) {
        self.lock.writer_lock(self.slot.slot() as u32);
    }

    fn unlock_write(&mut self) {
        self.lock.writer_unlock(self.slot.slot() as u32);
    }

    /// Conservative: only succeeds on an empty queue.
    fn try_lock_read(&mut self) -> bool {
        let lock = self.lock;
        let me = self.slot.slot() as u32;
        if lock.tail.load(SeqCst) != NIL {
            return false;
        }
        let node = lock.node(me);
        node.kind.store(KIND_READER, SeqCst);
        node.next.store(NIL, SeqCst);
        node.prev.store(NIL, SeqCst);
        node.spin.store(false, SeqCst);
        lock.tail.compare_exchange(NIL, me, SeqCst, SeqCst).is_ok()
    }

    fn try_lock_write(&mut self) -> bool {
        let lock = self.lock;
        let me = self.slot.slot() as u32;
        if lock.tail.load(SeqCst) != NIL {
            return false;
        }
        let node = lock.node(me);
        node.kind.store(KIND_WRITER, SeqCst);
        node.next.store(NIL, SeqCst);
        node.prev.store(NIL, SeqCst);
        node.spin.store(false, SeqCst);
        lock.tail.compare_exchange(NIL, me, SeqCst, SeqCst).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering as O};
    use std::sync::Arc;

    #[test]
    fn uncontended_round_trip() {
        let lock = KsuhLock::new(2);
        let mut h = lock.handle().unwrap();
        h.lock_read();
        h.unlock_read();
        h.lock_write();
        h.unlock_write();
        assert_eq!(lock.tail.load(SeqCst), NIL);
    }

    #[test]
    fn readers_share_and_splice_in_any_order() {
        let lock = KsuhLock::new(3);
        let mut r1 = lock.handle().unwrap();
        let mut r2 = lock.handle().unwrap();
        let mut r3 = lock.handle().unwrap();
        r1.lock_read();
        r2.lock_read();
        r3.lock_read();
        // Middle first, then head, then tail.
        r2.unlock_read();
        r1.unlock_read();
        r3.unlock_read();
        assert_eq!(lock.tail.load(SeqCst), NIL);
    }

    #[test]
    fn writer_waits_for_all_readers() {
        let lock = Arc::new(KsuhLock::new(4));
        let mut r1 = lock.handle().unwrap();
        let mut r2 = lock.handle().unwrap();
        r1.lock_read();
        r2.lock_read();
        let l2 = Arc::clone(&lock);
        let entered = Arc::new(AtomicI64::new(0));
        let e2 = Arc::clone(&entered);
        let t = std::thread::spawn(move || {
            let mut w = l2.handle().unwrap();
            w.lock_write();
            e2.store(1, O::SeqCst);
            w.unlock_write();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(entered.load(O::SeqCst), 0);
        r1.unlock_read(); // head leaves; r2 still active
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(entered.load(O::SeqCst), 0, "one reader still inside");
        r2.unlock_read(); // last reader hands over
        t.join().unwrap();
        assert_eq!(entered.load(O::SeqCst), 1);
    }

    #[test]
    fn try_paths_on_empty_queue_only() {
        let lock = KsuhLock::new(3);
        let mut a = lock.handle().unwrap();
        let mut b = lock.handle().unwrap();
        assert!(a.try_lock_read());
        // Queue non-empty (the reader node), so conservative try fails.
        assert!(!b.try_lock_write());
        a.unlock_read();
        assert!(b.try_lock_write());
        b.unlock_write();
    }

    #[test]
    fn exclusion_stress() {
        const THREADS: usize = 6;
        let lock = Arc::new(KsuhLock::new(THREADS));
        let state = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let lock = Arc::clone(&lock);
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                let mut rng = oll_util::XorShift64::for_thread(55, tid);
                for _ in 0..1_500 {
                    if rng.percent(70) {
                        h.lock_read();
                        assert!(state.fetch_add(1, O::SeqCst) >= 0);
                        state.fetch_sub(1, O::SeqCst);
                        h.unlock_read();
                    } else {
                        h.lock_write();
                        assert_eq!(state.swap(-1, O::SeqCst), 0);
                        state.store(0, O::SeqCst);
                        h.unlock_write();
                    }
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(lock.tail.load(SeqCst), NIL);
    }

    #[test]
    fn read_heavy_stress() {
        const THREADS: usize = 8;
        let lock = Arc::new(KsuhLock::new(THREADS));
        let state = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let lock = Arc::clone(&lock);
            let state = Arc::clone(&state);
            handles.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                let mut rng = oll_util::XorShift64::for_thread(123, tid);
                for _ in 0..1_000 {
                    if rng.percent(95) {
                        h.lock_read();
                        assert!(state.fetch_add(1, O::SeqCst) >= 0);
                        state.fetch_sub(1, O::SeqCst);
                        h.unlock_read();
                    } else {
                        h.lock_write();
                        assert_eq!(state.swap(-1, O::SeqCst), 0);
                        state.store(0, O::SeqCst);
                        h.unlock_write();
                    }
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(lock.tail.load(SeqCst), NIL);
    }
}
