//! Loom model checks for the trickiest baselines.
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p oll-baselines --test loom_baselines --release
//! ```
//!
//! KSUH gets the most attention: its reader splice-out mutates *shared*
//! queue links under per-node try-locks, which is exactly the kind of
//! protocol where a unit test samples interleavings and a model checker
//! enumerates them.

#![cfg(loom)]

use loom::model::Builder;
use loom::sync::atomic::{AtomicI64, Ordering};
use loom::sync::Arc;
use oll_baselines::{CentralizedRwLock, KsuhLock, McsRwLock, SolarisLikeRwLock};
use oll_core::{RwHandle, RwLockFamily};

fn model(f: impl Fn() + Sync + Send + 'static) {
    let mut b = Builder::new();
    b.preemption_bound = Some(3);
    b.check(f);
}

fn reader_vs_writer<L, F>(make: F)
where
    L: RwLockFamily + 'static,
    F: Fn(usize) -> L + Sync + Send + 'static,
{
    model(move || {
        let lock = Arc::new(make(2));
        let state = Arc::new(AtomicI64::new(0));

        let l2 = Arc::clone(&lock);
        let s2 = Arc::clone(&state);
        let t = loom::thread::spawn(move || {
            let mut h = l2.handle().unwrap();
            h.lock_write();
            assert_eq!(s2.swap(-1, Ordering::SeqCst), 0, "writer not exclusive");
            s2.store(0, Ordering::SeqCst);
            h.unlock_write();
        });

        let mut h = lock.handle().unwrap();
        h.lock_read();
        assert!(
            state.fetch_add(1, Ordering::SeqCst) >= 0,
            "reader beside writer"
        );
        state.fetch_sub(1, Ordering::SeqCst);
        h.unlock_read();

        t.join().unwrap();
    });
}

#[test]
fn loom_ksuh_reader_vs_writer() {
    reader_vs_writer(KsuhLock::new);
}

/// Two KSUH readers releasing in racing orders: the splice-out protocol
/// (self+prev locks, tail CAS, link restore) must keep the queue sound.
#[test]
fn loom_ksuh_two_readers_splice() {
    model(|| {
        let lock = Arc::new(KsuhLock::new(2));

        let l2 = Arc::clone(&lock);
        let t = loom::thread::spawn(move || {
            let mut h = l2.handle().unwrap();
            h.lock_read();
            h.unlock_read();
        });

        let mut h = lock.handle().unwrap();
        h.lock_read();
        h.unlock_read();
        t.join().unwrap();

        // The queue must be fully drained: a writer acquires instantly.
        let mut w = lock.handle().unwrap();
        assert!(w.try_lock_write(), "queue not drained after splices");
        w.unlock_write();
    });
}

// NOTE: no loom model for McsRwLock. Its writer acquires by spinning on
// the *central* reader_count word with no hand-off edge loom can follow,
// so even small models exceed loom's bounded-search budget (the loom
// docs call this out for algorithms that "require the processor to make
// progress"). MCS-RW correctness is covered by the exclusion stress and
// model-based property suites instead.

#[test]
fn loom_solaris_like_reader_vs_writer() {
    reader_vs_writer(SolarisLikeRwLock::new);
}

#[test]
fn loom_centralized_reader_vs_writer() {
    reader_vs_writer(CentralizedRwLock::new);
}
