//! Per-lock thread slot registry.
//!
//! All the queue-based locks in this workspace preallocate per-thread state
//! (the paper's `Local` records, MCS writer nodes, the FOLL reader-node
//! ring) for a bounded number of threads, exactly as the paper's node
//! recycling argument assumes "N reader nodes ... where N is the number of
//! threads" (§4.2.1). A [`SlotRegistry`] hands out those slot indices:
//! a thread claims a slot when it registers with a lock and releases it
//! when its handle drops, so a pool of `capacity` slots serves any number
//! of threads over time as long as at most `capacity` use the lock
//! concurrently.

use crate::cache_padded::CachePadded;
use crate::sync::{AtomicBool, AtomicUsize, Ordering};
use core::fmt;

/// Error returned when all slots are claimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotError {
    /// The registry's capacity.
    pub capacity: usize,
}

impl fmt::Display for SlotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "all {} thread slots are in use; construct the lock with a larger capacity",
            self.capacity
        )
    }
}

impl std::error::Error for SlotError {}

/// The process-global visible-readers table used for BRAVO-style reader
/// biasing (Dice & Kogan, "BRAVO — Biased Locking for Reader-Writer
/// Locks").
///
/// Each entry is a cache-padded word holding either `0` (empty) or the id
/// of a lock some thread currently holds for reading via the biased fast
/// path. A reader *publishes* by CAS-ing its hashed slot from `0` to the
/// lock id — an RMW on memory no other thread is expected to touch, so it
/// stays core-local in the common case — and *erases* it with a plain
/// store on release. A revoking writer scans the whole table and waits
/// for every entry carrying its lock id to clear.
///
/// The table is shared by every biased lock in the process (like BRAVO's
/// single global array): sizing it once from the CPU topology keeps the
/// scan cost bounded and independent of how many locks exist. Slot choice
/// mixes the thread's [`dense_thread_id`](crate::topology::dense_thread_id)
/// with the lock id so two threads that collide on one lock usually do
/// not collide on the next.
pub struct VisibleReaders {
    slots: Box<[CachePadded<StdAtomicUsize>]>,
}

// The table deliberately uses `std` atomics (not `crate::sync`): it is a
// process-global singleton, and loom atomics cannot live outside a model.
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};

impl VisibleReaders {
    /// The process-wide table, sized from the CPU topology on first use.
    pub fn global() -> &'static VisibleReaders {
        use std::sync::OnceLock;
        static TABLE: OnceLock<VisibleReaders> = OnceLock::new();
        TABLE.get_or_init(|| {
            // Several slots per CPU keeps the collision probability low
            // even with a few independent biased locks in flight; the
            // floor keeps small machines from degenerating into a
            // handful of hot entries.
            let cpus = crate::topology::Topology::get().cpus();
            VisibleReaders::with_slots((cpus * 8).max(256))
        })
    }

    /// A private table with at least `n` slots (rounded up to a power of
    /// two). Exposed so tests can exercise collisions deterministically.
    pub fn with_slots(n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        Self {
            slots: (0..n)
                .map(|_| CachePadded::new(StdAtomicUsize::new(0)))
                .collect(),
        }
    }

    /// Number of slots (always a power of two).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the table has no slots (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slot index the calling thread should use for `lock_id`.
    pub fn slot_index(&self, lock_id: usize) -> usize {
        Self::mix(crate::topology::dense_thread_id() as u64, lock_id as u64)
            & (self.slots.len() - 1)
    }

    /// SplitMix64-style avalanche over (thread, lock) so collisions on
    /// one lock do not persist across locks.
    fn mix(tid: u64, lock_id: u64) -> usize {
        let mut z = tid
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(lock_id.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as usize
    }

    /// Publishes `lock_id` into `slot`; `false` if the slot is occupied.
    ///
    /// `SeqCst` is load-bearing: the publish and the subsequent `rbias`
    /// recheck form one half of a store-buffering pattern against the
    /// revoking writer's `rbias` clear + table scan, and both sides must
    /// be totally ordered or a reader and a revoking writer can each miss
    /// the other.
    #[inline]
    pub fn publish(&self, slot: usize, lock_id: usize) -> bool {
        debug_assert!(lock_id != 0, "lock id 0 means empty");
        self.slots[slot]
            .compare_exchange(0, lock_id, StdOrdering::SeqCst, StdOrdering::Relaxed)
            .is_ok()
    }

    /// Erases a slot previously published by this thread. The release
    /// store is what a scanning writer's acquire load synchronizes with,
    /// ordering the reader's critical section before the writer's.
    #[inline]
    pub fn erase(&self, slot: usize) {
        self.slots[slot].store(0, StdOrdering::Release);
    }

    /// Reads one slot with `SeqCst` (the writer half of the
    /// store-buffering pattern; see [`publish`](Self::publish)).
    #[inline]
    pub fn load(&self, slot: usize) -> usize {
        self.slots[slot].load(StdOrdering::SeqCst)
    }
}

impl fmt::Debug for VisibleReaders {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let occupied = self
            .slots
            .iter()
            .filter(|s| s.load(StdOrdering::Relaxed) != 0)
            .count();
        f.debug_struct("VisibleReaders")
            .field("slots", &self.len())
            .field("occupied", &occupied)
            .finish()
    }
}

/// A fixed-capacity pool of thread slot indices.
pub struct SlotRegistry {
    taken: Box<[CachePadded<AtomicBool>]>,
    /// Rotating hint so successive claims start probing at different slots.
    next_hint: AtomicUsize,
}

impl SlotRegistry {
    /// Creates a registry with `capacity` slots.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "slot registry needs at least one slot");
        Self {
            taken: (0..capacity)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            next_hint: AtomicUsize::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.taken.len()
    }

    /// Claims a free slot, returning its index.
    pub fn claim(&self) -> Result<usize, SlotError> {
        let n = self.capacity();
        let start = self.next_hint.fetch_add(1, Ordering::Relaxed) % n;
        for off in 0..n {
            let i = (start + off) % n;
            if !self.taken[i].load(Ordering::Relaxed)
                && self.taken[i]
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return Ok(i);
            }
        }
        Err(SlotError { capacity: n })
    }

    /// Releases a slot previously returned by [`claim`](Self::claim).
    ///
    /// # Panics
    /// Panics if the slot was not claimed (double release).
    pub fn release(&self, slot: usize) {
        let was = self.taken[slot].swap(false, Ordering::Release);
        assert!(was, "slot {slot} released twice");
    }

    /// Number of currently claimed slots (racy; for diagnostics).
    pub fn claimed(&self) -> usize {
        self.taken
            .iter()
            .filter(|t| t.load(Ordering::Relaxed))
            .count()
    }
}

impl fmt::Debug for SlotRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlotRegistry")
            .field("capacity", &self.capacity())
            .field("claimed", &self.claimed())
            .finish()
    }
}

/// RAII wrapper that releases its slot on drop.
///
/// Lock handles embed one of these so dropping a handle returns the slot
/// (and with it the lock's per-thread nodes) to the pool.
pub struct SlotGuard<'a> {
    registry: &'a SlotRegistry,
    slot: usize,
}

impl<'a> SlotGuard<'a> {
    /// Claims a slot from `registry`.
    pub fn claim(registry: &'a SlotRegistry) -> Result<Self, SlotError> {
        registry.claim().map(|slot| Self { registry, slot })
    }

    /// The claimed slot index.
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.registry.release(self.slot);
    }
}

impl fmt::Debug for SlotGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlotGuard")
            .field("slot", &self.slot)
            .finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn claims_are_distinct_and_bounded() {
        let r = SlotRegistry::new(4);
        let slots: Vec<_> = (0..4).map(|_| r.claim().unwrap()).collect();
        let set: HashSet<_> = slots.iter().copied().collect();
        assert_eq!(set.len(), 4);
        assert_eq!(r.claim(), Err(SlotError { capacity: 4 }));
        assert_eq!(r.claimed(), 4);
    }

    #[test]
    fn release_makes_slot_reusable() {
        let r = SlotRegistry::new(1);
        let s = r.claim().unwrap();
        assert!(r.claim().is_err());
        r.release(s);
        assert_eq!(r.claim().unwrap(), s);
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn double_release_panics() {
        let r = SlotRegistry::new(2);
        let s = r.claim().unwrap();
        r.release(s);
        r.release(s);
    }

    #[test]
    fn guard_releases_on_drop() {
        let r = SlotRegistry::new(1);
        {
            let g = SlotGuard::claim(&r).unwrap();
            assert_eq!(g.slot(), 0);
            assert!(SlotGuard::claim(&r).is_err());
        }
        assert_eq!(r.claimed(), 0);
        assert!(SlotGuard::claim(&r).is_ok());
    }

    #[test]
    fn concurrent_claims_never_alias() {
        const THREADS: usize = 8;
        const ROUNDS: usize = 500;
        let r = Arc::new(SlotRegistry::new(THREADS / 2));
        let hits = Arc::new(
            (0..THREADS / 2)
                .map(|_| std::sync::atomic::AtomicUsize::new(0))
                .collect::<Vec<_>>(),
        );
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let r = Arc::clone(&r);
            let hits = Arc::clone(&hits);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    if let Ok(s) = r.claim() {
                        // While we hold slot s, we must be its only owner.
                        let prev = hits[s].fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        assert_eq!(prev % 2, 0, "slot {s} double-claimed");
                        hits[s].fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        r.release(s);
                    } else {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_panics() {
        let _ = SlotRegistry::new(0);
    }

    #[test]
    fn visible_readers_publish_erase_round_trip() {
        let t = VisibleReaders::with_slots(8);
        assert_eq!(t.len(), 8);
        let slot = t.slot_index(42);
        assert!(slot < t.len());
        assert!(t.publish(slot, 42));
        assert_eq!(t.load(slot), 42);
        // Occupied slot refuses a second publish (collision).
        assert!(!t.publish(slot, 77));
        assert_eq!(t.load(slot), 42);
        t.erase(slot);
        assert_eq!(t.load(slot), 0);
        assert!(t.publish(slot, 77));
        t.erase(slot);
    }

    #[test]
    fn visible_readers_slot_index_is_stable_per_thread_and_lock() {
        let t = VisibleReaders::with_slots(256);
        let a = t.slot_index(1);
        assert_eq!(a, t.slot_index(1), "same thread+lock must rehash equal");
        // Different lock ids spread this thread over the table: over many
        // ids at least two distinct slots must appear (collision breaking).
        let distinct: HashSet<_> = (1..64usize).map(|id| t.slot_index(id)).collect();
        assert!(distinct.len() > 1, "all lock ids collapsed to one slot");
    }

    #[test]
    fn visible_readers_global_is_pow2_and_shared() {
        let g = VisibleReaders::global();
        assert!(g.len().is_power_of_two());
        assert!(g.len() >= 256);
        assert!(std::ptr::eq(g, VisibleReaders::global()));
    }

    #[test]
    fn visible_readers_rounds_up_to_pow2() {
        assert_eq!(VisibleReaders::with_slots(0).len(), 1);
        assert_eq!(VisibleReaders::with_slots(3).len(), 4);
        assert_eq!(VisibleReaders::with_slots(8).len(), 8);
        assert_eq!(VisibleReaders::with_slots(9).len(), 16);
    }
}
