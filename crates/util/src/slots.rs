//! Per-lock thread slot registry.
//!
//! All the queue-based locks in this workspace preallocate per-thread state
//! (the paper's `Local` records, MCS writer nodes, the FOLL reader-node
//! ring) for a bounded number of threads, exactly as the paper's node
//! recycling argument assumes "N reader nodes ... where N is the number of
//! threads" (§4.2.1). A [`SlotRegistry`] hands out those slot indices:
//! a thread claims a slot when it registers with a lock and releases it
//! when its handle drops, so a pool of `capacity` slots serves any number
//! of threads over time as long as at most `capacity` use the lock
//! concurrently.

use crate::cache_padded::CachePadded;
use crate::sync::{AtomicBool, AtomicUsize, Ordering};
use core::fmt;

/// Error returned when all slots are claimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotError {
    /// The registry's capacity.
    pub capacity: usize,
}

impl fmt::Display for SlotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "all {} thread slots are in use; construct the lock with a larger capacity",
            self.capacity
        )
    }
}

impl std::error::Error for SlotError {}

/// A fixed-capacity pool of thread slot indices.
pub struct SlotRegistry {
    taken: Box<[CachePadded<AtomicBool>]>,
    /// Rotating hint so successive claims start probing at different slots.
    next_hint: AtomicUsize,
}

impl SlotRegistry {
    /// Creates a registry with `capacity` slots.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "slot registry needs at least one slot");
        Self {
            taken: (0..capacity)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            next_hint: AtomicUsize::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.taken.len()
    }

    /// Claims a free slot, returning its index.
    pub fn claim(&self) -> Result<usize, SlotError> {
        let n = self.capacity();
        let start = self.next_hint.fetch_add(1, Ordering::Relaxed) % n;
        for off in 0..n {
            let i = (start + off) % n;
            if !self.taken[i].load(Ordering::Relaxed)
                && self.taken[i]
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return Ok(i);
            }
        }
        Err(SlotError { capacity: n })
    }

    /// Releases a slot previously returned by [`claim`](Self::claim).
    ///
    /// # Panics
    /// Panics if the slot was not claimed (double release).
    pub fn release(&self, slot: usize) {
        let was = self.taken[slot].swap(false, Ordering::Release);
        assert!(was, "slot {slot} released twice");
    }

    /// Number of currently claimed slots (racy; for diagnostics).
    pub fn claimed(&self) -> usize {
        self.taken
            .iter()
            .filter(|t| t.load(Ordering::Relaxed))
            .count()
    }
}

impl fmt::Debug for SlotRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlotRegistry")
            .field("capacity", &self.capacity())
            .field("claimed", &self.claimed())
            .finish()
    }
}

/// RAII wrapper that releases its slot on drop.
///
/// Lock handles embed one of these so dropping a handle returns the slot
/// (and with it the lock's per-thread nodes) to the pool.
pub struct SlotGuard<'a> {
    registry: &'a SlotRegistry,
    slot: usize,
}

impl<'a> SlotGuard<'a> {
    /// Claims a slot from `registry`.
    pub fn claim(registry: &'a SlotRegistry) -> Result<Self, SlotError> {
        registry.claim().map(|slot| Self { registry, slot })
    }

    /// The claimed slot index.
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.registry.release(self.slot);
    }
}

impl fmt::Debug for SlotGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlotGuard")
            .field("slot", &self.slot)
            .finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn claims_are_distinct_and_bounded() {
        let r = SlotRegistry::new(4);
        let slots: Vec<_> = (0..4).map(|_| r.claim().unwrap()).collect();
        let set: HashSet<_> = slots.iter().copied().collect();
        assert_eq!(set.len(), 4);
        assert_eq!(r.claim(), Err(SlotError { capacity: 4 }));
        assert_eq!(r.claimed(), 4);
    }

    #[test]
    fn release_makes_slot_reusable() {
        let r = SlotRegistry::new(1);
        let s = r.claim().unwrap();
        assert!(r.claim().is_err());
        r.release(s);
        assert_eq!(r.claim().unwrap(), s);
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn double_release_panics() {
        let r = SlotRegistry::new(2);
        let s = r.claim().unwrap();
        r.release(s);
        r.release(s);
    }

    #[test]
    fn guard_releases_on_drop() {
        let r = SlotRegistry::new(1);
        {
            let g = SlotGuard::claim(&r).unwrap();
            assert_eq!(g.slot(), 0);
            assert!(SlotGuard::claim(&r).is_err());
        }
        assert_eq!(r.claimed(), 0);
        assert!(SlotGuard::claim(&r).is_ok());
    }

    #[test]
    fn concurrent_claims_never_alias() {
        const THREADS: usize = 8;
        const ROUNDS: usize = 500;
        let r = Arc::new(SlotRegistry::new(THREADS / 2));
        let hits = Arc::new(
            (0..THREADS / 2)
                .map(|_| std::sync::atomic::AtomicUsize::new(0))
                .collect::<Vec<_>>(),
        );
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let r = Arc::clone(&r);
            let hits = Arc::clone(&hits);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    if let Ok(s) = r.claim() {
                        // While we hold slot s, we must be its only owner.
                        let prev = hits[s].fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        assert_eq!(prev % 2, 0, "slot {s} double-claimed");
                        hits[s].fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        r.release(s);
                    } else {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_panics() {
        let _ = SlotRegistry::new(0);
    }
}
