//! Switchable synchronization primitives.
//!
//! Algorithm code in this workspace imports atomics, `thread::yield_now`,
//! and `hint::spin_loop` from here instead of `std`, so that the same code
//! can be model-checked by [loom](https://docs.rs/loom) when compiled with
//! `RUSTFLAGS="--cfg loom"`.

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};

#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Thread utilities (`yield_now`), loom-aware.
pub mod thread {
    #[cfg(loom)]
    pub use loom::thread::yield_now;

    #[cfg(not(loom))]
    pub use std::thread::yield_now;
}

/// CPU relax hint, loom-aware.
///
/// Under loom there is no real CPU to relax; yielding instead lets the model
/// checker explore interleavings at spin points.
#[inline]
pub fn spin_loop_hint() {
    #[cfg(loom)]
    loom::thread::yield_now();

    #[cfg(not(loom))]
    std::hint::spin_loop();
}

/// An `UnsafeCell` whose API matches loom's (`with` / `with_mut` accessors).
#[cfg(loom)]
pub use loom::cell::UnsafeCell;

/// An `UnsafeCell` whose API matches loom's (`with` / `with_mut` accessors).
#[cfg(not(loom))]
#[derive(Debug, Default)]
pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(loom))]
impl<T> UnsafeCell<T> {
    /// Creates a new cell.
    pub const fn new(data: T) -> Self {
        Self(std::cell::UnsafeCell::new(data))
    }

    /// Calls `f` with a shared raw pointer to the contents.
    ///
    /// # Safety contract
    /// Callers must uphold the usual aliasing rules; loom checks them at
    /// model-checking time, the `std` version trusts the caller.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get())
    }

    /// Calls `f` with an exclusive raw pointer to the contents.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }

    /// Consumes the cell, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}
