//! Low-level synchronization substrate for the OLL reader-writer locks.
//!
//! This crate provides the building blocks shared by the lock
//! implementations in `oll-core` and `oll-baselines`:
//!
//! * [`CachePadded`] — false-sharing avoidance for per-thread and per-node
//!   state (every contended atomic in this workspace lives on its own cache
//!   line).
//! * [`Backoff`] — tunable exponential backoff that escalates from
//!   `spin_loop` hints to `yield_now`, keeping busy-wait algorithms live on
//!   oversubscribed machines.
//! * [`Event`] / [`GroupEvent`] — one-shot and broadcast waiter objects with
//!   configurable [`WaitStrategy`] (spin-then-yield like the paper's
//!   spin-based condition variables, or spin-then-park for production use).
//! * [`SpinMutex`] — a TTAS spin mutex with backoff, used as the GOLL
//!   "metalock" and the turnstile mutex of the Solaris-like baseline.
//! * [`SlotRegistry`] — per-lock thread slot assignment (the paper's
//!   per-thread `Local` records and default queue nodes are indexed by slot).
//! * [`VisibleReaders`] — the process-global visible-readers table behind
//!   BRAVO-style reader biasing (`oll_core::Bravo`).
//! * [`XorShift64`] — the per-thread PRNG the evaluation harness uses to
//!   choose read vs. write acquisitions (§5.1 of the paper).
//!
//! The [`sync`] module re-exports either `std` or `loom` primitives so the
//! algorithm crates can be model-checked with `RUSTFLAGS="--cfg loom"`.

#![warn(missing_docs)]

pub mod backoff;
pub mod cache_padded;
pub mod event;
pub mod fault;
pub mod knobs;
pub mod rng;
pub mod slots;
pub mod spin_mutex;
pub mod sync;
pub mod topology;

pub use backoff::Backoff;
pub use cache_padded::CachePadded;
pub use event::{Event, GroupEvent, WaitStrategy};
pub use knobs::TuningKnobs;
pub use rng::XorShift64;
pub use slots::{SlotError, SlotGuard, SlotRegistry, VisibleReaders};
pub use spin_mutex::{SpinMutex, SpinMutexGuard};
