//! Cache-line padding to prevent false sharing.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to (at least) one cache line.
///
/// Contended atomics that live next to each other in memory ping-pong the
/// same cache line between cores even when threads touch *different* words
/// (false sharing). Every per-thread queue node, SNZI leaf, and per-slot
/// record in this workspace is wrapped in `CachePadded` so that threads
/// spinning on their own flag never invalidate a neighbour's line — the
/// property the MCS family of locks is built on.
///
/// We align to 128 bytes: modern x86 prefetches cache lines in pairs and
/// several ARM server parts use 128-byte lines, so 128 is the conservative
/// choice (the same one crossbeam makes).
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_128() {
        assert!(core::mem::align_of::<CachePadded<u8>>() >= 128);
        assert!(core::mem::size_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn deref_round_trips() {
        let mut p = CachePadded::new(41u64);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn adjacent_elements_do_not_share_a_line() {
        let v = [CachePadded::new(0u8), CachePadded::new(0u8)];
        let a = &*v[0] as *const u8 as usize;
        let b = &*v[1] as *const u8 as usize;
        assert!(b - a >= 128);
    }
}
