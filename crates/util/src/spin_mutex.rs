//! A test-and-test-and-set spin mutex with exponential backoff.
//!
//! Used as the GOLL "metalock" protecting the wait queue (§3.2) and as the
//! turnstile mutex of the Solaris-like baseline (§3.1). Both locks hold it
//! only for O(1) queue manipulation, so a TTAS lock with backoff is the
//! appropriate weight; the distributed-queue locks (FOLL/ROLL) exist
//! precisely to avoid this kind of central lock on their fast paths.

use crate::backoff::{Backoff, BackoffPolicy};
use crate::sync::{AtomicBool, Ordering, UnsafeCell};
use core::fmt;
use core::ops::{Deref, DerefMut};

/// A TTAS spin mutex guarding a value of type `T`.
pub struct SpinMutex<T> {
    locked: AtomicBool,
    policy: BackoffPolicy,
    data: UnsafeCell<T>,
}

// SAFETY: the mutex provides exclusive access to `data`; `T: Send` is enough
// because only one thread touches the data at a time.
unsafe impl<T: Send> Send for SpinMutex<T> {}
unsafe impl<T: Send> Sync for SpinMutex<T> {}

/// RAII guard for [`SpinMutex`]; releases the lock on drop.
pub struct SpinMutexGuard<'a, T> {
    mutex: &'a SpinMutex<T>,
}

impl<T> SpinMutex<T> {
    /// Creates an unlocked mutex.
    pub fn new(data: T) -> Self {
        Self::with_policy(data, BackoffPolicy::default())
    }

    /// Creates an unlocked mutex with a custom backoff policy.
    pub fn with_policy(data: T, policy: BackoffPolicy) -> Self {
        Self {
            locked: AtomicBool::new(false),
            policy,
            data: UnsafeCell::new(data),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T> SpinMutex<T> {
    /// Acquires the lock, spinning with backoff until available.
    pub fn lock(&self) -> SpinMutexGuard<'_, T> {
        let mut backoff = Backoff::with_policy(self.policy);
        loop {
            if let Some(g) = self.try_lock() {
                return g;
            }
            // Test (read-only) before the next test-and-set so waiters spin
            // in their own caches instead of bouncing the line with CASes.
            while self.locked.load(Ordering::Relaxed) {
                backoff.relax();
            }
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<SpinMutexGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinMutexGuard { mutex: self })
        } else {
            None
        }
    }

    /// Returns whether the mutex is currently held (racy; for diagnostics).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

impl<T> Deref for SpinMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves we hold the lock, so no other thread has
        // any access to `data` until drop.
        self.mutex.data.with(|p| unsafe { &*p })
    }
}

impl<T> DerefMut for SpinMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above, plus the guard is borrowed mutably.
        self.mutex.data.with_mut(|p| unsafe { &mut *p })
    }
}

impl<T> Drop for SpinMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.locked.store(false, Ordering::Release);
    }
}

impl<T: fmt::Debug> fmt::Debug for SpinMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("SpinMutex").field("data", &&*g).finish(),
            None => f.write_str("SpinMutex { <locked> }"),
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_single_thread() {
        let m = SpinMutex::new(1);
        {
            let mut g = m.lock();
            *g = 2;
        }
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = SpinMutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        assert!(m.is_locked());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn counter_is_not_lost_under_contention() {
        const THREADS: usize = 8;
        const ITERS: usize = 10_000;
        let m = Arc::new(SpinMutex::new(0usize));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ITERS {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), THREADS * ITERS);
    }

    #[test]
    fn debug_formats_both_states() {
        let m = SpinMutex::new(7);
        assert!(format!("{m:?}").contains('7'));
        let _g = m.lock();
        assert!(format!("{m:?}").contains("locked"));
    }
}

#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use loom::sync::Arc;

    #[test]
    fn loom_mutual_exclusion() {
        loom::model(|| {
            let m = Arc::new(SpinMutex::new(0usize));
            let m2 = Arc::clone(&m);
            let t = loom::thread::spawn(move || {
                *m2.lock() += 1;
            });
            *m.lock() += 1;
            t.join().unwrap();
            assert_eq!(*m.lock(), 2);
        });
    }
}
