//! CPU topology detection and locality-aware thread→leaf placement.
//!
//! The C-SNZI tree only pays off when threads that contend anyway (same
//! core, same package) land on *nearby* leaves and unrelated threads land
//! on *different* cache lines. A bare `hint % leaf_count` achieves the
//! second goal but scatters same-socket threads across the whole array.
//! This module reads the kernel's CPU topology once per process and
//! exposes a locality-ordered ranking of CPUs, which the lock handles use
//! to pick an initial leaf for their [`dense_thread_id`].
//!
//! Detection reads `/sys/devices/system/cpu/cpu*/topology/` on Linux
//! (`physical_package_id` and `core_id`), and falls back to a trivial
//! identity topology sized by `std::thread::available_parallelism` when
//! sysfs is missing (non-Linux, sandboxes, unusual containers). The
//! fallback ranking is the identity permutation, which degrades exactly
//! to the old modulo placement — never worse, just not smarter.
//!
//! Placement assumes the OS spreads runnable threads over CPUs roughly in
//! creation order, so dense thread ids are used as a stand-in for "which
//! CPU the thread runs on". That is a heuristic, not a guarantee; it
//! costs nothing when wrong (any leaf is correct) and wins when the
//! scheduler cooperates or threads are pinned.

use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Where one logical CPU sits in the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CpuLocation {
    /// Physical package (socket) id.
    pub package: u32,
    /// Core id within the package.
    pub core: u32,
    /// Logical CPU number (the `cpuN` index).
    pub cpu: usize,
}

/// The machine's CPU layout, detected once per process.
#[derive(Debug)]
pub struct Topology {
    /// `rank[cpu]` = position of `cpu` in the locality-sorted order
    /// (CPUs sharing a core are adjacent, then cores within a package).
    rank: Vec<usize>,
    /// `cohort[cpu]` = dense locality-rank (socket) index of `cpu`,
    /// numbered `0..rank_count` in package-id order.
    cohort: Vec<usize>,
    /// Number of distinct packages (always ≥ 1; exactly 1 in fallback).
    rank_count: usize,
    /// Whether sysfs topology was actually read (false = fallback).
    detected: bool,
}

impl Topology {
    /// The process-wide topology (detected on first call).
    pub fn get() -> &'static Topology {
        static TOPOLOGY: OnceLock<Topology> = OnceLock::new();
        TOPOLOGY.get_or_init(|| {
            Topology::from_sysfs(Path::new("/sys/devices/system/cpu"))
                .unwrap_or_else(Topology::fallback)
        })
    }

    /// Number of logical CPUs.
    pub fn cpus(&self) -> usize {
        self.rank.len()
    }

    /// True when the layout came from sysfs rather than the fallback.
    pub fn is_detected(&self) -> bool {
        self.detected
    }

    /// Locality rank of a logical CPU: CPUs sharing a core get adjacent
    /// ranks, cores within a package stay contiguous.
    pub fn rank_of(&self, cpu: usize) -> usize {
        self.rank[cpu % self.rank.len()]
    }

    /// Number of distinct locality ranks (physical packages / sockets).
    /// Deterministically `1` when detection fell back, so cohort-keyed
    /// structures degrade to a single queue.
    pub fn rank_count(&self) -> usize {
        self.rank_count
    }

    /// Dense socket index (`0..rank_count`) of a logical CPU.
    pub fn cohort_of(&self, cpu: usize) -> usize {
        self.cohort[cpu % self.cohort.len()]
    }

    /// Builds a topology from a sysfs-style directory; `None` if the
    /// directory does not yield at least one readable CPU entry.
    fn from_sysfs(root: &Path) -> Option<Topology> {
        let mut cpus = Vec::new();
        for cpu in 0.. {
            let topo = root.join(format!("cpu{cpu}/topology"));
            if !topo.is_dir() {
                break;
            }
            let package = read_id(&topo.join("physical_package_id"))?;
            let core = read_id(&topo.join("core_id"))?;
            cpus.push(CpuLocation { package, core, cpu });
        }
        if cpus.is_empty() {
            return None;
        }
        Some(Topology::from_locations(cpus, true))
    }

    /// Identity topology sized by `available_parallelism`. One cohort:
    /// without real package ids every CPU is "local", so cohort-keyed
    /// structures behave exactly like their single-tail ancestors.
    fn fallback() -> Topology {
        let n = std::thread::available_parallelism().map_or(1, |p| p.get());
        Topology {
            rank: (0..n).collect(),
            cohort: vec![0; n],
            rank_count: 1,
            detected: false,
        }
    }

    fn from_locations(mut cpus: Vec<CpuLocation>, detected: bool) -> Topology {
        let n = cpus.len();
        // Sort by (package, core, cpu); the sorted position is the rank,
        // and each new package id starts the next dense cohort index.
        cpus.sort_unstable();
        let mut rank = vec![0usize; n];
        let mut cohort = vec![0usize; n];
        let mut rank_count = 0usize;
        let mut last_package = None;
        for (pos, loc) in cpus.iter().enumerate() {
            rank[loc.cpu] = pos;
            if last_package != Some(loc.package) {
                last_package = Some(loc.package);
                rank_count += 1;
            }
            cohort[loc.cpu] = rank_count - 1;
        }
        Topology {
            rank,
            cohort,
            rank_count: rank_count.max(1),
            detected,
        }
    }
}

fn read_id(path: &Path) -> Option<u32> {
    fs::read_to_string(path).ok()?.trim().parse().ok()
}

/// This thread's dense id: a small process-unique integer handed out in
/// thread-arrival order (0, 1, 2, …). Stable for the thread's lifetime;
/// ids of exited threads are not recycled.
pub fn dense_thread_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static DENSE_ID: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    DENSE_ID.with(|id| *id)
}

/// Number of distinct locality ranks (sockets) on this machine — the
/// process-wide [`Topology::rank_count`]. Always ≥ 1, and exactly 1 when
/// sysfs detection fell back, so cohort builds degrade deterministically
/// to single-tail behaviour.
pub fn rank_count() -> usize {
    Topology::get().rank_count()
}

/// The cohort (dense socket index, `0..rank_count()`) the current thread
/// should use, derived from its [`dense_thread_id`] through the same
/// id-as-CPU heuristic as [`preferred_leaf`]. Cached per thread: the
/// topology lookup happens once per thread lifetime.
pub fn cohort_of_current() -> usize {
    thread_local! {
        static COHORT: usize = {
            let topo = Topology::get();
            topo.cohort_of(dense_thread_id() % topo.cpus())
        };
    }
    COHORT.with(|c| *c)
}

/// The leaf ordinal (in `0..leaf_count`) a thread with the given dense id
/// should start at, striped so threads likely to share a core or package
/// start on the same or neighbouring leaves.
pub fn preferred_leaf(dense_id: usize, leaf_count: usize) -> usize {
    debug_assert!(leaf_count > 0);
    let topo = Topology::get();
    let n = topo.cpus();
    let rank = topo.rank_of(dense_id % n);
    if leaf_count >= n {
        // One leaf (at least) per CPU: lap `k` of the id space shifts by
        // `k·n` so oversubscribed threads spill onto the spare leaves.
        (rank + (dense_id / n) * n) % leaf_count
    } else {
        // Fewer leaves than CPUs: scale so a leaf serves a contiguous
        // locality range (core siblings share a leaf before strangers do).
        rank * leaf_count / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ids_are_small_and_stable() {
        let a = dense_thread_id();
        assert_eq!(a, dense_thread_id());
        let b = std::thread::spawn(dense_thread_id).join().unwrap();
        assert_ne!(a, b);
        // Ids stay dense: both fit under the number of threads ever seen
        // in this test process (loose bound, but catches hashing).
        assert!(a < 10_000 && b < 10_000);
    }

    #[test]
    fn global_topology_is_consistent() {
        let t = Topology::get();
        assert!(t.cpus() >= 1);
        // rank is a permutation of 0..cpus.
        let mut seen = vec![false; t.cpus()];
        for cpu in 0..t.cpus() {
            let r = t.rank_of(cpu);
            assert!(r < t.cpus());
            assert!(!seen[r], "duplicate rank {r}");
            seen[r] = true;
        }
    }

    #[test]
    fn preferred_leaf_in_range_and_total() {
        for leaves in [1, 2, 3, 7, 64, 1024] {
            for id in 0..256 {
                assert!(preferred_leaf(id, leaves) < leaves);
            }
        }
    }

    #[test]
    fn core_siblings_rank_adjacent() {
        // Hand-built 2-package, 2-cores-per-package, SMT-2 box with the
        // interleaved cpu numbering Linux often uses (cpu, cpu+4 share a
        // core).
        let locs = vec![
            CpuLocation {
                package: 0,
                core: 0,
                cpu: 0,
            },
            CpuLocation {
                package: 0,
                core: 1,
                cpu: 1,
            },
            CpuLocation {
                package: 1,
                core: 0,
                cpu: 2,
            },
            CpuLocation {
                package: 1,
                core: 1,
                cpu: 3,
            },
            CpuLocation {
                package: 0,
                core: 0,
                cpu: 4,
            },
            CpuLocation {
                package: 0,
                core: 1,
                cpu: 5,
            },
            CpuLocation {
                package: 1,
                core: 0,
                cpu: 6,
            },
            CpuLocation {
                package: 1,
                core: 1,
                cpu: 7,
            },
        ];
        let t = Topology::from_locations(locs, true);
        // Core siblings (0,4), (1,5), (2,6), (3,7) must rank adjacently.
        for (a, b) in [(0, 4), (1, 5), (2, 6), (3, 7)] {
            let (ra, rb) = (t.rank_of(a), t.rank_of(b));
            assert_eq!(ra.abs_diff(rb), 1, "cpus {a},{b} got ranks {ra},{rb}");
        }
        // Package 0's cpus occupy ranks 0..4, package 1's 4..8.
        for cpu in [0, 1, 4, 5] {
            assert!(t.rank_of(cpu) < 4);
        }
        for cpu in [2, 3, 6, 7] {
            assert!(t.rank_of(cpu) >= 4);
        }
        // Two packages ⇒ two cohorts, split along package lines.
        assert_eq!(t.rank_count(), 2);
        for cpu in [0, 1, 4, 5] {
            assert_eq!(t.cohort_of(cpu), 0);
        }
        for cpu in [2, 3, 6, 7] {
            assert_eq!(t.cohort_of(cpu), 1);
        }
    }

    #[test]
    fn fallback_is_a_single_cohort() {
        let t = Topology::fallback();
        assert!(!t.is_detected());
        assert_eq!(t.rank_count(), 1);
        for cpu in 0..t.cpus() {
            assert_eq!(t.cohort_of(cpu), 0);
        }
    }

    #[test]
    fn cohort_of_current_is_stable_and_in_range() {
        let c = cohort_of_current();
        assert_eq!(c, cohort_of_current());
        assert!(c < rank_count());
        assert!(rank_count() >= 1);
        let worker = std::thread::spawn(|| {
            let c = cohort_of_current();
            assert_eq!(c, cohort_of_current());
            assert!(c < rank_count());
        });
        worker.join().unwrap();
    }

    #[test]
    fn sysfs_parse_smoke() {
        // On Linux CI this exercises the real parser; elsewhere it
        // documents the fallback.
        let t = Topology::get();
        if t.is_detected() {
            assert!(t.cpus() >= 1);
        } else {
            // Fallback is the identity permutation.
            for cpu in 0..t.cpus() {
                assert_eq!(t.rank_of(cpu), cpu);
            }
        }
    }
}
