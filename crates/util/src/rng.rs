//! Small, fast per-thread PRNG.
//!
//! The paper's harness has each thread decide read-vs-write "using a
//! per-thread private random number generator" (§5.1). A xorshift64*
//! generator is the standard choice for this: a few ALU ops per draw, no
//! shared state, and good enough statistical quality for workload mixing.

/// A xorshift64* pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. A zero seed is remapped (xorshift
    /// has a fixed point at zero).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Derives a well-spread seed for thread `i` from a base seed, so
    /// per-thread streams do not overlap trivially.
    pub fn for_thread(base_seed: u64, i: usize) -> Self {
        // SplitMix64 step: the recommended way to seed xorshift families.
        let mut z = base_seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self::new(z ^ (z >> 31))
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift; slight bias is irrelevant for workload
        // mixing and avoids a modulo on the hot path.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns true with probability `percent / 100`.
    ///
    /// This is exactly the paper's "target read percentage" draw.
    #[inline]
    pub fn percent(&mut self, percent: u32) -> bool {
        debug_assert!(percent <= 100);
        self.next_below(100) < percent as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut a = XorShift64::new(0);
        let mut b = XorShift64::new(0x9E37_79B9_7F4A_7C15);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn thread_streams_differ() {
        let mut a = XorShift64::for_thread(7, 0);
        let mut b = XorShift64::for_thread(7, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut r = XorShift64::new(123);
        for bound in [1u64, 2, 3, 10, 100, 1 << 40] {
            for _ in 0..1000 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn percent_extremes() {
        let mut r = XorShift64::new(5);
        for _ in 0..1000 {
            assert!(!r.percent(0));
            assert!(r.percent(100));
        }
    }

    #[test]
    fn percent_roughly_matches_target() {
        let mut r = XorShift64::new(99);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.percent(80)).count();
        let frac = hits as f64 / n as f64;
        assert!((0.78..0.82).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn bits_look_balanced() {
        // Cheap sanity check: across many draws, each bit position should be
        // set roughly half the time.
        let mut r = XorShift64::new(2026);
        let n = 10_000;
        let mut ones = [0u32; 64];
        for _ in 0..n {
            let x = r.next_u64();
            for (bit, count) in ones.iter_mut().enumerate() {
                *count += ((x >> bit) & 1) as u32;
            }
        }
        for (bit, &count) in ones.iter().enumerate() {
            let frac = count as f64 / n as f64;
            assert!(
                (0.45..0.55).contains(&frac),
                "bit {bit} set fraction {frac}"
            );
        }
    }
}
