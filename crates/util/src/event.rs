//! Waiter objects: one-shot events and broadcast group events.
//!
//! The GOLL and Solaris-like locks put conflicting threads to sleep on a
//! mutex-protected wait queue and *hand over* lock ownership on release
//! (§3.1–3.2 of the paper): a thread always owns the lock by the time it is
//! woken. The queue entries are waiter objects; this module provides them.
//!
//! The paper's evaluation uses "spin-based condition variables to eliminate
//! the cost of context switching" (§5.1) — that is [`WaitStrategy::SpinThenYield`].
//! Production deployments (like the real Solaris turnstile) deschedule
//! waiters; [`WaitStrategy::SpinThenPark`] models that.

use crate::backoff::{Backoff, BackoffPolicy};
use crate::sync::{AtomicBool, AtomicUsize, Ordering};

/// How a waiter burns time until it is signaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WaitStrategy {
    /// Busy-wait with exponential backoff that escalates to `yield_now`.
    /// Matches the paper's spin-based condition variables.
    #[default]
    SpinThenYield,
    /// Spin briefly, then park the OS thread until `signal`.
    /// Matches production locks that deschedule waiters.
    SpinThenPark,
}

const PARK_SPIN_ROUNDS: u32 = 128;

/// A one-shot event: one (or more) waiters block until one `signal` call.
///
/// `signal` may race with `wait`; the waiter never misses the signal. The
/// event is *not* automatically reusable — call [`Event::reset`] between
/// uses (the locks allocate one per enqueue, so they never reset).
#[derive(Debug)]
pub struct Event {
    set: AtomicBool,
    strategy: WaitStrategy,
    #[cfg(not(loom))]
    parked: std::sync::Mutex<Vec<std::thread::Thread>>,
}

impl Event {
    /// Creates an unsignaled event.
    pub fn new(strategy: WaitStrategy) -> Self {
        Self {
            set: AtomicBool::new(false),
            strategy,
            #[cfg(not(loom))]
            parked: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Returns whether the event has been signaled.
    pub fn is_set(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    /// Signals the event, waking all current and future waiters.
    pub fn signal(&self) {
        self.set.store(true, Ordering::Release);
        #[cfg(not(loom))]
        if matches!(self.strategy, WaitStrategy::SpinThenPark) {
            let mut parked = self.parked.lock().unwrap();
            for t in parked.drain(..) {
                t.unpark();
            }
        }
    }

    /// Blocks until the event is signaled.
    pub fn wait(&self) {
        match self.strategy {
            WaitStrategy::SpinThenYield => {
                let mut b = Backoff::with_policy(BackoffPolicy::default());
                while !self.is_set() {
                    b.relax();
                }
            }
            WaitStrategy::SpinThenPark => self.wait_parking(),
        }
    }

    #[cfg(not(loom))]
    fn wait_parking(&self) {
        let mut b = Backoff::new();
        for _ in 0..PARK_SPIN_ROUNDS {
            if self.is_set() {
                return;
            }
            b.relax();
        }
        // Publish our handle, then re-check: a signaler that saw the list
        // before our push will be balanced by this re-check; a signaler that
        // runs after our push will unpark us.
        loop {
            {
                let mut parked = self.parked.lock().unwrap();
                if self.is_set() {
                    return;
                }
                parked.push(std::thread::current());
            }
            std::thread::park();
            if self.is_set() {
                return;
            }
            // Spurious wakeup: remove any stale handle and retry.
            let mut parked = self.parked.lock().unwrap();
            let me = std::thread::current().id();
            parked.retain(|t| t.id() != me);
            if self.is_set() {
                return;
            }
        }
    }

    #[cfg(loom)]
    fn wait_parking(&self) {
        // loom has no real parking; fall back to yield-spinning so models
        // still explore all interleavings.
        let mut b = Backoff::with_policy(BackoffPolicy::YIELD_ONLY);
        while !self.is_set() {
            b.relax();
        }
    }

    /// Blocks until the event is signaled or `deadline` passes.
    ///
    /// Returns `true` if the event was signaled, `false` on timeout. A
    /// `false` return only means the *wait* gave up: the signal may still
    /// arrive later (or already be in flight), so the caller must run its
    /// own cancellation protocol before abandoning the waiter object.
    #[cfg(not(loom))]
    pub fn wait_deadline(&self, deadline: std::time::Instant) -> bool {
        match self.strategy {
            WaitStrategy::SpinThenYield => {
                let mut b = Backoff::with_policy(BackoffPolicy::default());
                loop {
                    if self.is_set() {
                        return true;
                    }
                    if std::time::Instant::now() >= deadline {
                        // Final re-check so a signal that raced the clock
                        // read is never reported as a timeout.
                        return self.is_set();
                    }
                    b.relax();
                }
            }
            WaitStrategy::SpinThenPark => self.wait_parking_deadline(deadline),
        }
    }

    #[cfg(not(loom))]
    fn wait_parking_deadline(&self, deadline: std::time::Instant) -> bool {
        let mut b = Backoff::new();
        for _ in 0..PARK_SPIN_ROUNDS {
            if self.is_set() {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return self.is_set();
            }
            b.relax();
        }
        loop {
            {
                let mut parked = self.parked.lock().unwrap();
                if self.is_set() {
                    return true;
                }
                parked.push(std::thread::current());
            }
            let now = std::time::Instant::now();
            if now < deadline {
                std::thread::park_timeout(deadline - now);
            }
            // Whether we were unparked, woke spuriously, or timed out, our
            // handle may still be on the list; remove it before deciding,
            // so a later `signal` never unparks a thread that has moved on.
            {
                let mut parked = self.parked.lock().unwrap();
                let me = std::thread::current().id();
                parked.retain(|t| t.id() != me);
                if self.is_set() {
                    return true;
                }
            }
            if std::time::Instant::now() >= deadline {
                return self.is_set();
            }
        }
    }

    /// Rearms the event. Caller must guarantee no thread is still waiting.
    pub fn reset(&self) {
        self.set.store(false, Ordering::Release);
    }
}

/// A broadcast event shared by a *group* of waiting readers.
///
/// GOLL coalesces consecutive waiting readers into one queue entry (the
/// Solaris lock does the same); the releasing thread performs a single
/// `OpenWithArrivals` for the whole group and then wakes every member with
/// one [`GroupEvent::signal_all`]. The group also tracks its membership
/// count, which the releaser passes to `OpenWithArrivals`.
#[derive(Debug)]
pub struct GroupEvent {
    event: Event,
    members: AtomicUsize,
}

impl GroupEvent {
    /// Creates an empty, unsignaled group.
    pub fn new(strategy: WaitStrategy) -> Self {
        Self {
            event: Event::new(strategy),
            members: AtomicUsize::new(0),
        }
    }

    /// Adds one member; returns the new membership count.
    ///
    /// Must not be called after the group has been signaled (the lock's
    /// queue discipline guarantees this: a dequeued group is never joined).
    pub fn join(&self) -> usize {
        self.members.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Number of members that have joined.
    pub fn members(&self) -> usize {
        self.members.load(Ordering::Relaxed)
    }

    /// Wakes every member.
    pub fn signal_all(&self) {
        self.event.signal();
    }

    /// Blocks the calling member until the group is signaled.
    pub fn wait(&self) {
        self.event.wait();
    }

    /// Blocks the calling member until the group is signaled or `deadline`
    /// passes. Returns `true` if signaled, `false` on timeout; see
    /// [`Event::wait_deadline`] for the timeout caveats.
    #[cfg(not(loom))]
    pub fn wait_deadline(&self, deadline: std::time::Instant) -> bool {
        self.event.wait_deadline(deadline)
    }

    /// Removes one member that is abandoning the wait; returns the new
    /// membership count.
    ///
    /// Must be called while holding the same lock that serializes
    /// [`GroupEvent::join`] against dequeueing (the owning lock's queue
    /// mutex), and only while the group is still queued: once a releaser
    /// has dequeued the group it has already counted this member into its
    /// `OpenWithArrivals`, and the member must consume the hand-off
    /// instead of leaving.
    pub fn leave(&self) -> usize {
        let prev = self.members.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "leave() without a matching join()");
        prev - 1
    }

    /// Returns whether the group has been signaled.
    pub fn is_set(&self) -> bool {
        self.event.is_set()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn strategies() -> [WaitStrategy; 2] {
        [WaitStrategy::SpinThenYield, WaitStrategy::SpinThenPark]
    }

    #[test]
    fn signal_before_wait_returns_immediately() {
        for s in strategies() {
            let e = Event::new(s);
            e.signal();
            e.wait(); // must not block
            assert!(e.is_set());
        }
    }

    #[test]
    fn wait_blocks_until_signal() {
        for s in strategies() {
            let e = Arc::new(Event::new(s));
            let e2 = Arc::clone(&e);
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                e2.signal();
            });
            e.wait();
            assert!(e.is_set());
            h.join().unwrap();
        }
    }

    #[test]
    fn many_waiters_one_signal() {
        for s in strategies() {
            let e = Arc::new(Event::new(s));
            let mut handles = Vec::new();
            for _ in 0..8 {
                let e2 = Arc::clone(&e);
                handles.push(std::thread::spawn(move || e2.wait()));
            }
            std::thread::sleep(Duration::from_millis(10));
            e.signal();
            for h in handles {
                h.join().unwrap();
            }
        }
    }

    #[test]
    fn park_never_misses_a_racing_signal() {
        // Regression guard for the classic lost-wakeup: a signal landing
        // between the waiter's last spin check and its park. Correctness
        // hinges on two details of `wait_parking`: the `is_set` re-check
        // under the `parked` mutex before pushing (covers a signal that
        // drained the list before the push), and the unpark permit
        // (covers a signal between the mutex unlock and the park). The
        // even iterations race the signal against the spin phase; the
        // odd ones sleep long enough that the waiter is parked (or about
        // to be) when the signal fires. A lost wakeup hangs the join and
        // fails via the harness timeout.
        for i in 0..500usize {
            let e = Arc::new(Event::new(WaitStrategy::SpinThenPark));
            let e2 = Arc::clone(&e);
            let waiter = std::thread::spawn(move || e2.wait());
            if i % 2 == 0 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(50));
            }
            e.signal();
            waiter.join().unwrap();
            assert!(e.is_set());
        }
    }

    #[test]
    fn park_deadline_never_misses_a_racing_signal() {
        // Same window as above, with the deadline variant: a signal that
        // arrives before the deadline must always be observed as `true`,
        // even when it races the park/park_timeout transition.
        for i in 0..200usize {
            let e = Arc::new(Event::new(WaitStrategy::SpinThenPark));
            let e2 = Arc::clone(&e);
            let waiter = std::thread::spawn(move || {
                e2.wait_deadline(std::time::Instant::now() + Duration::from_secs(30))
            });
            if i % 2 == 1 {
                std::thread::sleep(Duration::from_micros(50));
            }
            e.signal();
            assert!(
                waiter.join().unwrap(),
                "signal before deadline reported as timeout"
            );
        }
    }

    #[test]
    fn reset_rearms() {
        let e = Event::new(WaitStrategy::SpinThenYield);
        e.signal();
        assert!(e.is_set());
        e.reset();
        assert!(!e.is_set());
    }

    #[test]
    fn group_event_counts_members_and_broadcasts() {
        for s in strategies() {
            let g = Arc::new(GroupEvent::new(s));
            assert_eq!(g.join(), 1);
            assert_eq!(g.join(), 2);
            assert_eq!(g.members(), 2);

            let mut handles = Vec::new();
            for _ in 0..2 {
                let g2 = Arc::clone(&g);
                handles.push(std::thread::spawn(move || g2.wait()));
            }
            std::thread::sleep(Duration::from_millis(10));
            g.signal_all();
            for h in handles {
                h.join().unwrap();
            }
            assert!(g.is_set());
        }
    }
}
