//! The shared tuning-knob block: every runtime-steerable policy constant
//! in the workspace, behind one atomics-backed struct.
//!
//! Before this module each knob was a hard-coded constant or a
//! construction-time field scattered across crates: the adaptive C-SNZI's
//! deflation hysteresis lived in `oll-csnzi`, the BRAVO re-arm multiplier
//! and the cohort batch bound in `oll-core`, and the backoff spin caps in
//! [`BackoffPolicy`]. A static build and a self-tuned build therefore read
//! *different* sources of truth. Now both read a [`TuningKnobs`] instance:
//! lock builders write their configured (or default) values into it at
//! construction, the hot paths load from it with `Relaxed` atomics, and an
//! online controller (`oll_core::SelfTuning`) may store new values at any
//! time without stopping the lock.
//!
//! Memory ordering: every field is an independent heuristic input — a
//! stale read steers a policy one episode late, never breaks mutual
//! exclusion — so `Relaxed` loads and stores suffice and the loads cost no
//! more than the constants they replaced (an L1-resident line shared with
//! the other knobs, no fences, no RMWs).

use crate::backoff::BackoffPolicy;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// Default [`TuningKnobs::deflate_after`]: consecutive quiet direct root
/// arrivals before an inflated adaptive C-SNZI deflates. One quiet
/// arrival is noise; sixty-four in a row is a regime change.
pub const DEFAULT_DEFLATE_AFTER: u32 = 64;

/// Default [`TuningKnobs::rearm_multiplier`]: BRAVO's `N` — after a bias
/// revocation that took `T` ns, re-arming is inhibited for `N × T` ns, so
/// revocation overhead is bounded at roughly `1/(N+1)` of runtime. The
/// BRAVO paper uses 9 (at most ~10% of time spent revoking).
pub const DEFAULT_REARM_MULTIPLIER: u32 = 9;

/// Default [`TuningKnobs::cohort_batch`]: consecutive same-socket writer
/// hand-offs a NUMA cohort gate may perform before it must release
/// globally (the remote-starvation bound).
pub const DEFAULT_COHORT_BATCH: u32 = 64;

/// Every runtime-steerable tuning knob, shared between a lock's
/// components (C-SNZI, BRAVO wrapper, cohort gate, backoff loops) and
/// whoever steers them — a builder writing static configuration once, or
/// an online controller storing new values while the lock runs.
///
/// All fields default to the long-standing hard-coded values, so a lock
/// that never attaches a controller behaves exactly as before the knobs
/// existed. Setters clamp instead of panicking: the controller may be
/// driven by measured (hence arbitrary) values.
#[derive(Debug)]
pub struct TuningKnobs {
    /// See [`DEFAULT_DEFLATE_AFTER`]. Clamped to ≥ 1.
    deflate_after: AtomicU32,
    /// See [`DEFAULT_REARM_MULTIPLIER`].
    rearm_multiplier: AtomicU32,
    /// [`BackoffPolicy::spin_limit`] for the owning lock's wait loops.
    /// The hard [`MAX_SPIN_EXPONENT`](crate::backoff::MAX_SPIN_EXPONENT)
    /// ceiling still applies downstream, whatever is stored here.
    spin_limit: AtomicU32,
    /// [`BackoffPolicy::yield_limit`] for the owning lock's wait loops.
    yield_limit: AtomicU32,
    /// See [`DEFAULT_COHORT_BATCH`]. Clamped to ≥ 1.
    cohort_batch: AtomicU32,
    /// Whether BRAVO reader bias may (re-)arm. Disarming does not revoke
    /// an armed bias by itself — the next writer does that — it prevents
    /// the post-revocation re-arm, so the lock settles into unbiased
    /// operation within one writer episode.
    bias_allowed: AtomicBool,
    /// Bumped once per knob store; cheap change detection for tests and
    /// observers (no ABA guarantees needed — observers only ask "did
    /// anything change since I last looked").
    revision: AtomicU32,
}

impl Default for TuningKnobs {
    fn default() -> Self {
        Self::new()
    }
}

impl TuningKnobs {
    /// Knobs at their documented defaults (the historical constants).
    pub fn new() -> Self {
        let backoff = BackoffPolicy::default();
        Self {
            deflate_after: AtomicU32::new(DEFAULT_DEFLATE_AFTER),
            rearm_multiplier: AtomicU32::new(DEFAULT_REARM_MULTIPLIER),
            spin_limit: AtomicU32::new(backoff.spin_limit),
            yield_limit: AtomicU32::new(backoff.yield_limit),
            cohort_batch: AtomicU32::new(DEFAULT_COHORT_BATCH),
            bias_allowed: AtomicBool::new(true),
            revision: AtomicU32::new(0),
        }
    }

    /// A freshly defaulted instance behind an `Arc`, ready to hand to a
    /// lock builder and a controller.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    #[inline]
    fn bump(&self) {
        self.revision.fetch_add(1, Ordering::Relaxed);
    }

    /// Store revision counter; bumped on every setter call.
    #[inline]
    pub fn revision(&self) -> u32 {
        self.revision.load(Ordering::Relaxed)
    }

    /// Quiet-run length before adaptive C-SNZI deflation (≥ 1).
    #[inline]
    pub fn deflate_after(&self) -> u32 {
        self.deflate_after.load(Ordering::Relaxed).max(1)
    }

    /// Sets [`deflate_after`](Self::deflate_after) (clamped to ≥ 1).
    pub fn set_deflate_after(&self, v: u32) {
        self.deflate_after.store(v.max(1), Ordering::Relaxed);
        self.bump();
    }

    /// BRAVO re-arm inhibit multiplier.
    #[inline]
    pub fn rearm_multiplier(&self) -> u32 {
        self.rearm_multiplier.load(Ordering::Relaxed)
    }

    /// Sets [`rearm_multiplier`](Self::rearm_multiplier).
    pub fn set_rearm_multiplier(&self, v: u32) {
        self.rearm_multiplier.store(v, Ordering::Relaxed);
        self.bump();
    }

    /// Current backoff policy snapshot for a wait loop about to start.
    #[inline]
    pub fn backoff_policy(&self) -> BackoffPolicy {
        BackoffPolicy {
            spin_limit: self.spin_limit.load(Ordering::Relaxed),
            yield_limit: self.yield_limit.load(Ordering::Relaxed),
        }
    }

    /// Sets both backoff caps from a policy value.
    pub fn set_backoff_policy(&self, policy: BackoffPolicy) {
        self.spin_limit.store(policy.spin_limit, Ordering::Relaxed);
        self.yield_limit
            .store(policy.yield_limit, Ordering::Relaxed);
        self.bump();
    }

    /// Cohort same-socket hand-off batch bound (≥ 1).
    #[inline]
    pub fn cohort_batch(&self) -> u32 {
        self.cohort_batch.load(Ordering::Relaxed).max(1)
    }

    /// Sets [`cohort_batch`](Self::cohort_batch) (clamped to ≥ 1).
    pub fn set_cohort_batch(&self, v: u32) {
        self.cohort_batch.store(v.max(1), Ordering::Relaxed);
        self.bump();
    }

    /// Whether BRAVO reader bias may (re-)arm.
    #[inline]
    pub fn bias_allowed(&self) -> bool {
        self.bias_allowed.load(Ordering::Relaxed)
    }

    /// Allows or inhibits BRAVO bias re-arming.
    pub fn set_bias_allowed(&self, v: bool) {
        self.bias_allowed.store(v, Ordering::Relaxed);
        self.bump();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_historical_constants() {
        let k = TuningKnobs::new();
        assert_eq!(k.deflate_after(), DEFAULT_DEFLATE_AFTER);
        assert_eq!(k.rearm_multiplier(), DEFAULT_REARM_MULTIPLIER);
        assert_eq!(k.cohort_batch(), DEFAULT_COHORT_BATCH);
        assert_eq!(k.backoff_policy(), BackoffPolicy::default());
        assert!(k.bias_allowed());
        assert_eq!(k.revision(), 0);
    }

    #[test]
    fn setters_clamp_and_bump_revision() {
        let k = TuningKnobs::new();
        k.set_deflate_after(0);
        assert_eq!(k.deflate_after(), 1);
        k.set_cohort_batch(0);
        assert_eq!(k.cohort_batch(), 1);
        k.set_rearm_multiplier(3);
        assert_eq!(k.rearm_multiplier(), 3);
        k.set_bias_allowed(false);
        assert!(!k.bias_allowed());
        let p = BackoffPolicy {
            spin_limit: 2,
            yield_limit: 5,
        };
        k.set_backoff_policy(p);
        assert_eq!(k.backoff_policy(), p);
        assert_eq!(k.revision(), 5);
    }
}
