//! Deterministic fault injection at named synchronization points.
//!
//! Races in the lock slow paths (a timeout racing a hand-off, a reader
//! cancelling while the last active reader departs) occupy windows of a few
//! instructions; stress tests hit them once in millions of iterations, if
//! ever. This module lets tests *force* those interleavings: the lock code
//! is annotated with [`inject`]`("site-name")` calls at the interesting
//! windows, and a test installs a [`FaultPlan`] that deterministically
//! widens chosen windows by yielding the thread there.
//!
//! Properties that make this usable as a test oracle:
//!
//! * **Zero cost when disabled.** Without `cfg(feature = "fault-injection")`
//!   the `inject` calls compile to empty inline functions; the lock crates
//!   ship no fault-injection code in normal builds.
//! * **Deterministic.** Whether site occurrence *k* of site *s* delays, and
//!   for how long, is a pure function of `(plan.seed, s, k)`. The same plan
//!   on the same schedule-relevant inputs reproduces the same injected
//!   delays — no global RNG state, no wall-clock dependence.
//! * **Scoped.** [`FaultPlan::install`] returns a guard; dropping it
//!   uninstalls the plan, so tests compose under `cargo test` as long as
//!   fault-injection tests run single-threaded per plan (the plan itself is
//!   process-global).

#[cfg(feature = "fault-injection")]
mod enabled {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};

    /// A deterministic schedule of delays at named injection sites.
    #[derive(Debug, Clone)]
    pub struct FaultPlan {
        /// Seed for the per-occurrence decision function.
        pub seed: u64,
        /// Only sites whose name contains this substring are considered;
        /// empty matches every site.
        pub site_filter: String,
        /// Probability (percent, 0–100) that a matching occurrence delays.
        pub percent: u32,
        /// Delay length: an injected occurrence yields between 1 and
        /// `max_yields` times (also derived deterministically).
        pub max_yields: u32,
        /// Probability (percent, 0–100) that a matching occurrence
        /// *panics* instead of delaying. Chaos tests use this to prove a
        /// thread dying inside a lock slow path or critical section never
        /// strands the other participants. The decision is just as
        /// deterministic as the delay decision.
        pub panic_percent: u32,
    }

    impl FaultPlan {
        /// A plan delaying every occurrence of sites matching `site_filter`.
        pub fn every(seed: u64, site_filter: &str, max_yields: u32) -> Self {
            Self {
                seed,
                site_filter: site_filter.to_string(),
                percent: 100,
                max_yields,
                panic_percent: 0,
            }
        }

        /// A plan delaying a `percent` fraction of matching occurrences.
        pub fn sometimes(seed: u64, site_filter: &str, percent: u32, max_yields: u32) -> Self {
            Self {
                seed,
                site_filter: site_filter.to_string(),
                percent,
                max_yields,
                panic_percent: 0,
            }
        }

        /// A plan panicking at a `percent` fraction of matching
        /// occurrences (and never delaying). The panic unwinds from
        /// inside the annotated window — callers are expected to contain
        /// it with `catch_unwind` and assert the lock survived.
        pub fn panicking(seed: u64, site_filter: &str, percent: u32) -> Self {
            Self {
                seed,
                site_filter: site_filter.to_string(),
                percent: 0,
                max_yields: 0,
                panic_percent: percent,
            }
        }

        /// Sets the panic probability on an existing plan, combining
        /// delays and panics in one chaos schedule.
        pub fn with_panic_percent(mut self, percent: u32) -> Self {
            self.panic_percent = percent;
            self
        }

        /// Installs the plan process-wide; the returned guard uninstalls it
        /// on drop. Also resets the per-site occurrence counters so every
        /// install starts from the same deterministic schedule.
        #[must_use = "dropping the guard immediately uninstalls the plan"]
        pub fn install(self) -> FaultGuard {
            let slot = plan_slot();
            let mut g = slot.lock().unwrap();
            assert!(
                g.is_none(),
                "a FaultPlan is already installed; fault-injection tests must not overlap"
            );
            for c in &COUNTERS {
                c.count.store(0, Ordering::Relaxed);
            }
            *g = Some(self);
            FaultGuard(())
        }
    }

    /// Uninstalls the active [`FaultPlan`] when dropped.
    #[derive(Debug)]
    pub struct FaultGuard(());

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            *plan_slot().lock().unwrap() = None;
        }
    }

    fn plan_slot() -> &'static Mutex<Option<FaultPlan>> {
        static SLOT: OnceLock<Mutex<Option<FaultPlan>>> = OnceLock::new();
        SLOT.get_or_init(|| Mutex::new(None))
    }

    /// Per-site occurrence counters, keyed by a hash of the site name.
    /// Collisions only merge two sites' counters — determinism survives
    /// because the merged counter sequence is itself deterministic.
    const COUNTER_BUCKETS: usize = 256;

    struct SiteCounter {
        count: AtomicU64,
    }

    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: SiteCounter = SiteCounter {
        count: AtomicU64::new(0),
    };
    static COUNTERS: [SiteCounter; COUNTER_BUCKETS] = [ZERO; COUNTER_BUCKETS];

    fn fnv(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// SplitMix64 finalizer: the pure decision function over (seed, site, k).
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The active injection point. See the module docs; called via the
    /// public [`super::inject`] wrapper.
    enum Decision {
        Yield(u32),
        Panic,
    }

    pub fn inject(site: &'static str, allow_panic: bool) {
        // Fast path: no plan installed. One uncontended mutex lock per call
        // is acceptable — this code only exists in fault-injection builds.
        let decision = {
            let g = plan_slot().lock().unwrap();
            let Some(plan) = g.as_ref() else { return };
            if !plan.site_filter.is_empty() && !site.contains(plan.site_filter.as_str()) {
                return;
            }
            let h = fnv(site);
            let k = COUNTERS[(h as usize) % COUNTER_BUCKETS]
                .count
                .fetch_add(1, Ordering::Relaxed);
            let roll = mix(plan.seed ^ h ^ k.wrapping_mul(0x2545_f491_4f6c_dd1d));
            // An independent deterministic draw for the panic decision, so
            // mixed plans (delays + panics) keep both schedules stable.
            let panic_roll = mix(roll ^ 0x517c_c1b7_2722_0a95);
            if allow_panic && plan.panic_percent > 0 && panic_roll % 100 < plan.panic_percent as u64
            {
                Decision::Panic
            } else if roll % 100 < plan.percent as u64 {
                Decision::Yield(1 + (mix(roll) % plan.max_yields.max(1) as u64) as u32)
            } else {
                return;
            }
        };
        // Act outside the plan lock: delayed threads must not serialize,
        // and a panic while holding it would poison the slot for every
        // later `inject` in the process.
        match decision {
            Decision::Yield(n) => {
                for _ in 0..n {
                    std::thread::yield_now();
                }
            }
            Decision::Panic => panic!("injected panic at fault site `{site}`"),
        }
    }
}

#[cfg(feature = "fault-injection")]
pub use enabled::{FaultGuard, FaultPlan};

/// Marks a named synchronization window in lock slow-path code.
///
/// With `feature = "fault-injection"` this consults the installed
/// [`FaultPlan`] (if any) and may yield the calling thread to widen the
/// window; otherwise it is an empty `#[inline(always)]` function that the
/// optimizer erases.
#[cfg(feature = "fault-injection")]
#[inline(always)]
pub fn inject(site: &'static str) {
    enabled::inject(site, true);
}

/// Like [`inject`], but only ever *delays* — panic draws are skipped.
///
/// For sites inside windows where the surrounding operation has already
/// committed and an unwind could not be made sound locally (e.g. the
/// C-SNZI's deflation decision runs after the arrival CAS landed: a
/// panic there would leak a surplus the unwinding thread can no longer
/// depart without, in a pathological schedule, becoming the lock's
/// owner mid-unwind). Yield plans still widen such windows; chaos plans
/// direct their panics at the sites annotated with plain [`inject`].
#[cfg(feature = "fault-injection")]
#[inline(always)]
pub fn inject_yield_only(site: &'static str) {
    enabled::inject(site, false);
}

/// Fault injection is compiled out: this is a no-op.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn inject(_site: &'static str) {}

/// Fault injection is compiled out: this is a no-op.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn inject_yield_only(_site: &'static str) {}

#[cfg(all(test, feature = "fault-injection", not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn no_plan_is_a_noop() {
        inject("test.nothing-installed");
    }

    #[test]
    fn plan_decisions_are_deterministic() {
        // Record which of the first 100 occurrences delay, twice, by
        // re-installing the same plan; the schedules must match. We can't
        // observe yields directly, so probe via the decision function by
        // comparing two identical runs' counter-advancement behavior:
        // identical plans and identical call sequences must behave
        // identically, which we assert indirectly by exercising the path.
        for _ in 0..2 {
            let guard = FaultPlan::sometimes(42, "det-site", 50, 3).install();
            for _ in 0..100 {
                inject("det-site.a");
                inject("det-site.b");
            }
            drop(guard);
        }
    }

    #[test]
    fn filter_skips_unrelated_sites() {
        let guard = FaultPlan::every(7, "only-this", 2).install();
        // Unmatched site: must not consume occurrence counters or delay.
        for _ in 0..10 {
            inject("something-else");
        }
        drop(guard);
    }

    #[test]
    fn panic_plans_fire_deterministically() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let schedule = |seed: u64| {
            let guard = FaultPlan::panicking(seed, "panic-site", 50).install();
            let fired: Vec<bool> = (0..50)
                .map(|_| catch_unwind(AssertUnwindSafe(|| inject("panic-site.x"))).is_err())
                .collect();
            drop(guard);
            fired
        };
        let a = schedule(99);
        let b = schedule(99);
        assert_eq!(a, b, "same seed must reproduce the same panic schedule");
        assert!(a.iter().any(|&f| f), "50% plan should fire at least once");
        assert!(a.iter().any(|&f| !f), "50% plan should also skip");
    }

    #[test]
    fn yield_only_sites_never_panic() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let guard = FaultPlan::panicking(3, "committed-window", 100).install();
        for _ in 0..50 {
            assert!(
                catch_unwind(AssertUnwindSafe(|| inject_yield_only("committed-window"))).is_ok(),
                "a yield-only site took a panic draw"
            );
        }
        drop(guard);
    }

    #[test]
    fn panic_plans_leave_the_slot_usable() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let guard = FaultPlan::panicking(1, "always-dies", 100).install();
        assert!(catch_unwind(AssertUnwindSafe(|| inject("always-dies"))).is_err());
        drop(guard);
        // The slot must not be poisoned: a fresh plan still installs.
        let guard = FaultPlan::every(2, "calm", 1).install();
        inject("calm");
        drop(guard);
    }
}
