//! Tunable exponential backoff.

use crate::sync::{spin_loop_hint, thread};

/// Exponential backoff for contended retry loops and busy-wait spins.
///
/// The paper tunes exponential backoff per lock (§5.1); [`BackoffPolicy`]
/// captures those tuning knobs and each lock's builder exposes them.
///
/// Two phases:
/// 1. *Spin*: issue `2^step` CPU relax hints, doubling each call, capped at
///    `2^spin_limit`.
/// 2. *Yield*: once past `spin_limit`, also yield the OS thread. This keeps
///    the queue-based locks live when there are more runnable threads than
///    hardware threads (the original MCS/FOLL algorithms assume a thread per
///    processor; yielding is the standard user-space adaptation).
#[derive(Debug, Clone)]
pub struct Backoff {
    step: u32,
    policy: BackoffPolicy,
}

/// Hard ceiling on the spin exponent, whatever the policy says.
///
/// `spin_limit` is a user-tunable `u32`, and the spin count is `1 <<
/// exponent`: an over-eager policy (say `spin_limit: 40`) would otherwise
/// spin for a *trillion* relax hints per call — effectively a hang, and on
/// a 32-bit shift an overflow panic. Every shift in this module clamps the
/// exponent to this value first, so the longest possible single burst is
/// `2^16` = 65 536 hints (tens of microseconds), after which escalation
/// must go through `yield_now` instead of longer spins.
pub const MAX_SPIN_EXPONENT: u32 = 16;

/// Tuning knobs for [`Backoff`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Phase-1 cap: spin `2^spin_limit` relax hints at most per call.
    /// Values above [`MAX_SPIN_EXPONENT`] are clamped to it.
    pub spin_limit: u32,
    /// Phase-2 cap: growth stops at `2^yield_limit` (hints remain capped at
    /// `2^spin_limit`; past `spin_limit` each call also yields).
    ///
    /// This is the *yield threshold*: once `step` exceeds `spin_limit`,
    /// every call yields the OS thread exactly once — the per-call spin
    /// stays at `2^spin_limit` and only the step counter keeps growing (to
    /// `yield_limit`), which matters solely for [`Backoff::is_contended`]
    /// consumers. Yielding is what keeps the queue locks live when runnable
    /// threads outnumber hardware threads.
    pub yield_limit: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        // 2^6 = 64 relax hints before the first yield: long enough to win
        // short races without burning a scheduling quantum.
        Self {
            spin_limit: 6,
            yield_limit: 10,
        }
    }
}

impl BackoffPolicy {
    /// A policy that never spins and always yields — appropriate when the
    /// expected wait is a whole critical section on an oversubscribed box.
    pub const YIELD_ONLY: Self = Self {
        spin_limit: 0,
        yield_limit: 4,
    };
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// New backoff with the default policy.
    pub fn new() -> Self {
        Self::with_policy(BackoffPolicy::default())
    }

    /// New backoff with an explicit policy.
    pub fn with_policy(policy: BackoffPolicy) -> Self {
        Self { step: 0, policy }
    }

    /// Resets to the initial (shortest) delay.
    ///
    /// Call after a successful acquisition so the next contention episode
    /// starts from a short spin again.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Returns `true` once the spin phase is exhausted and the backoff has
    /// started yielding the thread. Lock-acquire loops use this to switch
    /// from "optimistic" to "contended" strategies (e.g. the C-SNZI
    /// `ShouldArriveAtTree` policy).
    pub fn is_contended(&self) -> bool {
        self.step > self.policy.spin_limit
    }

    /// Backs off once: spins (and, past the spin limit, yields), then
    /// increases the next delay exponentially.
    pub fn backoff(&mut self) {
        // Under loom every relax hint is a scheduling point; issuing 2^k
        // of them per call explodes the model's branch count without
        // exploring anything new. One per call is equivalent for checking.
        #[cfg(loom)]
        {
            spin_loop_hint();
            if self.step < self.policy.yield_limit {
                self.step += 1;
            }
            return;
        }
        #[cfg(not(loom))]
        {
            let spins = 1u32 << self.spin_exponent();
            for _ in 0..spins {
                spin_loop_hint();
            }
            if self.step > self.policy.spin_limit {
                thread::yield_now();
            }
            if self.step < self.policy.yield_limit {
                self.step += 1;
            }
        }
    }

    /// Current spin exponent, clamped by both the policy and the module-wide
    /// [`MAX_SPIN_EXPONENT`] ceiling.
    #[inline]
    fn spin_exponent(&self) -> u32 {
        self.step.min(self.policy.spin_limit).min(MAX_SPIN_EXPONENT)
    }

    /// Async-aware backoff step: spins like [`Backoff::backoff`] but
    /// **never yields, parks, or otherwise blocks the calling thread** —
    /// a future's `poll` must stay non-blocking whatever the contention.
    ///
    /// Returns `true` while the bounded spin phase has budget left (the
    /// caller may retry its fast path); `false` once the phase is
    /// exhausted — an async caller must then store its waker and return
    /// `Poll::Pending` instead of escalating to `yield_now`/parking the
    /// way the thread-based strategies do.
    pub fn poll_relax(&mut self) -> bool {
        if self.step > self.policy.spin_limit {
            return false;
        }
        #[cfg(loom)]
        {
            spin_loop_hint();
        }
        #[cfg(not(loom))]
        {
            let spins = 1u32 << self.spin_exponent();
            for _ in 0..spins {
                spin_loop_hint();
            }
        }
        self.step += 1;
        true
    }

    /// One relax step with no exponential growth; for tight "wait until flag
    /// flips" loops where the waiter is next in line and the wait is expected
    /// to be short (queue hand-offs).
    pub fn relax(&mut self) {
        #[cfg(loom)]
        {
            spin_loop_hint();
            return;
        }
        #[cfg(not(loom))]
        {
            let spins = 1u32 << self.spin_exponent();
            for _ in 0..spins {
                spin_loop_hint();
            }
            // Escalate to yielding, but keep the delay flat once there:
            // the hand-off we are waiting for is O(1) work away, growing
            // further only adds latency.
            if self.step <= self.policy.spin_limit {
                self.step += 1;
            } else {
                thread::yield_now();
            }
        }
    }
}

/// Spins until `cond()` is true, backing off between probes.
///
/// The workhorse behind every `repeat until !spin` in the paper's
/// pseudocode.
#[inline]
pub fn spin_until(policy: BackoffPolicy, mut cond: impl FnMut() -> bool) {
    let mut b = Backoff::with_policy(policy);
    while !cond() {
        b.relax();
    }
}

/// Spins until `cond()` is true or `deadline` passes; returns whether the
/// condition was observed.
///
/// `cond` is re-checked once after the clock read, so a condition that
/// flips concurrently with the deadline is never misreported as a timeout.
/// (Time-based, hence unavailable under loom — timed paths are exercised by
/// the fault-injection suites instead.)
#[cfg(not(loom))]
#[inline]
pub fn spin_until_deadline(
    policy: BackoffPolicy,
    deadline: std::time::Instant,
    mut cond: impl FnMut() -> bool,
) -> bool {
    let mut b = Backoff::with_policy(policy);
    loop {
        if cond() {
            return true;
        }
        if std::time::Instant::now() >= deadline {
            return cond();
        }
        b.relax();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn steps_saturate_at_yield_limit() {
        let mut b = Backoff::with_policy(BackoffPolicy {
            spin_limit: 2,
            yield_limit: 4,
        });
        for _ in 0..100 {
            b.backoff();
        }
        assert_eq!(b.step, 4);
        b.reset();
        assert_eq!(b.step, 0);
        assert!(!b.is_contended());
    }

    #[test]
    fn contended_after_spin_phase() {
        let mut b = Backoff::with_policy(BackoffPolicy {
            spin_limit: 1,
            yield_limit: 8,
        });
        assert!(!b.is_contended());
        for _ in 0..3 {
            b.backoff();
        }
        assert!(b.is_contended());
    }

    #[test]
    fn relax_never_exceeds_spin_phase_step() {
        let mut b = Backoff::with_policy(BackoffPolicy {
            spin_limit: 3,
            yield_limit: 10,
        });
        for _ in 0..50 {
            b.relax();
        }
        assert_eq!(b.step, b.policy.spin_limit + 1);
    }

    /// The async contract: `poll_relax` spins a *bounded* number of times
    /// and then refuses — it must never reach the yield (or any blocking)
    /// escalation, so a `poll` built on it cannot block its executor
    /// thread. The budget is exactly `spin_limit + 1` calls.
    #[test]
    fn poll_relax_is_bounded_and_never_yields() {
        let policy = BackoffPolicy {
            spin_limit: 3,
            yield_limit: 10,
        };
        let mut b = Backoff::with_policy(policy);
        let mut granted = 0;
        while b.poll_relax() {
            granted += 1;
            assert!(
                granted <= policy.spin_limit + 1,
                "spin budget must be finite"
            );
        }
        assert_eq!(granted, policy.spin_limit + 1);
        // Exhausted: every further call refuses immediately without
        // touching the step counter (no hidden escalation state).
        let step_after = b.step;
        for _ in 0..100 {
            assert!(!b.poll_relax());
        }
        assert_eq!(b.step, step_after);
        // And the refusal point is exactly where the thread-based backoff
        // would have started yielding the OS thread.
        assert!(b.is_contended());
    }

    #[test]
    fn spin_until_observes_flag_from_other_thread() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            f2.store(true, Ordering::Release);
        });
        spin_until(BackoffPolicy::default(), || flag.load(Ordering::Acquire));
        h.join().unwrap();
    }

    #[test]
    fn absurd_spin_limit_is_clamped_to_max_exponent() {
        // spin_limit: 40 would shift past u32 width (panic) and spin ~10^12
        // hints per call without the clamp; with it, one call completes in
        // at most 2^MAX_SPIN_EXPONENT hints.
        let mut b = Backoff::with_policy(BackoffPolicy {
            spin_limit: 40,
            yield_limit: 64,
        });
        for _ in 0..(MAX_SPIN_EXPONENT + 4) {
            b.backoff();
        }
        assert_eq!(b.spin_exponent(), MAX_SPIN_EXPONENT);
        b.relax();
    }

    #[test]
    fn spin_until_deadline_times_out_and_observes_late_flag() {
        use std::time::{Duration, Instant};
        // Condition never flips: must report timeout, promptly.
        let start = Instant::now();
        let ok = spin_until_deadline(
            BackoffPolicy::default(),
            start + Duration::from_millis(5),
            || false,
        );
        assert!(!ok);
        assert!(start.elapsed() >= Duration::from_millis(5));

        // Condition flips from another thread before the deadline.
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            f2.store(true, Ordering::Release);
        });
        let ok = spin_until_deadline(
            BackoffPolicy::default(),
            Instant::now() + Duration::from_secs(5),
            || flag.load(Ordering::Acquire),
        );
        assert!(ok);
        h.join().unwrap();
    }

    #[test]
    fn yield_only_policy_is_contended_immediately_after_one_step() {
        let mut b = Backoff::with_policy(BackoffPolicy::YIELD_ONLY);
        b.backoff();
        assert!(b.is_contended());
    }

    /// Policy conformance over the whole `u32 × u32` policy space: the
    /// spin count per call is `1 << spin_exponent()`, so proving the
    /// exponent never exceeds [`MAX_SPIN_EXPONENT`] pins both halves of
    /// the contract — no call spins more than `2^MAX_SPIN_EXPONENT`
    /// relax hints, and no shift reaches the u32 width (which would
    /// panic in debug builds). `absurd_spin_limit_is_clamped_to_max_exponent`
    /// above checks one hand-picked policy; this sweeps random ones and
    /// always includes the `u32::MAX` corner.
    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn any_policy_is_shift_safe_and_clamped(
                spin_raw in 0u64..(u32::MAX as u64 + 1),
                yield_raw in 0u64..(u32::MAX as u64 + 1),
                spin_is_max in any::<bool>(),
                yield_is_max in any::<bool>(),
            ) {
                let policy = BackoffPolicy {
                    spin_limit: if spin_is_max { u32::MAX } else { spin_raw as u32 },
                    yield_limit: if yield_is_max { u32::MAX } else { yield_raw as u32 },
                };
                let mut b = Backoff::with_policy(policy);
                // Drive the step counter past every escalation point the
                // clamp guards (it only ever grows by 1 per call, so
                // MAX_SPIN_EXPONENT + 4 calls cover exponents 0..=MAX and
                // the saturated tail).
                for call in 0..(MAX_SPIN_EXPONENT + 4) {
                    assert!(
                        b.spin_exponent() <= MAX_SPIN_EXPONENT,
                        "call {call}: exponent {} escaped the clamp under {policy:?}",
                        b.spin_exponent(),
                    );
                    b.backoff(); // would panic on an unclamped 32-bit shift
                    b.relax();
                }
                // The contention signal must agree with the step counter
                // whatever the limits were.
                assert_eq!(b.is_contended(), b.step > policy.spin_limit);
            }
        }
    }
}
