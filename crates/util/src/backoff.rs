//! Tunable exponential backoff.

use crate::sync::{spin_loop_hint, thread};

/// Exponential backoff for contended retry loops and busy-wait spins.
///
/// The paper tunes exponential backoff per lock (§5.1); [`BackoffPolicy`]
/// captures those tuning knobs and each lock's builder exposes them.
///
/// Two phases:
/// 1. *Spin*: issue `2^step` CPU relax hints, doubling each call, capped at
///    `2^spin_limit`.
/// 2. *Yield*: once past `spin_limit`, also yield the OS thread. This keeps
///    the queue-based locks live when there are more runnable threads than
///    hardware threads (the original MCS/FOLL algorithms assume a thread per
///    processor; yielding is the standard user-space adaptation).
#[derive(Debug, Clone)]
pub struct Backoff {
    step: u32,
    policy: BackoffPolicy,
}

/// Tuning knobs for [`Backoff`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Phase-1 cap: spin `2^spin_limit` relax hints at most per call.
    pub spin_limit: u32,
    /// Phase-2 cap: growth stops at `2^yield_limit` (hints remain capped at
    /// `2^spin_limit`; past `spin_limit` each call also yields).
    pub yield_limit: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        // 2^6 = 64 relax hints before the first yield: long enough to win
        // short races without burning a scheduling quantum.
        Self {
            spin_limit: 6,
            yield_limit: 10,
        }
    }
}

impl BackoffPolicy {
    /// A policy that never spins and always yields — appropriate when the
    /// expected wait is a whole critical section on an oversubscribed box.
    pub const YIELD_ONLY: Self = Self {
        spin_limit: 0,
        yield_limit: 4,
    };
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// New backoff with the default policy.
    pub fn new() -> Self {
        Self::with_policy(BackoffPolicy::default())
    }

    /// New backoff with an explicit policy.
    pub fn with_policy(policy: BackoffPolicy) -> Self {
        Self { step: 0, policy }
    }

    /// Resets to the initial (shortest) delay.
    ///
    /// Call after a successful acquisition so the next contention episode
    /// starts from a short spin again.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Returns `true` once the spin phase is exhausted and the backoff has
    /// started yielding the thread. Lock-acquire loops use this to switch
    /// from "optimistic" to "contended" strategies (e.g. the C-SNZI
    /// `ShouldArriveAtTree` policy).
    pub fn is_contended(&self) -> bool {
        self.step > self.policy.spin_limit
    }

    /// Backs off once: spins (and, past the spin limit, yields), then
    /// increases the next delay exponentially.
    pub fn backoff(&mut self) {
        // Under loom every relax hint is a scheduling point; issuing 2^k
        // of them per call explodes the model's branch count without
        // exploring anything new. One per call is equivalent for checking.
        #[cfg(loom)]
        {
            spin_loop_hint();
            if self.step < self.policy.yield_limit {
                self.step += 1;
            }
            return;
        }
        #[cfg(not(loom))]
        {
            let spins = 1u32 << self.step.min(self.policy.spin_limit);
            for _ in 0..spins {
                spin_loop_hint();
            }
            if self.step > self.policy.spin_limit {
                thread::yield_now();
            }
            if self.step < self.policy.yield_limit {
                self.step += 1;
            }
        }
    }

    /// One relax step with no exponential growth; for tight "wait until flag
    /// flips" loops where the waiter is next in line and the wait is expected
    /// to be short (queue hand-offs).
    pub fn relax(&mut self) {
        #[cfg(loom)]
        {
            spin_loop_hint();
            return;
        }
        #[cfg(not(loom))]
        {
            let spins = 1u32 << self.step.min(self.policy.spin_limit);
            for _ in 0..spins {
                spin_loop_hint();
            }
            // Escalate to yielding, but keep the delay flat once there:
            // the hand-off we are waiting for is O(1) work away, growing
            // further only adds latency.
            if self.step <= self.policy.spin_limit {
                self.step += 1;
            } else {
                thread::yield_now();
            }
        }
    }
}

/// Spins until `cond()` is true, backing off between probes.
///
/// The workhorse behind every `repeat until !spin` in the paper's
/// pseudocode.
#[inline]
pub fn spin_until(policy: BackoffPolicy, mut cond: impl FnMut() -> bool) {
    let mut b = Backoff::with_policy(policy);
    while !cond() {
        b.relax();
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn steps_saturate_at_yield_limit() {
        let mut b = Backoff::with_policy(BackoffPolicy {
            spin_limit: 2,
            yield_limit: 4,
        });
        for _ in 0..100 {
            b.backoff();
        }
        assert_eq!(b.step, 4);
        b.reset();
        assert_eq!(b.step, 0);
        assert!(!b.is_contended());
    }

    #[test]
    fn contended_after_spin_phase() {
        let mut b = Backoff::with_policy(BackoffPolicy {
            spin_limit: 1,
            yield_limit: 8,
        });
        assert!(!b.is_contended());
        for _ in 0..3 {
            b.backoff();
        }
        assert!(b.is_contended());
    }

    #[test]
    fn relax_never_exceeds_spin_phase_step() {
        let mut b = Backoff::with_policy(BackoffPolicy {
            spin_limit: 3,
            yield_limit: 10,
        });
        for _ in 0..50 {
            b.relax();
        }
        assert_eq!(b.step, b.policy.spin_limit + 1);
    }

    #[test]
    fn spin_until_observes_flag_from_other_thread() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            f2.store(true, Ordering::Release);
        });
        spin_until(BackoffPolicy::default(), || flag.load(Ordering::Acquire));
        h.join().unwrap();
    }

    #[test]
    fn yield_only_policy_is_contended_immediately_after_one_step() {
        let mut b = Backoff::with_policy(BackoffPolicy::YIELD_ONLY);
        b.backoff();
        assert!(b.is_contended());
    }
}
