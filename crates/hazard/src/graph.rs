//! The process-global wait-for graph behind online deadlock detection.
//!
//! Every hazard-watched slow-path blocker publishes one edge — *thread →
//! lock it waits on* — and every hazard-tracked acquisition records the
//! reverse ownership mapping — *lock → holder thread(s)*. A cycle check
//! walks `waits ∘ owners` from the calling thread; finding the caller
//! again proves a deadlock that no amount of waiting will resolve.
//!
//! Threads are named by the same dense-id scheme `oll-trace` uses for its
//! ring records: a process-global counter assigns each thread a small id
//! at first contact, cached in a thread-local. Locks are named by their
//! [`Hazard`](crate::Hazard) instance's process-unique id (which doubles
//! as the causality token the trace integration reports).
//!
//! Everything here is slow-path-only: the graph mutex is taken when a
//! blocker gives up a wait slice, when a tracked acquisition completes,
//! and when a tracked hold is released — never on a fast path.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// One lock's ownership record: at most one writer, any number of readers.
#[derive(Debug, Default)]
struct Owners {
    writer: Option<u64>,
    readers: Vec<u64>,
}

impl Owners {
    fn is_empty(&self) -> bool {
        self.writer.is_none() && self.readers.is_empty()
    }

    fn for_each(&self, mut f: impl FnMut(u64)) {
        if let Some(w) = self.writer {
            f(w);
        }
        for &r in &self.readers {
            f(r);
        }
    }
}

#[derive(Debug, Default)]
struct WaitGraph {
    /// thread → the lock it is blocked on (one outstanding wait per
    /// thread, exactly like the paper's one-acquisition-per-handle rule).
    waits: HashMap<u64, u64>,
    /// lock → its current tracked holder(s).
    owners: HashMap<u64, Owners>,
}

fn graph() -> &'static Mutex<WaitGraph> {
    static GRAPH: OnceLock<Mutex<WaitGraph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(WaitGraph::default()))
}

/// Dense thread ids, assigned at first contact (mirrors the
/// `oll-trace` ring tid scheme so the two correlate in reports).
pub fn dense_tid() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Publishes the calling thread's wait edge onto `lock_id`.
pub fn begin_wait(lock_id: u64) {
    graph().lock().unwrap().waits.insert(dense_tid(), lock_id);
}

/// Withdraws the calling thread's wait edge (wait over, for any reason).
pub fn end_wait() {
    graph().lock().unwrap().waits.remove(&dense_tid());
}

/// Records the calling thread as a holder of `lock_id` and clears its
/// wait edge in the same critical section (the wait became a hold).
pub fn acquired(lock_id: u64, write: bool) {
    let tid = dense_tid();
    let mut g = graph().lock().unwrap();
    g.waits.remove(&tid);
    let owners = g.owners.entry(lock_id).or_default();
    if write {
        owners.writer = Some(tid);
    } else {
        owners.readers.push(tid);
    }
}

/// Removes the calling thread from `lock_id`'s holder set.
pub fn released(lock_id: u64, write: bool) {
    let tid = dense_tid();
    let mut g = graph().lock().unwrap();
    if let Some(owners) = g.owners.get_mut(&lock_id) {
        if write {
            if owners.writer == Some(tid) {
                owners.writer = None;
            }
        } else if let Some(pos) = owners.readers.iter().rposition(|&t| t == tid) {
            owners.readers.remove(pos);
        }
        if owners.is_empty() {
            g.owners.remove(&lock_id);
        }
    }
}

/// Depth-first cycle check from the calling thread: does following
/// *waits-on → held-by → waits-on → …* lead back here? Run by a blocker
/// each time a watched wait slice expires; a positive answer is stable
/// (every edge on the cycle is a thread that cannot proceed), so acting
/// on it — returning `DeadlockDetected` — is sound.
pub fn deadlocked() -> bool {
    let me = dense_tid();
    let g = graph().lock().unwrap();
    let Some(&start_lock) = g.waits.get(&me) else {
        return false;
    };
    // Iterative DFS over threads reachable from the lock we wait on.
    let mut stack: Vec<u64> = Vec::new();
    let mut visited: Vec<u64> = Vec::new();
    if let Some(owners) = g.owners.get(&start_lock) {
        owners.for_each(|t| stack.push(t));
    }
    while let Some(t) = stack.pop() {
        if t == me {
            return true;
        }
        if visited.contains(&t) {
            continue;
        }
        visited.push(t);
        if let Some(&l) = g.waits.get(&t) {
            if let Some(owners) = g.owners.get(&l) {
                owners.for_each(|n| stack.push(n));
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_edges_no_deadlock() {
        assert!(!deadlocked());
        begin_wait(0xfffe);
        assert!(!deadlocked(), "waiting on an unheld lock is not a cycle");
        end_wait();
    }

    #[test]
    fn self_edge_via_two_threads() {
        // Build an ABBA cycle by hand: this thread owns A and waits on B;
        // a helper owns B and waits on A.
        const A: u64 = 0xa11a;
        const B: u64 = 0xb22b;
        acquired(A, true);
        let helper = std::thread::spawn(|| {
            acquired(B, true);
            begin_wait(A);
        });
        helper.join().unwrap();
        begin_wait(B);
        assert!(deadlocked(), "ABBA cycle must be found");
        end_wait();
        released(A, true);
        // The helper thread's edges are torn down manually (it exited).
        let mut g = graph().lock().unwrap();
        g.waits.retain(|_, &mut l| l != A);
        g.owners.remove(&B);
    }

    #[test]
    fn reader_owners_block_writers_into_cycles() {
        const C: u64 = 0xc33c;
        const D: u64 = 0xd44d;
        acquired(C, false); // we hold C for reading
        let helper = std::thread::spawn(|| {
            acquired(D, true);
            begin_wait(C); // helper's writer blocked by our read hold
        });
        helper.join().unwrap();
        begin_wait(D);
        assert!(deadlocked(), "cycle through a reader hold must be found");
        end_wait();
        released(C, false);
        let mut g = graph().lock().unwrap();
        g.waits.retain(|_, &mut l| l != C);
        g.owners.remove(&D);
    }
}
