//! Hardening layer for the OLL reader-writer locks: panic-safe
//! poisoning, online deadlock detection, and a starvation watchdog with
//! graceful degradation.
//!
//! The paper's C-SNZI/queue algorithms assume every acquirer eventually
//! releases. In a long-running service three things break that
//! assumption: a holder *panics* mid-critical-section, two locks are
//! acquired in *inconsistent order*, and a biased lock's revocation
//! *stalls* behind a reader convoy. This crate gives each lock a
//! [`Hazard`] handle that reacts to all three while the process can
//! still do something about it:
//!
//! * **Panic-safe poisoning** — the RAII guards in `oll-core` already
//!   route an unwinding release through the normal undo machinery
//!   (C-SNZI departs, four-state node hand-off, turnstile excision,
//!   bias-slot erase), so a panicking holder never strands waiters. With
//!   a [`PoisonPolicy::Poison`] policy installed, an unwinding *write*
//!   guard additionally marks the lock poisoned; later acquirers using
//!   the checked API see the flag and can [`Hazard::clear_poison`] after
//!   restoring invariants.
//! * **Online deadlock detection** — watched blockers publish wait-for
//!   edges into a process-global [`graph`] (dense thread ids mirroring
//!   the `oll-trace` scheme); a cycle check on the deadline/park path
//!   turns a hang into `AcquireError::DeadlockDetected`.
//! * **Starvation watchdog** — a watched writer that outwaits the
//!   configured stall threshold escalates: telemetry event → trace
//!   anomaly → *graceful degradation* (reader bias disabled, forcing
//!   fair hand-off through the underlying lock) until progress resumes.
//!
//! # Zero cost when disabled
//!
//! Without this crate's `enabled` feature (exposed downstream as
//! `hazard`) [`Hazard`] is zero-sized and every method is an empty
//! `#[inline]` function — the same facade pattern as `oll-telemetry`
//! and `oll-trace`, pinned by `tests/hazard_off.rs`.

#![warn(missing_docs)]

#[cfg(feature = "enabled")]
pub mod graph;

use oll_telemetry::Telemetry;

#[cfg(feature = "enabled")]
use oll_telemetry::LockEvent;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What an unwinding write guard does to the lock it releases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoisonPolicy {
    /// Pre-hazard behavior (the default): the unwinding release still
    /// runs — no waiter is ever stranded — but no poison mark is left.
    #[default]
    Ignore,
    /// Mark the lock poisoned when a write guard drops during a panic;
    /// checked acquisitions then surface the mark until
    /// [`Hazard::clear_poison`].
    Poison,
}

/// Default wait-slice length for watched acquisitions: how often a
/// watched blocker wakes to run the deadlock/watchdog checks.
pub const DEFAULT_WATCH_INTERVAL: Duration = Duration::from_millis(2);

/// Default writer stall threshold before the watchdog starts escalating.
pub const DEFAULT_STALL_THRESHOLD: Duration = Duration::from_millis(100);

#[cfg(feature = "enabled")]
#[derive(Debug)]
struct HazardInner {
    /// Process-unique nonzero id naming this lock in the wait-for graph
    /// (also the causality token hazard trace records carry).
    lock_id: u64,
    policy: AtomicU8,
    poisoned: AtomicBool,
    /// Wait-for edge publication + cycle checks on watched paths.
    detect: AtomicBool,
    watch_interval_ns: AtomicU64,
    stall_threshold_ns: AtomicU64,
    /// Watchdog escalation: 0 = quiet, 1 = telemetry, 2 = trace
    /// anomaly, 3 = degraded (bias disabled).
    stall_level: AtomicU8,
    degraded: AtomicBool,
    /// The lock's telemetry handle, attached at construction so hazard
    /// events land in the same per-lock counters (slow-path only).
    telemetry: Mutex<Telemetry>,
}

#[cfg(feature = "enabled")]
fn next_lock_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Handle to one lock's hazard state, embedded in the lock itself.
///
/// With the `enabled` feature off this is a zero-sized type and every
/// method is an empty inline function. With it on, the handle is either
/// *active* (created by [`Hazard::new`], holding shared state) or
/// *inactive* ([`Hazard::disabled`], recording nothing) — locks built
/// outside the workspace constructors pay only a null check.
#[derive(Debug, Clone, Default)]
pub struct Hazard {
    #[cfg(feature = "enabled")]
    inner: Option<Arc<HazardInner>>,
}

impl Hazard {
    /// Whether hazard support is compiled in at all.
    pub const fn enabled() -> bool {
        cfg!(feature = "enabled")
    }

    /// An inactive handle that tracks nothing (the [`Default`]).
    pub const fn disabled() -> Self {
        Self {
            #[cfg(feature = "enabled")]
            inner: None,
        }
    }

    /// A `'static` inactive handle, for trait default methods.
    pub fn disabled_ref() -> &'static Hazard {
        static DISABLED: Hazard = Hazard::disabled();
        &DISABLED
    }

    /// Creates an active per-lock hazard handle (policy
    /// [`PoisonPolicy::Ignore`], detection off — everything is opt-in).
    /// Compiles to [`Hazard::disabled`] when the feature is off.
    pub fn new() -> Self {
        #[cfg(feature = "enabled")]
        {
            Self {
                inner: Some(Arc::new(HazardInner {
                    lock_id: next_lock_id(),
                    policy: AtomicU8::new(0),
                    poisoned: AtomicBool::new(false),
                    detect: AtomicBool::new(false),
                    watch_interval_ns: AtomicU64::new(DEFAULT_WATCH_INTERVAL.as_nanos() as u64),
                    stall_threshold_ns: AtomicU64::new(DEFAULT_STALL_THRESHOLD.as_nanos() as u64),
                    stall_level: AtomicU8::new(0),
                    degraded: AtomicBool::new(false),
                    telemetry: Mutex::new(Telemetry::disabled()),
                })),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            Self {}
        }
    }

    /// Whether this handle actually tracks (feature on *and* active).
    #[inline]
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    /// This lock's wait-for-graph id (0 when inactive).
    pub fn lock_id(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.inner.as_ref().map_or(0, |i| i.lock_id)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Routes hazard events (poison, deadlock, watchdog) into the
    /// lock's telemetry counters. Idempotent; constructors call it.
    pub fn attach_telemetry(&self, telemetry: &Telemetry) {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            *i.telemetry.lock().unwrap() = telemetry.clone();
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = telemetry;
        }
    }

    #[cfg(feature = "enabled")]
    fn tel(inner: &HazardInner) -> Telemetry {
        inner.telemetry.lock().unwrap().clone()
    }

    /// Installs the per-lock poison policy.
    pub fn set_poison_policy(&self, policy: PoisonPolicy) {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            i.policy.store(policy as u8, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = policy;
        }
    }

    /// The installed poison policy ([`PoisonPolicy::Ignore`] when
    /// inactive).
    pub fn poison_policy(&self) -> PoisonPolicy {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            return if i.policy.load(Ordering::Relaxed) == PoisonPolicy::Poison as u8 {
                PoisonPolicy::Poison
            } else {
                PoisonPolicy::Ignore
            };
        }
        PoisonPolicy::Ignore
    }

    /// Whether a write holder has panicked since the last
    /// [`Hazard::clear_poison`] (always `false` when inactive).
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.inner
                .as_ref()
                .is_some_and(|i| i.poisoned.load(Ordering::Acquire))
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    /// Marks the lock poisoned (regardless of policy) and counts a
    /// `poisoned` telemetry event.
    pub fn poison(&self) {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            if !i.poisoned.swap(true, Ordering::AcqRel) {
                Self::tel(i).incr(LockEvent::Poisoned);
            }
        }
    }

    /// Clears the poison mark after the caller has restored whatever
    /// invariant the panicking writer may have broken.
    pub fn clear_poison(&self) {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            if i.poisoned.swap(false, Ordering::AcqRel) {
                Self::tel(i).incr(LockEvent::PoisonCleared);
            }
        }
    }

    /// Guard-drop hook, called by the RAII guards in `oll-core`
    /// *before* the release itself runs: applies the poison policy when
    /// the drop is part of a panic unwind, notes watchdog progress, and
    /// withdraws this thread from the lock's ownership record.
    #[inline]
    pub fn on_guard_drop(&self, write: bool) {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            if write
                && std::thread::panicking()
                && i.policy.load(Ordering::Relaxed) == PoisonPolicy::Poison as u8
            {
                self.poison();
            }
            self.note_progress(write);
            if i.detect.load(Ordering::Relaxed) {
                graph::released(i.lock_id, write);
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = write;
        }
    }

    /// Acquisition hook, called by the RAII guard constructors in
    /// `oll-core`: records this thread in the lock's ownership record
    /// (only while deadlock detection is on) and notes progress.
    #[inline]
    pub fn on_guard_acquire(&self, write: bool) {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            self.note_progress(write);
            if i.detect.load(Ordering::Relaxed) {
                graph::acquired(i.lock_id, write);
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = write;
        }
    }

    /// Turns wait-for-edge publication and cycle checks on or off for
    /// this lock's watched acquisitions.
    pub fn detect_deadlocks(&self, on: bool) {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            i.detect.store(on, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = on;
        }
    }

    /// Whether deadlock detection is on (diagnostics/tests).
    pub fn detects_deadlocks(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.inner
                .as_ref()
                .is_some_and(|i| i.detect.load(Ordering::Relaxed))
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    /// The wait-slice length watched acquisitions chop their deadline
    /// into, or `None` when this handle is inactive (callers then skip
    /// slicing entirely and issue one plain deadline wait).
    pub fn watch_interval(&self) -> Option<Duration> {
        #[cfg(feature = "enabled")]
        {
            self.inner
                .as_ref()
                .map(|i| Duration::from_nanos(i.watch_interval_ns.load(Ordering::Relaxed)))
        }
        #[cfg(not(feature = "enabled"))]
        {
            None
        }
    }

    /// Sets the watched-acquisition wait slice (floored at 100µs so a
    /// misconfigured interval cannot busy-spin the checks).
    pub fn set_watch_interval(&self, interval: Duration) {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            let ns = (interval.as_nanos() as u64).max(100_000);
            i.watch_interval_ns.store(ns, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = interval;
        }
    }

    /// Sets the writer stall threshold the watchdog escalates at.
    pub fn set_stall_threshold(&self, threshold: Duration) {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            let ns = (threshold.as_nanos() as u64).max(1);
            i.stall_threshold_ns.store(ns, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = threshold;
        }
    }

    /// Publishes this thread's wait-for edge onto the lock (no-op
    /// unless active and detecting).
    #[inline]
    pub fn begin_wait(&self) {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            if i.detect.load(Ordering::Relaxed) {
                graph::begin_wait(i.lock_id);
            }
        }
    }

    /// Withdraws this thread's wait-for edge (wait abandoned).
    #[inline]
    pub fn cancel_wait(&self) {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            if i.detect.load(Ordering::Relaxed) {
                graph::end_wait();
            }
        }
    }

    /// Runs the cycle check from the calling (blocked) thread. `true`
    /// means the published wait-for edges form a cycle through this
    /// thread — waiting longer cannot succeed. Counts a
    /// `deadlock_detected` telemetry event on a positive answer.
    pub fn deadlock_check(&self) -> bool {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            if i.detect.load(Ordering::Relaxed) && graph::deadlocked() {
                Self::tel(i).incr(LockEvent::DeadlockDetected);
                return true;
            }
        }
        false
    }

    /// Watchdog input: a watched writer has been waiting `stalled` so
    /// far. Escalates through the ladder — `≥ 1×` threshold counts a
    /// `watchdog_stall` telemetry event, `≥ 2×` counts another (the
    /// trace anomaly pass picks repeated stalls up), `≥ 3×` degrades
    /// the lock: [`Hazard::bias_allowed`] turns `false`, which the
    /// BRAVO layer reads as *disable the reader bias and fall back to
    /// fair hand-off* until progress resumes.
    pub fn note_writer_stall(&self, stalled: Duration) {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            let threshold = i.stall_threshold_ns.load(Ordering::Relaxed).max(1);
            let stalled_ns = stalled.as_nanos() as u64;
            let target = (stalled_ns / threshold).min(3) as u8;
            let mut level = i.stall_level.load(Ordering::Relaxed);
            while level < target {
                match i.stall_level.compare_exchange(
                    level,
                    level + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        level += 1;
                        match level {
                            1 | 2 => Self::tel(i).incr(LockEvent::WatchdogStall),
                            _ => {
                                i.degraded.store(true, Ordering::Relaxed);
                                Self::tel(i).incr(LockEvent::BiasDegraded);
                            }
                        }
                    }
                    Err(now) => level = now,
                }
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = stalled;
        }
    }

    /// Progress note: an acquisition or release completed. Resets the
    /// watchdog ladder; a write completing also lifts degradation.
    #[inline]
    pub fn note_progress(&self, write: bool) {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            if i.stall_level.load(Ordering::Relaxed) != 0 {
                i.stall_level.store(0, Ordering::Relaxed);
            }
            // Checked independently of the stall level: a reader's
            // progress may have reset the level already, but only a
            // *write* getting through proves the degradation did its
            // job and the bias can come back.
            if write && i.degraded.load(Ordering::Relaxed) {
                i.degraded.store(false, Ordering::Relaxed);
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = write;
        }
    }

    /// Whether the reader bias may be used/re-armed. `false` only while
    /// the watchdog has degraded the lock (always `true` when inactive
    /// — an absent hazard layer never constrains the bias).
    #[inline]
    pub fn bias_allowed(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            !self
                .inner
                .as_ref()
                .is_some_and(|i| i.degraded.load(Ordering::Relaxed))
        }
        #[cfg(not(feature = "enabled"))]
        {
            true
        }
    }

    /// Current watchdog escalation level, 0–3 (diagnostics/tests).
    pub fn stall_level(&self) -> u8 {
        #[cfg(feature = "enabled")]
        {
            self.inner
                .as_ref()
                .map_or(0, |i| i.stall_level.load(Ordering::Relaxed))
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_silent() {
        let h = Hazard::disabled();
        assert!(!h.is_active());
        assert_eq!(h.lock_id(), 0);
        assert!(!h.is_poisoned());
        h.poison();
        assert!(!h.is_poisoned(), "inactive handles cannot be poisoned");
        h.clear_poison();
        h.on_guard_drop(true);
        h.on_guard_acquire(false);
        assert!(!h.deadlock_check());
        assert!(h.bias_allowed());
        assert_eq!(h.stall_level(), 0);
        assert_eq!(h.poison_policy(), PoisonPolicy::Ignore);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_type_is_zero_sized() {
        assert_eq!(std::mem::size_of::<Hazard>(), 0);
        assert!(!Hazard::enabled());
        assert!(!Hazard::new().is_active());
        assert!(Hazard::new().watch_interval().is_none());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn poison_round_trip_follows_policy() {
        let h = Hazard::new();
        assert!(h.is_active());
        assert!(h.lock_id() > 0);
        // Default policy ignores panicking drops.
        h.on_guard_drop(true);
        assert!(!h.is_poisoned());
        // Direct poisoning works regardless of policy.
        h.poison();
        assert!(h.is_poisoned());
        h.clear_poison();
        assert!(!h.is_poisoned());
        h.set_poison_policy(PoisonPolicy::Poison);
        assert_eq!(h.poison_policy(), PoisonPolicy::Poison);
        // Not panicking, so the drop hook still leaves it clean.
        h.on_guard_drop(true);
        assert!(!h.is_poisoned());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn watchdog_ladder_escalates_and_resets() {
        let h = Hazard::new();
        h.set_stall_threshold(Duration::from_millis(10));
        h.note_writer_stall(Duration::from_millis(5));
        assert_eq!(h.stall_level(), 0);
        h.note_writer_stall(Duration::from_millis(12));
        assert_eq!(h.stall_level(), 1);
        assert!(h.bias_allowed());
        h.note_writer_stall(Duration::from_millis(25));
        assert_eq!(h.stall_level(), 2);
        assert!(h.bias_allowed());
        h.note_writer_stall(Duration::from_millis(35));
        assert_eq!(h.stall_level(), 3);
        assert!(!h.bias_allowed(), "level 3 degrades the bias");
        // A further stall note cannot go past 3.
        h.note_writer_stall(Duration::from_secs(1));
        assert_eq!(h.stall_level(), 3);
        // Write progress lifts the degradation.
        h.note_progress(true);
        assert_eq!(h.stall_level(), 0);
        assert!(h.bias_allowed());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn watch_interval_is_floored() {
        let h = Hazard::new();
        h.set_watch_interval(Duration::from_nanos(1));
        assert_eq!(h.watch_interval(), Some(Duration::from_micros(100)));
        h.set_watch_interval(Duration::from_millis(7));
        assert_eq!(h.watch_interval(), Some(Duration::from_millis(7)));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn detection_gates_graph_traffic() {
        let h = Hazard::new();
        assert!(!h.detects_deadlocks());
        h.begin_wait(); // no-op: detection off
        assert!(!h.deadlock_check());
        h.detect_deadlocks(true);
        assert!(h.detects_deadlocks());
        h.begin_wait();
        assert!(!h.deadlock_check(), "sole waiter cannot deadlock");
        h.cancel_wait();
    }
}
