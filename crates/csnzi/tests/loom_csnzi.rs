//! Loom model checks for the C-SNZI.
//!
//! Run with:
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p oll-csnzi --test loom_csnzi --release
//! ```
//!
//! Each model is deliberately tiny (2–3 threads, flat trees) so loom can
//! exhaust the interleaving space; together they cover the linearizability
//! corners §2.2 calls out: the arrive/close race, the last-departure
//! hand-off, and parent-arrival cleanup (`arrivedAtParent && x != 0`).

#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use oll_csnzi::{ArrivalPolicy, CSnzi, TreeShape};

/// Two tree arrivals + departures at the same leaf: the surplus must be
/// visible at the root whenever any thread is "inside", and must be exactly
/// zero at the end (checks the duplicate-parent-arrival cleanup path).
#[test]
fn loom_two_tree_arrivals_same_leaf() {
    loom::model(|| {
        let c = Arc::new(CSnzi::new(TreeShape::flat(1)));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                let t = c.arrive_tree(0);
                assert!(t.arrived());
                assert!(c.query().nonzero);
                assert!(c.depart(t));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let w = c.root_snapshot();
        assert_eq!(w.surplus(), 0);
        assert!(w.open);
    });
}

/// Tree arrival at one leaf racing a direct arrival: both must succeed and
/// both counters drain to zero.
#[test]
fn loom_tree_vs_direct_arrival() {
    loom::model(|| {
        let c = Arc::new(CSnzi::new(TreeShape::flat(2)));
        let c2 = Arc::clone(&c);
        let t1 = thread::spawn(move || {
            let t = c2.arrive_tree(0);
            assert!(t.arrived());
            assert!(c2.depart(t));
        });
        let t = c.arrive_direct();
        assert!(t.arrived());
        assert!(c.depart(t));
        t1.join().unwrap();
        assert_eq!(c.root_snapshot().surplus(), 0);
    });
}

/// The reader/writer handshake: a closer racing an arriver. Exactly one of
/// three outcomes is allowed, and in each the final hand-off is signaled to
/// exactly one party (this is the FOLL WriterLock/ReaderUnlock protocol in
/// miniature).
#[test]
fn loom_close_vs_arrive_handoff() {
    loom::model(|| {
        let c = Arc::new(CSnzi::new(TreeShape::flat(1)));
        let c2 = Arc::clone(&c);

        // Reader: try to arrive; if successful, depart and note whether we
        // were told to hand off.
        let reader = thread::spawn(move || {
            let t = c2.arrive_tree(0);
            if t.arrived() {
                Some(!c2.depart(t)) // true = we must signal the writer
            } else {
                None // arrival failed: writer owns the object
            }
        });

        // Writer: close; `true` means closed empty (writer-acquired without
        // waiting), `false` means a reader was inside and the last departer
        // hands off.
        let closed_empty = c.close();

        let reader_result = reader.join().unwrap();
        let w = c.root_snapshot();
        assert!(!w.open, "writer closed it");
        assert_eq!(w.surplus(), 0, "reader departed (or never arrived)");

        match reader_result {
            None => {
                // Reader failed to arrive ⇒ writer must have closed empty.
                assert!(closed_empty);
            }
            Some(handoff) => {
                // Reader arrived. Exactly one party learns it owns/hands off:
                // if the close saw the surplus, the reader's last departure
                // reports the hand-off; if the close happened after the
                // departure, it closed empty.
                assert_eq!(closed_empty, !handoff);
            }
        }
    });
}

/// Policy-driven arrivals from two threads: whatever path each takes
/// (direct or tree), the surplus drains to zero and the object ends open.
#[test]
fn loom_policy_arrivals_drain() {
    loom::model(|| {
        let c = Arc::new(CSnzi::new(TreeShape::flat(2)));
        let mut handles = Vec::new();
        for tid in 0..2 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                let mut p = ArrivalPolicy::new(1);
                let t = c.arrive(&mut p, tid);
                assert!(t.arrived());
                assert!(c.query().nonzero);
                assert!(c.depart(t));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let w = c.root_snapshot();
        assert_eq!((w.direct, w.tree, w.open), (0, 0, true));
    });
}

/// Trade-to-direct racing another reader's departure: the surplus is never
/// lost and sole-reader detection is never falsely positive while the other
/// reader is still inside.
#[test]
fn loom_trade_to_direct_race() {
    loom::model(|| {
        let c = Arc::new(CSnzi::new(TreeShape::flat(1)));
        let t_mine = c.arrive_tree(0);
        assert!(t_mine.arrived());

        let c2 = Arc::clone(&c);
        let other = thread::spawn(move || {
            let t = c2.arrive_tree(0);
            assert!(t.arrived(), "object stays open in this model");
            assert!(c2.depart(t));
        });

        let t_mine = c.trade_to_direct(t_mine);
        assert!(t_mine.is_root());
        assert!(c.query().nonzero, "our arrival is still outstanding");
        other.join().unwrap();
        assert!(c.is_sole_direct());
        assert!(c.depart(t_mine));
        assert_eq!(c.root_snapshot().surplus(), 0);
    });
}

/// The GOLL hand-off primitive: a writer (holding closed-empty) performs
/// `OpenWithArrivals` for two readers, who then depart with root tickets
/// concurrently; exactly one of them observes the final hand-off when the
/// object was re-closed.
#[test]
fn loom_open_with_arrivals_handoff() {
    loom::model(|| {
        let c = Arc::new(CSnzi::new(TreeShape::flat(2)));
        assert!(c.close()); // writer acquires (closed empty)

        // Hand over to two readers with a writer still "queued"
        // (close = true).
        c.open_with_arrivals(2, true);

        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || c2.depart(oll_csnzi::Ticket::ROOT));
        let mine = c.depart(oll_csnzi::Ticket::ROOT);
        let theirs = t.join().unwrap();

        // Exactly one departure is the last from the closed C-SNZI.
        assert_eq!(
            [mine, theirs].iter().filter(|ok| !**ok).count(),
            1,
            "exactly one reader hands the lock to the waiting writer"
        );
        let w = c.root_snapshot();
        assert_eq!(w.surplus(), 0);
        assert!(!w.open);
    });
}

/// CloseIfEmpty (writer fast path) racing a reader arrival: if the close
/// wins the reader fails and the object is write-acquired; if the arrival
/// wins the close fails and the object stays read-held.
#[test]
fn loom_close_if_empty_vs_arrive() {
    loom::model(|| {
        let c = Arc::new(CSnzi::new(TreeShape::flat(1)));
        let c2 = Arc::clone(&c);
        let reader = thread::spawn(move || {
            let t = c2.arrive_tree(0);
            if t.arrived() {
                assert!(c2.depart(t), "object open: no hand-off duty");
                true
            } else {
                false
            }
        });
        let closed = c.close_if_empty();
        let read_won = reader.join().unwrap();
        if closed {
            // Writer acquired; the reader may have squeezed its whole
            // arrive/depart in before the close, or failed after it.
            let w = c.root_snapshot();
            assert!(!w.open);
            assert_eq!(w.surplus(), 0);
        } else {
            // Close failed: the reader must have been (or still be) the
            // reason; by join time it departed, leaving the object open.
            assert!(read_won);
            assert!(c.root_snapshot().open);
        }
    });
}
