//! Property tests: the tree-based C-SNZI implementation must agree with
//! the sequential specification (Figure 1 of the paper) on *every*
//! operation's return value, for arbitrary operation sequences and tree
//! shapes, when driven single-threaded.

// Gated: run with `cargo test --features proptest`.
#![cfg(feature = "proptest")]

use oll_csnzi::{ArrivalPolicy, CSnzi, SpecCsnzi, Ticket, TreeShape};
use proptest::prelude::*;

/// The operations a test sequence may perform. Arrivals carry a leaf hint
/// and a flavor (direct / tree / policy-driven); departures pick one of the
/// currently outstanding tickets.
#[derive(Debug, Clone)]
enum Op {
    ArrivePolicy { hint: usize },
    ArriveDirect,
    ArriveTree { hint: usize },
    Depart { pick: usize },
    Query,
    Close,
    CloseIfEmpty,
    Open,
    OpenWithArrivals { cnt: u8, close: bool },
    TradeToDirect { pick: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64).prop_map(|hint| Op::ArrivePolicy { hint }),
        Just(Op::ArriveDirect),
        (0usize..64).prop_map(|hint| Op::ArriveTree { hint }),
        (0usize..16).prop_map(|pick| Op::Depart { pick }),
        Just(Op::Query),
        Just(Op::Close),
        Just(Op::CloseIfEmpty),
        Just(Op::Open),
        (0u8..5, any::<bool>()).prop_map(|(cnt, close)| Op::OpenWithArrivals { cnt, close }),
        (0usize..16).prop_map(|pick| Op::TradeToDirect { pick }),
    ]
}

fn shape_strategy() -> impl Strategy<Value = TreeShape> {
    prop_oneof![
        Just(TreeShape::ROOT_ONLY),
        (1usize..9).prop_map(TreeShape::flat),
        Just(TreeShape {
            fanout: 2,
            depth: 2
        }),
        Just(TreeShape {
            fanout: 3,
            depth: 2
        }),
        Just(TreeShape {
            fanout: 2,
            depth: 3
        }),
    ]
}

fn run_sequence_with(real: CSnzi, ops: Vec<Op>) {
    let mut spec = SpecCsnzi::new();
    debug_assert!(real.query().open);
    let mut policy = ArrivalPolicy::default();
    // Outstanding tickets; the spec side just counts them.
    let mut tickets: Vec<Ticket> = Vec::new();

    for (step, op) in ops.into_iter().enumerate() {
        match op {
            Op::ArrivePolicy { hint } => {
                let t = real.arrive(&mut policy, hint);
                let expected = spec.arrive();
                assert_eq!(t.arrived(), expected, "step {step}: arrive mismatch");
                if expected {
                    // keep spec/real surplus aligned
                    tickets.push(t);
                } else {
                    spec_unchanged(&spec, &real);
                }
            }
            Op::ArriveDirect => {
                let t = real.arrive_direct();
                let expected = spec.arrive();
                assert_eq!(t.arrived(), expected, "step {step}: direct arrive mismatch");
                if expected {
                    tickets.push(t);
                }
            }
            Op::ArriveTree { hint } => {
                let t = real.arrive_tree(hint);
                let expected = spec.arrive();
                assert_eq!(t.arrived(), expected, "step {step}: tree arrive mismatch");
                if expected {
                    tickets.push(t);
                }
            }
            Op::Depart { pick } => {
                if tickets.is_empty() {
                    continue; // Depart requires a surplus (spec precondition)
                }
                let t = tickets.swap_remove(pick % tickets.len());
                let got = real.depart(t);
                let expected = spec.depart();
                assert_eq!(got, expected, "step {step}: depart mismatch");
            }
            Op::Query => {
                let q = real.query();
                let (nonzero, open) = spec.query();
                assert_eq!(
                    (q.nonzero, q.open),
                    (nonzero, open),
                    "step {step}: query mismatch"
                );
            }
            Op::Close => {
                assert_eq!(real.close(), spec.close(), "step {step}: close mismatch");
            }
            Op::CloseIfEmpty => {
                assert_eq!(
                    real.close_if_empty(),
                    spec.close_if_empty(),
                    "step {step}: close_if_empty mismatch"
                );
            }
            Op::Open => {
                let (nonzero, open) = spec.query();
                if open || nonzero {
                    continue; // precondition: CLOSED with zero surplus
                }
                real.open();
                spec.open();
            }
            Op::OpenWithArrivals { cnt, close } => {
                let (nonzero, open) = spec.query();
                if open || nonzero {
                    continue;
                }
                real.open_with_arrivals(cnt as u64, close);
                spec.open_with_arrivals(cnt as u64, close);
                for _ in 0..cnt {
                    tickets.push(Ticket::ROOT);
                }
            }
            Op::TradeToDirect { pick } => {
                if tickets.is_empty() {
                    continue;
                }
                let i = pick % tickets.len();
                let t = real.trade_to_direct(tickets[i]);
                assert!(t.is_root(), "step {step}: trade must yield root ticket");
                tickets[i] = t;
                // No spec-visible change: surplus and state are untouched.
            }
        }
        // Global invariant after every step: query agrees with spec.
        let q = real.query();
        let (nonzero, open) = spec.query();
        assert_eq!(
            (q.nonzero, q.open),
            (nonzero, open),
            "step {step}: invariant"
        );
        // The root word is an *indicator*, not a counter: arrivals at an
        // already-nonzero leaf do not propagate, so only the zero/nonzero
        // property is specified.
        assert_eq!(
            real.root_snapshot().surplus() > 0,
            spec.surplus() > 0,
            "step {step}: root surplus must be nonzero iff spec surplus is"
        );
    }
}

fn spec_unchanged(spec: &SpecCsnzi, real: &CSnzi) {
    let q = real.query();
    assert_eq!((q.nonzero, q.open), spec.query());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn tree_implementation_matches_spec(
        shape in shape_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        run_sequence_with(CSnzi::new(shape), ops);
    }

    /// Same sequences against the §2.2 lazy-tree construction: deferred
    /// node allocation must be semantically invisible.
    #[test]
    fn lazy_tree_matches_spec(
        shape in shape_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        run_sequence_with(CSnzi::new_lazy(shape), ops);
    }

    /// Heavier weighting on arrivals/departures to exercise deep propagation.
    #[test]
    fn heavy_arrival_sequences_match_spec(
        shape in shape_strategy(),
        hints in proptest::collection::vec(0usize..64, 1..100),
    ) {
        let mut ops = Vec::new();
        for (i, h) in hints.iter().enumerate() {
            ops.push(Op::ArriveTree { hint: *h });
            if i % 3 == 2 {
                ops.push(Op::Depart { pick: *h });
            }
            if i % 11 == 10 {
                ops.push(Op::Close);
                ops.push(Op::Depart { pick: 0 });
                ops.push(Op::Depart { pick: 1 });
            }
            if i % 13 == 12 {
                ops.push(Op::Open);
                ops.push(Op::OpenWithArrivals { cnt: 3, close: false });
            }
        }
        run_sequence_with(CSnzi::new(shape), ops);
    }
}
