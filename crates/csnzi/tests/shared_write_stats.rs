//! The mechanism behind Figure 5, made countable (requires
//! `--features stats`): under the tree policy, N arrivals and departures
//! at an already-nonzero leaf perform **zero** additional root-word
//! writes, while a centralized counter (or the direct policy) pays two
//! shared writes per acquisition. This is the property that lets the OLL
//! locks scale under read contention regardless of machine size.
//!
//! ```sh
//! cargo test -p oll-csnzi --features stats --test shared_write_stats
//! ```

#![cfg(feature = "stats")]

use oll_csnzi::{CSnzi, TreeShape};

#[test]
fn direct_policy_pays_two_root_writes_per_acquisition() {
    let c = CSnzi::new(TreeShape::flat(4));
    c.stats().reset();
    const N: u64 = 1_000;
    for _ in 0..N {
        let t = c.arrive_direct();
        c.depart(t);
    }
    let s = c.stats().snapshot();
    assert_eq!(s.root_writes, 2 * N, "arrive + depart each CAS the root");
    assert_eq!(s.node_writes, 0);
}

#[test]
fn tree_policy_keeps_root_quiet_while_surplus_is_nonzero() {
    let c = CSnzi::new(TreeShape::flat(4));
    // Pin the surplus above zero so inner arrivals never cross zero.
    let hold = c.arrive_tree(0);
    c.stats().reset();

    const N: u64 = 1_000;
    for _ in 0..N {
        let t = c.arrive_tree(0);
        c.depart(t);
    }
    let s = c.stats().snapshot();
    assert_eq!(
        s.root_writes, 0,
        "no root traffic while the leaf surplus stays nonzero"
    );
    assert_eq!(s.node_writes, 2 * N, "all writes land on the leaf line");

    c.depart(hold);
    let s = c.stats().snapshot();
    assert_eq!(s.root_writes, 1, "only the final 1->0 crossing propagates");
}

#[test]
fn distinct_leaves_distribute_writes() {
    let c = CSnzi::new(TreeShape::flat(4));
    // One holder per leaf keeps every leaf nonzero.
    let holders: Vec<_> = (0..4).map(|i| c.arrive_tree(i)).collect();
    c.stats().reset();

    const N: u64 = 500;
    for round in 0..N {
        for leaf in 0..4 {
            let t = c.arrive_tree(leaf);
            c.depart(t);
        }
        let _ = round;
    }
    let s = c.stats().snapshot();
    assert_eq!(s.root_writes, 0);
    assert_eq!(s.node_writes, 2 * N * 4);

    for h in holders {
        c.depart(h);
    }
}

#[test]
fn root_writes_scale_with_zero_crossings_not_acquisitions() {
    // Alternating empty<->nonzero: every acquisition crosses zero, so the
    // tree cannot help — root writes match the centralized cost. The win
    // exists exactly when readers overlap (the paper's read contention).
    let c = CSnzi::new(TreeShape::flat(2));
    c.stats().reset();
    const N: u64 = 300;
    for _ in 0..N {
        let t = c.arrive_tree(0);
        c.depart(t);
    }
    let s = c.stats().snapshot();
    assert_eq!(s.root_writes, 2 * N, "every op crosses zero: no savings");
}

#[test]
fn concurrent_readers_produce_sublinear_root_traffic() {
    use std::sync::Arc;

    const THREADS: usize = 4;
    const PER: u64 = 2_000;
    let c = Arc::new(CSnzi::new(TreeShape::flat(THREADS)));
    // One base holder per leaf keeps every leaf's surplus nonzero,
    // modeling the steady state of a read-heavy lock where readers
    // overlap (§5's read contention). Without overlap each op crosses
    // zero and must propagate — see the zero-crossings test above.
    let holders: Vec<_> = (0..THREADS).map(|i| c.arrive_tree(i)).collect();
    c.stats().reset();

    let mut handles = Vec::new();
    for tid in 0..THREADS {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || {
            for _ in 0..PER {
                let t = c.arrive_tree(tid);
                assert!(t.arrived());
                c.depart(t);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = c.stats().snapshot();
    let total_ops = THREADS as u64 * PER;
    assert_eq!(
        s.root_writes, 0,
        "no root traffic: every leaf surplus stays nonzero throughout"
    );
    assert!(s.node_writes >= 2 * total_ops);
    for h in holders {
        c.depart(h);
    }
}
