//! The closable scalable nonzero indicator (Figure 2 of the paper).

use crate::node::{Parent, SnziNode, TreeShape};
use crate::policy::ArrivalPolicy;
use crate::root::RootWord;
use oll_telemetry::{LockEvent, Telemetry};
use oll_util::knobs::TuningKnobs;
use oll_util::sync::{AtomicU64, Ordering};
use oll_util::CachePadded;

/// Result of [`CSnzi::query`]: Figure 1's `(surplus > 0, state = OPEN)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// Whether there is a surplus of arrivals (readers hold the lock).
    pub nonzero: bool,
    /// Whether the C-SNZI is open (no writer owns or has claimed it).
    pub open: bool,
}

/// Result of [`CSnzi::cancel`]: what the abandoning arriver owes the lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The arrival was undone; the canceller holds nothing.
    Undone,
    /// The cancel zeroed a closed C-SNZI: the canceller was the last
    /// surplus-holder and now owns the lock — it must perform the owning
    /// lock's reader-release hand-off before returning.
    MustHandOff,
}

/// Where an arrival landed; required to depart.
///
/// The paper encapsulates the "node we arrived at" pointer in an opaque
/// ticket "not \[to\] be dereferenced or manipulated outside the C-SNZI
/// code". We use an index with two sentinels instead of a pointer.
///
/// Tickets are `Copy` for the same reason the paper passes them by value;
/// the usage contract (one `depart` per successful `arrive`) is the
/// caller's responsibility, exactly as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket(u32);

const TICKET_FAILED: u32 = u32::MAX;
const TICKET_ROOT: u32 = u32::MAX - 1;

impl Ticket {
    /// The ticket returned by a failed arrival (`Ticket(null)`).
    pub const FAILED: Self = Self(TICKET_FAILED);

    /// A ticket that departs directly from the root — Figure 2's
    /// `DirectTicket`. Used by GOLL readers whose arrival was performed on
    /// their behalf by a releasing writer (`OpenWithArrivals`).
    pub const ROOT: Self = Self(TICKET_ROOT);

    fn node(idx: usize) -> Self {
        debug_assert!(idx < TICKET_ROOT as usize);
        Self(idx as u32)
    }

    /// Figure 2's `Arrived`: whether the arrival succeeded.
    #[inline]
    pub fn arrived(self) -> bool {
        self.0 != TICKET_FAILED
    }

    /// Whether this ticket departs directly at the root.
    #[inline]
    pub fn is_root(self) -> bool {
        self.0 == TICKET_ROOT
    }
}

/// A handle-owned cursor remembering the last C-SNZI leaf this thread
/// arrived at successfully.
///
/// The paper's `GetLeafForThread` re-hashes a thread identity on every
/// arrival; the cursor instead starts from a topology-derived leaf
/// (threads sharing a core or package start on the same or neighbouring
/// leaves — see [`oll_util::topology`]) and then *stays put*, migrating
/// to the next leaf only when a leaf-level CAS actually fails. A stable
/// leaf means a stable cache line in the common case.
#[derive(Debug, Clone, Default)]
pub struct LeafCursor {
    ordinal: usize,
    placed: bool,
}

impl LeafCursor {
    /// A cursor that picks its initial leaf from the machine topology on
    /// first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cursor pinned to an explicit identity hint (the legacy
    /// `hint % leaf_count` placement of Figure 2's `GetLeafForThread`);
    /// used by [`CSnzi::arrive`] and the ablation benches.
    pub fn pinned(hint: usize) -> Self {
        Self {
            ordinal: hint,
            placed: true,
        }
    }

    /// Current leaf ordinal in `0..leaf_count`, choosing the topology
    /// placement on first use.
    fn ordinal(&mut self, leaf_count: usize) -> usize {
        if !self.placed {
            self.ordinal = oll_util::topology::preferred_leaf(
                oll_util::topology::dense_thread_id(),
                leaf_count,
            );
            self.placed = true;
        }
        self.ordinal % leaf_count
    }

    fn migrate(&mut self, leaf_count: usize) {
        self.ordinal = (self.ordinal % leaf_count + 1) % leaf_count;
    }

    fn commit(&mut self, ordinal: usize) {
        self.ordinal = ordinal;
    }
}

/// A closable scalable nonzero indicator.
///
/// Supports the full interface of Figures 1–2 plus the §2.1 variations and
/// the §3.2.1 dual-counter extensions. Readers of an OLL lock `arrive` and
/// `depart`; writers `close` and `open`.
///
/// The surplus lives at a CAS-able [`RootWord`] plus a tree of counter
/// nodes; a subtree's root has nonzero surplus iff some node in the subtree
/// does, so `query` needs only the root word while concurrent arrivals and
/// departures at distinct leaves touch distinct cache lines.
#[derive(Debug)]
pub struct CSnzi {
    root: CachePadded<AtomicU64>,
    nodes: NodeStorage,
    shape: TreeShape,
    /// Owning lock's telemetry, if any (see [`CSnzi::attach_telemetry`]).
    /// Zero-sized and inert without the `telemetry` feature.
    telemetry: Telemetry,
    /// Owning lock's shared tuning knobs, if any (see
    /// [`CSnzi::attach_knobs`]); unattached objects use the documented
    /// defaults, so static builds behave exactly as before knobs existed.
    knobs: Option<std::sync::Arc<TuningKnobs>>,
    #[cfg(feature = "stats")]
    stats: crate::stats::CsnziStats,
}

/// Tree-node storage: eager (allocated at construction) or lazy
/// (allocated on the first tree arrival). §2.2: "we can avoid allocating
/// the tree (other than the root node) until it is needed, thus incurring
/// the associated space overhead only for those SNZI objects that are
/// heavily contended." FOLL/ROLL allocate one C-SNZI per pooled reader
/// node, so lazy trees keep the per-lock footprint proportional to the
/// contention actually observed.
#[derive(Debug)]
enum NodeStorage {
    Eager(Box<[CachePadded<SnziNode>]>),
    // loom cannot model std::sync::OnceLock, and the lazy path is an
    // allocation-time optimization with no new synchronization to check,
    // so loom builds are always eager.
    #[cfg(not(loom))]
    Lazy(std::sync::OnceLock<Box<[CachePadded<SnziNode>]>>),
    // Contention-driven: allocated lazily *and* routed dynamically — the
    // tree receives arrivals only while inflated, and a sustained quiet
    // spell deflates routing back to the root (BRAVO/Fissile-style
    // adaptation). Loom builds fall back to Eager.
    #[cfg(not(loom))]
    Adaptive(AdaptiveTree),
}

/// State of an adaptive tree beyond the shared node array.
#[cfg(not(loom))]
#[derive(Debug)]
struct AdaptiveTree {
    nodes: std::sync::OnceLock<Box<[CachePadded<SnziNode>]>>,
    /// Routing flag: arrivals may use the tree. Once allocated the node
    /// array is never freed — deflation only clears this flag — so
    /// outstanding tree tickets stay departable with no reclamation
    /// protocol.
    active: std::sync::atomic::AtomicBool,
    /// Consecutive successful direct root arrivals that observed zero
    /// tree surplus while inflated; reaching [`CSnzi::DEFLATE_AFTER`]
    /// deflates.
    quiet: std::sync::atomic::AtomicU32,
}

impl NodeStorage {
    fn get(&self, shape: TreeShape) -> &[CachePadded<SnziNode>] {
        match self {
            NodeStorage::Eager(nodes) => nodes,
            #[cfg(not(loom))]
            NodeStorage::Lazy(cell) => cell.get_or_init(|| shape.alloc_nodes()),
            #[cfg(not(loom))]
            NodeStorage::Adaptive(a) => a.nodes.get_or_init(|| shape.alloc_nodes()),
        }
    }

    fn is_allocated(&self) -> bool {
        match self {
            NodeStorage::Eager(_) => true,
            #[cfg(not(loom))]
            NodeStorage::Lazy(cell) => cell.get().is_some(),
            #[cfg(not(loom))]
            NodeStorage::Adaptive(a) => a.nodes.get().is_some(),
        }
    }
}

impl Default for CSnzi {
    fn default() -> Self {
        Self::new(TreeShape::ROOT_ONLY)
    }
}

impl CSnzi {
    /// Creates an open, empty C-SNZI with the given tree shape.
    pub fn new(shape: TreeShape) -> Self {
        Self {
            root: CachePadded::new(AtomicU64::new(RootWord::OPEN_EMPTY.pack())),
            nodes: NodeStorage::Eager(shape.alloc_nodes()),
            shape,
            telemetry: Telemetry::disabled(),
            knobs: None,
            #[cfg(feature = "stats")]
            stats: crate::stats::CsnziStats::default(),
        }
    }

    /// Creates an open, empty C-SNZI whose tree is allocated only when
    /// the first arrival actually lands on it (§2.2's space optimization).
    /// Until then the object costs one cache line, like a plain counter.
    ///
    /// Under loom (`--cfg loom`) this falls back to eager allocation.
    pub fn new_lazy(shape: TreeShape) -> Self {
        Self {
            root: CachePadded::new(AtomicU64::new(RootWord::OPEN_EMPTY.pack())),
            #[cfg(not(loom))]
            nodes: NodeStorage::Lazy(std::sync::OnceLock::new()),
            #[cfg(loom)]
            nodes: NodeStorage::Eager(shape.alloc_nodes()),
            shape,
            telemetry: Telemetry::disabled(),
            knobs: None,
            #[cfg(feature = "stats")]
            stats: crate::stats::CsnziStats::default(),
        }
    }

    /// Like [`new_lazy`](Self::new_lazy), but starting closed — the
    /// pooled FOLL/ROLL reader-node configuration, where the per-node
    /// trees only materialize on locks that actually see read contention.
    pub fn new_closed_lazy(shape: TreeShape) -> Self {
        Self {
            root: CachePadded::new(AtomicU64::new(RootWord::CLOSED_EMPTY.pack())),
            #[cfg(not(loom))]
            nodes: NodeStorage::Lazy(std::sync::OnceLock::new()),
            #[cfg(loom)]
            nodes: NodeStorage::Eager(shape.alloc_nodes()),
            shape,
            telemetry: Telemetry::disabled(),
            knobs: None,
            #[cfg(feature = "stats")]
            stats: crate::stats::CsnziStats::default(),
        }
    }

    /// Creates an open, empty, *adaptive* C-SNZI: it starts root-only
    /// (one cache line, no tree allocation) and inflates to a tree shaped
    /// for `min(detected CPUs, max_leaves)` threads when its arrival
    /// policy reports contention — a root-CAS failure streak or observed
    /// tree surplus. After [`DEFLATE_AFTER`](Self::DEFLATE_AFTER)
    /// consecutive uncontended direct arrivals it deflates: routing
    /// returns to the root while the allocation (if any) is kept for the
    /// next inflation.
    ///
    /// Under loom (`--cfg loom`) this falls back to an eager tree of the
    /// same shape.
    pub fn new_adaptive(max_leaves: usize) -> Self {
        Self::adaptive_with_state(max_leaves, RootWord::OPEN_EMPTY)
    }

    /// Like [`new_adaptive`](Self::new_adaptive), but starting closed —
    /// the pooled FOLL/ROLL reader-node configuration.
    pub fn new_closed_adaptive(max_leaves: usize) -> Self {
        Self::adaptive_with_state(max_leaves, RootWord::CLOSED_EMPTY)
    }

    fn adaptive_with_state(max_leaves: usize, word: RootWord) -> Self {
        let cpus = oll_util::topology::Topology::get().cpus();
        let shape = TreeShape::for_threads(cpus.min(max_leaves.max(1)));
        Self {
            root: CachePadded::new(AtomicU64::new(word.pack())),
            #[cfg(not(loom))]
            nodes: NodeStorage::Adaptive(AdaptiveTree {
                nodes: std::sync::OnceLock::new(),
                active: std::sync::atomic::AtomicBool::new(false),
                quiet: std::sync::atomic::AtomicU32::new(0),
            }),
            #[cfg(loom)]
            nodes: NodeStorage::Eager(shape.alloc_nodes()),
            shape,
            telemetry: Telemetry::disabled(),
            knobs: None,
            #[cfg(feature = "stats")]
            stats: crate::stats::CsnziStats::default(),
        }
    }

    /// Whether the tree's node array has been allocated yet (always true
    /// for eagerly constructed objects).
    pub fn is_tree_allocated(&self) -> bool {
        self.nodes.is_allocated()
    }

    /// Whether this C-SNZI adapts its tree routing at runtime.
    pub fn is_adaptive(&self) -> bool {
        #[cfg(not(loom))]
        {
            matches!(self.nodes, NodeStorage::Adaptive(_))
        }
        #[cfg(loom)]
        {
            false
        }
    }

    /// Whether arrivals may currently be routed to the tree: always true
    /// for a static tree with `depth > 0`, and tracks the inflation state
    /// of an adaptive object.
    pub fn is_inflated(&self) -> bool {
        match &self.nodes {
            NodeStorage::Eager(_) => self.shape.depth > 0,
            #[cfg(not(loom))]
            NodeStorage::Lazy(_) => self.shape.depth > 0,
            #[cfg(not(loom))]
            NodeStorage::Adaptive(a) => a.active.load(Ordering::Acquire),
        }
    }

    /// Creates a closed, empty C-SNZI (FOLL reader nodes start this way:
    /// "when just allocated, has a closed C-SNZI with no surplus", §4.2).
    pub fn new_closed(shape: TreeShape) -> Self {
        Self {
            root: CachePadded::new(AtomicU64::new(RootWord::CLOSED_EMPTY.pack())),
            nodes: NodeStorage::Eager(shape.alloc_nodes()),
            shape,
            telemetry: Telemetry::disabled(),
            knobs: None,
            #[cfg(feature = "stats")]
            stats: crate::stats::CsnziStats::default(),
        }
    }

    /// Shared-write counters (cargo feature `stats`).
    #[cfg(feature = "stats")]
    pub fn stats(&self) -> &crate::stats::CsnziStats {
        &self.stats
    }

    /// Routes this object's shared-write counts into an owning lock's
    /// telemetry handle (as `csnzi_root_write` / `csnzi_node_write` /
    /// `csnzi_root_cas_fail` events) in addition to the `stats` feature's
    /// own counters. Locks attach at construction, before sharing.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Routes this object's tunable thresholds (today: the deflation
    /// quiet-run length) through an owning lock's shared
    /// [`TuningKnobs`], so a static builder and an online controller
    /// steer the same value. Locks attach at construction, before
    /// sharing; unattached objects use
    /// [`DEFLATE_AFTER`](Self::DEFLATE_AFTER).
    pub fn attach_knobs(&mut self, knobs: std::sync::Arc<TuningKnobs>) {
        self.knobs = Some(knobs);
    }

    /// The live deflation quiet-run threshold: the attached knob block's
    /// value, or the documented default when none is attached.
    #[inline]
    fn deflate_after(&self) -> u32 {
        self.knobs
            .as_ref()
            .map_or(Self::DEFLATE_AFTER, |k| k.deflate_after())
    }

    #[inline]
    fn note_root_write(&self) {
        self.telemetry.incr(LockEvent::CsnziRootWrite);
        #[cfg(feature = "stats")]
        self.stats.record_root_write();
    }

    #[inline]
    fn note_root_cas_failure(&self) {
        self.telemetry.incr(LockEvent::CsnziRootCasFail);
        #[cfg(feature = "stats")]
        self.stats.record_root_cas_failure();
    }

    #[inline]
    fn note_node_write(&self) {
        self.telemetry.incr(LockEvent::CsnziNodeWrite);
        #[cfg(feature = "stats")]
        self.stats.record_node_write();
    }

    /// The tree shape this C-SNZI was built with.
    pub fn shape(&self) -> TreeShape {
        self.shape
    }

    #[inline]
    fn load_root(&self) -> RootWord {
        RootWord::unpack(self.root.load(Ordering::Acquire))
    }

    #[inline]
    fn cas_root(&self, old: RootWord, new: RootWord) -> bool {
        let ok = self
            .root
            .compare_exchange(old.pack(), new.pack(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if ok {
            self.note_root_write();
        } else {
            self.note_root_cas_failure();
        }
        ok
    }

    /// Default number of consecutive direct root arrivals that must
    /// observe zero tree surplus before an inflated adaptive C-SNZI
    /// deflates. Hysteresis: one quiet arrival is noise, sixty-four in a
    /// row is a regime change. The *live* value is read from the
    /// attached [`TuningKnobs`] (see [`attach_knobs`](Self::attach_knobs))
    /// when a lock wires one up, so an online controller can lengthen or
    /// shorten the quiet run without rebuilding the lock.
    pub const DEFLATE_AFTER: u32 = oll_util::knobs::DEFAULT_DEFLATE_AFTER;

    /// Max cached-leaf migrations per arrival; past this the cursor stops
    /// chasing quiet cache lines and rides out the CAS loop where it is.
    const MAX_MIGRATIONS_PER_ARRIVAL: u32 = 2;

    /// `Arrive` (Figure 2): if open, increments the surplus — directly at
    /// the root or at this thread's leaf, per `policy` — and returns a
    /// ticket for the node arrived at. If closed, changes nothing and
    /// returns [`Ticket::FAILED`].
    ///
    /// `leaf_hint` identifies the calling thread (`GetLeafForThread`);
    /// lock handles pass their slot index so distinct threads default to
    /// distinct leaves. Handles that keep per-object state should prefer
    /// [`arrive_cached`](Self::arrive_cached), which replaces the
    /// per-arrival re-hash with a remembered leaf.
    pub fn arrive(&self, policy: &mut ArrivalPolicy, leaf_hint: usize) -> Ticket {
        self.arrive_cached(policy, &mut LeafCursor::pinned(leaf_hint))
    }

    /// [`arrive`](Self::arrive) with a handle-owned [`LeafCursor`]: the
    /// tree path starts at the cursor's cached leaf (topology-placed on
    /// first use) and migrates to a neighbouring leaf only when a
    /// leaf-level CAS fails. On an adaptive object this is also where
    /// inflation and deflation are decided.
    pub fn arrive_cached(&self, policy: &mut ArrivalPolicy, cursor: &mut LeafCursor) -> Ticket {
        loop {
            let old = self.load_root();
            if !old.open {
                return Ticket::FAILED;
            }
            if self.shape.depth > 0 && policy.should_arrive_at_tree(old) && self.tree_route() {
                return self.tree_arrive_cursor(cursor);
            }
            if self.cas_root(old, old.with_direct_arrival()) {
                policy.record_success();
                self.note_direct_success(old);
                return Ticket::ROOT;
            }
            policy.record_failure();
        }
    }

    /// Whether the tree path is open for this arrival, inflating an
    /// adaptive object on the way: by the time the policy asks for the
    /// tree it has accumulated the contention evidence (a failure streak
    /// or observed tree surplus) that justifies building one.
    #[inline]
    fn tree_route(&self) -> bool {
        #[cfg(not(loom))]
        if let Some(a) = self.adaptive() {
            if !a.active.load(Ordering::Acquire) {
                self.inflate(a);
            }
            // Tree in use: push the deflation epoch back out.
            a.quiet.store(0, Ordering::Relaxed);
        }
        true
    }

    #[cfg(not(loom))]
    #[inline]
    fn adaptive(&self) -> Option<&AdaptiveTree> {
        match &self.nodes {
            NodeStorage::Adaptive(a) => Some(a),
            _ => None,
        }
    }

    /// Allocates (once) and activates an adaptive object's tree.
    #[cfg(not(loom))]
    fn inflate(&self, a: &AdaptiveTree) {
        // Sync point for the first-inflation race tests: fault plans can
        // perturb schedules right before the tree is published.
        oll_util::fault::inject("csnzi.inflate");
        a.nodes.get_or_init(|| self.shape.alloc_nodes());
        if !a.active.swap(true, Ordering::AcqRel) {
            self.telemetry.incr(LockEvent::CsnziInflate);
        }
        a.quiet.store(0, Ordering::Relaxed);
    }

    /// Deflation bookkeeping after a successful direct root arrival: a
    /// run of [`DEFLATE_AFTER`](Self::DEFLATE_AFTER) direct arrivals that
    /// all saw zero tree surplus deflates an inflated adaptive object.
    /// Any observed tree surplus resets the run — deflation never races
    /// outstanding tree tickets, because leaf surplus propagates to the
    /// root's tree counter until the last tree holder departs.
    #[inline]
    fn note_direct_success(&self, old: RootWord) {
        #[cfg(not(loom))]
        if let Some(a) = self.adaptive() {
            if a.active.load(Ordering::Relaxed) {
                if old.tree == 0 {
                    let quiet = a.quiet.fetch_add(1, Ordering::Relaxed) + 1;
                    if quiet >= self.deflate_after() {
                        // Sync point for deflation racing a late tree
                        // arrival: fault plans can widen the window
                        // between the quiet-run decision and the swap.
                        // Yield-only: the caller's direct arrival has
                        // already landed, so an unwind here would leak
                        // a surplus no one could depart.
                        oll_util::fault::inject_yield_only("csnzi.deflate");
                        if a.active.swap(false, Ordering::AcqRel) {
                            a.quiet.store(0, Ordering::Relaxed);
                            self.telemetry.incr(LockEvent::CsnziDeflate);
                        }
                    }
                } else {
                    a.quiet.store(0, Ordering::Relaxed);
                }
            }
        }
        #[cfg(loom)]
        let _ = old;
    }

    /// The tree-path arrival for [`arrive_cached`](Self::arrive_cached):
    /// [`tree_arrive`](Self::tree_arrive) specialised to the entry leaf,
    /// with cursor migration on leaf-level CAS failure.
    fn tree_arrive_cursor(&self, cursor: &mut LeafCursor) -> Ticket {
        let leaf_count = self.shape.leaf_count();
        let mut migrations = 0;
        let mut idx = self.shape.first_leaf() + cursor.ordinal(leaf_count);
        let mut parent = self.shape.parent_of(idx);
        let mut arrived_at_parent = false;
        loop {
            let node = self.node(idx);
            let x = node.cnt.load(Ordering::Acquire);
            if x == 0 && !arrived_at_parent {
                if self.parent_arrive(parent) {
                    arrived_at_parent = true;
                    continue;
                }
                return Ticket::FAILED;
            }
            if node
                .cnt
                .compare_exchange(x, x + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.note_node_write();
                if arrived_at_parent && x != 0 {
                    self.parent_depart(parent);
                }
                cursor.commit(idx - self.shape.first_leaf());
                return Ticket::node(idx);
            }
            // The cached leaf's line is hot: migrate to the next leaf —
            // but only while holding no parent pre-arrival, since undoing
            // one here could zero a closed C-SNZI and silently make this
            // thread the lock owner.
            if !arrived_at_parent && migrations < Self::MAX_MIGRATIONS_PER_ARRIVAL {
                migrations += 1;
                cursor.migrate(leaf_count);
                idx = self.shape.first_leaf() + cursor.ordinal(leaf_count);
                parent = self.shape.parent_of(idx);
                self.telemetry.incr(LockEvent::CsnziLeafMigrate);
            }
        }
    }

    /// Arrives directly at the root regardless of policy (still fails if
    /// closed). Exposed for ablation benchmarks.
    pub fn arrive_direct(&self) -> Ticket {
        let mut p = ArrivalPolicy::always_direct();
        self.arrive(&mut p, 0)
    }

    /// Arrives at this thread's leaf regardless of policy (still fails if
    /// the C-SNZI is closed). Exposed for ablation benchmarks.
    pub fn arrive_tree(&self, leaf_hint: usize) -> Ticket {
        if self.shape.depth == 0 {
            return self.arrive_direct();
        }
        // Check openness first, as the top of Arrive does; the tree path
        // linearizes at this check when the leaf already has surplus.
        if !self.load_root().open {
            return Ticket::FAILED;
        }
        let leaf = self.shape.leaf_for(leaf_hint);
        if self.tree_arrive(leaf) {
            Ticket::node(leaf)
        } else {
            Ticket::FAILED
        }
    }

    /// `Depart` (Figure 2): decrements the surplus; returns `false` iff the
    /// resulting state is CLOSED with zero surplus (i.e. the caller is the
    /// last departer and must hand the lock to the waiting writer).
    ///
    /// `ticket` must come from a successful arrival (or `Ticket::ROOT` for
    /// a pre-arranged direct arrival), departed exactly once.
    pub fn depart(&self, ticket: Ticket) -> bool {
        debug_assert!(ticket.arrived(), "cannot depart with a failed ticket");
        if ticket.is_root() {
            self.root_direct_depart()
        } else {
            self.tree_depart(ticket.0 as usize)
        }
    }

    /// Cancels a pending arrival: a reader that arrived but now abandons
    /// the acquisition (timeout, cancellation) calls this instead of
    /// `depart` to make the undo semantics explicit at the call site.
    ///
    /// Cancellation *is* departure — the C-SNZI has no separate undo
    /// operation; an arrival that will never be used is indistinguishable
    /// from one whose critical section already ended. The distinction that
    /// matters is the outcome: [`CancelOutcome::MustHandOff`] means this
    /// cancel zeroed a *closed* C-SNZI, so the canceller now owns the lock
    /// exactly as a departing last reader would, and must run the owning
    /// lock's release protocol (it cannot simply walk away).
    #[must_use = "MustHandOff obligates the caller to release the lock"]
    pub fn cancel(&self, ticket: Ticket) -> CancelOutcome {
        if self.depart(ticket) {
            CancelOutcome::Undone
        } else {
            CancelOutcome::MustHandOff
        }
    }

    /// `Query` (Figure 2): one root load.
    #[inline]
    pub fn query(&self) -> Query {
        let w = self.load_root();
        Query {
            nonzero: w.surplus() > 0,
            open: w.open,
        }
    }

    /// `Open` (Figure 2): requires state CLOSED and surplus zero.
    ///
    /// The caller owns the C-SNZI in this state (it is the write-lock
    /// holder), so a plain store suffices, exactly as in the paper.
    pub fn open(&self) {
        debug_assert!({
            let w = self.load_root();
            !w.open && w.surplus() == 0
        });
        self.root
            .store(RootWord::OPEN_EMPTY.pack(), Ordering::Release);
        self.note_root_write();
    }

    /// `OpenWithArrivals` (§2.1, Figure 2): atomically opens, performs
    /// `cnt` arrivals *at the root*, and optionally closes again. Requires
    /// state CLOSED and surplus zero. The beneficiaries depart with
    /// [`Ticket::ROOT`].
    pub fn open_with_arrivals(&self, cnt: u64, close: bool) {
        debug_assert!({
            let w = self.load_root();
            !w.open && w.surplus() == 0
        });
        let w = RootWord {
            direct: cnt,
            tree: 0,
            open: !close,
        };
        self.root.store(w.pack(), Ordering::Release);
        self.note_root_write();
    }

    /// `Close` (Figure 2): closes an open C-SNZI (no-op if already closed);
    /// returns `true` iff the state changed OPEN→CLOSED *and* the surplus
    /// is zero — i.e. the closer has write-acquired an uncontended object.
    pub fn close(&self) -> bool {
        loop {
            let old = self.load_root();
            if !old.open {
                return false;
            }
            let new = old.closed();
            if self.cas_root(old, new) {
                return new.surplus() == 0;
            }
        }
    }

    /// `CloseIfEmpty` (§2.1, Figure 2): closes only if open with zero
    /// surplus; returns whether it closed. This is the writer fast path of
    /// the GOLL lock.
    pub fn close_if_empty(&self) -> bool {
        loop {
            let old = self.load_root();
            if old != RootWord::OPEN_EMPTY {
                return false;
            }
            if self.cas_root(old, RootWord::CLOSED_EMPTY) {
                return true;
            }
        }
    }

    // ------------------------------------------------------------------
    // §3.2.1 dual-counter extensions (write-upgrade support)
    // ------------------------------------------------------------------

    /// Trades a tree arrival for a direct arrival at the root: arrives
    /// directly at the root, then departs from the original node (§3.2.1).
    /// Returns the new (root) ticket.
    ///
    /// Requires that the caller holds a successful arrival (`ticket`), so
    /// the surplus is nonzero throughout; the trade therefore succeeds even
    /// if the C-SNZI has been closed in the meantime.
    pub fn trade_to_direct(&self, ticket: Ticket) -> Ticket {
        debug_assert!(ticket.arrived());
        if ticket.is_root() {
            return ticket;
        }
        // Unconditional direct arrival: legal because our existing arrival
        // keeps the surplus nonzero, so this never creates surplus on a
        // closed-and-empty C-SNZI.
        loop {
            let old = self.load_root();
            debug_assert!(old.surplus() > 0);
            if self.cas_root(old, old.with_direct_arrival()) {
                break;
            }
        }
        let still_held = self.tree_depart(ticket.0 as usize);
        debug_assert!(still_held, "surplus kept nonzero by the direct arrival");
        Ticket::ROOT
    }

    /// Whether the *only* surplus is a single direct arrival — after
    /// [`trade_to_direct`](Self::trade_to_direct), this is exactly the
    /// paper's "the thread is the only one holding \[the\] lock" test.
    pub fn is_sole_direct(&self) -> bool {
        let w = self.load_root();
        w.direct == 1 && w.tree == 0
    }

    /// Attempts to atomically convert a sole direct arrival on an *open*
    /// C-SNZI into the closed-empty (write-acquired) state. Returns `true`
    /// on success; on failure nothing changes and the caller still holds
    /// its arrival.
    ///
    /// This is the commit point of the GOLL write-upgrade: the reader's own
    /// surplus is consumed and the object ends closed with zero surplus.
    pub fn try_upgrade_sole_direct(&self) -> bool {
        let old = RootWord {
            direct: 1,
            tree: 0,
            open: true,
        };
        // Retry while the word still matches: a concurrent reader that
        // arrived and already departed again may fail the CAS spuriously
        // without invalidating our sole-reader status.
        loop {
            let w = self.load_root();
            if w != old {
                return false;
            }
            if self.cas_root(old, RootWord::CLOSED_EMPTY) {
                return true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Tree operations (Figure 2's TreeArrive / TreeDepart)
    // ------------------------------------------------------------------

    fn node(&self, idx: usize) -> &SnziNode {
        &self.nodes.get(self.shape)[idx]
    }

    fn parent_arrive(&self, parent: Parent) -> bool {
        match parent {
            Parent::Root => self.root_tree_arrive(),
            Parent::Node(p) => self.tree_arrive(p),
        }
    }

    fn parent_depart(&self, parent: Parent) -> bool {
        match parent {
            Parent::Root => self.root_tree_depart(),
            Parent::Node(p) => self.tree_depart(p),
        }
    }

    /// `TreeArrive(node)`: increments this node's surplus, first arriving
    /// at the parent if the surplus here might go 0→1. Crucially (and this
    /// is what makes the closable extension work — §2.2), the node is *not*
    /// modified before the parent arrival, so a failed parent arrival needs
    /// no cleanup.
    fn tree_arrive(&self, idx: usize) -> bool {
        let parent = self.shape.parent_of(idx);
        let node = self.node(idx);
        let mut arrived_at_parent = false;
        loop {
            let x = node.cnt.load(Ordering::Acquire);
            if x == 0 && !arrived_at_parent {
                if self.parent_arrive(parent) {
                    arrived_at_parent = true;
                } else {
                    return false;
                }
                continue;
            }
            if node
                .cnt
                .compare_exchange(x, x + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.note_node_write();
                // We pre-arrived at the parent but someone else created the
                // surplus here first; undo the extra parent arrival.
                if arrived_at_parent && x != 0 {
                    self.parent_depart(parent);
                }
                return true;
            }
        }
    }

    /// `TreeDepart(node)`: decrements this node's surplus, propagating to
    /// the parent when the surplus here drops to zero. Returns `false` iff
    /// the C-SNZI as a whole became CLOSED with zero surplus.
    fn tree_depart(&self, idx: usize) -> bool {
        let parent = self.shape.parent_of(idx);
        let node = self.node(idx);
        loop {
            let x = node.cnt.load(Ordering::Acquire);
            debug_assert!(x > 0, "tree depart with no surplus at node {idx}");
            if node
                .cnt
                .compare_exchange(x, x - 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.note_node_write();
                return if x == 1 {
                    self.parent_depart(parent)
                } else {
                    true
                };
            }
        }
    }

    /// `TreeArrive` base case at the root: fails only when the C-SNZI is
    /// closed with zero surplus (a tree arrival may legitimately land while
    /// the C-SNZI is closed but still held by readers; it linearizes at the
    /// openness check its leaf-arriving thread performed earlier — §2.2).
    fn root_tree_arrive(&self) -> bool {
        loop {
            let old = self.load_root();
            if old.surplus() == 0 && !old.open {
                return false;
            }
            if self.cas_root(old, old.with_tree_arrival()) {
                return true;
            }
        }
    }

    /// `TreeDepart` base case at the root.
    // The `!(surplus == 0 && closed)` form mirrors Figure 1/2 verbatim.
    #[allow(clippy::nonminimal_bool)]
    fn root_tree_depart(&self) -> bool {
        loop {
            let old = self.load_root();
            let new = old.with_tree_departure();
            if self.cas_root(old, new) {
                return !(new.surplus() == 0 && !new.open);
            }
        }
    }

    /// Departure of a direct (root) arrival.
    #[allow(clippy::nonminimal_bool)]
    fn root_direct_depart(&self) -> bool {
        loop {
            let old = self.load_root();
            let new = old.with_direct_departure();
            if self.cas_root(old, new) {
                return !(new.surplus() == 0 && !new.open);
            }
        }
    }

    /// Test/diagnostic accessor: the decoded root word (racy snapshot).
    pub fn root_snapshot(&self) -> RootWord {
        self.load_root()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn shapes() -> Vec<TreeShape> {
        vec![
            TreeShape::ROOT_ONLY,
            TreeShape::flat(1),
            TreeShape::flat(4),
            TreeShape {
                fanout: 2,
                depth: 2,
            },
            TreeShape {
                fanout: 2,
                depth: 3,
            },
        ]
    }

    fn tree_policy() -> ArrivalPolicy {
        ArrivalPolicy::always_tree()
    }

    #[test]
    fn starts_open_and_empty() {
        for shape in shapes() {
            let c = CSnzi::new(shape);
            assert_eq!(
                c.query(),
                Query {
                    nonzero: false,
                    open: true
                }
            );
        }
    }

    #[test]
    fn new_closed_starts_closed() {
        let c = CSnzi::new_closed(TreeShape::flat(2));
        assert_eq!(
            c.query(),
            Query {
                nonzero: false,
                open: false
            }
        );
        assert!(!c.arrive(&mut tree_policy(), 0).arrived());
    }

    #[test]
    fn direct_arrive_depart_round_trip() {
        for shape in shapes() {
            let c = CSnzi::new(shape);
            let t = c.arrive_direct();
            assert!(t.arrived());
            assert!(t.is_root());
            assert!(c.query().nonzero);
            assert!(c.depart(t)); // open ⇒ true
            assert!(!c.query().nonzero);
        }
    }

    #[test]
    fn tree_arrive_depart_round_trip_all_leaves() {
        for shape in shapes().into_iter().filter(|s| s.depth > 0) {
            let c = CSnzi::new(shape);
            for hint in 0..shape.leaf_count() * 2 {
                let t = c.arrive_tree(hint);
                assert!(t.arrived());
                assert!(!t.is_root());
                assert!(c.query().nonzero, "shape {shape:?} hint {hint}");
                assert!(c.depart(t));
                assert!(!c.query().nonzero);
            }
        }
    }

    #[test]
    fn surplus_at_root_iff_surplus_anywhere() {
        let shape = TreeShape {
            fanout: 2,
            depth: 2,
        };
        let c = CSnzi::new(shape);
        let mut tickets = Vec::new();
        // Arrive at every leaf and directly, in a mix.
        for hint in 0..shape.leaf_count() {
            tickets.push(c.arrive_tree(hint));
        }
        tickets.push(c.arrive_direct());
        assert!(c.query().nonzero);
        // Depart in reverse order; root must stay nonzero until the end.
        while let Some(t) = tickets.pop() {
            assert!(c.query().nonzero);
            assert!(c.depart(t));
        }
        assert!(!c.query().nonzero);
    }

    #[test]
    fn close_blocks_arrivals_everywhere() {
        for shape in shapes() {
            let c = CSnzi::new(shape);
            assert!(c.close());
            assert!(!c.arrive_direct().arrived());
            if shape.depth > 0 {
                assert!(!c.arrive_tree(0).arrived());
            }
            assert!(!c.close(), "closing twice must fail");
        }
    }

    #[test]
    fn close_with_tree_surplus_returns_false() {
        let c = CSnzi::new(TreeShape::flat(2));
        let t = c.arrive_tree(0);
        assert!(!c.close());
        assert_eq!(
            c.query(),
            Query {
                nonzero: true,
                open: false
            }
        );
        // Last departure from a closed C-SNZI reports false.
        assert!(!c.depart(t));
        assert_eq!(
            c.query(),
            Query {
                nonzero: false,
                open: false
            }
        );
        c.open();
        assert!(c.query().open);
    }

    #[test]
    fn arrivals_fail_after_close_even_with_leaf_surplus() {
        // Every *new* arrival re-checks openness first (the §2.2 "closed
        // but leaf nonzero" window only exists for a thread that passed
        // the openness check before the close; such an arrival linearizes
        // at that earlier check). Arrivals starting after the close must
        // fail at every node.
        let c = CSnzi::new(TreeShape::flat(1));
        let t1 = c.arrive_tree(0);
        assert!(!c.close());
        // Public arrive re-checks openness and must fail.
        assert!(!c.arrive(&mut tree_policy(), 0).arrived());
        assert!(!c.arrive_tree(0).arrived());
        assert!(!c.depart(t1));
    }

    #[test]
    fn close_if_empty_fast_path() {
        let c = CSnzi::new(TreeShape::flat(2));
        assert!(c.close_if_empty());
        assert!(!c.close_if_empty());
        c.open();
        let t = c.arrive_direct();
        assert!(!c.close_if_empty());
        assert!(c.query().open);
        assert!(c.depart(t));
    }

    #[test]
    fn open_with_arrivals_and_root_tickets() {
        let c = CSnzi::new(TreeShape::flat(2));
        assert!(c.close());
        c.open_with_arrivals(3, false);
        assert_eq!(
            c.query(),
            Query {
                nonzero: true,
                open: true
            }
        );
        assert!(c.depart(Ticket::ROOT));
        assert!(c.depart(Ticket::ROOT));
        assert!(c.depart(Ticket::ROOT));
        assert!(!c.query().nonzero);
        assert!(c.query().open);
    }

    #[test]
    fn open_with_arrivals_closed_variant() {
        let c = CSnzi::new(TreeShape::flat(2));
        assert!(c.close());
        c.open_with_arrivals(2, true);
        assert_eq!(
            c.query(),
            Query {
                nonzero: true,
                open: false
            }
        );
        assert!(c.depart(Ticket::ROOT));
        assert!(!c.depart(Ticket::ROOT)); // last departer must hand off
    }

    #[test]
    fn policy_migrates_to_tree_after_failures() {
        let c = CSnzi::new(TreeShape::flat(4));
        let mut p = ArrivalPolicy::new(0); // tree immediately
        let t = c.arrive(&mut p, 3);
        assert!(t.arrived());
        assert!(!t.is_root());
        // A default-policy arrival now sees tree surplus and follows it.
        let mut p2 = ArrivalPolicy::default();
        let t2 = c.arrive(&mut p2, 1);
        assert!(!t2.is_root());
        assert!(c.depart(t2));
        assert!(c.depart(t));
    }

    #[test]
    fn trade_to_direct_preserves_surplus() {
        let c = CSnzi::new(TreeShape::flat(2));
        let t = c.arrive_tree(1);
        assert!(!t.is_root());
        let t = c.trade_to_direct(t);
        assert!(t.is_root());
        let w = c.root_snapshot();
        assert_eq!((w.direct, w.tree), (1, 0));
        assert!(c.is_sole_direct());
        assert!(c.depart(t));
        assert!(!c.query().nonzero);
    }

    #[test]
    fn trade_is_idempotent_for_root_tickets() {
        let c = CSnzi::new(TreeShape::ROOT_ONLY);
        let t = c.arrive_direct();
        assert_eq!(c.trade_to_direct(t), t);
        c.depart(t);
    }

    #[test]
    fn sole_direct_detects_other_readers() {
        let c = CSnzi::new(TreeShape::flat(2));
        let t1 = c.arrive_direct();
        assert!(c.is_sole_direct());
        let t2 = c.arrive_tree(0);
        assert!(!c.is_sole_direct());
        c.depart(t2);
        assert!(c.is_sole_direct());
        c.depart(t1);
    }

    #[test]
    fn upgrade_sole_direct() {
        let c = CSnzi::new(TreeShape::flat(2));
        let t = c.arrive_tree(0);
        let _t = c.trade_to_direct(t);
        assert!(c.try_upgrade_sole_direct());
        // Now closed and empty: a write-acquired lock.
        assert_eq!(
            c.query(),
            Query {
                nonzero: false,
                open: false
            }
        );
        // And reopenable.
        c.open();
        assert!(c.query().open);
    }

    #[test]
    fn upgrade_fails_with_second_reader() {
        let c = CSnzi::new(TreeShape::flat(2));
        let t1 = c.arrive_direct();
        let t2 = c.arrive_direct();
        assert!(!c.try_upgrade_sole_direct());
        assert!(c.depart(t2));
        assert!(c.try_upgrade_sole_direct());
        let _ = t1; // consumed by the upgrade
    }

    #[test]
    fn upgrade_fails_when_closed() {
        let c = CSnzi::new(TreeShape::flat(2));
        let t = c.arrive_direct();
        assert!(!c.close());
        assert!(!c.try_upgrade_sole_direct());
        assert!(!c.depart(t));
    }

    #[test]
    fn many_arrivals_one_leaf_propagate_once() {
        let c = CSnzi::new(TreeShape::flat(2));
        let tickets: Vec<_> = (0..10).map(|_| c.arrive_tree(0)).collect();
        let w = c.root_snapshot();
        // Only the first arrival propagates to the root.
        assert_eq!(w.tree, 1);
        assert_eq!(w.direct, 0);
        for t in tickets {
            assert!(c.depart(t));
        }
        assert_eq!(c.root_snapshot().tree, 0);
    }

    #[test]
    fn concurrent_stress_matches_counted_oracle() {
        use std::sync::atomic::{AtomicI64, Ordering as O};
        use std::sync::Arc;

        const THREADS: usize = 8;
        const OPS: usize = 2_000;
        let c = Arc::new(CSnzi::new(TreeShape::flat(THREADS)));
        let oracle = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let c = Arc::clone(&c);
            let oracle = Arc::clone(&oracle);
            handles.push(std::thread::spawn(move || {
                let mut p = ArrivalPolicy::default();
                for i in 0..OPS {
                    let t = c.arrive(&mut p, tid);
                    assert!(t.arrived(), "object is never closed in this test");
                    oracle.fetch_add(1, O::SeqCst);
                    if i % 3 == 0 {
                        std::thread::yield_now();
                    }
                    // While we hold an arrival, the root must be nonzero.
                    assert!(c.query().nonzero);
                    oracle.fetch_sub(1, O::SeqCst);
                    assert!(c.depart(t));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(oracle.load(O::SeqCst), 0);
        assert!(!c.query().nonzero);
        assert!(c.query().open);
        let w = c.root_snapshot();
        assert_eq!((w.direct, w.tree), (0, 0));
    }
}

#[cfg(all(test, not(loom)))]
mod lazy_tests {
    use super::*;

    #[test]
    fn lazy_tree_allocates_only_on_first_tree_arrival() {
        let c = CSnzi::new_lazy(TreeShape::flat(8));
        assert!(!c.is_tree_allocated());

        // Root-path operations never materialize the tree.
        let t = c.arrive_direct();
        assert!(!c.is_tree_allocated());
        assert!(c.depart(t));
        assert!(c.close());
        c.open();
        assert!(c.close_if_empty());
        c.open_with_arrivals(2, false);
        assert!(c.depart(Ticket::ROOT));
        assert!(c.depart(Ticket::ROOT));
        assert!(!c.is_tree_allocated());

        // First tree arrival materializes it.
        let t = c.arrive_tree(3);
        assert!(c.is_tree_allocated());
        assert!(c.depart(t));
    }

    #[test]
    fn eager_tree_is_always_allocated() {
        let c = CSnzi::new(TreeShape::flat(2));
        assert!(c.is_tree_allocated());
        let c = CSnzi::new_closed(TreeShape::flat(2));
        assert!(c.is_tree_allocated());
    }

    #[test]
    fn lazy_tree_behaves_identically_after_materialization() {
        let lazy = CSnzi::new_lazy(TreeShape::flat(4));
        let eager = CSnzi::new(TreeShape::flat(4));
        for hint in 0..8 {
            let tl = lazy.arrive_tree(hint);
            let te = eager.arrive_tree(hint);
            assert_eq!(tl.arrived(), te.arrived());
            assert_eq!(lazy.query(), eager.query());
            assert_eq!(lazy.depart(tl), eager.depart(te));
        }
        // Both drained: closing an empty, open object succeeds.
        assert!(lazy.close());
        assert!(eager.close());
    }

    #[test]
    fn adaptive_starts_root_only_and_unallocated() {
        let c = CSnzi::new_adaptive(8);
        assert!(c.is_adaptive());
        assert!(!c.is_inflated());
        assert!(!c.is_tree_allocated());
        assert!(c.shape().depth > 0, "target shape is sized, not ROOT_ONLY");

        // Uncontended traffic stays on the root and never allocates.
        let mut p = ArrivalPolicy::default();
        let mut cursor = LeafCursor::new();
        for _ in 0..100 {
            let t = c.arrive_cached(&mut p, &mut cursor);
            assert!(t.is_root());
            assert!(c.depart(t));
        }
        assert!(!c.is_inflated());
        assert!(!c.is_tree_allocated());
    }

    #[test]
    fn adaptive_inflates_on_failure_streak() {
        let c = CSnzi::new_adaptive(8);
        let mut p = ArrivalPolicy::default();
        // Simulate the contention evidence a real failure streak leaves.
        p.record_failure();
        p.record_failure();
        let mut cursor = LeafCursor::new();
        let t = c.arrive_cached(&mut p, &mut cursor);
        assert!(t.arrived());
        assert!(!t.is_root(), "contended arrival lands on the tree");
        assert!(c.is_inflated());
        assert!(c.is_tree_allocated());
        assert!(c.query().nonzero);
        assert!(c.depart(t));
    }

    #[test]
    fn adaptive_deflates_after_quiet_spell_and_reinflates() {
        let c = CSnzi::new_adaptive(4);
        let mut hot = ArrivalPolicy::default();
        hot.record_failure();
        hot.record_failure();
        let mut cursor = LeafCursor::new();
        let t = c.arrive_cached(&mut hot, &mut cursor);
        assert!(c.is_inflated());

        // A held tree ticket keeps root tree surplus nonzero, which
        // blocks deflation no matter how many quiet arrivals pass.
        let mut probe = ArrivalPolicy::always_direct();
        for _ in 0..(CSnzi::DEFLATE_AFTER * 2) {
            let d = c.arrive_cached(&mut probe, &mut LeafCursor::new());
            assert!(d.is_root());
            assert!(c.depart(d));
        }
        assert!(c.is_inflated(), "tree surplus must hold off deflation");

        assert!(c.depart(t));
        // With the tree drained, a quiet spell deflates.
        let mut calm = ArrivalPolicy::default();
        for _ in 0..CSnzi::DEFLATE_AFTER {
            let d = c.arrive_cached(&mut calm, &mut cursor);
            assert!(d.is_root());
            assert!(c.depart(d));
        }
        assert!(!c.is_inflated());
        assert!(c.is_tree_allocated(), "deflation keeps the allocation");

        // Fresh contention evidence re-inflates (reusing the allocation).
        let mut hot2 = ArrivalPolicy::default();
        hot2.record_failure();
        hot2.record_failure();
        let t2 = c.arrive_cached(&mut hot2, &mut cursor);
        assert!(!t2.is_root());
        assert!(c.is_inflated());
        assert!(c.depart(t2));
    }

    #[test]
    fn adaptive_closed_variant_rejects_arrivals() {
        let c = CSnzi::new_closed_adaptive(4);
        assert!(!c.arrive(&mut ArrivalPolicy::default(), 0).arrived());
        assert!(!c.is_tree_allocated());
        c.open();
        let t = c.arrive(&mut ArrivalPolicy::default(), 0);
        assert!(t.is_root());
        assert!(c.depart(t));
    }

    #[test]
    fn adaptive_full_protocol_once_inflated() {
        // close/open/open_with_arrivals/trade/upgrade all behave like a
        // static tree once the adaptive object is inflated.
        let c = CSnzi::new_adaptive(4);
        let mut hot = ArrivalPolicy::default();
        hot.record_failure();
        hot.record_failure();
        let mut cursor = LeafCursor::new();
        let t = c.arrive_cached(&mut hot, &mut cursor);
        assert!(!t.is_root());
        assert!(!c.close());
        assert!(!c.arrive(&mut ArrivalPolicy::default(), 0).arrived());
        assert!(!c.depart(t), "last departer of a closed object hands off");
        c.open_with_arrivals(1, false);
        assert!(c.depart(Ticket::ROOT));
        let t = c.arrive_cached(&mut hot, &mut cursor);
        let t = c.trade_to_direct(t);
        assert!(c.is_sole_direct());
        assert!(c.try_upgrade_sole_direct());
        c.open();
        let _ = t;
    }

    #[test]
    fn cursor_reuses_committed_leaf() {
        let c = CSnzi::new(TreeShape::flat(8));
        let mut p = ArrivalPolicy::always_tree();
        let mut cursor = LeafCursor::pinned(3);
        let t1 = c.arrive_cached(&mut p, &mut cursor);
        let t2 = c.arrive_cached(&mut p, &mut cursor);
        // Same cursor, no leaf CAS failures: both arrivals share a leaf.
        assert_eq!(t1, t2);
        assert!(c.depart(t1));
        assert!(c.depart(t2));
    }

    #[test]
    fn pinned_cursor_matches_leaf_for_hint() {
        let shape = TreeShape::flat(4);
        let c = CSnzi::new(shape);
        for hint in 0..8 {
            let mut p = ArrivalPolicy::always_tree();
            let t = c.arrive_cached(&mut p, &mut LeafCursor::pinned(hint));
            let expected = c.arrive_tree(hint);
            assert_eq!(t, expected, "hint {hint}");
            assert!(c.depart(t));
            assert!(c.depart(expected));
        }
    }

    #[test]
    fn adaptive_concurrent_stress_with_inflation_and_deflation() {
        use std::sync::atomic::{AtomicI64, Ordering as O};
        use std::sync::Arc;

        const THREADS: usize = 8;
        const OPS: usize = 2_000;
        let c = Arc::new(CSnzi::new_adaptive(THREADS));
        let oracle = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let c = Arc::clone(&c);
            let oracle = Arc::clone(&oracle);
            handles.push(std::thread::spawn(move || {
                let mut p = ArrivalPolicy::default();
                let mut cursor = LeafCursor::new();
                for i in 0..OPS {
                    let t = c.arrive_cached(&mut p, &mut cursor);
                    assert!(t.arrived(), "object is never closed in this test");
                    oracle.fetch_add(1, O::SeqCst);
                    assert!(c.query().nonzero);
                    oracle.fetch_sub(1, O::SeqCst);
                    assert!(c.depart(t));
                    if i % 7 == 0 {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(oracle.load(O::SeqCst), 0);
        assert!(!c.query().nonzero);
        assert!(c.query().open);
        let w = c.root_snapshot();
        assert_eq!((w.direct, w.tree), (0, 0));
    }

    #[test]
    fn concurrent_first_tree_arrivals_race_safely() {
        use std::sync::Arc;
        let c = Arc::new(CSnzi::new_lazy(TreeShape::flat(4)));
        let mut handles = Vec::new();
        for tid in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let t = c.arrive_tree(tid);
                    assert!(t.arrived());
                    assert!(c.query().nonzero);
                    assert!(c.depart(t));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.is_tree_allocated());
        assert_eq!(c.root_snapshot().surplus(), 0);
    }
}
