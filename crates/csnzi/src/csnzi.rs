//! The closable scalable nonzero indicator (Figure 2 of the paper).

use crate::node::{Parent, SnziNode, TreeShape};
use crate::policy::ArrivalPolicy;
use crate::root::RootWord;
use oll_telemetry::{LockEvent, Telemetry};
use oll_util::sync::{AtomicU64, Ordering};
use oll_util::CachePadded;

/// Result of [`CSnzi::query`]: Figure 1's `(surplus > 0, state = OPEN)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// Whether there is a surplus of arrivals (readers hold the lock).
    pub nonzero: bool,
    /// Whether the C-SNZI is open (no writer owns or has claimed it).
    pub open: bool,
}

/// Result of [`CSnzi::cancel`]: what the abandoning arriver owes the lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The arrival was undone; the canceller holds nothing.
    Undone,
    /// The cancel zeroed a closed C-SNZI: the canceller was the last
    /// surplus-holder and now owns the lock — it must perform the owning
    /// lock's reader-release hand-off before returning.
    MustHandOff,
}

/// Where an arrival landed; required to depart.
///
/// The paper encapsulates the "node we arrived at" pointer in an opaque
/// ticket "not \[to\] be dereferenced or manipulated outside the C-SNZI
/// code". We use an index with two sentinels instead of a pointer.
///
/// Tickets are `Copy` for the same reason the paper passes them by value;
/// the usage contract (one `depart` per successful `arrive`) is the
/// caller's responsibility, exactly as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket(u32);

const TICKET_FAILED: u32 = u32::MAX;
const TICKET_ROOT: u32 = u32::MAX - 1;

impl Ticket {
    /// The ticket returned by a failed arrival (`Ticket(null)`).
    pub const FAILED: Self = Self(TICKET_FAILED);

    /// A ticket that departs directly from the root — Figure 2's
    /// `DirectTicket`. Used by GOLL readers whose arrival was performed on
    /// their behalf by a releasing writer (`OpenWithArrivals`).
    pub const ROOT: Self = Self(TICKET_ROOT);

    fn node(idx: usize) -> Self {
        debug_assert!(idx < TICKET_ROOT as usize);
        Self(idx as u32)
    }

    /// Figure 2's `Arrived`: whether the arrival succeeded.
    #[inline]
    pub fn arrived(self) -> bool {
        self.0 != TICKET_FAILED
    }

    /// Whether this ticket departs directly at the root.
    #[inline]
    pub fn is_root(self) -> bool {
        self.0 == TICKET_ROOT
    }
}

/// A closable scalable nonzero indicator.
///
/// Supports the full interface of Figures 1–2 plus the §2.1 variations and
/// the §3.2.1 dual-counter extensions. Readers of an OLL lock `arrive` and
/// `depart`; writers `close` and `open`.
///
/// The surplus lives at a CAS-able [`RootWord`] plus a tree of counter
/// nodes; a subtree's root has nonzero surplus iff some node in the subtree
/// does, so `query` needs only the root word while concurrent arrivals and
/// departures at distinct leaves touch distinct cache lines.
#[derive(Debug)]
pub struct CSnzi {
    root: CachePadded<AtomicU64>,
    nodes: NodeStorage,
    shape: TreeShape,
    /// Owning lock's telemetry, if any (see [`CSnzi::attach_telemetry`]).
    /// Zero-sized and inert without the `telemetry` feature.
    telemetry: Telemetry,
    #[cfg(feature = "stats")]
    stats: crate::stats::CsnziStats,
}

/// Tree-node storage: eager (allocated at construction) or lazy
/// (allocated on the first tree arrival). §2.2: "we can avoid allocating
/// the tree (other than the root node) until it is needed, thus incurring
/// the associated space overhead only for those SNZI objects that are
/// heavily contended." FOLL/ROLL allocate one C-SNZI per pooled reader
/// node, so lazy trees keep the per-lock footprint proportional to the
/// contention actually observed.
#[derive(Debug)]
enum NodeStorage {
    Eager(Box<[CachePadded<SnziNode>]>),
    // loom cannot model std::sync::OnceLock, and the lazy path is an
    // allocation-time optimization with no new synchronization to check,
    // so loom builds are always eager.
    #[cfg(not(loom))]
    Lazy(std::sync::OnceLock<Box<[CachePadded<SnziNode>]>>),
}

impl NodeStorage {
    fn get(&self, shape: TreeShape) -> &[CachePadded<SnziNode>] {
        match self {
            NodeStorage::Eager(nodes) => nodes,
            #[cfg(not(loom))]
            NodeStorage::Lazy(cell) => cell.get_or_init(|| shape.alloc_nodes()),
        }
    }

    fn is_allocated(&self) -> bool {
        match self {
            NodeStorage::Eager(_) => true,
            #[cfg(not(loom))]
            NodeStorage::Lazy(cell) => cell.get().is_some(),
        }
    }
}

impl Default for CSnzi {
    fn default() -> Self {
        Self::new(TreeShape::ROOT_ONLY)
    }
}

impl CSnzi {
    /// Creates an open, empty C-SNZI with the given tree shape.
    pub fn new(shape: TreeShape) -> Self {
        Self {
            root: CachePadded::new(AtomicU64::new(RootWord::OPEN_EMPTY.pack())),
            nodes: NodeStorage::Eager(shape.alloc_nodes()),
            shape,
            telemetry: Telemetry::disabled(),
            #[cfg(feature = "stats")]
            stats: crate::stats::CsnziStats::default(),
        }
    }

    /// Creates an open, empty C-SNZI whose tree is allocated only when
    /// the first arrival actually lands on it (§2.2's space optimization).
    /// Until then the object costs one cache line, like a plain counter.
    ///
    /// Under loom (`--cfg loom`) this falls back to eager allocation.
    pub fn new_lazy(shape: TreeShape) -> Self {
        Self {
            root: CachePadded::new(AtomicU64::new(RootWord::OPEN_EMPTY.pack())),
            #[cfg(not(loom))]
            nodes: NodeStorage::Lazy(std::sync::OnceLock::new()),
            #[cfg(loom)]
            nodes: NodeStorage::Eager(shape.alloc_nodes()),
            shape,
            telemetry: Telemetry::disabled(),
            #[cfg(feature = "stats")]
            stats: crate::stats::CsnziStats::default(),
        }
    }

    /// Like [`new_lazy`](Self::new_lazy), but starting closed — the
    /// pooled FOLL/ROLL reader-node configuration, where the per-node
    /// trees only materialize on locks that actually see read contention.
    pub fn new_closed_lazy(shape: TreeShape) -> Self {
        Self {
            root: CachePadded::new(AtomicU64::new(RootWord::CLOSED_EMPTY.pack())),
            #[cfg(not(loom))]
            nodes: NodeStorage::Lazy(std::sync::OnceLock::new()),
            #[cfg(loom)]
            nodes: NodeStorage::Eager(shape.alloc_nodes()),
            shape,
            telemetry: Telemetry::disabled(),
            #[cfg(feature = "stats")]
            stats: crate::stats::CsnziStats::default(),
        }
    }

    /// Whether the tree's node array has been allocated yet (always true
    /// for eagerly constructed objects).
    pub fn is_tree_allocated(&self) -> bool {
        self.nodes.is_allocated()
    }

    /// Creates a closed, empty C-SNZI (FOLL reader nodes start this way:
    /// "when just allocated, has a closed C-SNZI with no surplus", §4.2).
    pub fn new_closed(shape: TreeShape) -> Self {
        Self {
            root: CachePadded::new(AtomicU64::new(RootWord::CLOSED_EMPTY.pack())),
            nodes: NodeStorage::Eager(shape.alloc_nodes()),
            shape,
            telemetry: Telemetry::disabled(),
            #[cfg(feature = "stats")]
            stats: crate::stats::CsnziStats::default(),
        }
    }

    /// Shared-write counters (cargo feature `stats`).
    #[cfg(feature = "stats")]
    pub fn stats(&self) -> &crate::stats::CsnziStats {
        &self.stats
    }

    /// Routes this object's shared-write counts into an owning lock's
    /// telemetry handle (as `csnzi_root_write` / `csnzi_node_write` /
    /// `csnzi_root_cas_fail` events) in addition to the `stats` feature's
    /// own counters. Locks attach at construction, before sharing.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    #[inline]
    fn note_root_write(&self) {
        self.telemetry.incr(LockEvent::CsnziRootWrite);
        #[cfg(feature = "stats")]
        self.stats.record_root_write();
    }

    #[inline]
    fn note_root_cas_failure(&self) {
        self.telemetry.incr(LockEvent::CsnziRootCasFail);
        #[cfg(feature = "stats")]
        self.stats.record_root_cas_failure();
    }

    #[inline]
    fn note_node_write(&self) {
        self.telemetry.incr(LockEvent::CsnziNodeWrite);
        #[cfg(feature = "stats")]
        self.stats.record_node_write();
    }

    /// The tree shape this C-SNZI was built with.
    pub fn shape(&self) -> TreeShape {
        self.shape
    }

    #[inline]
    fn load_root(&self) -> RootWord {
        RootWord::unpack(self.root.load(Ordering::Acquire))
    }

    #[inline]
    fn cas_root(&self, old: RootWord, new: RootWord) -> bool {
        let ok = self
            .root
            .compare_exchange(old.pack(), new.pack(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if ok {
            self.note_root_write();
        } else {
            self.note_root_cas_failure();
        }
        ok
    }

    /// `Arrive` (Figure 2): if open, increments the surplus — directly at
    /// the root or at this thread's leaf, per `policy` — and returns a
    /// ticket for the node arrived at. If closed, changes nothing and
    /// returns [`Ticket::FAILED`].
    ///
    /// `leaf_hint` identifies the calling thread (`GetLeafForThread`);
    /// lock handles pass their slot index so distinct threads default to
    /// distinct leaves.
    pub fn arrive(&self, policy: &mut ArrivalPolicy, leaf_hint: usize) -> Ticket {
        loop {
            let old = self.load_root();
            if !old.open {
                return Ticket::FAILED;
            }
            if self.shape.depth == 0 || !policy.should_arrive_at_tree(old) {
                if self.cas_root(old, old.with_direct_arrival()) {
                    policy.record_success();
                    return Ticket::ROOT;
                }
                policy.record_failure();
            } else {
                let leaf = self.shape.leaf_for(leaf_hint);
                return if self.tree_arrive(leaf) {
                    Ticket::node(leaf)
                } else {
                    Ticket::FAILED
                };
            }
        }
    }

    /// Arrives directly at the root regardless of policy (still fails if
    /// closed). Exposed for ablation benchmarks.
    pub fn arrive_direct(&self) -> Ticket {
        let mut p = ArrivalPolicy::always_direct();
        self.arrive(&mut p, 0)
    }

    /// Arrives at this thread's leaf regardless of policy (still fails if
    /// the C-SNZI is closed). Exposed for ablation benchmarks.
    pub fn arrive_tree(&self, leaf_hint: usize) -> Ticket {
        if self.shape.depth == 0 {
            return self.arrive_direct();
        }
        // Check openness first, as the top of Arrive does; the tree path
        // linearizes at this check when the leaf already has surplus.
        if !self.load_root().open {
            return Ticket::FAILED;
        }
        let leaf = self.shape.leaf_for(leaf_hint);
        if self.tree_arrive(leaf) {
            Ticket::node(leaf)
        } else {
            Ticket::FAILED
        }
    }

    /// `Depart` (Figure 2): decrements the surplus; returns `false` iff the
    /// resulting state is CLOSED with zero surplus (i.e. the caller is the
    /// last departer and must hand the lock to the waiting writer).
    ///
    /// `ticket` must come from a successful arrival (or `Ticket::ROOT` for
    /// a pre-arranged direct arrival), departed exactly once.
    pub fn depart(&self, ticket: Ticket) -> bool {
        debug_assert!(ticket.arrived(), "cannot depart with a failed ticket");
        if ticket.is_root() {
            self.root_direct_depart()
        } else {
            self.tree_depart(ticket.0 as usize)
        }
    }

    /// Cancels a pending arrival: a reader that arrived but now abandons
    /// the acquisition (timeout, cancellation) calls this instead of
    /// `depart` to make the undo semantics explicit at the call site.
    ///
    /// Cancellation *is* departure — the C-SNZI has no separate undo
    /// operation; an arrival that will never be used is indistinguishable
    /// from one whose critical section already ended. The distinction that
    /// matters is the outcome: [`CancelOutcome::MustHandOff`] means this
    /// cancel zeroed a *closed* C-SNZI, so the canceller now owns the lock
    /// exactly as a departing last reader would, and must run the owning
    /// lock's release protocol (it cannot simply walk away).
    #[must_use = "MustHandOff obligates the caller to release the lock"]
    pub fn cancel(&self, ticket: Ticket) -> CancelOutcome {
        if self.depart(ticket) {
            CancelOutcome::Undone
        } else {
            CancelOutcome::MustHandOff
        }
    }

    /// `Query` (Figure 2): one root load.
    #[inline]
    pub fn query(&self) -> Query {
        let w = self.load_root();
        Query {
            nonzero: w.surplus() > 0,
            open: w.open,
        }
    }

    /// `Open` (Figure 2): requires state CLOSED and surplus zero.
    ///
    /// The caller owns the C-SNZI in this state (it is the write-lock
    /// holder), so a plain store suffices, exactly as in the paper.
    pub fn open(&self) {
        debug_assert!({
            let w = self.load_root();
            !w.open && w.surplus() == 0
        });
        self.root
            .store(RootWord::OPEN_EMPTY.pack(), Ordering::Release);
        self.note_root_write();
    }

    /// `OpenWithArrivals` (§2.1, Figure 2): atomically opens, performs
    /// `cnt` arrivals *at the root*, and optionally closes again. Requires
    /// state CLOSED and surplus zero. The beneficiaries depart with
    /// [`Ticket::ROOT`].
    pub fn open_with_arrivals(&self, cnt: u64, close: bool) {
        debug_assert!({
            let w = self.load_root();
            !w.open && w.surplus() == 0
        });
        let w = RootWord {
            direct: cnt,
            tree: 0,
            open: !close,
        };
        self.root.store(w.pack(), Ordering::Release);
        self.note_root_write();
    }

    /// `Close` (Figure 2): closes an open C-SNZI (no-op if already closed);
    /// returns `true` iff the state changed OPEN→CLOSED *and* the surplus
    /// is zero — i.e. the closer has write-acquired an uncontended object.
    pub fn close(&self) -> bool {
        loop {
            let old = self.load_root();
            if !old.open {
                return false;
            }
            let new = old.closed();
            if self.cas_root(old, new) {
                return new.surplus() == 0;
            }
        }
    }

    /// `CloseIfEmpty` (§2.1, Figure 2): closes only if open with zero
    /// surplus; returns whether it closed. This is the writer fast path of
    /// the GOLL lock.
    pub fn close_if_empty(&self) -> bool {
        loop {
            let old = self.load_root();
            if old != RootWord::OPEN_EMPTY {
                return false;
            }
            if self.cas_root(old, RootWord::CLOSED_EMPTY) {
                return true;
            }
        }
    }

    // ------------------------------------------------------------------
    // §3.2.1 dual-counter extensions (write-upgrade support)
    // ------------------------------------------------------------------

    /// Trades a tree arrival for a direct arrival at the root: arrives
    /// directly at the root, then departs from the original node (§3.2.1).
    /// Returns the new (root) ticket.
    ///
    /// Requires that the caller holds a successful arrival (`ticket`), so
    /// the surplus is nonzero throughout; the trade therefore succeeds even
    /// if the C-SNZI has been closed in the meantime.
    pub fn trade_to_direct(&self, ticket: Ticket) -> Ticket {
        debug_assert!(ticket.arrived());
        if ticket.is_root() {
            return ticket;
        }
        // Unconditional direct arrival: legal because our existing arrival
        // keeps the surplus nonzero, so this never creates surplus on a
        // closed-and-empty C-SNZI.
        loop {
            let old = self.load_root();
            debug_assert!(old.surplus() > 0);
            if self.cas_root(old, old.with_direct_arrival()) {
                break;
            }
        }
        let still_held = self.tree_depart(ticket.0 as usize);
        debug_assert!(still_held, "surplus kept nonzero by the direct arrival");
        Ticket::ROOT
    }

    /// Whether the *only* surplus is a single direct arrival — after
    /// [`trade_to_direct`](Self::trade_to_direct), this is exactly the
    /// paper's "the thread is the only one holding \[the\] lock" test.
    pub fn is_sole_direct(&self) -> bool {
        let w = self.load_root();
        w.direct == 1 && w.tree == 0
    }

    /// Attempts to atomically convert a sole direct arrival on an *open*
    /// C-SNZI into the closed-empty (write-acquired) state. Returns `true`
    /// on success; on failure nothing changes and the caller still holds
    /// its arrival.
    ///
    /// This is the commit point of the GOLL write-upgrade: the reader's own
    /// surplus is consumed and the object ends closed with zero surplus.
    pub fn try_upgrade_sole_direct(&self) -> bool {
        let old = RootWord {
            direct: 1,
            tree: 0,
            open: true,
        };
        // Retry while the word still matches: a concurrent reader that
        // arrived and already departed again may fail the CAS spuriously
        // without invalidating our sole-reader status.
        loop {
            let w = self.load_root();
            if w != old {
                return false;
            }
            if self.cas_root(old, RootWord::CLOSED_EMPTY) {
                return true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Tree operations (Figure 2's TreeArrive / TreeDepart)
    // ------------------------------------------------------------------

    fn node(&self, idx: usize) -> &SnziNode {
        &self.nodes.get(self.shape)[idx]
    }

    fn parent_arrive(&self, parent: Parent) -> bool {
        match parent {
            Parent::Root => self.root_tree_arrive(),
            Parent::Node(p) => self.tree_arrive(p),
        }
    }

    fn parent_depart(&self, parent: Parent) -> bool {
        match parent {
            Parent::Root => self.root_tree_depart(),
            Parent::Node(p) => self.tree_depart(p),
        }
    }

    /// `TreeArrive(node)`: increments this node's surplus, first arriving
    /// at the parent if the surplus here might go 0→1. Crucially (and this
    /// is what makes the closable extension work — §2.2), the node is *not*
    /// modified before the parent arrival, so a failed parent arrival needs
    /// no cleanup.
    fn tree_arrive(&self, idx: usize) -> bool {
        let parent = self.shape.parent_of(idx);
        let node = self.node(idx);
        let mut arrived_at_parent = false;
        loop {
            let x = node.cnt.load(Ordering::Acquire);
            if x == 0 && !arrived_at_parent {
                if self.parent_arrive(parent) {
                    arrived_at_parent = true;
                } else {
                    return false;
                }
                continue;
            }
            if node
                .cnt
                .compare_exchange(x, x + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.note_node_write();
                // We pre-arrived at the parent but someone else created the
                // surplus here first; undo the extra parent arrival.
                if arrived_at_parent && x != 0 {
                    self.parent_depart(parent);
                }
                return true;
            }
        }
    }

    /// `TreeDepart(node)`: decrements this node's surplus, propagating to
    /// the parent when the surplus here drops to zero. Returns `false` iff
    /// the C-SNZI as a whole became CLOSED with zero surplus.
    fn tree_depart(&self, idx: usize) -> bool {
        let parent = self.shape.parent_of(idx);
        let node = self.node(idx);
        loop {
            let x = node.cnt.load(Ordering::Acquire);
            debug_assert!(x > 0, "tree depart with no surplus at node {idx}");
            if node
                .cnt
                .compare_exchange(x, x - 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.note_node_write();
                return if x == 1 {
                    self.parent_depart(parent)
                } else {
                    true
                };
            }
        }
    }

    /// `TreeArrive` base case at the root: fails only when the C-SNZI is
    /// closed with zero surplus (a tree arrival may legitimately land while
    /// the C-SNZI is closed but still held by readers; it linearizes at the
    /// openness check its leaf-arriving thread performed earlier — §2.2).
    fn root_tree_arrive(&self) -> bool {
        loop {
            let old = self.load_root();
            if old.surplus() == 0 && !old.open {
                return false;
            }
            if self.cas_root(old, old.with_tree_arrival()) {
                return true;
            }
        }
    }

    /// `TreeDepart` base case at the root.
    // The `!(surplus == 0 && closed)` form mirrors Figure 1/2 verbatim.
    #[allow(clippy::nonminimal_bool)]
    fn root_tree_depart(&self) -> bool {
        loop {
            let old = self.load_root();
            let new = old.with_tree_departure();
            if self.cas_root(old, new) {
                return !(new.surplus() == 0 && !new.open);
            }
        }
    }

    /// Departure of a direct (root) arrival.
    #[allow(clippy::nonminimal_bool)]
    fn root_direct_depart(&self) -> bool {
        loop {
            let old = self.load_root();
            let new = old.with_direct_departure();
            if self.cas_root(old, new) {
                return !(new.surplus() == 0 && !new.open);
            }
        }
    }

    /// Test/diagnostic accessor: the decoded root word (racy snapshot).
    pub fn root_snapshot(&self) -> RootWord {
        self.load_root()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn shapes() -> Vec<TreeShape> {
        vec![
            TreeShape::ROOT_ONLY,
            TreeShape::flat(1),
            TreeShape::flat(4),
            TreeShape {
                fanout: 2,
                depth: 2,
            },
            TreeShape {
                fanout: 2,
                depth: 3,
            },
        ]
    }

    fn tree_policy() -> ArrivalPolicy {
        ArrivalPolicy::always_tree()
    }

    #[test]
    fn starts_open_and_empty() {
        for shape in shapes() {
            let c = CSnzi::new(shape);
            assert_eq!(
                c.query(),
                Query {
                    nonzero: false,
                    open: true
                }
            );
        }
    }

    #[test]
    fn new_closed_starts_closed() {
        let c = CSnzi::new_closed(TreeShape::flat(2));
        assert_eq!(
            c.query(),
            Query {
                nonzero: false,
                open: false
            }
        );
        assert!(!c.arrive(&mut tree_policy(), 0).arrived());
    }

    #[test]
    fn direct_arrive_depart_round_trip() {
        for shape in shapes() {
            let c = CSnzi::new(shape);
            let t = c.arrive_direct();
            assert!(t.arrived());
            assert!(t.is_root());
            assert!(c.query().nonzero);
            assert!(c.depart(t)); // open ⇒ true
            assert!(!c.query().nonzero);
        }
    }

    #[test]
    fn tree_arrive_depart_round_trip_all_leaves() {
        for shape in shapes().into_iter().filter(|s| s.depth > 0) {
            let c = CSnzi::new(shape);
            for hint in 0..shape.leaf_count() * 2 {
                let t = c.arrive_tree(hint);
                assert!(t.arrived());
                assert!(!t.is_root());
                assert!(c.query().nonzero, "shape {shape:?} hint {hint}");
                assert!(c.depart(t));
                assert!(!c.query().nonzero);
            }
        }
    }

    #[test]
    fn surplus_at_root_iff_surplus_anywhere() {
        let shape = TreeShape {
            fanout: 2,
            depth: 2,
        };
        let c = CSnzi::new(shape);
        let mut tickets = Vec::new();
        // Arrive at every leaf and directly, in a mix.
        for hint in 0..shape.leaf_count() {
            tickets.push(c.arrive_tree(hint));
        }
        tickets.push(c.arrive_direct());
        assert!(c.query().nonzero);
        // Depart in reverse order; root must stay nonzero until the end.
        while let Some(t) = tickets.pop() {
            assert!(c.query().nonzero);
            assert!(c.depart(t));
        }
        assert!(!c.query().nonzero);
    }

    #[test]
    fn close_blocks_arrivals_everywhere() {
        for shape in shapes() {
            let c = CSnzi::new(shape);
            assert!(c.close());
            assert!(!c.arrive_direct().arrived());
            if shape.depth > 0 {
                assert!(!c.arrive_tree(0).arrived());
            }
            assert!(!c.close(), "closing twice must fail");
        }
    }

    #[test]
    fn close_with_tree_surplus_returns_false() {
        let c = CSnzi::new(TreeShape::flat(2));
        let t = c.arrive_tree(0);
        assert!(!c.close());
        assert_eq!(
            c.query(),
            Query {
                nonzero: true,
                open: false
            }
        );
        // Last departure from a closed C-SNZI reports false.
        assert!(!c.depart(t));
        assert_eq!(
            c.query(),
            Query {
                nonzero: false,
                open: false
            }
        );
        c.open();
        assert!(c.query().open);
    }

    #[test]
    fn arrivals_fail_after_close_even_with_leaf_surplus() {
        // Every *new* arrival re-checks openness first (the §2.2 "closed
        // but leaf nonzero" window only exists for a thread that passed
        // the openness check before the close; such an arrival linearizes
        // at that earlier check). Arrivals starting after the close must
        // fail at every node.
        let c = CSnzi::new(TreeShape::flat(1));
        let t1 = c.arrive_tree(0);
        assert!(!c.close());
        // Public arrive re-checks openness and must fail.
        assert!(!c.arrive(&mut tree_policy(), 0).arrived());
        assert!(!c.arrive_tree(0).arrived());
        assert!(!c.depart(t1));
    }

    #[test]
    fn close_if_empty_fast_path() {
        let c = CSnzi::new(TreeShape::flat(2));
        assert!(c.close_if_empty());
        assert!(!c.close_if_empty());
        c.open();
        let t = c.arrive_direct();
        assert!(!c.close_if_empty());
        assert!(c.query().open);
        assert!(c.depart(t));
    }

    #[test]
    fn open_with_arrivals_and_root_tickets() {
        let c = CSnzi::new(TreeShape::flat(2));
        assert!(c.close());
        c.open_with_arrivals(3, false);
        assert_eq!(
            c.query(),
            Query {
                nonzero: true,
                open: true
            }
        );
        assert!(c.depart(Ticket::ROOT));
        assert!(c.depart(Ticket::ROOT));
        assert!(c.depart(Ticket::ROOT));
        assert!(!c.query().nonzero);
        assert!(c.query().open);
    }

    #[test]
    fn open_with_arrivals_closed_variant() {
        let c = CSnzi::new(TreeShape::flat(2));
        assert!(c.close());
        c.open_with_arrivals(2, true);
        assert_eq!(
            c.query(),
            Query {
                nonzero: true,
                open: false
            }
        );
        assert!(c.depart(Ticket::ROOT));
        assert!(!c.depart(Ticket::ROOT)); // last departer must hand off
    }

    #[test]
    fn policy_migrates_to_tree_after_failures() {
        let c = CSnzi::new(TreeShape::flat(4));
        let mut p = ArrivalPolicy::new(0); // tree immediately
        let t = c.arrive(&mut p, 3);
        assert!(t.arrived());
        assert!(!t.is_root());
        // A default-policy arrival now sees tree surplus and follows it.
        let mut p2 = ArrivalPolicy::default();
        let t2 = c.arrive(&mut p2, 1);
        assert!(!t2.is_root());
        assert!(c.depart(t2));
        assert!(c.depart(t));
    }

    #[test]
    fn trade_to_direct_preserves_surplus() {
        let c = CSnzi::new(TreeShape::flat(2));
        let t = c.arrive_tree(1);
        assert!(!t.is_root());
        let t = c.trade_to_direct(t);
        assert!(t.is_root());
        let w = c.root_snapshot();
        assert_eq!((w.direct, w.tree), (1, 0));
        assert!(c.is_sole_direct());
        assert!(c.depart(t));
        assert!(!c.query().nonzero);
    }

    #[test]
    fn trade_is_idempotent_for_root_tickets() {
        let c = CSnzi::new(TreeShape::ROOT_ONLY);
        let t = c.arrive_direct();
        assert_eq!(c.trade_to_direct(t), t);
        c.depart(t);
    }

    #[test]
    fn sole_direct_detects_other_readers() {
        let c = CSnzi::new(TreeShape::flat(2));
        let t1 = c.arrive_direct();
        assert!(c.is_sole_direct());
        let t2 = c.arrive_tree(0);
        assert!(!c.is_sole_direct());
        c.depart(t2);
        assert!(c.is_sole_direct());
        c.depart(t1);
    }

    #[test]
    fn upgrade_sole_direct() {
        let c = CSnzi::new(TreeShape::flat(2));
        let t = c.arrive_tree(0);
        let _t = c.trade_to_direct(t);
        assert!(c.try_upgrade_sole_direct());
        // Now closed and empty: a write-acquired lock.
        assert_eq!(
            c.query(),
            Query {
                nonzero: false,
                open: false
            }
        );
        // And reopenable.
        c.open();
        assert!(c.query().open);
    }

    #[test]
    fn upgrade_fails_with_second_reader() {
        let c = CSnzi::new(TreeShape::flat(2));
        let t1 = c.arrive_direct();
        let t2 = c.arrive_direct();
        assert!(!c.try_upgrade_sole_direct());
        assert!(c.depart(t2));
        assert!(c.try_upgrade_sole_direct());
        let _ = t1; // consumed by the upgrade
    }

    #[test]
    fn upgrade_fails_when_closed() {
        let c = CSnzi::new(TreeShape::flat(2));
        let t = c.arrive_direct();
        assert!(!c.close());
        assert!(!c.try_upgrade_sole_direct());
        assert!(!c.depart(t));
    }

    #[test]
    fn many_arrivals_one_leaf_propagate_once() {
        let c = CSnzi::new(TreeShape::flat(2));
        let tickets: Vec<_> = (0..10).map(|_| c.arrive_tree(0)).collect();
        let w = c.root_snapshot();
        // Only the first arrival propagates to the root.
        assert_eq!(w.tree, 1);
        assert_eq!(w.direct, 0);
        for t in tickets {
            assert!(c.depart(t));
        }
        assert_eq!(c.root_snapshot().tree, 0);
    }

    #[test]
    fn concurrent_stress_matches_counted_oracle() {
        use std::sync::atomic::{AtomicI64, Ordering as O};
        use std::sync::Arc;

        const THREADS: usize = 8;
        const OPS: usize = 2_000;
        let c = Arc::new(CSnzi::new(TreeShape::flat(THREADS)));
        let oracle = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let c = Arc::clone(&c);
            let oracle = Arc::clone(&oracle);
            handles.push(std::thread::spawn(move || {
                let mut p = ArrivalPolicy::default();
                for i in 0..OPS {
                    let t = c.arrive(&mut p, tid);
                    assert!(t.arrived(), "object is never closed in this test");
                    oracle.fetch_add(1, O::SeqCst);
                    if i % 3 == 0 {
                        std::thread::yield_now();
                    }
                    // While we hold an arrival, the root must be nonzero.
                    assert!(c.query().nonzero);
                    oracle.fetch_sub(1, O::SeqCst);
                    assert!(c.depart(t));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(oracle.load(O::SeqCst), 0);
        assert!(!c.query().nonzero);
        assert!(c.query().open);
        let w = c.root_snapshot();
        assert_eq!((w.direct, w.tree), (0, 0));
    }
}

#[cfg(all(test, not(loom)))]
mod lazy_tests {
    use super::*;

    #[test]
    fn lazy_tree_allocates_only_on_first_tree_arrival() {
        let c = CSnzi::new_lazy(TreeShape::flat(8));
        assert!(!c.is_tree_allocated());

        // Root-path operations never materialize the tree.
        let t = c.arrive_direct();
        assert!(!c.is_tree_allocated());
        assert!(c.depart(t));
        assert!(c.close());
        c.open();
        assert!(c.close_if_empty());
        c.open_with_arrivals(2, false);
        assert!(c.depart(Ticket::ROOT));
        assert!(c.depart(Ticket::ROOT));
        assert!(!c.is_tree_allocated());

        // First tree arrival materializes it.
        let t = c.arrive_tree(3);
        assert!(c.is_tree_allocated());
        assert!(c.depart(t));
    }

    #[test]
    fn eager_tree_is_always_allocated() {
        let c = CSnzi::new(TreeShape::flat(2));
        assert!(c.is_tree_allocated());
        let c = CSnzi::new_closed(TreeShape::flat(2));
        assert!(c.is_tree_allocated());
    }

    #[test]
    fn lazy_tree_behaves_identically_after_materialization() {
        let lazy = CSnzi::new_lazy(TreeShape::flat(4));
        let eager = CSnzi::new(TreeShape::flat(4));
        for hint in 0..8 {
            let tl = lazy.arrive_tree(hint);
            let te = eager.arrive_tree(hint);
            assert_eq!(tl.arrived(), te.arrived());
            assert_eq!(lazy.query(), eager.query());
            assert_eq!(lazy.depart(tl), eager.depart(te));
        }
        // Both drained: closing an empty, open object succeeds.
        assert!(lazy.close());
        assert!(eager.close());
    }

    #[test]
    fn concurrent_first_tree_arrivals_race_safely() {
        use std::sync::Arc;
        let c = Arc::new(CSnzi::new_lazy(TreeShape::flat(4)));
        let mut handles = Vec::new();
        for tid in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let t = c.arrive_tree(tid);
                    assert!(t.arrived());
                    assert!(c.query().nonzero);
                    assert!(c.depart(t));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.is_tree_allocated());
        assert_eq!(c.root_snapshot().surplus(), 0);
    }
}
