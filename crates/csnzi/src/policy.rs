//! The `ShouldArriveAtTree` heuristic.
//!
//! §2.2: "we adopt the simple policy of arriving at the root unless
//! attempting to do so has failed several times, or if there is already
//! some surplus due to arrivals at leaves." §5.1 adds that with the
//! dual-counter root this "favor\[s\] direct arrivals until it encounters
//! contention or until it sees that other threads have arrived using the
//! tree, indicating that contention was recently observed by another
//! thread."
//!
//! The policy is *per-thread* state (a failure counter); lock handles own
//! one per C-SNZI they use.

use crate::root::RootWord;

/// Per-thread decision state for [`CSnzi::arrive`](crate::CSnzi::arrive).
#[derive(Debug, Clone)]
pub struct ArrivalPolicy {
    failures: u32,
    threshold: u32,
}

impl Default for ArrivalPolicy {
    fn default() -> Self {
        Self::new(Self::DEFAULT_THRESHOLD)
    }
}

impl ArrivalPolicy {
    /// Default number of consecutive root-CAS failures before switching to
    /// tree arrivals.
    pub const DEFAULT_THRESHOLD: u32 = 2;

    /// Creates a policy that tolerates `threshold` consecutive failed root
    /// CASes before moving to the tree. A threshold of `u32::MAX`
    /// effectively pins arrivals to the root; `0` pins them to the tree.
    pub fn new(threshold: u32) -> Self {
        Self {
            failures: 0,
            threshold,
        }
    }

    /// A policy that always arrives directly at the root (unless another
    /// thread is already using the tree, which tree-surplus correctness
    /// does not require us to follow — root arrival stays correct, so this
    /// truly pins to the root).
    pub fn always_direct() -> Self {
        Self::new(u32::MAX)
    }

    /// A policy that always arrives at the tree.
    pub fn always_tree() -> Self {
        Self::new(0)
    }

    /// Decides where the next arrival should go, given the freshly loaded
    /// root word.
    pub fn should_arrive_at_tree(&self, root: RootWord) -> bool {
        self.failures >= self.threshold || (self.threshold != u32::MAX && root.tree > 0)
    }

    /// Records a failed CAS on the root (contention evidence).
    pub fn record_failure(&mut self) {
        self.failures = self.failures.saturating_add(1);
    }

    /// Records a successful direct arrival (contention is subsiding).
    pub fn record_success(&mut self) {
        self.failures = self.failures.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_root() -> RootWord {
        RootWord::OPEN_EMPTY
    }

    fn tree_busy_root() -> RootWord {
        RootWord {
            direct: 0,
            tree: 3,
            open: true,
        }
    }

    #[test]
    fn fresh_policy_prefers_direct() {
        let p = ArrivalPolicy::default();
        assert!(!p.should_arrive_at_tree(quiet_root()));
    }

    #[test]
    fn failures_push_to_tree_and_successes_pull_back() {
        let mut p = ArrivalPolicy::new(2);
        p.record_failure();
        assert!(!p.should_arrive_at_tree(quiet_root()));
        p.record_failure();
        assert!(p.should_arrive_at_tree(quiet_root()));
        p.record_success();
        assert!(!p.should_arrive_at_tree(quiet_root()));
    }

    #[test]
    fn tree_surplus_from_others_pushes_to_tree() {
        let p = ArrivalPolicy::default();
        assert!(p.should_arrive_at_tree(tree_busy_root()));
    }

    #[test]
    fn pinned_policies() {
        let p = ArrivalPolicy::always_direct();
        assert!(!p.should_arrive_at_tree(tree_busy_root()));
        let p = ArrivalPolicy::always_tree();
        assert!(p.should_arrive_at_tree(quiet_root()));
    }

    #[test]
    fn failure_counter_saturates() {
        let mut p = ArrivalPolicy::new(u32::MAX);
        for _ in 0..10 {
            p.record_failure();
        }
        // Saturating, no overflow; still short of u32::MAX threshold.
        assert!(!p.should_arrive_at_tree(quiet_root()));
    }
}
