//! The `ShouldArriveAtTree` heuristic.
//!
//! §2.2: "we adopt the simple policy of arriving at the root unless
//! attempting to do so has failed several times, or if there is already
//! some surplus due to arrivals at leaves." §5.1 adds that with the
//! dual-counter root this "favor\[s\] direct arrivals until it encounters
//! contention or until it sees that other threads have arrived using the
//! tree, indicating that contention was recently observed by another
//! thread."
//!
//! The policy is *per-thread* state (a failure counter); lock handles own
//! one per C-SNZI they use. Pinned policies (always root, always tree)
//! are explicit [`ArrivalMode`] variants rather than sentinel thresholds:
//! an earlier encoding used `threshold == u32::MAX` to mean "pinned to
//! root" and had to special-case the tree-surplus clause so a saturated
//! failure counter could not defeat the pin — the variant makes both
//! impossible by construction.

use crate::root::RootWord;

/// How a policy decides between root and tree arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalMode {
    /// Paper policy: arrive at the root until `threshold` consecutive
    /// root CASes fail or the root shows tree surplus.
    Threshold(u32),
    /// Every arrival goes directly to the root, even when other threads
    /// use the tree (root arrival stays correct regardless, so this
    /// truly pins to the root).
    PinnedRoot,
    /// Every arrival goes to the tree.
    PinnedTree,
}

/// Per-thread decision state for [`CSnzi::arrive`](crate::CSnzi::arrive).
#[derive(Debug, Clone)]
pub struct ArrivalPolicy {
    failures: u32,
    mode: ArrivalMode,
}

impl Default for ArrivalPolicy {
    fn default() -> Self {
        Self::new(Self::DEFAULT_THRESHOLD)
    }
}

impl ArrivalPolicy {
    /// Default number of consecutive root-CAS failures before switching to
    /// tree arrivals.
    pub const DEFAULT_THRESHOLD: u32 = 2;

    /// Creates a policy that tolerates `threshold` consecutive failed root
    /// CASes before moving to the tree. The legacy sentinel values still
    /// map to the pinned modes (`u32::MAX` pins arrivals to the root, `0`
    /// pins them to the tree) so stored thresholds keep their meaning.
    pub fn new(threshold: u32) -> Self {
        let mode = match threshold {
            0 => ArrivalMode::PinnedTree,
            u32::MAX => ArrivalMode::PinnedRoot,
            t => ArrivalMode::Threshold(t),
        };
        Self::with_mode(mode)
    }

    /// Creates a policy with an explicit decision mode.
    pub fn with_mode(mode: ArrivalMode) -> Self {
        Self { failures: 0, mode }
    }

    /// A policy that always arrives directly at the root.
    pub fn always_direct() -> Self {
        Self::with_mode(ArrivalMode::PinnedRoot)
    }

    /// A policy that always arrives at the tree.
    pub fn always_tree() -> Self {
        Self::with_mode(ArrivalMode::PinnedTree)
    }

    /// The decision mode this policy runs.
    pub fn mode(&self) -> ArrivalMode {
        self.mode
    }

    /// Current consecutive-failure credit (contention evidence an
    /// adaptive C-SNZI consults when deciding to inflate).
    pub fn failure_streak(&self) -> u32 {
        self.failures
    }

    /// Decides where the next arrival should go, given the freshly loaded
    /// root word.
    pub fn should_arrive_at_tree(&self, root: RootWord) -> bool {
        match self.mode {
            ArrivalMode::PinnedRoot => false,
            ArrivalMode::PinnedTree => true,
            ArrivalMode::Threshold(t) => self.failures >= t || root.tree > 0,
        }
    }

    /// Records a failed CAS on the root (contention evidence).
    pub fn record_failure(&mut self) {
        self.failures = self.failures.saturating_add(1);
    }

    /// Records a successful direct arrival (contention is subsiding).
    pub fn record_success(&mut self) {
        self.failures = self.failures.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_root() -> RootWord {
        RootWord::OPEN_EMPTY
    }

    fn tree_busy_root() -> RootWord {
        RootWord {
            direct: 0,
            tree: 3,
            open: true,
        }
    }

    #[test]
    fn fresh_policy_prefers_direct() {
        let p = ArrivalPolicy::default();
        assert!(!p.should_arrive_at_tree(quiet_root()));
    }

    #[test]
    fn failures_push_to_tree_and_successes_pull_back() {
        let mut p = ArrivalPolicy::new(2);
        p.record_failure();
        assert!(!p.should_arrive_at_tree(quiet_root()));
        p.record_failure();
        assert!(p.should_arrive_at_tree(quiet_root()));
        p.record_success();
        assert!(!p.should_arrive_at_tree(quiet_root()));
    }

    #[test]
    fn tree_surplus_from_others_pushes_to_tree() {
        let p = ArrivalPolicy::default();
        assert!(p.should_arrive_at_tree(tree_busy_root()));
    }

    #[test]
    fn pinned_policies() {
        let p = ArrivalPolicy::always_direct();
        assert!(!p.should_arrive_at_tree(tree_busy_root()));
        let p = ArrivalPolicy::always_tree();
        assert!(p.should_arrive_at_tree(quiet_root()));
    }

    #[test]
    fn sentinel_thresholds_map_to_pinned_modes() {
        assert_eq!(ArrivalPolicy::new(u32::MAX).mode(), ArrivalMode::PinnedRoot);
        assert_eq!(ArrivalPolicy::new(0).mode(), ArrivalMode::PinnedTree);
        assert_eq!(ArrivalPolicy::new(3).mode(), ArrivalMode::Threshold(3));
    }

    #[test]
    fn pinned_root_survives_saturated_failures() {
        let mut p = ArrivalPolicy::always_direct();
        for _ in 0..100 {
            p.record_failure();
        }
        // Pinned means pinned: no failure streak or tree surplus moves it.
        assert!(!p.should_arrive_at_tree(tree_busy_root()));
    }

    #[test]
    fn failure_streak_is_observable() {
        let mut p = ArrivalPolicy::default();
        assert_eq!(p.failure_streak(), 0);
        p.record_failure();
        p.record_failure();
        assert_eq!(p.failure_streak(), 2);
        p.record_success();
        assert_eq!(p.failure_streak(), 1);
    }

    #[test]
    fn failure_counter_saturates() {
        let mut p = ArrivalPolicy::with_mode(ArrivalMode::Threshold(u32::MAX - 1));
        for _ in 0..10 {
            p.record_failure();
        }
        // Saturating, no overflow; still short of the huge threshold.
        assert!(!p.should_arrive_at_tree(quiet_root()));
    }
}
