//! SNZI and closable SNZI (C-SNZI) — the scalable nonzero indicators at
//! the heart of the OLL reader-writer locks (*Scalable Reader-Writer
//! Locks*, SPAA 2009, §2).
//!
//! A C-SNZI lets threads **arrive** and **depart**, answers whether there
//! is a **surplus** of arrivals with a single load, and can be **closed**
//! so that further arrivals fail. In reader-writer-lock terms: readers
//! arrive and depart; writers close and open. The surplus is maintained in
//! a tree so that concurrent arrivals and departures at different leaves
//! touch different cache lines — the property that makes the OLL locks
//! scale under read contention.
//!
//! # Quick example
//!
//! ```
//! use oll_csnzi::{ArrivalPolicy, CSnzi, TreeShape};
//!
//! let c = CSnzi::new(TreeShape::for_threads(8));
//! let mut policy = ArrivalPolicy::default();
//!
//! // A reader arrives (succeeds while open) ...
//! let ticket = c.arrive(&mut policy, /* thread id */ 0);
//! assert!(ticket.arrived());
//!
//! // ... a writer trying to close sees the surplus ...
//! assert!(!c.close()); // closed, but readers still inside
//!
//! // ... and the last departing reader learns it must hand over.
//! assert!(!c.depart(ticket)); // false: closed and now empty
//! c.open();
//! ```
//!
//! The crate also ships the sequential specification object
//! ([`SpecCsnzi`], Figure 1 of the paper) used by the property tests, and
//! the plain non-closable [`Snzi`] used by the ablation benchmarks.

#![warn(missing_docs)]

mod csnzi;
pub mod node;
pub mod policy;
pub mod root;
pub mod snzi;
pub mod spec;
#[cfg(feature = "stats")]
pub mod stats;

pub use crate::csnzi::{CSnzi, CancelOutcome, LeafCursor, Query, Ticket};
pub use node::TreeShape;
pub use policy::{ArrivalMode, ArrivalPolicy};
pub use root::RootWord;
pub use snzi::Snzi;
pub use spec::SpecCsnzi;
