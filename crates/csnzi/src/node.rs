//! SNZI tree nodes and tree geometry.

use oll_util::sync::AtomicU64;
use oll_util::CachePadded;

/// A non-root SNZI node: just a counter (Figure 2's `SnziNode.cnt`).
///
/// Each node is cache-padded: the whole point of arriving at the tree is
/// that concurrent readers hit *different* cache lines.
#[derive(Debug)]
pub struct SnziNode {
    /// Surplus of arrivals at this node (including propagated ones).
    pub(crate) cnt: AtomicU64,
}

impl SnziNode {
    pub(crate) fn new() -> Self {
        Self {
            cnt: AtomicU64::new(0),
        }
    }
}

/// Geometry of the C-SNZI tree below the root.
///
/// The tree has `depth` levels of internal/leaf nodes; level `k`
/// (1-indexed) holds `fanout^k` nodes, and threads arrive at the leaves
/// (level `depth`). `depth = 0` means a root-only C-SNZI with no tree —
/// the cheap configuration for uncontended objects. `depth = 1` (root plus
/// a flat array of leaves) is the shape in the paper's Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeShape {
    /// Children per node.
    pub fanout: usize,
    /// Number of node levels below the root.
    pub depth: usize,
}

/// Where a node's propagation goes: another node, or the root word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Parent {
    Root,
    Node(usize),
}

impl TreeShape {
    /// Root-only: all arrivals go directly to the root word.
    pub const ROOT_ONLY: Self = Self {
        fanout: 1,
        depth: 0,
    };

    /// The paper's shape: a flat array of `leaves` leaf nodes under the
    /// root (Figure 2's `leafs[]`).
    pub fn flat(leaves: usize) -> Self {
        assert!(leaves > 0, "flat tree needs at least one leaf");
        Self {
            fanout: leaves,
            depth: 1,
        }
    }

    /// A shape sized for `threads` concurrent threads: one leaf per thread
    /// (so distinct threads default to distinct cache lines), flat under
    /// the root.
    pub fn for_threads(threads: usize) -> Self {
        Self::flat(threads.max(1))
    }

    /// Total number of non-root nodes.
    pub fn node_count(&self) -> usize {
        let mut total = 0usize;
        let mut level = 1usize;
        for _ in 0..self.depth {
            level = level.saturating_mul(self.fanout);
            total = total.saturating_add(level);
        }
        total
    }

    /// Number of leaves (nodes in the deepest level).
    pub fn leaf_count(&self) -> usize {
        if self.depth == 0 {
            0
        } else {
            self.fanout.saturating_pow(self.depth as u32)
        }
    }

    /// Index of the first leaf in the flat node array.
    pub fn first_leaf(&self) -> usize {
        self.node_count() - self.leaf_count()
    }

    /// The leaf index (into the flat node array) a thread with identity
    /// `hint` arrives at — Figure 2's `GetLeafForThread`.
    pub(crate) fn leaf_for(&self, hint: usize) -> usize {
        debug_assert!(self.depth > 0);
        self.first_leaf() + hint % self.leaf_count()
    }

    /// The parent of node `idx` in the flat node array.
    ///
    /// Closed form, O(1): level `k` (1-indexed) occupies indices
    /// `[(f^k - f)/(f - 1), (f^(k+1) - f)/(f - 1))`, so the level of
    /// `idx` is recovered as `k = ilog_f(idx·(f-1) + f)` and the parent
    /// is the node `(idx - level_start) / f` positions into level `k-1`.
    pub(crate) fn parent_of(&self, idx: usize) -> Parent {
        debug_assert!(idx < self.node_count());
        let f = self.fanout;
        if idx < f {
            // Level 1 propagates to the root word.
            return Parent::Root;
        }
        if f == 1 {
            // Unary chain: one node per level.
            return Parent::Node(idx - 1);
        }
        let k = (idx * (f - 1) + f).ilog(f);
        let level_start = (f.pow(k) - f) / (f - 1);
        let parent_level_start = (f.pow(k - 1) - f) / (f - 1);
        Parent::Node(parent_level_start + (idx - level_start) / f)
    }

    /// Allocates the node array for this shape.
    pub(crate) fn alloc_nodes(&self) -> Box<[CachePadded<SnziNode>]> {
        (0..self.node_count())
            .map(|_| CachePadded::new(SnziNode::new()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_only_has_no_nodes() {
        let s = TreeShape::ROOT_ONLY;
        assert_eq!(s.node_count(), 0);
        assert_eq!(s.leaf_count(), 0);
    }

    #[test]
    fn flat_shape_counts() {
        let s = TreeShape::flat(8);
        assert_eq!(s.node_count(), 8);
        assert_eq!(s.leaf_count(), 8);
        assert_eq!(s.first_leaf(), 0);
        for i in 0..8 {
            assert_eq!(s.parent_of(i), Parent::Root);
        }
    }

    #[test]
    fn leaf_for_distributes_by_hint() {
        let s = TreeShape::flat(4);
        assert_eq!(s.leaf_for(0), 0);
        assert_eq!(s.leaf_for(1), 1);
        assert_eq!(s.leaf_for(5), 1);
        assert_eq!(s.leaf_for(7), 3);
    }

    #[test]
    fn two_level_tree_geometry() {
        // fanout 2, depth 2: level 1 = nodes 0..2, level 2 (leaves) = 2..6.
        let s = TreeShape {
            fanout: 2,
            depth: 2,
        };
        assert_eq!(s.node_count(), 6);
        assert_eq!(s.leaf_count(), 4);
        assert_eq!(s.first_leaf(), 2);
        assert_eq!(s.parent_of(0), Parent::Root);
        assert_eq!(s.parent_of(1), Parent::Root);
        assert_eq!(s.parent_of(2), Parent::Node(0));
        assert_eq!(s.parent_of(3), Parent::Node(0));
        assert_eq!(s.parent_of(4), Parent::Node(1));
        assert_eq!(s.parent_of(5), Parent::Node(1));
    }

    #[test]
    fn three_level_tree_geometry() {
        // fanout 3, depth 3: levels of 3, 9, 27.
        let s = TreeShape {
            fanout: 3,
            depth: 3,
        };
        assert_eq!(s.node_count(), 3 + 9 + 27);
        assert_eq!(s.leaf_count(), 27);
        assert_eq!(s.first_leaf(), 12);
        // First node of level 3 maps to first node of level 2.
        assert_eq!(s.parent_of(12), Parent::Node(3));
        // Last node of level 3 maps to last node of level 2.
        assert_eq!(s.parent_of(38), Parent::Node(11));
        // Level 2 maps into level 1.
        assert_eq!(s.parent_of(3), Parent::Node(0));
        assert_eq!(s.parent_of(11), Parent::Node(2));
    }

    #[test]
    fn for_threads_never_zero() {
        assert_eq!(TreeShape::for_threads(0).leaf_count(), 1);
        assert_eq!(TreeShape::for_threads(16).leaf_count(), 16);
    }

    /// The original O(depth) level walk, kept as the oracle for the
    /// closed-form `parent_of`.
    fn parent_of_by_walk(s: &TreeShape, idx: usize) -> Parent {
        if idx < s.fanout {
            return Parent::Root;
        }
        let mut level_start = 0usize;
        let mut level_size = s.fanout;
        loop {
            let next_start = level_start + level_size;
            if idx < next_start {
                let pos = idx - level_start;
                let parent_level_start = level_start - level_size / s.fanout;
                return Parent::Node(parent_level_start + pos / s.fanout);
            }
            level_start = next_start;
            level_size *= s.fanout;
        }
    }

    #[test]
    fn closed_form_parent_matches_walk_exhaustively() {
        for fanout in 1..=9 {
            for depth in 1..=4 {
                let s = TreeShape { fanout, depth };
                for idx in 0..s.node_count() {
                    assert_eq!(
                        s.parent_of(idx),
                        parent_of_by_walk(&s, idx),
                        "fanout={fanout} depth={depth} idx={idx}"
                    );
                }
            }
        }
    }

    #[cfg(feature = "proptest")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn closed_form_parent_matches_walk(
                fanout in 1usize..65,
                depth in 1usize..5,
                idx_seed in 0usize..usize::MAX,
            ) {
                // Cap the node count so deep wide shapes stay cheap.
                let depth = if fanout > 8 { depth.min(2) } else { depth };
                let s = TreeShape { fanout, depth };
                let idx = idx_seed % s.node_count();
                assert_eq!(s.parent_of(idx), parent_of_by_walk(&s, idx));
            }
        }
    }
}
