//! Shared-write instrumentation (cargo feature `stats`).
//!
//! The paper's scalability argument is about *where writes land*: a
//! centralized lockword absorbs one or more CAS writes from every
//! acquisition and release, while the C-SNZI routes most of them to
//! per-leaf cache lines, touching the shared root only when a leaf's
//! surplus crosses zero. These counters make that claim measurable: with
//! `--features stats`, every successful modification of the root word and
//! of any tree node is counted, and `EXPERIMENTS.md` reports root writes
//! per acquisition for the direct and tree policies.
//!
//! Compiled out entirely (zero cost) unless the `stats` feature is on.

use oll_util::sync::{AtomicU64, Ordering};

/// Per-C-SNZI shared-write counters.
#[derive(Debug, Default)]
pub struct CsnziStats {
    /// Successful modifications of the root word (CAS or store) — the
    /// *shared* cache line every query also reads.
    pub(crate) root_writes: AtomicU64,
    /// Successful modifications of tree node counters — distributed
    /// cache lines.
    pub(crate) node_writes: AtomicU64,
    /// Failed CAS attempts on the root word — wasted shared-line traffic
    /// under contention.
    pub(crate) root_cas_failures: AtomicU64,
}

/// A snapshot of [`CsnziStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Successful root-word writes.
    pub root_writes: u64,
    /// Successful tree-node writes.
    pub node_writes: u64,
    /// Failed root CAS attempts.
    pub root_cas_failures: u64,
}

impl CsnziStats {
    pub(crate) fn record_root_write(&self) {
        self.root_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_node_write(&self) {
        self.node_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_root_cas_failure(&self) {
        self.root_cas_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads the counters (racy snapshot; exact once quiescent).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            root_writes: self.root_writes.load(Ordering::Relaxed),
            node_writes: self.node_writes.load(Ordering::Relaxed),
            root_cas_failures: self.root_cas_failures.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters.
    pub fn reset(&self) {
        self.root_writes.store(0, Ordering::Relaxed);
        self.node_writes.store(0, Ordering::Relaxed);
        self.root_cas_failures.store(0, Ordering::Relaxed);
    }
}
