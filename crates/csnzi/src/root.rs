//! The C-SNZI root word: a single CAS-able 64-bit value.
//!
//! Figure 2 of the paper packs the root node into "a single CASable word"
//! holding a count and an OPEN/CLOSED state. The evaluation section (§5.1)
//! refines this into **two** counters — one for arrivals that propagated up
//! from the tree and one for *direct* arrivals at the root — which both
//! enables the `ShouldArriveAtTree` heuristic ("favor direct arrivals until
//! it ... sees that other threads have arrived using the tree") and is the
//! basis of write-upgrade support (§3.2.1). We implement the dual-counter
//! word; the single-counter root of Figure 2 is the special case where the
//! tree count is always zero (a root-only C-SNZI).
//!
//! Bit layout of the packed word:
//!
//! ```text
//!  63    62..32          31..1           0
//! [spare][tree count 31b][direct cnt 31b][open flag]
//! ```
//!
//! 31-bit counters bound the surplus at ~2.1 billion concurrent holders per
//! counter, far beyond any plausible thread count.

use core::fmt;

/// Number of bits per counter.
const COUNT_BITS: u32 = 31;
/// Maximum value of each counter.
pub const COUNT_MAX: u64 = (1 << COUNT_BITS) - 1;

const OPEN_BIT: u64 = 1;
const DIRECT_SHIFT: u32 = 1;
const TREE_SHIFT: u32 = 1 + COUNT_BITS;
const COUNT_MASK: u64 = COUNT_MAX;

/// A decoded root word: `(direct, tree, open)`.
///
/// `surplus() == direct + tree` is the abstract C-SNZI surplus of Figure 1.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct RootWord {
    /// Surplus of arrivals made directly at the root.
    pub direct: u64,
    /// Surplus of arrivals that propagated up from the tree.
    pub tree: u64,
    /// Whether the C-SNZI is open.
    pub open: bool,
}

impl RootWord {
    /// The word for a freshly created, open, empty C-SNZI.
    pub const OPEN_EMPTY: Self = Self {
        direct: 0,
        tree: 0,
        open: true,
    };

    /// The word for a closed, empty C-SNZI (write-locked, in lock terms).
    pub const CLOSED_EMPTY: Self = Self {
        direct: 0,
        tree: 0,
        open: false,
    };

    /// Total surplus (Figure 1's abstract `surplus`).
    #[inline]
    pub fn surplus(self) -> u64 {
        self.direct + self.tree
    }

    /// Packs into the 64-bit representation.
    #[inline]
    pub fn pack(self) -> u64 {
        debug_assert!(self.direct <= COUNT_MAX, "direct counter overflow");
        debug_assert!(self.tree <= COUNT_MAX, "tree counter overflow");
        (self.tree << TREE_SHIFT)
            | (self.direct << DIRECT_SHIFT)
            | if self.open { OPEN_BIT } else { 0 }
    }

    /// Unpacks from the 64-bit representation.
    #[inline]
    pub fn unpack(raw: u64) -> Self {
        Self {
            direct: (raw >> DIRECT_SHIFT) & COUNT_MASK,
            tree: (raw >> TREE_SHIFT) & COUNT_MASK,
            open: raw & OPEN_BIT != 0,
        }
    }

    /// Returns a copy with one more direct arrival.
    #[inline]
    pub fn with_direct_arrival(self) -> Self {
        Self {
            direct: self.direct + 1,
            ..self
        }
    }

    /// Returns a copy with one fewer direct arrival.
    #[inline]
    pub fn with_direct_departure(self) -> Self {
        debug_assert!(self.direct > 0, "direct departure with no direct surplus");
        Self {
            direct: self.direct - 1,
            ..self
        }
    }

    /// Returns a copy with one more tree arrival.
    #[inline]
    pub fn with_tree_arrival(self) -> Self {
        Self {
            tree: self.tree + 1,
            ..self
        }
    }

    /// Returns a copy with one fewer tree arrival.
    #[inline]
    pub fn with_tree_departure(self) -> Self {
        debug_assert!(self.tree > 0, "tree departure with no tree surplus");
        Self {
            tree: self.tree - 1,
            ..self
        }
    }

    /// Returns a copy that is closed.
    #[inline]
    pub fn closed(self) -> Self {
        Self {
            open: false,
            ..self
        }
    }
}

impl fmt::Debug for RootWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RootWord {{ direct: {}, tree: {}, {} }}",
            self.direct,
            self.tree,
            if self.open { "OPEN" } else { "CLOSED" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips() {
        for direct in [0u64, 1, 2, 1000, COUNT_MAX] {
            for tree in [0u64, 1, 7, COUNT_MAX] {
                for open in [false, true] {
                    let w = RootWord { direct, tree, open };
                    assert_eq!(RootWord::unpack(w.pack()), w);
                }
            }
        }
    }

    #[test]
    fn constants_pack_as_expected() {
        assert_eq!(RootWord::OPEN_EMPTY.pack(), OPEN_BIT);
        assert_eq!(RootWord::CLOSED_EMPTY.pack(), 0);
        assert_eq!(RootWord::OPEN_EMPTY.surplus(), 0);
    }

    #[test]
    fn counters_are_independent() {
        let w = RootWord::OPEN_EMPTY
            .with_direct_arrival()
            .with_tree_arrival()
            .with_tree_arrival();
        assert_eq!(w.direct, 1);
        assert_eq!(w.tree, 2);
        assert_eq!(w.surplus(), 3);
        let w = w.with_tree_departure().with_direct_departure();
        assert_eq!(w.surplus(), 1);
        assert!(w.open);
        assert!(!w.closed().open);
    }

    #[test]
    fn max_counts_do_not_collide() {
        let w = RootWord {
            direct: COUNT_MAX,
            tree: COUNT_MAX,
            open: true,
        };
        let u = RootWord::unpack(w.pack());
        assert_eq!(u.direct, COUNT_MAX);
        assert_eq!(u.tree, COUNT_MAX);
        assert!(u.open);
    }
}
