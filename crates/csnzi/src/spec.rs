//! Sequential reference model of the C-SNZI specification (Figure 1).
//!
//! This is a direct transliteration of the paper's specification, plus the
//! §2.1 variations (`OpenWithArrivals`, `CloseIfEmpty`). It exists so that
//! property tests can check the tree-based implementation against the spec
//! on arbitrary operation sequences, and so the documentation has an
//! executable statement of what a C-SNZI *is*.

/// The abstract state of Figure 1: a surplus and an OPEN/CLOSED flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecCsnzi {
    surplus: u64,
    open: bool,
}

impl Default for SpecCsnzi {
    fn default() -> Self {
        Self::new()
    }
}

impl SpecCsnzi {
    /// A C-SNZI is initially open with no surplus.
    pub fn new() -> Self {
        Self {
            surplus: 0,
            open: true,
        }
    }

    /// `Arrive`: if open, increments the surplus and returns `true`;
    /// otherwise fails with no state change.
    pub fn arrive(&mut self) -> bool {
        if self.open {
            self.surplus += 1;
            true
        } else {
            false
        }
    }

    /// `Depart`: decrements the surplus (requires a surplus); returns
    /// `false` iff this was the last departure from a *closed* C-SNZI.
    ///
    /// # Panics
    /// Panics if called with no surplus (the spec's precondition).
    #[allow(clippy::nonminimal_bool)] // mirrors Figure 1 verbatim
    pub fn depart(&mut self) -> bool {
        assert!(self.surplus > 0, "Depart requires surplus > 0");
        self.surplus -= 1;
        !(self.surplus == 0 && !self.open)
    }

    /// `Query`: returns `(surplus > 0, state = OPEN)`.
    pub fn query(&self) -> (bool, bool) {
        (self.surplus > 0, self.open)
    }

    /// `Close`: closes an open C-SNZI; returns `true` iff it was open and
    /// the surplus was (and remains) zero.
    pub fn close(&mut self) -> bool {
        if self.open {
            self.open = false;
            self.surplus == 0
        } else {
            false
        }
    }

    /// `Open`: requires the C-SNZI to be closed with zero surplus.
    ///
    /// # Panics
    /// Panics if the precondition is violated.
    pub fn open(&mut self) {
        assert!(
            !self.open && self.surplus == 0,
            "Open requires state = CLOSED and surplus = 0"
        );
        self.open = true;
    }

    /// `CloseIfEmpty` (§2.1): like `Close` but does nothing when there is a
    /// surplus. Returns `true` iff the state changed from OPEN to CLOSED.
    pub fn close_if_empty(&mut self) -> bool {
        if self.open && self.surplus == 0 {
            self.open = false;
            true
        } else {
            false
        }
    }

    /// `OpenWithArrivals` (§2.1): atomically opens, performs `cnt` arrivals,
    /// and optionally closes again. Requires closed with zero surplus.
    ///
    /// # Panics
    /// Panics if the precondition is violated.
    pub fn open_with_arrivals(&mut self, cnt: u64, close: bool) {
        assert!(
            !self.open && self.surplus == 0,
            "OpenWithArrivals requires state = CLOSED and surplus = 0"
        );
        self.surplus = cnt;
        self.open = !close;
    }

    /// Current surplus (test observability; not part of the C-SNZI API).
    pub fn surplus(&self) -> u64 {
        self.surplus
    }

    /// Current open flag (test observability).
    pub fn is_open(&self) -> bool {
        self.open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initially_open_and_empty() {
        let s = SpecCsnzi::new();
        assert_eq!(s.query(), (false, true));
    }

    #[test]
    fn arrive_depart_cycle() {
        let mut s = SpecCsnzi::new();
        assert!(s.arrive());
        assert_eq!(s.query(), (true, true));
        assert!(s.depart()); // open ⇒ depart returns true even when last
        assert_eq!(s.query(), (false, true));
    }

    #[test]
    fn arrivals_fail_while_closed() {
        let mut s = SpecCsnzi::new();
        assert!(s.close());
        assert!(!s.arrive());
        assert_eq!(s.query(), (false, false));
        s.open();
        assert!(s.arrive());
    }

    #[test]
    fn close_with_surplus_returns_false_and_still_closes() {
        let mut s = SpecCsnzi::new();
        assert!(s.arrive());
        assert!(!s.close());
        assert_eq!(s.query(), (true, false)); // read-locked, writer waiting
                                              // Last departure from a closed C-SNZI reports false.
        assert!(!s.depart());
        assert_eq!(s.query(), (false, false));
    }

    #[test]
    fn last_departure_signal_only_when_closed() {
        let mut s = SpecCsnzi::new();
        s.arrive();
        s.arrive();
        s.close();
        assert!(s.depart()); // not last
        assert!(!s.depart()); // last + closed
    }

    #[test]
    fn close_if_empty_noop_with_surplus() {
        let mut s = SpecCsnzi::new();
        s.arrive();
        assert!(!s.close_if_empty());
        assert!(s.is_open());
        s.depart();
        assert!(s.close_if_empty());
        assert!(!s.is_open());
        assert!(!s.close_if_empty()); // already closed
    }

    #[test]
    fn open_with_arrivals_sets_surplus_and_state() {
        let mut s = SpecCsnzi::new();
        s.close();
        s.open_with_arrivals(3, false);
        assert_eq!(s.surplus(), 3);
        assert!(s.is_open());

        let mut s = SpecCsnzi::new();
        s.close();
        s.open_with_arrivals(2, true);
        assert_eq!(s.query(), (true, false));
        assert!(s.depart());
        assert!(!s.depart()); // last departure from closed
    }

    #[test]
    #[should_panic(expected = "surplus > 0")]
    fn depart_without_surplus_panics() {
        let mut s = SpecCsnzi::new();
        s.depart();
    }

    #[test]
    #[should_panic(expected = "CLOSED")]
    fn open_when_open_panics() {
        let mut s = SpecCsnzi::new();
        s.open();
    }

    #[test]
    fn closed_with_no_surplus_stays_empty_until_open() {
        let mut s = SpecCsnzi::new();
        s.close();
        // arrivals fail, so surplus can only stay zero
        for _ in 0..5 {
            assert!(!s.arrive());
        }
        assert_eq!(s.surplus(), 0);
        s.open();
        assert!(s.arrive());
    }
}
