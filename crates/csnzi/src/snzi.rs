//! Plain (non-closable) SNZI.
//!
//! The original scalable nonzero indicator of Ellen, Lev, Luchangco, and
//! Moir (PODC'07), in the simplified form of Lev et al. that this paper
//! builds C-SNZI on. A C-SNZI that is never closed behaves exactly like a
//! SNZI and compiles to the same operations, so `Snzi` is a thin veneer
//! over [`CSnzi`] that exposes the three-operation interface
//! (`arrive`/`depart`/`query`) with infallible arrivals.
//!
//! Kept as a public type because (a) it *is* one of the systems the paper
//! depends on, and (b) the `ablation_csnzi_vs_counter` benchmark compares
//! it against a centralized atomic counter to demonstrate the mechanism
//! behind the lock results.

use crate::csnzi::{CSnzi, Ticket};
use crate::node::TreeShape;
use crate::policy::ArrivalPolicy;

/// A scalable nonzero indicator: threads `arrive` and `depart`; `query`
/// reports whether there is a surplus of arrivals.
#[derive(Debug, Default)]
pub struct Snzi {
    inner: CSnzi,
}

impl Snzi {
    /// Creates an empty SNZI with the given tree shape.
    pub fn new(shape: TreeShape) -> Self {
        Self {
            inner: CSnzi::new(shape),
        }
    }

    /// Arrives; always succeeds (a SNZI cannot be closed). Returns the
    /// ticket to pass to [`depart`](Self::depart).
    pub fn arrive(&self, policy: &mut ArrivalPolicy, leaf_hint: usize) -> Ticket {
        let t = self.inner.arrive(policy, leaf_hint);
        debug_assert!(t.arrived(), "SNZI arrivals cannot fail");
        t
    }

    /// Departs a previous arrival. (The SNZI `Depart` has no return value;
    /// a surplus-zero-while-closed condition cannot occur.)
    pub fn depart(&self, ticket: Ticket) {
        let ok = self.inner.depart(ticket);
        debug_assert!(ok, "SNZI departures never observe a closed object");
    }

    /// Whether there have been more arrivals than departures.
    pub fn query(&self) -> bool {
        self.inner.query().nonzero
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn arrive_sets_query_depart_clears_it() {
        let s = Snzi::new(TreeShape::flat(4));
        assert!(!s.query());
        let mut p = ArrivalPolicy::default();
        let t1 = s.arrive(&mut p, 0);
        let t2 = s.arrive(&mut p, 1);
        assert!(s.query());
        s.depart(t1);
        assert!(s.query());
        s.depart(t2);
        assert!(!s.query());
    }

    #[test]
    fn concurrent_surplus_is_never_lost() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        const THREADS: usize = 6;
        let s = Arc::new(Snzi::new(TreeShape::flat(THREADS)));
        let anyone_in = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let s = Arc::clone(&s);
            let anyone_in = Arc::clone(&anyone_in);
            handles.push(std::thread::spawn(move || {
                let mut p = ArrivalPolicy::always_tree();
                for _ in 0..1_000 {
                    let t = s.arrive(&mut p, tid);
                    anyone_in.store(true, Ordering::Relaxed);
                    // While *we* are inside, query must say nonzero.
                    assert!(s.query());
                    s.depart(t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(!s.query());
    }
}
