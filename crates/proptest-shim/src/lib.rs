//! A minimal, dependency-free stand-in for the [proptest](https://docs.rs/proptest)
//! crate, covering exactly the surface the workspace's property suites use:
//! the [`Strategy`] trait with `prop_map`, integer-range / tuple / `Just` /
//! `any::<bool>()` strategies, `prop_oneof!`, `collection::vec`, and the
//! `proptest!` macro with `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! Why it exists: tier-1 (`cargo build --release && cargo test -q`) must run
//! with **no registry access**, so external dev-dependencies cannot be part
//! of the resolved workspace graph. Dependents rename this crate to
//! `proptest` (`proptest = { path = ..., package = "oll-proptest" }`), so the
//! test sources read exactly like ordinary proptest suites and can switch
//! back to the real crate by flipping one manifest line.
//!
//! Differences from real proptest, deliberately accepted:
//! * **No shrinking.** On failure the panic message names the case number;
//!   cases are derived deterministically from the test's module path, name,
//!   and case index, so every failure replays exactly.
//! * Only the strategy combinators listed above are provided.

#![warn(missing_docs)]

use core::marker::PhantomData;
use core::ops::Range;

/// The deterministic PRNG driving every generated value.
pub type TestRng = oll_util::XorShift64;

/// Run configuration for a [`proptest!`] block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches real proptest's default case count.
        Self { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree: a strategy is just a
/// deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = self.end.checked_sub(self.start).expect("empty range") as u64;
                assert!(span > 0, "empty range strategy");
                self.start + rng.next_below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "generate any value" strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize);

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point: an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// A boxed generator arm for [`OneOf`].
pub type OneOfArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice between boxed alternative strategies (see [`prop_oneof!`]).
pub struct OneOf<V> {
    arms: Vec<OneOfArm<V>>,
}

impl<V> OneOf<V> {
    /// Builds a choice over `arms`. Panics if `arms` is empty.
    pub fn new(arms: Vec<OneOfArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.next_below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` of `elem`-generated values with a length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Derives the deterministic RNG for one test case. Public for the
/// [`proptest!`] macro expansion; not part of the user-facing API.
#[doc(hidden)]
pub fn test_rng(module: &str, test: &str, case: u32) -> TestRng {
    // FNV-1a over the test's identity, then SplitMix spreading per case.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in module.bytes().chain(test.bytes()) {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::for_thread(h, case as usize)
}

/// Prints the failing case number if the test body panics, so failures can
/// be replayed (generation is a pure function of test identity + case).
#[doc(hidden)]
pub struct CaseReporter {
    /// Test function name.
    pub test: &'static str,
    /// Zero-based case index.
    pub case: u32,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest shim: `{}` failed at deterministic case {} (rerun reproduces it)",
                self.test, self.case
            );
        }
    }
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $({
                let __arm = $arm;
                Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::generate(&__arm, rng)
                }) as Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body for `config.cases` deterministic
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let __reporter = $crate::CaseReporter {
                    test: stringify!($name),
                    case: __case,
                };
                let mut __rng = $crate::test_rng(module_path!(), stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
                drop(__reporter);
            }
        }
        $crate::__proptest_cases!(($cfg) $($rest)*);
    };
}

/// `use proptest::prelude::*;` — the imports the suites expect.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng("m", "t", 0);
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0u64..1000, any::<bool>());
        let mut a = crate::test_rng("m", "t", 7);
        let mut b = crate::test_rng("m", "t", 7);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![(0usize..4).prop_map(|v| v * 10), Just(99usize),];
        let mut rng = crate::test_rng("m", "o", 0);
        let mut saw_just = false;
        for _ in 0..200 {
            let v: usize = s.generate(&mut rng);
            assert!(v == 99 || (v % 10 == 0 && v < 40));
            saw_just |= v == 99;
        }
        assert!(saw_just);
    }

    #[test]
    fn vec_respects_length_range() {
        let s = collection::vec(0u8..5, 2..6);
        let mut rng = crate::test_rng("m", "v", 1);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_binds(
            x in 0usize..10,
            pair in (0u8..3, any::<bool>()),
        ) {
            assert!(x < 10);
            assert!(pair.0 < 3);
        }
    }
}
