//! Flight-recorder event tracing for the OLL lock family.
//!
//! `oll-telemetry`'s counters say *how often* slow paths and hand-offs
//! happen; this crate records *when* and *to whom*. Every recording
//! thread owns a fixed-capacity lock-free ring of compact timestamped
//! records (monotonic ns, thread id, lock id, event kind, causality
//! token); a collector drains the rings into a merged [`Timeline`]; an
//! [`analyzer`](analyze) turns the timeline into per-acquisition wait
//! breakdowns, stitched hand-off edges, grant cascades, wait-for
//! chains, and convoy/starvation anomalies; an [exporter](export)
//! renders Chrome Trace Event JSON that loads directly in Perfetto.
//!
//! # Zero cost when disabled
//!
//! Locks never talk to this crate directly — they record through the
//! `oll_telemetry::Telemetry` facade, whose `trace` feature forwards to
//! this crate's `enabled` feature. Without it, [`emit`] and the
//! registration hooks are empty `#[inline]` functions, [`TraceSession`]
//! is zero-sized, and no rings, atomics, or clock reads exist anywhere.
//! The timeline/analyzer/export types compile either way so tooling
//! needs no `cfg` of its own — a disabled build just collects an empty
//! timeline.
//!
//! # Causality tokens
//!
//! A hand-off involves two threads that never observe each other's
//! clocks: the releaser that picks a successor and the waiter that
//! wakes. Both sides know one shared value — the waiter-node reference
//! (FOLL/ROLL) or the wait-event address (GOLL/Solaris-like) — which
//! records carry as the `token`. The waiter stamps it on `enqueued`,
//! the releaser on `granted`; the analyzer joins the two into a
//! grantor→grantee edge.

#![warn(missing_docs)]

pub mod analyze;
pub mod collect;
pub mod export;
pub mod record;

#[cfg(feature = "enabled")]
mod ring;
#[cfg(not(feature = "enabled"))]
mod ring {
    /// Default per-thread ring capacity (records).
    pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;
}

pub use analyze::{analyze, render_report_text, AnalyzerConfig, TraceReport};
pub use collect::{
    capture_all, emit, now_ns, register_lock, rename_lock, set_thread_ring_capacity,
    LockDescriptor, ThreadDescriptor, Timeline, TraceSession,
};
pub use export::render_chrome_trace;
pub use record::{TraceKind, TraceRecord};
pub use ring::DEFAULT_RING_CAPACITY;

/// Whether the flight recorder is compiled in at all.
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_is_zero_sized_and_silent() {
        assert!(!enabled());
        assert_eq!(std::mem::size_of::<TraceSession>(), 0);
        assert_eq!(register_lock("TEST", "x"), 0);
        emit(1, TraceKind::ReadFast, 7);
        let tl = TraceSession::begin().collect();
        assert!(tl.records.is_empty());
        assert!(!tl.truncated());
        assert!(capture_all().records.is_empty());
        assert_eq!(now_ns(), 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn enabled_end_to_end() {
        assert!(enabled());
        let lock = register_lock("TEST", "lib/e2e");
        assert!(lock > 0);
        let session = TraceSession::begin();
        emit(lock, TraceKind::WriteBegin, 0);
        emit(lock, TraceKind::WriteAcquired, 0);
        emit(lock, TraceKind::WriteRelease, 0);
        let tl = session.collect().filter_lock(lock);
        assert_eq!(tl.records.len(), 3);
        let report = analyze(&tl, &AnalyzerConfig::default());
        assert_eq!(report.acquisitions.len(), 1);
        assert_eq!(report.acquisitions[0].queued_ns, 0);
        let doc = render_chrome_trace(&tl);
        assert!(doc.contains("\"name\":\"hold:write\""));
    }
}
