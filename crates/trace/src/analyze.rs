//! Timeline analysis: where did each acquisition's microseconds go?
//!
//! A single forward pass over the time-sorted records drives a small
//! state machine per `(thread, lock)`:
//!
//! - `read_begin`/`write_begin` opens an acquisition,
//!   `read_acquired`/`write_acquired` closes it. The `enqueued` and
//!   `granted` markers in between split the total wait into **spin**
//!   (entry → queue join), **queued** (queue join → grant), and
//!   **hand-off** (grant → wake) components that sum to the total by
//!   construction.
//! - An `enqueued(token)` parks the thread on `token`; a later
//!   `granted(token)` from the *releasing* thread stitches grantor and
//!   grantee into a [`HandoffEdge`]. Edges whose grantee goes on to
//!   grant someone else chain into multi-hop [`Cascade`]s — the grant
//!   cascades the telemetry counters can only count.
//! - Anomaly passes flag **convoys** (≥K consecutive hand-off-granted
//!   acquisitions on one lock with no fast path breaking the chain) and
//!   **starvation** (a waiter queued longer than `factor ×` the
//!   distribution's percentile). A cross-lock pass reports **wait-for
//!   chains**: a waiter whose lock holder is itself parked on another
//!   lock.

use crate::collect::Timeline;
use crate::record::TraceKind;
use std::collections::HashMap;

/// Tunables for the anomaly passes.
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// A convoy is ≥ this many consecutive hand-off-granted
    /// acquisitions on one lock.
    pub convoy_k: usize,
    /// Starvation baseline percentile of the queued-time distribution.
    pub starvation_percentile: f64,
    /// Starvation threshold = `factor ×` that percentile.
    pub starvation_factor: f64,
    /// Ignore queued times below this floor (scheduler noise).
    pub min_starvation_ns: u64,
    /// Maps a trace thread id to a locality (cohort) rank so hand-off
    /// edges can be classified as same-socket or cross-socket. The
    /// default mirrors the cohort lock's own placement heuristic
    /// (`oll_util::topology::cohort_of_current`): trace tids are dense
    /// registration-order counters, exactly like `dense_thread_id`, so
    /// `cohort_of(tid % cpus)` reproduces the lock-side mapping. On
    /// undetected (single-socket fallback) topologies every tid maps to
    /// rank 0 and the cross-socket count is deterministically zero.
    pub cohort_of_tid: fn(u32) -> usize,
}

/// Default [`AnalyzerConfig::cohort_of_tid`]: the topology-derived rank
/// the cohort writer path would pick for this dense thread id.
fn topology_cohort_of_tid(tid: u32) -> usize {
    let t = oll_util::topology::Topology::get();
    t.cohort_of(tid as usize % t.cpus())
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        Self {
            convoy_k: 8,
            starvation_percentile: 95.0,
            starvation_factor: 4.0,
            min_starvation_ns: 1_000,
            cohort_of_tid: topology_cohort_of_tid,
        }
    }
}

/// One completed acquisition with its wait breakdown.
/// `spin_ns + queued_ns + handoff_ns == acquired_ns - begin_ns`.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Acquiring thread.
    pub tid: u32,
    /// The lock.
    pub lock: u32,
    /// Write (vs read) acquisition.
    pub write: bool,
    /// `lock_*` entry time.
    pub begin_ns: u64,
    /// Queue-join time, if the slow path was taken.
    pub enqueued_ns: Option<u64>,
    /// Grant time, if ownership arrived via an explicit hand-off.
    pub granted_ns: Option<u64>,
    /// Success time.
    pub acquired_ns: u64,
    /// Causality token waited on, if queued.
    pub token: Option<u64>,
    /// Entry → queue join (the whole wait, if never queued).
    pub spin_ns: u64,
    /// Queue join → grant (or → success when no grant was seen).
    pub queued_ns: u64,
    /// Grant → wake.
    pub handoff_ns: u64,
}

impl Acquisition {
    /// Total acquisition latency.
    pub fn total_ns(&self) -> u64 {
        self.acquired_ns - self.begin_ns
    }
}

/// A stitched hand-off: `grantor_tid` released and granted the waiter(s)
/// parked on `token`; `grantee_tid` woke at `wake_ns`.
#[derive(Debug, Clone)]
pub struct HandoffEdge {
    /// The lock.
    pub lock: u32,
    /// What the grantee was parked on.
    pub token: u64,
    /// Releasing (granting) thread.
    pub grantor_tid: u32,
    /// Grant time (emitted by the grantor).
    pub grant_ns: u64,
    /// Woken thread.
    pub grantee_tid: u32,
    /// Grantee's `*_acquired` time (`None` if it never woke inside the
    /// collection window).
    pub wake_ns: Option<u64>,
}

/// A chain of hand-offs where each grantee became the next grantor.
#[derive(Debug, Clone)]
pub struct Cascade {
    /// The lock.
    pub lock: u32,
    /// Thread chain: first grantor, then each grantee in order.
    pub tids: Vec<u32>,
    /// First grant time.
    pub start_ns: u64,
    /// Last grant time.
    pub end_ns: u64,
}

impl Cascade {
    /// Number of hand-off hops (edges) in the chain.
    pub fn hops(&self) -> usize {
        self.tids.len().saturating_sub(1)
    }
}

/// ≥K consecutive hand-off-granted acquisitions on one lock.
#[derive(Debug, Clone)]
pub struct Convoy {
    /// The lock.
    pub lock: u32,
    /// Consecutive hand-off-granted acquisitions.
    pub length: usize,
    /// First acquisition's success time.
    pub start_ns: u64,
    /// Last acquisition's success time.
    pub end_ns: u64,
}

/// A waiter queued far beyond the distribution's percentile.
#[derive(Debug, Clone)]
pub struct Starvation {
    /// The lock.
    pub lock: u32,
    /// The starved thread.
    pub tid: u32,
    /// How long it sat in the queue.
    pub queued_ns: u64,
    /// The threshold it exceeded.
    pub threshold_ns: u64,
}

/// A cross-lock blocking chain observed at one instant: `tids[0]` waits
/// on `locks[0]`, held by `tids[1]` which waits on `locks[1]`, …
#[derive(Debug, Clone)]
pub struct WaitChain {
    /// Threads, waiter first.
    pub tids: Vec<u32>,
    /// Locks, one per wait hop.
    pub locks: Vec<u32>,
    /// When the chain was observed.
    pub ts_ns: u64,
}

/// A robustness event surfaced by the hazard layer — a poisoning, a
/// detected deadlock, a watchdog stall escalation, or a forced bias
/// degradation — copied out of the record stream so a report reader sees
/// them next to the contention anomalies they usually explain.
#[derive(Debug, Clone)]
pub struct HazardAnomaly {
    /// The lock.
    pub lock: u32,
    /// Thread that emitted the event.
    pub tid: u32,
    /// Which hazard event (one of [`TraceKind::Poisoned`],
    /// [`TraceKind::DeadlockDetected`], [`TraceKind::WatchdogStall`],
    /// [`TraceKind::BiasDegraded`]).
    pub kind: TraceKind,
    /// When it was emitted.
    pub ts_ns: u64,
}

/// A self-tuning controller decision that changed policy — copied out of
/// the record stream so a report reader can correlate a throughput or
/// wait-time regime change with the knob store that caused it.
#[derive(Debug, Clone)]
pub struct PolicyFlip {
    /// The lock whose controller flipped.
    pub lock: u32,
    /// Thread whose slow-path entry closed the deciding window.
    pub tid: u32,
    /// When the flip was emitted.
    pub ts_ns: u64,
    /// Controller-defined payload (the packed old/new regime pair).
    pub token: u64,
}

/// Per-lock wait aggregate over all completed acquisitions.
#[derive(Debug, Clone, Default)]
pub struct LockBreakdown {
    /// The lock.
    pub lock: u32,
    /// Completed acquisitions.
    pub acquisitions: usize,
    /// … of which entered the wait queue.
    pub queued: usize,
    /// … of which were woken by an explicit hand-off.
    pub via_handoff: usize,
    /// Summed spin component.
    pub spin_ns: u64,
    /// Summed queued component.
    pub queued_ns: u64,
    /// Summed hand-off component.
    pub handoff_ns: u64,
    /// Worst single acquisition latency.
    pub max_total_ns: u64,
}

/// Everything [`analyze`] derives from a timeline.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Every completed acquisition, in completion order.
    pub acquisitions: Vec<Acquisition>,
    /// Per-lock aggregates (sorted by lock id).
    pub breakdowns: Vec<LockBreakdown>,
    /// Stitched hand-off edges, in grant order.
    pub edges: Vec<HandoffEdge>,
    /// Multi-hop grant cascades (≥ 2 edges).
    pub cascades: Vec<Cascade>,
    /// Convoy anomalies.
    pub convoys: Vec<Convoy>,
    /// Starvation anomalies.
    pub starvations: Vec<Starvation>,
    /// Cross-lock wait-for chains (≥ 2 hops), capped at 256.
    pub wait_chains: Vec<WaitChain>,
    /// Hazard-layer events (poison / deadlock / watchdog), capped at 256.
    pub hazard_anomalies: Vec<HazardAnomaly>,
    /// Self-tuning controller policy flips, capped at 256.
    pub policy_flips: Vec<PolicyFlip>,
    /// Sampling windows the controller closed (`tuner_sample` records).
    pub tuner_samples: u64,
    /// Regime changes the controller saw but held back on (hysteresis or
    /// the decision-rate cap; `tuner_hold` records).
    pub tuner_holds: u64,
    /// Hand-off edges whose grantor and grantee map to different
    /// locality ranks under [`AnalyzerConfig::cohort_of_tid`].
    pub cross_socket_handoffs: u64,
    /// Total stitched hand-off edges (`edges.len()`), the denominator
    /// for the cross-socket ratio.
    pub total_handoffs: u64,
    /// `granted` markers with no parked waiter in the window (grants
    /// that raced collection or whose enqueue fell outside it).
    pub unmatched_grants: u64,
    /// Copied from the timeline for report rendering.
    pub dropped: u64,
}

#[derive(Debug)]
struct Pending {
    write: bool,
    begin_ns: u64,
    enqueued: Option<(u64, u64)>, // (ts, token)
    granted_ns: Option<u64>,
}

/// Runs every analyzer pass over `tl`.
pub fn analyze(tl: &Timeline, cfg: &AnalyzerConfig) -> TraceReport {
    let mut report = TraceReport {
        dropped: tl.dropped,
        ..TraceReport::default()
    };

    let mut pending: HashMap<(u32, u32), Pending> = HashMap::new();
    let mut waiters: HashMap<(u32, u64), Vec<u32>> = HashMap::new();
    let mut open_edges: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
    let mut holders: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut waiting_on: HashMap<u32, u32> = HashMap::new();

    for r in &tl.records {
        let key = (r.tid, r.lock);
        match r.kind {
            TraceKind::ReadBegin | TraceKind::WriteBegin => {
                pending.insert(
                    key,
                    Pending {
                        write: r.kind == TraceKind::WriteBegin,
                        begin_ns: r.ts_ns,
                        enqueued: None,
                        granted_ns: None,
                    },
                );
            }
            TraceKind::Enqueued => {
                if let Some(p) = pending.get_mut(&key) {
                    p.enqueued = Some((r.ts_ns, r.token));
                }
                waiters.entry((r.lock, r.token)).or_default().push(r.tid);
                waiting_on.insert(r.tid, r.lock);
                record_wait_chain(&mut report, r.tid, r.lock, r.ts_ns, &holders, &waiting_on);
            }
            TraceKind::Granted => match waiters.remove(&(r.lock, r.token)) {
                Some(tids) if !tids.is_empty() => {
                    for grantee in tids {
                        if let Some(p) = pending.get_mut(&(grantee, r.lock)) {
                            p.granted_ns = Some(r.ts_ns);
                        }
                        let idx = report.edges.len();
                        report.edges.push(HandoffEdge {
                            lock: r.lock,
                            token: r.token,
                            grantor_tid: r.tid,
                            grant_ns: r.ts_ns,
                            grantee_tid: grantee,
                            wake_ns: None,
                        });
                        open_edges.entry((grantee, r.lock)).or_default().push(idx);
                    }
                }
                _ => report.unmatched_grants += 1,
            },
            TraceKind::ReadAcquired | TraceKind::WriteAcquired => {
                if let Some(p) = pending.remove(&key) {
                    report
                        .acquisitions
                        .push(close_acquisition(&p, r.tid, r.lock, r.ts_ns));
                }
                if let Some(idxs) = open_edges.remove(&key) {
                    for idx in idxs {
                        report.edges[idx].wake_ns = Some(r.ts_ns);
                    }
                }
                holders.entry(r.lock).or_default().push(r.tid);
                waiting_on.remove(&r.tid);
            }
            TraceKind::ReadRelease | TraceKind::WriteRelease => {
                if let Some(h) = holders.get_mut(&r.lock) {
                    if let Some(pos) = h.iter().rposition(|&t| t == r.tid) {
                        h.remove(pos);
                    }
                }
            }
            TraceKind::Poisoned
            | TraceKind::DeadlockDetected
            | TraceKind::WatchdogStall
            | TraceKind::BiasDegraded
                if report.hazard_anomalies.len() < 256 =>
            {
                report.hazard_anomalies.push(HazardAnomaly {
                    lock: r.lock,
                    tid: r.tid,
                    kind: r.kind,
                    ts_ns: r.ts_ns,
                });
            }
            TraceKind::TunerSample => report.tuner_samples += 1,
            TraceKind::TunerHold => report.tuner_holds += 1,
            TraceKind::TunerFlip if report.policy_flips.len() < 256 => {
                report.policy_flips.push(PolicyFlip {
                    lock: r.lock,
                    tid: r.tid,
                    ts_ns: r.ts_ns,
                    token: r.token,
                });
            }
            TraceKind::Timeout | TraceKind::Cancel => {
                // The waiter gave up: close its books so a stale token
                // registration can't be matched to a later grant.
                if let Some(p) = pending.remove(&key) {
                    if let Some((_, token)) = p.enqueued {
                        if let Some(tids) = waiters.get_mut(&(r.lock, token)) {
                            tids.retain(|&t| t != r.tid);
                        }
                    }
                }
                waiting_on.remove(&r.tid);
            }
            _ => {}
        }
    }

    report.breakdowns = breakdowns(&report.acquisitions);
    report.total_handoffs = report.edges.len() as u64;
    report.cross_socket_handoffs = report
        .edges
        .iter()
        .filter(|e| (cfg.cohort_of_tid)(e.grantor_tid) != (cfg.cohort_of_tid)(e.grantee_tid))
        .count() as u64;
    report.cascades = find_cascades(&report.edges);
    report.convoys = find_convoys(&report.acquisitions, cfg);
    report.starvations = find_starvations(&report.acquisitions, cfg);
    report
}

fn close_acquisition(p: &Pending, tid: u32, lock: u32, acquired_ns: u64) -> Acquisition {
    let total = acquired_ns.saturating_sub(p.begin_ns);
    let (spin, queued, handoff, token) = match p.enqueued {
        None => (total, 0, 0, None),
        Some((enq, token)) => {
            let spin = enq.saturating_sub(p.begin_ns);
            match p.granted_ns {
                Some(g) => (
                    spin,
                    g.saturating_sub(enq),
                    acquired_ns.saturating_sub(g),
                    Some(token),
                ),
                None => (spin, acquired_ns.saturating_sub(enq), 0, Some(token)),
            }
        }
    };
    Acquisition {
        tid,
        lock,
        write: p.write,
        begin_ns: p.begin_ns,
        enqueued_ns: p.enqueued.map(|(ts, _)| ts),
        granted_ns: p.granted_ns,
        acquired_ns,
        token,
        spin_ns: spin,
        queued_ns: queued,
        handoff_ns: handoff,
    }
}

fn breakdowns(acqs: &[Acquisition]) -> Vec<LockBreakdown> {
    let mut by_lock: HashMap<u32, LockBreakdown> = HashMap::new();
    for a in acqs {
        let b = by_lock.entry(a.lock).or_insert_with(|| LockBreakdown {
            lock: a.lock,
            ..LockBreakdown::default()
        });
        b.acquisitions += 1;
        b.queued += usize::from(a.enqueued_ns.is_some());
        b.via_handoff += usize::from(a.granted_ns.is_some());
        b.spin_ns += a.spin_ns;
        b.queued_ns += a.queued_ns;
        b.handoff_ns += a.handoff_ns;
        b.max_total_ns = b.max_total_ns.max(a.total_ns());
    }
    let mut v: Vec<_> = by_lock.into_values().collect();
    v.sort_by_key(|b| b.lock);
    v
}

/// Chains edges where each grantee turns around and grants the next
/// waiter on the same lock. Greedy over grant order.
fn find_cascades(edges: &[HandoffEdge]) -> Vec<Cascade> {
    // (lock, last grantee) -> index into `chains`.
    let mut open: HashMap<(u32, u32), usize> = HashMap::new();
    let mut chains: Vec<Cascade> = Vec::new();
    for e in edges {
        let extend = open.remove(&(e.lock, e.grantor_tid));
        match extend {
            Some(ci) if chains[ci].end_ns <= e.grant_ns => {
                chains[ci].tids.push(e.grantee_tid);
                chains[ci].end_ns = e.grant_ns;
                open.insert((e.lock, e.grantee_tid), ci);
            }
            _ => {
                let ci = chains.len();
                chains.push(Cascade {
                    lock: e.lock,
                    tids: vec![e.grantor_tid, e.grantee_tid],
                    start_ns: e.grant_ns,
                    end_ns: e.grant_ns,
                });
                open.insert((e.lock, e.grantee_tid), ci);
            }
        }
    }
    chains.retain(|c| c.hops() >= 2);
    chains
}

fn find_convoys(acqs: &[Acquisition], cfg: &AnalyzerConfig) -> Vec<Convoy> {
    let mut by_lock: HashMap<u32, Vec<&Acquisition>> = HashMap::new();
    for a in acqs {
        by_lock.entry(a.lock).or_default().push(a);
    }
    let mut out = Vec::new();
    for (lock, mut list) in by_lock {
        list.sort_by_key(|a| a.acquired_ns);
        let mut run: Vec<&Acquisition> = Vec::new();
        for a in list.iter().chain(std::iter::once(&&Acquisition {
            // Sentinel fast-path acquisition flushes the final run.
            tid: 0,
            lock,
            write: false,
            begin_ns: u64::MAX,
            enqueued_ns: None,
            granted_ns: None,
            acquired_ns: u64::MAX,
            token: None,
            spin_ns: 0,
            queued_ns: 0,
            handoff_ns: 0,
        })) {
            if a.granted_ns.is_some() {
                run.push(a);
                continue;
            }
            if run.len() >= cfg.convoy_k {
                out.push(Convoy {
                    lock,
                    length: run.len(),
                    start_ns: run[0].acquired_ns,
                    end_ns: run[run.len() - 1].acquired_ns,
                });
            }
            run.clear();
        }
    }
    out.sort_by_key(|c| c.start_ns);
    out
}

fn find_starvations(acqs: &[Acquisition], cfg: &AnalyzerConfig) -> Vec<Starvation> {
    let mut queued: Vec<u64> = acqs
        .iter()
        .filter(|a| a.enqueued_ns.is_some())
        .map(|a| a.queued_ns)
        .collect();
    if queued.len() < 8 {
        return Vec::new();
    }
    queued.sort_unstable();
    let idx = ((cfg.starvation_percentile / 100.0) * (queued.len() - 1) as f64).round() as usize;
    let threshold = ((queued[idx.min(queued.len() - 1)] as f64) * cfg.starvation_factor) as u64;
    let threshold = threshold.max(cfg.min_starvation_ns);
    let mut out: Vec<Starvation> = acqs
        .iter()
        .filter(|a| a.enqueued_ns.is_some() && a.queued_ns > threshold)
        .map(|a| Starvation {
            lock: a.lock,
            tid: a.tid,
            queued_ns: a.queued_ns,
            threshold_ns: threshold,
        })
        .collect();
    out.sort_by_key(|s| std::cmp::Reverse(s.queued_ns));
    out
}

fn record_wait_chain(
    report: &mut TraceReport,
    tid: u32,
    lock: u32,
    ts_ns: u64,
    holders: &HashMap<u32, Vec<u32>>,
    waiting_on: &HashMap<u32, u32>,
) {
    if report.wait_chains.len() >= 256 {
        return;
    }
    let mut tids = vec![tid];
    let mut locks = vec![lock];
    let mut cur = lock;
    while tids.len() < 8 {
        let Some(&holder) = holders.get(&cur).and_then(|h| h.last()) else {
            break;
        };
        if tids.contains(&holder) {
            break; // cycle guard
        }
        tids.push(holder);
        let Some(&next) = waiting_on.get(&holder) else {
            break;
        };
        if locks.contains(&next) {
            break;
        }
        locks.push(next);
        cur = next;
    }
    if locks.len() >= 2 {
        report.wait_chains.push(WaitChain { tids, locks, ts_ns });
    }
}

/// Human-readable duration.
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the analyzer's findings as a terminal report.
pub fn render_report_text(tl: &Timeline, report: &TraceReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "flight recorder: {} record(s), {} dropped{}, {} lock(s), {} thread(s)\n",
        tl.records.len(),
        report.dropped,
        if report.dropped > 0 {
            " (TRUNCATED)"
        } else {
            ""
        },
        tl.locks.len(),
        tl.threads.len(),
    ));
    let queued: usize = report.breakdowns.iter().map(|b| b.queued).sum();
    let handoff: usize = report.breakdowns.iter().map(|b| b.via_handoff).sum();
    out.push_str(&format!(
        "acquisitions: {} ({} queued, {} woken by hand-off)\n",
        report.acquisitions.len(),
        queued,
        handoff,
    ));
    for b in &report.breakdowns {
        let n = b.acquisitions.max(1) as u64;
        out.push_str(&format!(
            "  {:<24} {:>7} acq | avg spin {} queued {} handoff {} | max {}\n",
            tl.lock_name(b.lock),
            b.acquisitions,
            fmt_ns(b.spin_ns / n),
            fmt_ns(b.queued_ns / n),
            fmt_ns(b.handoff_ns / n),
            fmt_ns(b.max_total_ns),
        ));
    }
    out.push_str(&format!(
        "hand-off edges: {} stitched, {} unmatched grant(s)\n",
        report.edges.len(),
        report.unmatched_grants,
    ));
    let cross_pct = if report.total_handoffs == 0 {
        0.0
    } else {
        100.0 * report.cross_socket_handoffs as f64 / report.total_handoffs as f64
    };
    out.push_str(&format!(
        "cross-socket hand-offs: {} / {} ({cross_pct:.1}%)\n",
        report.cross_socket_handoffs, report.total_handoffs,
    ));
    if report.cascades.is_empty() {
        out.push_str("grant cascades: none\n");
    } else {
        let longest = report
            .cascades
            .iter()
            .max_by_key(|c| c.hops())
            .expect("non-empty");
        let chain = longest
            .tids
            .iter()
            .map(|t| format!("t{t}"))
            .collect::<Vec<_>>()
            .join("->");
        out.push_str(&format!(
            "grant cascades: {} multi-hop; longest {} hops on {} ({chain}, {})\n",
            report.cascades.len(),
            longest.hops(),
            tl.lock_name(longest.lock),
            fmt_ns(longest.end_ns.saturating_sub(longest.start_ns)),
        ));
    }
    if report.convoys.is_empty() {
        out.push_str("convoys: none\n");
    } else {
        for c in report.convoys.iter().take(5) {
            out.push_str(&format!(
                "convoy: {} consecutive hand-offs on {} over {}\n",
                c.length,
                tl.lock_name(c.lock),
                fmt_ns(c.end_ns.saturating_sub(c.start_ns)),
            ));
        }
    }
    if report.starvations.is_empty() {
        out.push_str("starvation: none\n");
    } else {
        let worst = &report.starvations[0];
        out.push_str(&format!(
            "starvation: {} waiter(s) past threshold {}; worst t{} on {} queued {}\n",
            report.starvations.len(),
            fmt_ns(worst.threshold_ns),
            worst.tid,
            tl.lock_name(worst.lock),
            fmt_ns(worst.queued_ns),
        ));
    }
    if report.wait_chains.is_empty() {
        out.push_str("wait-for chains: none\n");
    } else {
        let longest = report
            .wait_chains
            .iter()
            .max_by_key(|c| c.locks.len())
            .expect("non-empty");
        let hops = longest
            .tids
            .iter()
            .map(|t| format!("t{t}"))
            .collect::<Vec<_>>()
            .join(" -> ");
        out.push_str(&format!(
            "wait-for chains: {} observed; deepest {} hops ({hops})\n",
            report.wait_chains.len(),
            longest.locks.len(),
        ));
    }
    if report.hazard_anomalies.is_empty() {
        out.push_str("hazard events: none\n");
    } else {
        out.push_str(&format!(
            "hazard events: {} observed\n",
            report.hazard_anomalies.len()
        ));
        for h in report.hazard_anomalies.iter().take(5) {
            out.push_str(&format!(
                "  {} on {} (t{}) at {}\n",
                h.kind.name(),
                tl.lock_name(h.lock),
                h.tid,
                fmt_ns(h.ts_ns),
            ));
        }
    }
    if report.tuner_samples > 0 || !report.policy_flips.is_empty() {
        out.push_str(&format!(
            "policy flips: {} across {} sampling window(s), {} held by hysteresis\n",
            report.policy_flips.len(),
            report.tuner_samples,
            report.tuner_holds,
        ));
        for f in report.policy_flips.iter().take(5) {
            out.push_str(&format!(
                "  flip on {} (t{}) at {} [regimes {:#x}]\n",
                tl.lock_name(f.lock),
                f.tid,
                fmt_ns(f.ts_ns),
                f.token,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    fn rec(ts: u64, tid: u32, lock: u32, kind: TraceKind, token: u64) -> TraceRecord {
        TraceRecord {
            ts_ns: ts,
            tid,
            lock,
            kind,
            token,
        }
    }

    /// t1 holds; t2 and t3 queue; t1 grants t2; t2 grants t3 — one
    /// two-hop cascade, two edges, full breakdowns.
    fn cascade_timeline() -> Timeline {
        Timeline {
            records: vec![
                rec(10, 1, 1, TraceKind::WriteBegin, 0),
                rec(11, 1, 1, TraceKind::WriteAcquired, 0),
                rec(20, 2, 1, TraceKind::WriteBegin, 0),
                rec(25, 2, 1, TraceKind::Enqueued, 100),
                rec(30, 3, 1, TraceKind::WriteBegin, 0),
                rec(40, 3, 1, TraceKind::Enqueued, 200),
                rec(50, 1, 1, TraceKind::WriteRelease, 0),
                rec(55, 1, 1, TraceKind::Granted, 100),
                rec(60, 2, 1, TraceKind::WriteAcquired, 0),
                rec(70, 2, 1, TraceKind::WriteRelease, 0),
                rec(75, 2, 1, TraceKind::Granted, 200),
                rec(90, 3, 1, TraceKind::WriteAcquired, 0),
            ],
            ..Timeline::default()
        }
    }

    #[test]
    fn edges_breakdowns_and_cascade() {
        let report = analyze(&cascade_timeline(), &AnalyzerConfig::default());
        assert_eq!(report.acquisitions.len(), 3);
        assert_eq!(report.edges.len(), 2);
        assert_eq!(report.unmatched_grants, 0);

        let e0 = &report.edges[0];
        assert_eq!((e0.grantor_tid, e0.grantee_tid), (1, 2));
        assert_eq!(e0.wake_ns, Some(60));
        let e1 = &report.edges[1];
        assert_eq!((e1.grantor_tid, e1.grantee_tid), (2, 3));
        assert_eq!(e1.wake_ns, Some(90));

        // t2: begin 20, enq 25, grant 55, acquired 60.
        let a2 = report.acquisitions.iter().find(|a| a.tid == 2).unwrap();
        assert_eq!(
            (a2.spin_ns, a2.queued_ns, a2.handoff_ns, a2.total_ns()),
            (5, 30, 5, 40)
        );
        assert_eq!(a2.spin_ns + a2.queued_ns + a2.handoff_ns, a2.total_ns());

        // One cascade t1 -> t2 -> t3.
        assert_eq!(report.cascades.len(), 1);
        assert_eq!(report.cascades[0].tids, vec![1, 2, 3]);
        assert_eq!(report.cascades[0].hops(), 2);

        let text = render_report_text(&cascade_timeline(), &report);
        assert!(text.contains("2 hops"));
        assert!(text.contains("t1->t2->t3"));
    }

    #[test]
    fn cross_socket_handoffs_follow_the_cohort_mapper() {
        // Parity mapper: t1/t3 on rank 1, t2 on rank 0 — both edges of
        // the cascade (t1->t2, t2->t3) cross ranks.
        let mut cfg = AnalyzerConfig::default();
        cfg.cohort_of_tid = |tid| (tid % 2) as usize;
        let report = analyze(&cascade_timeline(), &cfg);
        assert_eq!(report.total_handoffs, 2);
        assert_eq!(report.cross_socket_handoffs, 2);
        let text = render_report_text(&cascade_timeline(), &report);
        assert!(text.contains("cross-socket hand-offs: 2 / 2 (100.0%)"));

        // Single-rank mapper (the undetected-topology fallback shape):
        // every hand-off is local.
        cfg.cohort_of_tid = |_| 0;
        let report = analyze(&cascade_timeline(), &cfg);
        assert_eq!(report.total_handoffs, 2);
        assert_eq!(report.cross_socket_handoffs, 0);
        let text = render_report_text(&cascade_timeline(), &report);
        assert!(text.contains("cross-socket hand-offs: 0 / 2 (0.0%)"));
    }

    #[test]
    fn timeout_clears_waiter_registration() {
        let mut tl = cascade_timeline();
        // t3 times out before t2's grant; the grant must not stitch an
        // edge to a departed waiter.
        tl.records.insert(10, rec(72, 3, 1, TraceKind::Timeout, 0));
        tl.records.truncate(12); // keep the grant, drop t3's WriteAcquired
        let report = analyze(&tl, &AnalyzerConfig::default());
        assert_eq!(report.edges.len(), 1); // only t1 -> t2 remains
        assert_eq!(report.unmatched_grants, 1);
    }

    #[test]
    fn convoy_detection() {
        let mut records = vec![rec(1, 9, 1, TraceKind::WriteBegin, 0)];
        records.push(rec(2, 9, 1, TraceKind::WriteAcquired, 0));
        let mut ts = 10;
        for i in 0..10u64 {
            let tid = 10 + i as u32;
            records.push(rec(ts, tid, 1, TraceKind::WriteBegin, 0));
            records.push(rec(ts + 1, tid, 1, TraceKind::Enqueued, i + 1));
            records.push(rec(ts + 2, tid - 1, 1, TraceKind::Granted, i + 1));
            records.push(rec(ts + 3, tid, 1, TraceKind::WriteAcquired, 0));
            ts += 10;
        }
        let tl = Timeline {
            records,
            ..Timeline::default()
        };
        let report = analyze(&tl, &AnalyzerConfig::default());
        assert_eq!(report.convoys.len(), 1);
        assert_eq!(report.convoys[0].length, 10);
        // A 9-hop cascade rides along: t9 grants t10 grants t11 ...
        assert!(report.cascades.iter().any(|c| c.hops() >= 9));
    }

    #[test]
    fn wait_chain_across_locks() {
        let tl = Timeline {
            records: vec![
                // t1 holds lock 2; t2 holds lock 1 and queues on lock 2;
                // t3 queues on lock 1 => chain t3 -> t2 -> t1.
                rec(10, 1, 2, TraceKind::WriteBegin, 0),
                rec(11, 1, 2, TraceKind::WriteAcquired, 0),
                rec(20, 2, 1, TraceKind::WriteBegin, 0),
                rec(21, 2, 1, TraceKind::WriteAcquired, 0),
                rec(30, 2, 2, TraceKind::WriteBegin, 0),
                rec(31, 2, 2, TraceKind::Enqueued, 500),
                rec(40, 3, 1, TraceKind::WriteBegin, 0),
                rec(41, 3, 1, TraceKind::Enqueued, 600),
            ],
            ..Timeline::default()
        };
        let report = analyze(&tl, &AnalyzerConfig::default());
        assert_eq!(report.wait_chains.len(), 1);
        assert_eq!(report.wait_chains[0].tids, vec![3, 2, 1]);
        assert_eq!(report.wait_chains[0].locks, vec![1, 2]);
    }

    #[test]
    fn hazard_events_are_collected_and_rendered() {
        let mut tl = cascade_timeline();
        tl.records.push(rec(95, 2, 1, TraceKind::Poisoned, 0));
        tl.records
            .push(rec(96, 3, 1, TraceKind::DeadlockDetected, 0));
        tl.records.push(rec(97, 3, 1, TraceKind::WatchdogStall, 0));
        tl.records.push(rec(98, 3, 1, TraceKind::BiasDegraded, 0));
        // Recovery events are informational, not anomalies.
        tl.records.push(rec(99, 2, 1, TraceKind::PoisonCleared, 0));
        let report = analyze(&tl, &AnalyzerConfig::default());
        assert_eq!(report.hazard_anomalies.len(), 4);
        assert_eq!(report.hazard_anomalies[0].kind, TraceKind::Poisoned);
        assert_eq!(report.hazard_anomalies[0].tid, 2);
        let text = render_report_text(&tl, &report);
        assert!(text.contains("hazard events: 4 observed"));
        assert!(text.contains("deadlock_detected"));
    }

    #[test]
    fn policy_flips_are_collected_and_rendered() {
        let mut tl = cascade_timeline();
        let quiet = analyze(&tl, &AnalyzerConfig::default());
        assert!(quiet.policy_flips.is_empty());
        assert!(!render_report_text(&tl, &quiet).contains("policy flips"));

        tl.records.push(rec(95, 2, 1, TraceKind::TunerSample, 0));
        tl.records.push(rec(96, 2, 1, TraceKind::TunerHold, 0));
        tl.records.push(rec(97, 2, 1, TraceKind::TunerSample, 0));
        tl.records.push(rec(98, 2, 1, TraceKind::TunerFlip, 0x12));
        let report = analyze(&tl, &AnalyzerConfig::default());
        assert_eq!(report.tuner_samples, 2);
        assert_eq!(report.tuner_holds, 1);
        assert_eq!(report.policy_flips.len(), 1);
        assert_eq!(report.policy_flips[0].token, 0x12);
        let text = render_report_text(&tl, &report);
        assert!(text.contains("policy flips: 1 across 2 sampling window(s), 1 held by hysteresis"));
        assert!(text.contains("regimes 0x12"));
    }

    #[test]
    fn starvation_detection() {
        let mut records = Vec::new();
        let mut ts = 0;
        // 19 quick queued acquisitions, one 1000x outlier.
        for i in 0..20u64 {
            let tid = (i + 1) as u32;
            let queued = if i == 19 { 2_000_000 } else { 2_000 };
            records.push(rec(ts, tid, 1, TraceKind::WriteBegin, 0));
            records.push(rec(ts + 10, tid, 1, TraceKind::Enqueued, i + 1));
            records.push(rec(ts + 10 + queued, 99, 1, TraceKind::Granted, i + 1));
            records.push(rec(ts + 11 + queued, tid, 1, TraceKind::WriteAcquired, 0));
            ts += 20 + queued;
        }
        let tl = Timeline {
            records,
            ..Timeline::default()
        };
        let report = analyze(&tl, &AnalyzerConfig::default());
        assert_eq!(report.starvations.len(), 1);
        assert_eq!(report.starvations[0].queued_ns, 2_000_000);
    }
}
