//! Chrome Trace Event / Perfetto export.
//!
//! Emits the JSON object format (`{"traceEvents": [...]}`) that both
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly. Every record becomes a thread-scoped instant event;
//! on top of those, a pairing pass derives duration (`"ph":"X"`) events
//! so acquisition waits (`read_begin → read_acquired`) and hold times
//! (`read_acquired → read_release`) render as proper slices on each
//! thread track. Timestamps are microseconds with the nanosecond kept
//! as the fractional part. Ring overflow is surfaced, never hidden:
//! `otherData` carries `dropped` and `truncated`.

use crate::collect::Timeline;
use crate::record::{TraceKind, TraceRecord};

/// Escapes `s` as JSON string contents (no surrounding quotes).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds → microsecond timestamp string with ns precision.
fn us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000)
}

fn instant_event(tl: &Timeline, r: &TraceRecord) -> String {
    let mut args = format!("\"lock\":\"{}\"", json_escape(tl.lock_name(r.lock)));
    if r.token != 0 {
        args.push_str(&format!(",\"token\":\"{:#x}\"", r.token));
    }
    format!(
        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{{args}}}}}",
        r.kind.name(),
        r.tid,
        us(r.ts_ns),
    )
}

fn span_event(
    tl: &Timeline,
    name: &str,
    tid: u32,
    lock: u32,
    start_ns: u64,
    end_ns: u64,
) -> String {
    format!(
        "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{\"lock\":\"{}\"}}}}",
        us(start_ns),
        us(end_ns.saturating_sub(start_ns)),
        json_escape(tl.lock_name(lock)),
    )
}

/// Derives acquire/hold duration events by pairing the begin/acquired/
/// release markers per `(tid, lock)`.
fn derive_spans(tl: &Timeline, out: &mut Vec<String>) {
    use std::collections::HashMap;
    // (tid, lock) -> (wait_start, hold_start) per side.
    let mut read: HashMap<(u32, u32), (Option<u64>, Option<u64>)> = HashMap::new();
    let mut write: HashMap<(u32, u32), (Option<u64>, Option<u64>)> = HashMap::new();
    for r in &tl.records {
        let key = (r.tid, r.lock);
        match r.kind {
            TraceKind::ReadBegin => read.entry(key).or_default().0 = Some(r.ts_ns),
            TraceKind::WriteBegin => write.entry(key).or_default().0 = Some(r.ts_ns),
            TraceKind::ReadAcquired => {
                let e = read.entry(key).or_default();
                if let Some(b) = e.0.take() {
                    out.push(span_event(tl, "acquire:read", r.tid, r.lock, b, r.ts_ns));
                }
                e.1 = Some(r.ts_ns);
            }
            TraceKind::WriteAcquired => {
                let e = write.entry(key).or_default();
                if let Some(b) = e.0.take() {
                    out.push(span_event(tl, "acquire:write", r.tid, r.lock, b, r.ts_ns));
                }
                e.1 = Some(r.ts_ns);
            }
            TraceKind::ReadRelease => {
                if let Some(a) = read.entry(key).or_default().1.take() {
                    out.push(span_event(tl, "hold:read", r.tid, r.lock, a, r.ts_ns));
                }
            }
            TraceKind::WriteRelease => {
                if let Some(a) = write.entry(key).or_default().1.take() {
                    out.push(span_event(tl, "hold:write", r.tid, r.lock, a, r.ts_ns));
                }
            }
            _ => {}
        }
    }
}

/// Renders the whole timeline as a Chrome Trace Event / Perfetto JSON
/// document.
pub fn render_chrome_trace(tl: &Timeline) -> String {
    let mut events: Vec<String> = Vec::with_capacity(tl.records.len() + tl.threads.len() + 8);
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"oll\"}}"
            .to_string(),
    );
    for t in &tl.threads {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            t.tid,
            json_escape(&tl.thread_name(t.tid)),
        ));
    }
    for r in &tl.records {
        events.push(instant_event(tl, r));
    }
    derive_spans(tl, &mut events);

    let mut out = String::new();
    out.push_str("{\n\"displayTimeUnit\":\"ns\",\n");
    out.push_str(&format!(
        "\"otherData\":{{\"schema\":\"oll.trace.chrome\",\"records\":{},\"dropped\":{},\"truncated\":{}}},\n",
        tl.records.len(),
        tl.dropped,
        tl.truncated(),
    ));
    out.push_str("\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{LockDescriptor, ThreadDescriptor};

    fn rec(ts: u64, tid: u32, kind: TraceKind, token: u64) -> TraceRecord {
        TraceRecord {
            ts_ns: ts,
            tid,
            lock: 1,
            kind,
            token,
        }
    }

    fn tiny_timeline() -> Timeline {
        Timeline {
            records: vec![
                rec(100, 1, TraceKind::ReadBegin, 0),
                rec(150, 1, TraceKind::ReadSlow, 0),
                rec(151, 1, TraceKind::Enqueued, 0xbeef),
                rec(400, 2, TraceKind::Granted, 0xbeef),
                rec(450, 1, TraceKind::ReadAcquired, 0),
                rec(900, 1, TraceKind::ReadRelease, 0),
            ],
            dropped: 3,
            locks: vec![LockDescriptor {
                id: 1,
                kind: "GOLL".into(),
                name: "export \"test\"".into(),
            }],
            threads: vec![
                ThreadDescriptor {
                    tid: 1,
                    name: "reader".into(),
                },
                ThreadDescriptor {
                    tid: 2,
                    name: String::new(),
                },
            ],
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let doc = render_chrome_trace(&tiny_timeline());
        assert!(doc.contains("\"traceEvents\":["));
        assert!(doc.contains("\"dropped\":3"));
        assert!(doc.contains("\"truncated\":true"));
        // Escaped lock name, derived spans, fractional-µs timestamps.
        assert!(doc.contains("export \\\"test\\\""));
        assert!(doc.contains("\"name\":\"acquire:read\""));
        assert!(doc.contains("\"name\":\"hold:read\""));
        assert!(doc.contains("\"ts\":0.100"));
        assert!(doc.contains("\"token\":\"0xbeef\""));
        // Unnamed threads get a synthesized track name.
        assert!(doc.contains("thread-2"));
    }
}
