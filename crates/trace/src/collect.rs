//! The recorder's global side: ring/lock registries, the emit path, and
//! the collector that drains every ring into a merged [`Timeline`].
//!
//! # Drain protocol
//!
//! A [`TraceSession`] snapshots each live ring's `written` cursor at
//! [`TraceSession::begin`]. [`TraceSession::collect`] walks every ring
//! (including rings born after `begin`, from position 0) over
//! `[start, written_now)`, clamps the low end to the ring's retention
//! window (`written_now - capacity`), and counts everything outside the
//! window — plus any record the owner laps mid-copy — as **dropped**.
//! Collection is non-destructive: cursors live in the session, not the
//! ring, so concurrent sessions never steal each other's records.

use crate::record::TraceRecord;

#[cfg(feature = "enabled")]
use crate::record::TraceKind;
#[cfg(feature = "enabled")]
use crate::ring::{Ring, DEFAULT_RING_CAPACITY};
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex, OnceLock};

/// One lock instance in the timeline's header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockDescriptor {
    /// The id carried by records (1-based; 0 = unattributed).
    pub id: u32,
    /// Lock algorithm (e.g. `"GOLL"`).
    pub kind: String,
    /// Instance name (tracks `Telemetry::rename`).
    pub name: String,
}

/// One recording thread in the timeline's header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadDescriptor {
    /// The dense id carried by records (1-based, first-emit order).
    pub tid: u32,
    /// OS thread name at first emit, if any.
    pub name: String,
}

/// A merged, time-ordered drain of every ring.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Records sorted by `(ts_ns, tid)`.
    pub records: Vec<TraceRecord>,
    /// Records lost to ring wrap-around (reported, never silent).
    pub dropped: u64,
    /// Known lock instances (header metadata).
    pub locks: Vec<LockDescriptor>,
    /// Known recording threads (header metadata).
    pub threads: Vec<ThreadDescriptor>,
}

impl Timeline {
    /// Whether any record was lost to ring wrap-around.
    pub fn truncated(&self) -> bool {
        self.dropped > 0
    }

    /// Display name for lock `id` (`"?"` if unregistered).
    pub fn lock_name(&self, id: u32) -> &str {
        self.locks
            .iter()
            .find(|l| l.id == id)
            .map(|l| l.name.as_str())
            .unwrap_or("?")
    }

    /// Display name for thread `tid`.
    pub fn thread_name(&self, tid: u32) -> String {
        self.threads
            .iter()
            .find(|t| t.tid == tid)
            .filter(|t| !t.name.is_empty())
            .map(|t| t.name.clone())
            .unwrap_or_else(|| format!("thread-{tid}"))
    }

    /// A copy containing only records for lock `id` (header kept).
    /// Handy for tests that must ignore other locks' concurrent noise.
    pub fn filter_lock(&self, id: u32) -> Timeline {
        Timeline {
            records: self
                .records
                .iter()
                .filter(|r| r.lock == id)
                .copied()
                .collect(),
            dropped: self.dropped,
            locks: self.locks.clone(),
            threads: self.threads.clone(),
        }
    }
}

#[cfg(feature = "enabled")]
mod recorder {
    use super::*;

    pub(super) fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
        static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
        RINGS.get_or_init(|| Mutex::new(Vec::new()))
    }

    pub(super) struct LockEntry {
        pub kind: String,
        pub name: Mutex<String>,
    }

    pub(super) fn locks() -> &'static Mutex<Vec<Arc<LockEntry>>> {
        static LOCKS: OnceLock<Mutex<Vec<Arc<LockEntry>>>> = OnceLock::new();
        LOCKS.get_or_init(|| Mutex::new(Vec::new()))
    }

    pub(super) static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);

    /// Monotonic clock shared by every ring: nanoseconds since the first
    /// call in the process.
    pub(super) fn now_ns() -> u64 {
        static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
        let e = EPOCH.get_or_init(std::time::Instant::now).elapsed();
        e.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(e.subsec_nanos()))
    }

    fn install_ring() -> Arc<Ring> {
        static NEXT_TID: AtomicU32 = AtomicU32::new(1);
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current().name().map(str::to_string);
        let ring = Arc::new(Ring::new(tid, name, RING_CAPACITY.load(Ordering::Relaxed)));
        rings().lock().unwrap().push(Arc::clone(&ring));
        ring
    }

    thread_local! {
        static RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
    }

    #[inline]
    pub(super) fn emit(lock: u32, kind: TraceKind, token: u64) {
        let r = TraceRecord {
            ts_ns: now_ns(),
            tid: 0, // filled from the ring below
            lock,
            kind,
            token,
        };
        // Threads whose TLS is already tearing down lose the record;
        // the flight recorder must never panic out of a lock path.
        let _ = RING.try_with(|cell| {
            let ring = cell.get_or_init(install_ring);
            ring.push(&TraceRecord {
                tid: ring.tid(),
                ..r
            });
        });
    }
}

/// Nanoseconds on the trace clock (monotonic, process-wide epoch).
/// Always 0 when the `enabled` feature is off.
#[inline]
pub fn now_ns() -> u64 {
    #[cfg(feature = "enabled")]
    {
        recorder::now_ns()
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// Appends a record to the calling thread's ring. Empty inline no-op
/// without the `enabled` feature.
#[inline]
pub fn emit(lock: u32, kind: crate::record::TraceKind, token: u64) {
    #[cfg(feature = "enabled")]
    recorder::emit(lock, kind, token);
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (lock, kind, token);
    }
}

/// Registers a lock instance; the returned id attributes its records.
/// Returns 0 (the unattributed id) when tracing is compiled out.
pub fn register_lock(kind: &str, name: &str) -> u32 {
    #[cfg(feature = "enabled")]
    {
        let mut locks = recorder::locks().lock().unwrap();
        locks.push(std::sync::Arc::new(recorder::LockEntry {
            kind: kind.to_string(),
            name: Mutex::new(name.to_string()),
        }));
        locks.len() as u32
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (kind, name);
        0
    }
}

/// Renames a registered lock (shows up in subsequent collections).
pub fn rename_lock(id: u32, name: &str) {
    #[cfg(feature = "enabled")]
    {
        if id == 0 {
            return;
        }
        let entry = recorder::locks()
            .lock()
            .unwrap()
            .get(id as usize - 1)
            .cloned();
        if let Some(e) = entry {
            *e.name.lock().unwrap() = name.to_string();
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (id, name);
    }
}

/// Sets the capacity (in records) of rings created *after* this call.
/// Existing rings keep their size. No-op when tracing is compiled out.
pub fn set_thread_ring_capacity(records: usize) {
    #[cfg(feature = "enabled")]
    recorder::RING_CAPACITY.store(records.max(1), std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "enabled"))]
    {
        let _ = records;
    }
}

/// A collection window over the flight recorder.
///
/// Zero-sized when the `enabled` feature is off ([`TraceSession::begin`]
/// and [`TraceSession::collect`] still exist; `collect` returns an empty
/// [`Timeline`]), so tooling needs no `cfg` of its own.
#[derive(Debug, Default)]
pub struct TraceSession {
    /// `(ring, written-at-begin)` for rings alive at `begin`.
    #[cfg(feature = "enabled")]
    marks: Vec<(Arc<Ring>, u64)>,
}

impl TraceSession {
    /// Opens a window: subsequent [`TraceSession::collect`] calls return
    /// records emitted from this point on (rings born later are included
    /// from their first record).
    pub fn begin() -> Self {
        #[cfg(feature = "enabled")]
        {
            let marks = recorder::rings()
                .lock()
                .unwrap()
                .iter()
                .map(|r| (Arc::clone(r), r.written()))
                .collect();
            Self { marks }
        }
        #[cfg(not(feature = "enabled"))]
        {
            Self {}
        }
    }

    /// Drains every ring into a merged, time-sorted [`Timeline`].
    /// Non-destructive; callable repeatedly on one session.
    pub fn collect(&self) -> Timeline {
        #[cfg(feature = "enabled")]
        {
            let all: Vec<Arc<Ring>> = recorder::rings().lock().unwrap().clone();
            let start_of = |ring: &Arc<Ring>| -> u64 {
                self.marks
                    .iter()
                    .find(|(r, _)| Arc::ptr_eq(r, ring))
                    .map(|(_, pos)| *pos)
                    .unwrap_or(0)
            };
            let mut tl = Timeline::default();
            for ring in &all {
                let start = start_of(ring);
                let end = ring.written();
                let lo = start.max(end.saturating_sub(ring.capacity()));
                tl.dropped += lo - start;
                for pos in lo..end {
                    match ring.read_at(pos) {
                        Some(r) => tl.records.push(r),
                        None => tl.dropped += 1,
                    }
                }
                tl.threads.push(ThreadDescriptor {
                    tid: ring.tid(),
                    name: ring.thread_name().unwrap_or("").to_string(),
                });
            }
            tl.records.sort_by_key(|r| (r.ts_ns, r.tid));
            tl.threads.sort_by_key(|t| t.tid);
            tl.locks = recorder::locks()
                .lock()
                .unwrap()
                .iter()
                .enumerate()
                .map(|(i, e)| LockDescriptor {
                    id: i as u32 + 1,
                    kind: e.kind.clone(),
                    name: e.name.lock().unwrap().clone(),
                })
                .collect();
            tl
        }
        #[cfg(not(feature = "enabled"))]
        {
            Timeline::default()
        }
    }
}

/// Everything still retained in every ring, since process start.
pub fn capture_all() -> Timeline {
    #[cfg(feature = "enabled")]
    {
        TraceSession { marks: Vec::new() }.collect()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Timeline::default()
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::record::TraceKind;

    #[test]
    fn session_scopes_and_merges() {
        let lock = register_lock("TEST", "collect/session");
        emit(lock, TraceKind::ReadFast, 0);
        let session = TraceSession::begin();
        let handle = std::thread::Builder::new()
            .name("collector-worker".into())
            .spawn(move || {
                for i in 0..10 {
                    emit(lock, TraceKind::WriteFast, i);
                }
            })
            .unwrap();
        handle.join().unwrap();
        emit(lock, TraceKind::ReadSlow, 7);
        let tl = session.collect().filter_lock(lock);
        // The pre-session ReadFast is out of the window; this thread's
        // ReadSlow and the worker's 10 WriteFasts are in.
        let fast = tl
            .records
            .iter()
            .filter(|r| r.kind == TraceKind::WriteFast)
            .count();
        assert_eq!(fast, 10);
        assert!(tl.records.iter().any(|r| r.kind == TraceKind::ReadSlow));
        assert!(!tl.records.iter().any(|r| r.kind == TraceKind::ReadFast));
        // Sorted by time.
        assert!(tl.records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        // The worker thread's name made it into the header.
        let wtid = tl
            .records
            .iter()
            .find(|r| r.kind == TraceKind::WriteFast)
            .unwrap()
            .tid;
        assert_eq!(tl.thread_name(wtid), "collector-worker");
        assert_eq!(tl.lock_name(lock), "collect/session");
    }

    #[test]
    fn overflow_is_counted_not_silent() {
        set_thread_ring_capacity(16);
        let lock = register_lock("TEST", "collect/overflow");
        let session = TraceSession::begin();
        std::thread::spawn(move || {
            for i in 0..100 {
                emit(lock, TraceKind::ArriveTree, i);
            }
        })
        .join()
        .unwrap();
        set_thread_ring_capacity(crate::ring::DEFAULT_RING_CAPACITY);
        let tl = session.collect();
        let mine = tl.filter_lock(lock);
        // 100 written into a 16-slot ring: at least 84 dropped, the
        // survivors are the newest, and truncation is flagged.
        assert!(tl.dropped >= 84, "dropped = {}", tl.dropped);
        assert!(tl.truncated());
        assert!(mine.records.len() <= 16);
        assert!(mine.records.iter().any(|r| r.token == 99));
        assert!(!mine.records.iter().any(|r| r.token == 0));
    }

    #[test]
    fn rename_shows_in_later_collections() {
        let lock = register_lock("TEST", "before");
        rename_lock(lock, "after");
        let tl = capture_all();
        assert_eq!(tl.lock_name(lock), "after");
    }
}
