//! The trace record: one timestamped event, packed to three words.
//!
//! A record is `(ts_ns, tid, lock, kind, token)`. The first thirty-seven
//! [`TraceKind`]s mirror `oll_telemetry::LockEvent` one-for-one (same
//! order, same `snake_case` names), so counter increments flow into the
//! timeline without a translation table; the remaining kinds are
//! trace-only *markers* that exist to give events structure in time:
//! acquisition begin/end, queue entry, and ownership grants carrying a
//! causality token (a waiter-node address or wait-event address) that
//! lets the analyzer stitch a hand-off's grantor and grantee into an
//! edge.

/// What happened. Discriminants `0..37` mirror
/// `oll_telemetry::LockEvent` exactly; `37..` are trace-only markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceKind {
    /// Uncontended read acquisition.
    ReadFast = 0,
    /// Read acquisition that entered the slow path (queued or blocked).
    ReadSlow = 1,
    /// Uncontended write acquisition.
    WriteFast = 2,
    /// Write acquisition that entered the slow path.
    WriteSlow = 3,
    /// Reader arrival that hit the C-SNZI root directly.
    ArriveDirect = 4,
    /// Reader arrival absorbed by a C-SNZI tree node.
    ArriveTree = 5,
    /// Release handed the lock to a queued writer.
    HandoffToWriter = 6,
    /// Release handed the lock to queued reader(s).
    HandoffToReaders = 7,
    /// A grant skipped over an abandoned (timed-out) node.
    GrantCascade = 8,
    /// A timed acquisition gave up.
    Timeout = 9,
    /// A partial acquisition was undone (excision/abandonment).
    Cancel = 10,
    /// Successful read→write upgrade.
    Upgrade = 11,
    /// Failed read→write upgrade attempt.
    UpgradeFail = 12,
    /// Write→read downgrade.
    Downgrade = 13,
    /// A write landed on the shared C-SNZI root word.
    CsnziRootWrite = 14,
    /// A write landed on a C-SNZI tree node.
    CsnziNodeWrite = 15,
    /// A CAS on the C-SNZI root word failed and retried.
    CsnziRootCasFail = 16,
    /// An adaptive C-SNZI inflated its tree under measured contention.
    CsnziInflate = 17,
    /// An adaptive C-SNZI deflated back to root-only arrivals.
    CsnziDeflate = 18,
    /// A handle's cached leaf missed and it migrated to a neighbour.
    CsnziLeafMigrate = 19,
    /// A biased (BRAVO) read completed via the visible-readers table.
    BiasGrant = 20,
    /// A writer revoked reader bias (cleared `rbias`, drained the table).
    BiasRevoke = 21,
    /// A biased reader's hashed slot was occupied; fell back to the lock.
    BiasSlotCollision = 22,
    /// Reader bias re-armed after the inhibit window elapsed.
    BiasRearm = 23,
    /// A panicking write holder poisoned the lock (hazard anomaly;
    /// `token` carries the hazard lock id).
    Poisoned = 24,
    /// A poison mark was cleared.
    PoisonCleared = 25,
    /// A watched blocker detected a wait-for cycle and abandoned its
    /// acquisition (hazard anomaly).
    DeadlockDetected = 26,
    /// The starvation watchdog saw a writer outwait its stall threshold
    /// (hazard anomaly).
    WatchdogStall = 27,
    /// The watchdog degraded the lock (bias disabled, fair hand-off).
    BiasDegraded = 28,
    /// An async acquisition stored its task waker and pended.
    WakerStored = 29,
    /// A grant woke a stored task waker (the grantee was suspended).
    WakerWoken = 30,
    /// A cohort release handed the write lock to a same-socket waiter.
    CohortLocalHandoff = 31,
    /// A cohort release published the write lock to the global queue.
    CohortRemoteHandoff = 32,
    /// A cohort release hit the batch bound with local waiters queued.
    CohortBatchExhausted = 33,
    /// The self-tuning controller closed a sampling window and evaluated
    /// its decision table.
    TunerSample = 34,
    /// The controller changed policy (`token` carries the packed
    /// old/new regime pair the telemetry layer stamps on the counter).
    TunerFlip = 35,
    /// The controller saw a regime change but hysteresis (or the
    /// decision-rate cap) held the current policy.
    TunerHold = 36,
    /// `lock_read` entered (marker; opens a read acquisition span).
    ReadBegin = 37,
    /// `lock_write` entered (marker; opens a write acquisition span).
    WriteBegin = 38,
    /// The thread joined a wait queue; `token` names what it waits on.
    Enqueued = 39,
    /// A releasing thread granted ownership to the waiter(s) parked on
    /// `token` (emitted by the *grantor*).
    Granted = 40,
    /// `lock_read` succeeded (marker; closes the read span).
    ReadAcquired = 41,
    /// `lock_write` succeeded (marker; closes the write span).
    WriteAcquired = 42,
    /// `unlock_read` entered (marker; closes the read hold span).
    ReadRelease = 43,
    /// `unlock_write` entered (marker; closes the write hold span).
    WriteRelease = 44,
}

impl TraceKind {
    /// Number of kinds.
    pub const COUNT: usize = 45;

    /// All kinds, in discriminant order.
    pub const ALL: [TraceKind; TraceKind::COUNT] = [
        TraceKind::ReadFast,
        TraceKind::ReadSlow,
        TraceKind::WriteFast,
        TraceKind::WriteSlow,
        TraceKind::ArriveDirect,
        TraceKind::ArriveTree,
        TraceKind::HandoffToWriter,
        TraceKind::HandoffToReaders,
        TraceKind::GrantCascade,
        TraceKind::Timeout,
        TraceKind::Cancel,
        TraceKind::Upgrade,
        TraceKind::UpgradeFail,
        TraceKind::Downgrade,
        TraceKind::CsnziRootWrite,
        TraceKind::CsnziNodeWrite,
        TraceKind::CsnziRootCasFail,
        TraceKind::CsnziInflate,
        TraceKind::CsnziDeflate,
        TraceKind::CsnziLeafMigrate,
        TraceKind::BiasGrant,
        TraceKind::BiasRevoke,
        TraceKind::BiasSlotCollision,
        TraceKind::BiasRearm,
        TraceKind::Poisoned,
        TraceKind::PoisonCleared,
        TraceKind::DeadlockDetected,
        TraceKind::WatchdogStall,
        TraceKind::BiasDegraded,
        TraceKind::WakerStored,
        TraceKind::WakerWoken,
        TraceKind::CohortLocalHandoff,
        TraceKind::CohortRemoteHandoff,
        TraceKind::CohortBatchExhausted,
        TraceKind::TunerSample,
        TraceKind::TunerFlip,
        TraceKind::TunerHold,
        TraceKind::ReadBegin,
        TraceKind::WriteBegin,
        TraceKind::Enqueued,
        TraceKind::Granted,
        TraceKind::ReadAcquired,
        TraceKind::WriteAcquired,
        TraceKind::ReadRelease,
        TraceKind::WriteRelease,
    ];

    /// Stable `snake_case` name (the first 37 match
    /// `LockEvent::name()`).
    pub const fn name(self) -> &'static str {
        match self {
            TraceKind::ReadFast => "read_fast",
            TraceKind::ReadSlow => "read_slow",
            TraceKind::WriteFast => "write_fast",
            TraceKind::WriteSlow => "write_slow",
            TraceKind::ArriveDirect => "arrive_direct",
            TraceKind::ArriveTree => "arrive_tree",
            TraceKind::HandoffToWriter => "handoff_to_writer",
            TraceKind::HandoffToReaders => "handoff_to_readers",
            TraceKind::GrantCascade => "grant_cascade",
            TraceKind::Timeout => "timeout",
            TraceKind::Cancel => "cancel",
            TraceKind::Upgrade => "upgrade",
            TraceKind::UpgradeFail => "upgrade_fail",
            TraceKind::Downgrade => "downgrade",
            TraceKind::CsnziRootWrite => "csnzi_root_write",
            TraceKind::CsnziNodeWrite => "csnzi_node_write",
            TraceKind::CsnziRootCasFail => "csnzi_root_cas_fail",
            TraceKind::CsnziInflate => "csnzi_inflate",
            TraceKind::CsnziDeflate => "csnzi_deflate",
            TraceKind::CsnziLeafMigrate => "csnzi_leaf_migrate",
            TraceKind::BiasGrant => "bias_grant",
            TraceKind::BiasRevoke => "bias_revoke",
            TraceKind::BiasSlotCollision => "bias_slot_collision",
            TraceKind::BiasRearm => "bias_rearm",
            TraceKind::Poisoned => "poisoned",
            TraceKind::PoisonCleared => "poison_cleared",
            TraceKind::DeadlockDetected => "deadlock_detected",
            TraceKind::WatchdogStall => "watchdog_stall",
            TraceKind::BiasDegraded => "bias_degraded",
            TraceKind::WakerStored => "waker_stored",
            TraceKind::WakerWoken => "waker_woken",
            TraceKind::CohortLocalHandoff => "cohort_local_handoff",
            TraceKind::CohortRemoteHandoff => "cohort_remote_handoff",
            TraceKind::CohortBatchExhausted => "cohort_batch_exhausted",
            TraceKind::TunerSample => "tuner_sample",
            TraceKind::TunerFlip => "tuner_flip",
            TraceKind::TunerHold => "tuner_hold",
            TraceKind::ReadBegin => "read_begin",
            TraceKind::WriteBegin => "write_begin",
            TraceKind::Enqueued => "enqueued",
            TraceKind::Granted => "granted",
            TraceKind::ReadAcquired => "read_acquired",
            TraceKind::WriteAcquired => "write_acquired",
            TraceKind::ReadRelease => "read_release",
            TraceKind::WriteRelease => "write_release",
        }
    }

    /// The discriminant as an index.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`TraceKind::index`].
    pub const fn from_u8(v: u8) -> Option<TraceKind> {
        if (v as usize) < TraceKind::COUNT {
            Some(TraceKind::ALL[v as usize])
        } else {
            None
        }
    }
}

/// Largest thread id a packed record can carry (24 bits).
pub const MAX_TID: u32 = (1 << 24) - 1;

/// One trace event. 29 bytes of payload, packed into three 64-bit words
/// in the ring (`ts` · `token` · `lock:32 | tid:24 | kind:8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotonic nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Recording thread (small dense ids assigned at first emit).
    pub tid: u32,
    /// Lock instance id from lock registration (0 = unattributed).
    pub lock: u32,
    /// What happened.
    pub kind: TraceKind,
    /// Causality token for [`TraceKind::Enqueued`]/[`TraceKind::Granted`]
    /// (waiter-node address or wait-event address); 0 when unused.
    pub token: u64,
}

// Only the (feature-gated) ring packs records; keep the pair compiled in
// tests so the round-trip stays pinned even in disabled builds.
#[cfg_attr(not(any(feature = "enabled", test)), allow(dead_code))]
impl TraceRecord {
    /// Packs to the ring's three-word slot payload.
    #[inline]
    pub(crate) fn pack(&self) -> [u64; 3] {
        [
            self.ts_ns,
            self.token,
            (u64::from(self.lock) << 32)
                | (u64::from(self.tid & MAX_TID) << 8)
                | self.kind.index() as u64,
        ]
    }

    /// Unpacks a slot payload; `None` if the kind byte is invalid
    /// (possible only on a torn read the sequence check then rejects).
    #[inline]
    pub(crate) fn unpack(w: [u64; 3]) -> Option<Self> {
        let kind = TraceKind::from_u8((w[2] & 0xff) as u8)?;
        Some(Self {
            ts_ns: w[0],
            token: w[1],
            lock: (w[2] >> 32) as u32,
            tid: ((w[2] >> 8) & u64::from(MAX_TID)) as u32,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip_and_names() {
        for (i, k) in TraceKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(TraceKind::from_u8(i as u8), Some(*k));
            assert!(!k.name().is_empty());
        }
        assert_eq!(TraceKind::from_u8(TraceKind::COUNT as u8), None);
    }

    #[test]
    fn record_pack_roundtrip() {
        let r = TraceRecord {
            ts_ns: 123_456_789_012,
            tid: 0x00ab_cdef,
            lock: 0xdead_beef,
            kind: TraceKind::Granted,
            token: 0x1234_5678_9abc_def0,
        };
        assert_eq!(TraceRecord::unpack(r.pack()), Some(r));
    }
}
