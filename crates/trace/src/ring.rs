//! Per-thread fixed-capacity record rings (flight recorder storage).
//!
//! Each recording thread owns exactly one [`Ring`]; only the owner ever
//! writes, so publication needs no CAS — a per-slot sequence word makes
//! every slot an independent single-writer seqlock. Writing position
//! `p` into slot `p % cap` goes: `seq ← 2p+1` (odd: in progress), the
//! three payload words (relaxed atomics — torn reads are *detected*,
//! never undefined), then `seq ← 2(p+1)` (even: slot stably holds `p`).
//! A concurrent collector reading position `p` checks `seq == 2(p+1)`
//! before and after copying the payload; any mismatch means the owner
//! lapped the slot and the record counts as **dropped** — overwritten
//! history is accounted, never silently wrapped.

use crate::record::TraceRecord;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Default per-thread ring capacity (records).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 3],
}

/// One thread's ring. Shared as `Arc` between the owning thread (sole
/// writer) and collectors (readers); rings outlive their threads so a
/// session can still drain records from exited workers.
#[derive(Debug)]
pub(crate) struct Ring {
    tid: u32,
    thread_name: Option<String>,
    cap: u64,
    /// Total records ever written (monotonic; `written - cap` is the
    /// oldest position that can still be read back).
    written: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    pub(crate) fn new(tid: u32, thread_name: Option<String>, cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            tid,
            thread_name,
            cap: cap as u64,
            written: AtomicU64::new(0),
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    words: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
                })
                .collect(),
        }
    }

    pub(crate) fn tid(&self) -> u32 {
        self.tid
    }

    pub(crate) fn thread_name(&self) -> Option<&str> {
        self.thread_name.as_deref()
    }

    pub(crate) fn capacity(&self) -> u64 {
        self.cap
    }

    pub(crate) fn written(&self) -> u64 {
        self.written.load(Ordering::Acquire)
    }

    /// Appends a record. MUST only be called by the owning thread.
    #[inline]
    pub(crate) fn push(&self, r: &TraceRecord) {
        let pos = self.written.load(Ordering::Relaxed);
        let slot = &self.slots[(pos % self.cap) as usize];
        slot.seq.store(2 * pos + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        let w = r.pack();
        slot.words[0].store(w[0], Ordering::Relaxed);
        slot.words[1].store(w[1], Ordering::Relaxed);
        slot.words[2].store(w[2], Ordering::Relaxed);
        slot.seq.store(2 * (pos + 1), Ordering::Release);
        self.written.store(pos + 1, Ordering::Release);
    }

    /// Reads back position `pos`, or `None` if the slot has been
    /// overwritten (or is being overwritten right now).
    pub(crate) fn read_at(&self, pos: u64) -> Option<TraceRecord> {
        let expect = 2 * (pos + 1);
        let slot = &self.slots[(pos % self.cap) as usize];
        if slot.seq.load(Ordering::Acquire) != expect {
            return None;
        }
        let w = [
            slot.words[0].load(Ordering::Relaxed),
            slot.words[1].load(Ordering::Relaxed),
            slot.words[2].load(Ordering::Relaxed),
        ];
        fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != expect {
            return None;
        }
        TraceRecord::unpack(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceKind;

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            ts_ns: i,
            tid: 7,
            lock: 3,
            kind: TraceKind::ReadFast,
            token: i * 17,
        }
    }

    #[test]
    fn push_then_read_back() {
        let ring = Ring::new(7, None, 8);
        for i in 0..5 {
            ring.push(&rec(i));
        }
        assert_eq!(ring.written(), 5);
        for i in 0..5 {
            assert_eq!(ring.read_at(i), Some(rec(i)));
        }
    }

    #[test]
    fn overwritten_positions_read_as_none() {
        let ring = Ring::new(7, None, 4);
        for i in 0..10 {
            ring.push(&rec(i));
        }
        // Positions 0..6 were lapped; only the last 4 survive.
        for i in 0..6 {
            assert_eq!(ring.read_at(i), None, "position {i} should be gone");
        }
        for i in 6..10 {
            assert_eq!(ring.read_at(i), Some(rec(i)));
        }
    }
}
