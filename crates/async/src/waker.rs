//! A one-shot atomic [`Waker`] slot — the futures-native replacement for
//! the parked-thread half of [`Event`](oll_util::Event).
//!
//! The blocking locks store a *thread* behind each queue node and wake it
//! with `unpark`; the async lock family stores a *task waker* instead. The
//! slot is the only piece of the hand-off that both sides touch without a
//! lock, so its protocol carries the whole lost-wakeup burden:
//!
//! * the **waiter** (a future's `poll`) calls [`WakerSlot::register`] and,
//!   if it returns `true`, may return `Poll::Pending` — but only after
//!   re-checking its grant word (see below);
//! * the **granter** (a releasing task or thread) publishes the grant
//!   (e.g. a `WAITING → GRANTED` node-word CAS with `Release` ordering)
//!   and then calls [`WakerSlot::wake`] exactly once.
//!
//! # The four slot states and the extra `WOKEN` token
//!
//! The queue node's four-state word (`GRANTED`/`WAITING`/`ABANDONED`/
//! `RELEASED`, PR 1) arbitrates *who owns the hand-off*; the slot needs
//! one more token the thread-based path never did: **`WOKEN`**, recording
//! that the single wake has already fired. A parked thread that misses a
//! wake can be unparked again; a task waker that was never stored is a
//! wakeup lost forever. `WOKEN` is sticky, so the two orderings of the
//! race resolve the same way:
//!
//! * wake first, register second → `register` observes `WOKEN` and
//!   returns `false`: the caller must re-read its grant word (the
//!   `AcqRel` swap in [`WakerSlot::wake`] makes the granter's prior
//!   `Release` store visible) and complete instead of pending;
//! * register first, wake second → `wake` finds the stored waker and
//!   wakes it.
//!
//! A wake landing *during* registration (state `REGISTERING`) cannot
//! touch the half-written cell; it just swaps to `WOKEN`, and the
//! registrant's publish CAS fails, telling it the same thing a `WOKEN`
//! load would have.
//!
//! Even with all that, `register` alone is not sufficient: the grant may
//! land *after* the waiter last checked its word but *before* `register`
//! stores the waker — `wake` then fires on an empty slot (state `EMPTY →
//! WOKEN` is still detected), but the *next* registration could come from
//! a later poll that never happens. Hence the protocol's third leg: after
//! a successful `register`, the waiter **must re-check the grant word**
//! before returning `Pending`. See `DESIGN.md` §13 for the full argument.

use core::task::Waker;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Slot is empty; no waker stored, wake not yet fired.
const EMPTY: u8 = 0;
/// A `register` call owns the cell and is writing a waker into it.
const REGISTERING: u8 = 1;
/// A waker is stored and ready to be consumed by `wake`.
const FULL: u8 = 2;
/// The one-shot wake has fired (terminal).
const WOKEN: u8 = 3;

/// A one-shot atomic slot holding the waker of a pending acquisition.
///
/// One wait episode per slot: once [`wake`](WakerSlot::wake) has fired
/// the slot stays [`is_woken`](WakerSlot::is_woken) forever and further
/// registrations report the wake instead of storing anything.
#[derive(Debug, Default)]
pub struct WakerSlot {
    state: AtomicU8,
    waker: UnsafeCell<Option<Waker>>,
}

// SAFETY: the cell is only ever touched by the thread that owns the
// exclusive `REGISTERING` window or by the single `wake` call that
// observed `FULL` in its swap — the state machine serializes them.
unsafe impl Send for WakerSlot {}
unsafe impl Sync for WakerSlot {}

impl WakerSlot {
    /// An empty slot.
    pub const fn new() -> Self {
        Self {
            state: AtomicU8::new(EMPTY),
            waker: UnsafeCell::new(None),
        }
    }

    /// Stores (or refreshes) the calling task's waker.
    ///
    /// Returns `true` if the waker is stored and the wake has not fired:
    /// the caller may return `Pending` *after re-checking its grant
    /// word*. Returns `false` if the one-shot wake already fired (before
    /// or during this registration): the caller is effectively woken and
    /// must complete now — its waker was not retained.
    pub fn register(&self, waker: &Waker) -> bool {
        loop {
            match self.state.load(Ordering::Acquire) {
                WOKEN => return false,
                cur @ (EMPTY | FULL) => {
                    if self
                        .state
                        .compare_exchange(cur, REGISTERING, Ordering::Acquire, Ordering::Acquire)
                        .is_err()
                    {
                        continue;
                    }
                    // Exclusive cell access until we leave REGISTERING.
                    // SAFETY: see the impl-level safety comment.
                    let slot = unsafe { &mut *self.waker.get() };
                    match slot {
                        Some(w) if w.will_wake(waker) => {}
                        _ => *slot = Some(waker.clone()),
                    }
                    match self.state.compare_exchange(
                        REGISTERING,
                        FULL,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => return true,
                        Err(observed) => {
                            // The one-shot wake fired mid-registration; it
                            // could not touch the cell, so clear it here
                            // and report the wake.
                            debug_assert_eq!(observed, WOKEN);
                            *slot = None;
                            return false;
                        }
                    }
                }
                _ => {
                    // Another registration is in flight (only possible if a
                    // task is polled from two threads in violation of the
                    // Future contract, or briefly around a re-poll race).
                    // Spin: the REGISTERING window is a few instructions.
                    core::hint::spin_loop();
                }
            }
        }
    }

    /// Fires the one-shot wake: wakes the stored waker if there is one
    /// and marks the slot terminally woken.
    ///
    /// Returns `true` iff a stored waker was actually woken (`false`
    /// means the waiter had not registered yet — it will observe the
    /// wake through [`register`](WakerSlot::register) returning `false`
    /// or through its own grant-word re-check).
    pub fn wake(&self) -> bool {
        match self.state.swap(WOKEN, Ordering::AcqRel) {
            // SAFETY: swapping FULL -> WOKEN transfers cell ownership to
            // this call; every other path sees WOKEN and stays out.
            FULL => match unsafe { &mut *self.waker.get() }.take() {
                Some(w) => {
                    w.wake();
                    true
                }
                None => false,
            },
            _ => false,
        }
    }

    /// Whether the one-shot wake has fired.
    pub fn is_woken(&self) -> bool {
        self.state.load(Ordering::Acquire) == WOKEN
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AtOrd};
    use std::sync::Arc;
    use std::task::Wake;

    struct CountingWake(AtomicUsize);

    impl Wake for CountingWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, AtOrd::SeqCst);
        }
    }

    fn counting_waker() -> (Arc<CountingWake>, Waker) {
        let inner = Arc::new(CountingWake(AtomicUsize::new(0)));
        (Arc::clone(&inner), Waker::from(inner))
    }

    #[test]
    fn register_then_wake_fires_once() {
        let slot = WakerSlot::new();
        let (count, waker) = counting_waker();
        assert!(slot.register(&waker));
        assert!(!slot.is_woken());
        assert!(slot.wake());
        assert_eq!(count.0.load(AtOrd::SeqCst), 1);
        assert!(slot.is_woken());
        // Terminal: further wakes are no-ops, registrations report it.
        assert!(!slot.wake());
        assert!(!slot.register(&waker));
        assert_eq!(count.0.load(AtOrd::SeqCst), 1);
    }

    #[test]
    fn wake_before_register_is_not_lost() {
        let slot = WakerSlot::new();
        let (count, waker) = counting_waker();
        assert!(!slot.wake()); // nothing stored yet
        assert!(!slot.register(&waker), "registration must observe the wake");
        assert_eq!(count.0.load(AtOrd::SeqCst), 0, "waker was never retained");
    }

    #[test]
    fn reregistration_replaces_the_stored_waker() {
        let slot = WakerSlot::new();
        let (old_count, old) = counting_waker();
        let (new_count, new) = counting_waker();
        assert!(slot.register(&old));
        assert!(slot.register(&new));
        assert!(slot.wake());
        assert_eq!(old_count.0.load(AtOrd::SeqCst), 0);
        assert_eq!(new_count.0.load(AtOrd::SeqCst), 1);
    }

    #[test]
    fn same_waker_reregistration_is_idempotent() {
        let slot = WakerSlot::new();
        let (count, waker) = counting_waker();
        for _ in 0..5 {
            assert!(slot.register(&waker));
        }
        assert!(slot.wake());
        assert_eq!(count.0.load(AtOrd::SeqCst), 1);
    }

    /// Hammer the register-vs-wake race from two threads: whatever the
    /// interleaving, the episode must end with the slot woken and the
    /// waiter either woken through its waker or told at registration.
    #[test]
    fn concurrent_register_and_wake_never_lose_the_wake() {
        for _ in 0..2_000 {
            let slot = Arc::new(WakerSlot::new());
            let (count, waker) = counting_waker();
            let s2 = Arc::clone(&slot);
            let waker_thread = std::thread::spawn(move || s2.wake());
            let registered = slot.register(&waker);
            let woke_stored = waker_thread.join().unwrap();
            assert!(slot.is_woken());
            if registered {
                // Stored before the wake consumed the slot (or the wake
                // raced ahead of the publish and the NEXT register would
                // see it — in which case wake() found the slot and fired).
                if woke_stored {
                    assert_eq!(count.0.load(AtOrd::SeqCst), 1);
                }
            } else {
                // Told at registration: the waker must not fire later.
                assert_eq!(count.0.load(AtOrd::SeqCst), 0);
            }
        }
    }
}
