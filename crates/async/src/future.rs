//! The acquisition futures and their shared spin→store-waker→pending
//! state machine.
//!
//! One [`Acquire`] engine drives all four public futures (read / write ×
//! untimed / deadline). A poll walks the same path the blocking GOLL
//! walks, with `Pending` substituted for parking:
//!
//! 1. **Spin phase** (`Init`): retry the C-SNZI fast path under
//!    [`Backoff::poll_relax`] — bounded spin hints only, never a yield or
//!    park, so a poll can never block its executor thread.
//! 2. **Queue phase**: take the queue mutex, re-check the lockword,
//!    enqueue a [`Waiter`] (four-state node word + waker slot).
//! 3. **Pending phase** (`Queued`): register the task waker in the slot,
//!    then — mandatorily — re-check the node word before returning
//!    `Pending`. The grant CAS (`WAITING → GRANTED`) happens-before the
//!    slot wake, so the re-check closes the lost-wakeup window the
//!    registration race leaves open (DESIGN.md §13).
//!
//! Dropping a future in the `Queued` phase cancels lock-free: a
//! `WAITING → ABANDONED` tombstone CAS. If the CAS loses, the grant
//! already landed and the drop handler consumes it (departs the read
//! arrival, or releases the granted write) so ownership is never
//! stranded.

use crate::queue::Waiter;
use crate::{AsyncReadGuard, AsyncRwLock, AsyncWriteGuard, RawLock};
use oll_core::node_state::{ABANDONED, GRANTED, WAITING};
use oll_core::TimedOut;
use oll_csnzi::{ArrivalPolicy, LeafCursor, Ticket};
use oll_telemetry::{LockEvent, Timer};
use oll_util::fault;
use oll_util::Backoff;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Instant;

enum State {
    /// Not yet queued; the spin phase retries the fast path.
    Init,
    /// Enqueued; the waiter's node word arbitrates grant vs. cancel.
    Queued(Arc<Waiter>),
    /// Completed (granted, timed out, or consumed by the guard).
    Done,
}

/// What a completed acquisition carries into its guard.
enum Grant {
    /// A read hold: the C-SNZI ticket to depart with (a real leaf/root
    /// ticket from the fast path, `Ticket::ROOT` after a queued grant —
    /// the granter pre-arrived at the root on our behalf).
    Read(Ticket),
    Write,
}

/// The shared acquisition engine (not itself a `Future`; the public
/// wrappers below map its output into guards).
struct Acquire<'a> {
    raw: &'a RawLock,
    write: bool,
    deadline: Option<Instant>,
    state: State,
    policy: ArrivalPolicy,
    cursor: LeafCursor,
    backoff: Backoff,
    acquire: Timer,
    /// When the waiter joined the queue (deadline futures only; feeds
    /// the starvation watchdog's stall accounting).
    wait_started: Option<Instant>,
}

impl<'a> Acquire<'a> {
    fn new(raw: &'a RawLock, write: bool, deadline: Option<Instant>) -> Self {
        let acquire = if write {
            raw.telemetry.begin_write()
        } else {
            raw.telemetry.begin_read()
        };
        Acquire {
            raw,
            write,
            deadline,
            state: State::Init,
            policy: ArrivalPolicy::new(raw.arrival_threshold),
            cursor: LeafCursor::new(),
            backoff: Backoff::new(),
            acquire,
            wait_started: None,
        }
    }

    /// The grant is ours (node word reached `GRANTED`): the arrival (or
    /// the closed-empty write state) is already committed on the C-SNZI.
    fn finish_granted(&mut self) -> Poll<Result<Grant, TimedOut>> {
        self.state = State::Done;
        if self.write {
            self.raw.telemetry.record_write_acquire(&self.acquire);
            self.raw.hazard.note_progress(true);
            Poll::Ready(Ok(Grant::Write))
        } else {
            self.raw.telemetry.record_read_acquire(&self.acquire);
            Poll::Ready(Ok(Grant::Read(Ticket::ROOT)))
        }
    }

    fn poll_acquire(&mut self, cx: &mut Context<'_>) -> Poll<Result<Grant, TimedOut>> {
        loop {
            match &self.state {
                State::Done => panic!("acquisition future polled after completion"),
                State::Init => {
                    if self.write {
                        if let Some(out) = self.init_write() {
                            return out;
                        }
                    } else if let Some(out) = self.init_read() {
                        return out;
                    }
                    // Queued (or retrying Init): loop into the next arm.
                }
                State::Queued(w) => {
                    let w = Arc::clone(w);
                    return self.poll_queued(&w, cx);
                }
            }
        }
    }

    /// Read spin + queue phases. `None` means "state changed, loop".
    fn init_read(&mut self) -> Option<Poll<Result<Grant, TimedOut>>> {
        loop {
            let ticket = self
                .raw
                .csnzi
                .arrive_cached(&mut self.policy, &mut self.cursor);
            if ticket.arrived() {
                self.raw.telemetry.incr(if ticket.is_root() {
                    LockEvent::ArriveDirect
                } else {
                    LockEvent::ArriveTree
                });
                self.raw.telemetry.incr(LockEvent::ReadFast);
                self.raw.telemetry.record_read_acquire(&self.acquire);
                self.state = State::Done;
                return Some(Poll::Ready(Ok(Grant::Read(ticket))));
            }
            // C-SNZI closed: a writer owns or has claimed the lock. Burn
            // the bounded poll budget before paying for a queue node.
            if !self.backoff.poll_relax() {
                break;
            }
        }
        // Closed; nothing is held yet, so a pre-queue timeout is free.
        if self.expired() {
            self.raw.telemetry.incr(LockEvent::Timeout);
            self.state = State::Done;
            return Some(Poll::Ready(Err(TimedOut)));
        }
        fault::inject("async.read.before-queue-mutex");
        let mut q = self.raw.queue.lock();
        if self.raw.csnzi.query().open {
            // The writer released before we got the mutex; retry.
            drop(q);
            return None;
        }
        let w = q.join_readers();
        self.raw.telemetry.incr(LockEvent::ReadSlow);
        self.raw.telemetry.trace_enqueued(w.token());
        drop(q);
        self.note_queued();
        self.state = State::Queued(w);
        None
    }

    /// Write spin + queue phases. `None` means "state changed, loop".
    fn init_write(&mut self) -> Option<Poll<Result<Grant, TimedOut>>> {
        loop {
            // Fast path: free lock.
            if self.raw.csnzi.close_if_empty() {
                self.raw.telemetry.incr(LockEvent::WriteFast);
                self.raw.telemetry.record_write_acquire(&self.acquire);
                self.state = State::Done;
                return Some(Poll::Ready(Ok(Grant::Write)));
            }
            if !self.backoff.poll_relax() {
                break;
            }
        }
        fault::inject("async.write.before-queue-mutex");
        let mut q = self.raw.queue.lock();
        // Close (sets the "write wanted" state): if it returns true the
        // lock was free after all and we own it.
        if self.raw.csnzi.close() {
            self.raw.telemetry.incr(LockEvent::WriteSlow);
            drop(q);
            self.raw.telemetry.record_write_acquire(&self.acquire);
            self.state = State::Done;
            return Some(Poll::Ready(Ok(Grant::Write)));
        }
        // Expired before enqueueing: leave without a queue entry. Our
        // `close` may have moved the C-SNZI to closed-with-readers with
        // no writer queued; the last departing reader handles that (its
        // dequeue finds nothing and reopens).
        if self.expired() {
            drop(q);
            self.raw.telemetry.incr(LockEvent::Timeout);
            self.state = State::Done;
            return Some(Poll::Ready(Err(TimedOut)));
        }
        let w = q.enqueue_writer();
        self.raw.telemetry.incr(LockEvent::WriteSlow);
        self.raw.telemetry.trace_enqueued(w.token());
        drop(q);
        self.note_queued();
        self.state = State::Queued(w);
        None
    }

    fn poll_queued(
        &mut self,
        w: &Arc<Waiter>,
        cx: &mut Context<'_>,
    ) -> Poll<Result<Grant, TimedOut>> {
        if w.word.load(Ordering::Acquire) == GRANTED {
            return self.finish_granted();
        }
        if self.deadline.is_some() && self.expired() {
            // The node word arbitrates expiry vs. grant: exactly one of
            // the tombstone CAS and the grant CAS wins.
            match w
                .word
                .compare_exchange(WAITING, ABANDONED, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    // Tombstoned; the next grant cascades over us and
                    // departs our pre-arrival (if any was made).
                    self.raw.telemetry.incr(LockEvent::Timeout);
                    self.raw.telemetry.incr(LockEvent::Cancel);
                    self.state = State::Done;
                    return Poll::Ready(Err(TimedOut));
                }
                // The grant won the race: the lock is ours. Deadlines
                // are best-effort — take the hold rather than pay a
                // release/re-acquire round trip to report lateness.
                Err(_) => return self.finish_granted(),
            }
        }
        if !w.slot.register(cx.waker()) {
            // The slot's one-shot wake has fired, and the grant CAS
            // happens-before the wake: we are granted, not pending.
            debug_assert_eq!(w.word.load(Ordering::Acquire), GRANTED);
            return self.finish_granted();
        }
        self.raw.telemetry.incr(LockEvent::WakerStored);
        fault::inject(if self.write {
            "async.write.pending-window"
        } else {
            "async.read.pending-window"
        });
        // The mandatory post-registration re-check (DESIGN.md §13): a
        // grant that landed before the slot was populated fired `wake`
        // on an empty slot, and nothing else will ever poll us.
        if w.word.load(Ordering::Acquire) == GRANTED {
            return self.finish_granted();
        }
        if let Some(deadline) = self.deadline {
            self.arm_timer(deadline, cx);
        }
        Poll::Pending
    }

    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    fn note_queued(&mut self) {
        if self.deadline.is_some() {
            self.wait_started = Some(Instant::now());
        }
    }

    /// Schedules the wake that re-polls us at the deadline — or earlier,
    /// at the hazard watch interval, so a stalled watched writer feeds
    /// the starvation watchdog while it waits.
    fn arm_timer(&self, deadline: Instant, cx: &Context<'_>) {
        let now = Instant::now();
        let tick = match self.raw.hazard.watch_interval() {
            Some(interval) if self.write => {
                if let Some(started) = self.wait_started {
                    self.raw
                        .hazard
                        .note_writer_stall(now.duration_since(started));
                }
                deadline.min(now + interval)
            }
            _ => deadline,
        };
        crate::timer::schedule(tick, cx.waker().clone());
    }
}

impl Drop for Acquire<'_> {
    fn drop(&mut self) {
        let State::Queued(w) = &self.state else {
            return;
        };
        match w
            .word
            .compare_exchange(WAITING, ABANDONED, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => {
                // Tombstoned: the next grant cascades over the node and
                // undoes its share through the C-SNZI.
                self.raw.telemetry.incr(LockEvent::Cancel);
            }
            Err(_) => {
                // The grant already landed; consume it so ownership is
                // not stranded on a dropped future.
                if self.write {
                    self.raw.release_owned(false);
                } else if !self.raw.csnzi.depart(Ticket::ROOT) {
                    self.raw.release_owned(true);
                }
            }
        }
    }
}

/// Future of [`AsyncRwLock::read`]. Dropping it before completion
/// cancels the acquisition.
#[must_use = "futures do nothing unless polled"]
pub struct ReadFuture<'a, T: ?Sized> {
    lock: &'a AsyncRwLock<T>,
    inner: Acquire<'a>,
}

/// Future of [`AsyncRwLock::write`]. Dropping it before completion
/// cancels the acquisition.
#[must_use = "futures do nothing unless polled"]
pub struct WriteFuture<'a, T: ?Sized> {
    lock: &'a AsyncRwLock<T>,
    inner: Acquire<'a>,
}

/// Future of [`AsyncRwLock::read_deadline`].
#[must_use = "futures do nothing unless polled"]
pub struct TimedReadFuture<'a, T: ?Sized> {
    lock: &'a AsyncRwLock<T>,
    inner: Acquire<'a>,
}

/// Future of [`AsyncRwLock::write_deadline`].
#[must_use = "futures do nothing unless polled"]
pub struct TimedWriteFuture<'a, T: ?Sized> {
    lock: &'a AsyncRwLock<T>,
    inner: Acquire<'a>,
}

pub(crate) fn read<T: ?Sized>(lock: &AsyncRwLock<T>) -> ReadFuture<'_, T> {
    ReadFuture {
        lock,
        inner: Acquire::new(&lock.raw, false, None),
    }
}

pub(crate) fn write<T: ?Sized>(lock: &AsyncRwLock<T>) -> WriteFuture<'_, T> {
    WriteFuture {
        lock,
        inner: Acquire::new(&lock.raw, true, None),
    }
}

pub(crate) fn read_deadline<T: ?Sized>(
    lock: &AsyncRwLock<T>,
    deadline: Instant,
) -> TimedReadFuture<'_, T> {
    TimedReadFuture {
        lock,
        inner: Acquire::new(&lock.raw, false, Some(deadline)),
    }
}

pub(crate) fn write_deadline<T: ?Sized>(
    lock: &AsyncRwLock<T>,
    deadline: Instant,
) -> TimedWriteFuture<'_, T> {
    TimedWriteFuture {
        lock,
        inner: Acquire::new(&lock.raw, true, Some(deadline)),
    }
}

fn read_guard<'a, T: ?Sized>(lock: &'a AsyncRwLock<T>, ticket: Ticket) -> AsyncReadGuard<'a, T> {
    lock.raw.hazard.on_guard_acquire(false);
    AsyncReadGuard {
        lock,
        ticket,
        hold: lock.raw.telemetry.timer(),
    }
}

fn write_guard<T: ?Sized>(lock: &AsyncRwLock<T>) -> AsyncWriteGuard<'_, T> {
    lock.raw.hazard.on_guard_acquire(true);
    AsyncWriteGuard {
        lock,
        hold: lock.raw.telemetry.timer(),
    }
}

// All four futures are Unpin: the engine holds no self-references (the
// waiter is Arc'd), so polling through plain &mut is sound.
impl<T: ?Sized> Unpin for ReadFuture<'_, T> {}
impl<T: ?Sized> Unpin for WriteFuture<'_, T> {}
impl<T: ?Sized> Unpin for TimedReadFuture<'_, T> {}
impl<T: ?Sized> Unpin for TimedWriteFuture<'_, T> {}

impl<'a, T: ?Sized> Future for ReadFuture<'a, T> {
    type Output = AsyncReadGuard<'a, T>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        match this.inner.poll_acquire(cx) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(Ok(Grant::Read(ticket))) => Poll::Ready(read_guard(this.lock, ticket)),
            Poll::Ready(Ok(Grant::Write)) | Poll::Ready(Err(_)) => {
                unreachable!("untimed read acquisition yields a read grant")
            }
        }
    }
}

impl<'a, T: ?Sized> Future for WriteFuture<'a, T> {
    type Output = AsyncWriteGuard<'a, T>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        match this.inner.poll_acquire(cx) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(Ok(Grant::Write)) => Poll::Ready(write_guard(this.lock)),
            Poll::Ready(Ok(Grant::Read(_))) | Poll::Ready(Err(_)) => {
                unreachable!("untimed write acquisition yields a write grant")
            }
        }
    }
}

impl<'a, T: ?Sized> Future for TimedReadFuture<'a, T> {
    type Output = Result<AsyncReadGuard<'a, T>, TimedOut>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        match this.inner.poll_acquire(cx) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(Ok(Grant::Read(ticket))) => Poll::Ready(Ok(read_guard(this.lock, ticket))),
            Poll::Ready(Err(TimedOut)) => Poll::Ready(Err(TimedOut)),
            Poll::Ready(Ok(Grant::Write)) => unreachable!("read acquisition yields a read grant"),
        }
    }
}

impl<'a, T: ?Sized> Future for TimedWriteFuture<'a, T> {
    type Output = Result<AsyncWriteGuard<'a, T>, TimedOut>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        match this.inner.poll_acquire(cx) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(Ok(Grant::Write)) => Poll::Ready(Ok(write_guard(this.lock))),
            Poll::Ready(Err(TimedOut)) => Poll::Ready(Err(TimedOut)),
            Poll::Ready(Ok(Grant::Read(_))) => {
                unreachable!("write acquisition yields a write grant")
            }
        }
    }
}
