//! A lazy process-global deadline timer for the `*_deadline` futures.
//!
//! The blocking locks sleep *in* the waiter (`wait_deadline` parks with a
//! timeout); a future cannot sleep, so expiry needs an external agent.
//! One daemon thread (spawned on first use, never for deadline-free
//! workloads) owns a min-heap of `(Instant, Waker)` entries and wakes
//! each task at its tick. Entries are one-shot and fire-and-forget: a
//! completed or cancelled future simply leaves a stale entry behind,
//! whose wake is spurious (permitted by the `Waker` contract) — the
//! timer never needs to hear about cancellation.
//!
//! The waker here is the *task* waker, cloned at `poll` time, and is
//! deliberately **not** routed through the waiter's one-shot
//! [`WakerSlot`](crate::waker::WakerSlot): the slot's `WOKEN` state is
//! terminal and reserved for the grant, so a deadline tick that consumed
//! it would break every later registration. See DESIGN.md §13.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, OnceLock};
use std::task::Waker;
use std::time::Instant;

struct Entry {
    at: Instant,
    /// Tie-break so `Ord` is total without comparing wakers.
    seq: u64,
    waker: Waker,
}

// BinaryHeap is a max-heap; reverse the comparison so the earliest
// deadline surfaces first.
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

struct State {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

static TIMER: OnceLock<&'static Shared> = OnceLock::new();

/// Schedules `waker` to be woken at (or shortly after) `at`.
pub(crate) fn schedule(at: Instant, waker: Waker) {
    let shared = TIMER.get_or_init(|| {
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                seq: 0,
            }),
            cv: Condvar::new(),
        }));
        std::thread::Builder::new()
            .name("oll-async-timer".into())
            .spawn(move || run(shared))
            .expect("spawn the oll-async timer thread");
        shared
    });
    let mut st = shared.state.lock().unwrap();
    st.seq += 1;
    let seq = st.seq;
    st.heap.push(Entry { at, seq, waker });
    drop(st);
    shared.cv.notify_one();
}

fn run(shared: &'static Shared) {
    let mut st = shared.state.lock().unwrap();
    loop {
        let now = Instant::now();
        let mut due = Vec::new();
        while st.heap.peek().is_some_and(|e| e.at <= now) {
            due.push(st.heap.pop().expect("peeked entry"));
        }
        if !due.is_empty() {
            // Wake outside the heap mutex: a wake may immediately poll
            // the task on another thread, and that poll may re-schedule.
            drop(st);
            for e in due {
                e.waker.wake();
            }
            st = shared.state.lock().unwrap();
            continue;
        }
        st = match st.heap.peek() {
            Some(e) => {
                let dur = e.at.duration_since(now);
                shared.cv.wait_timeout(st, dur).unwrap().0
            }
            None => shared.cv.wait(st).unwrap(),
        };
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::task::Wake;
    use std::time::Duration;

    struct Flag(AtomicUsize);
    impl Wake for Flag {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn fires_in_deadline_order() {
        let early = Arc::new(Flag(AtomicUsize::new(0)));
        let late = Arc::new(Flag(AtomicUsize::new(0)));
        let now = Instant::now();
        schedule(
            now + Duration::from_millis(200),
            Waker::from(Arc::clone(&late)),
        );
        schedule(
            now + Duration::from_millis(20),
            Waker::from(Arc::clone(&early)),
        );
        let deadline = now + Duration::from_secs(5);
        while early.0.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(early.0.load(Ordering::SeqCst), 1);
        assert_eq!(late.0.load(Ordering::SeqCst), 0, "late entry fired early");
        while late.0.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(late.0.load(Ordering::SeqCst), 1);
    }
}
