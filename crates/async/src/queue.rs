//! The async wait queue: GOLL's group-coalescing turnstile with `Arc`'d
//! waiter nodes in place of wait events.
//!
//! The blocking GOLL parks *threads* behind `Event`/`GroupEvent` objects
//! and arbitrates timed cancellation under the queue mutex (a cancelling
//! waiter excises its entry, so a hand-off never targets an abandoned
//! waiter). A future's drop handler must not take the queue mutex — drops
//! run in arbitrary contexts, including inside an executor that is also
//! polling a task that holds it two frames up — so the async queue uses
//! the FOLL arbitration instead: cancellation is a **lock-free tombstone**
//! (a `WAITING → ABANDONED` CAS on the waiter's four-state node word) and
//! the *granter* cascades over abandoned nodes, undoing their pre-arrivals
//! through the C-SNZI (`GrantCascade`). Tombstoned members therefore stay
//! in their group until a release dequeues the group.

use crate::waker::WakerSlot;
use oll_core::node_state::WAITING;
use oll_core::FairnessPolicy;
use std::collections::VecDeque;
use std::sync::atomic::AtomicU32;
use std::sync::Arc;

/// One queued acquisition: the four-state node word (`GRANTED` /
/// `WAITING` / `ABANDONED` / `RELEASED`, see `oll_core::node_state`) and
/// the task-waker slot the grant fires.
///
/// The `Arc` replaces FOLL's node-pool lifecycle: the granter and the
/// future each hold a reference, so a tombstoned node stays valid until
/// the cascade has released on its behalf.
pub(crate) struct Waiter {
    /// `node_state` word; the grant CAS (`WAITING → GRANTED`, `Release`)
    /// happens-before the slot wake, so a woken task reads `GRANTED`.
    pub(crate) word: AtomicU32,
    /// Where the pending future parks its task waker.
    pub(crate) slot: WakerSlot,
}

impl Waiter {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            word: AtomicU32::new(WAITING),
            slot: WakerSlot::new(),
        })
    }

    /// Trace causality token: the node address is the one value the
    /// granter and the woken task share (joins `granted` to `enqueued`).
    pub(crate) fn token(self: &Arc<Self>) -> u64 {
        Arc::as_ptr(self) as u64
    }
}

pub(crate) enum Group {
    Readers { members: Vec<Arc<Waiter>> },
    Writer { waiter: Arc<Waiter> },
}

/// What a releasing task hands the lock to.
pub(crate) enum Handoff {
    /// Nobody waiting: actually release.
    None,
    /// A single writer: the lock stays in the closed-empty state.
    Writer(Arc<Waiter>),
    /// One or more groups of readers.
    Readers {
        members: Vec<Arc<Waiter>>,
        /// Whether writers remain queued (the reopened C-SNZI must then
        /// stay closed so new readers keep queuing behind them).
        writers_remain: bool,
    },
}

pub(crate) struct WaitQueue {
    groups: VecDeque<Group>,
    num_writers: usize,
}

impl WaitQueue {
    pub(crate) fn new() -> Self {
        Self {
            groups: VecDeque::new(),
            num_writers: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Queued acquisitions, tombstones included (they leave the count
    /// only when a release dequeues their group).
    pub(crate) fn waiter_count(&self) -> usize {
        self.groups
            .iter()
            .map(|g| match g {
                Group::Readers { members } => members.len(),
                Group::Writer { .. } => 1,
            })
            .sum()
    }

    pub(crate) fn enqueue_writer(&mut self) -> Arc<Waiter> {
        let w = Waiter::new();
        self.groups.push_back(Group::Writer {
            waiter: Arc::clone(&w),
        });
        self.num_writers += 1;
        w
    }

    /// Joins the readers group at the tail, or starts a new one. Reader
    /// groups only coalesce at the tail, so two reader groups are never
    /// adjacent in the queue.
    pub(crate) fn join_readers(&mut self) -> Arc<Waiter> {
        let w = Waiter::new();
        if let Some(Group::Readers { members }) = self.groups.back_mut() {
            members.push(Arc::clone(&w));
            return w;
        }
        self.groups.push_back(Group::Readers {
            members: vec![Arc::clone(&w)],
        });
        w
    }

    fn pop_front(&mut self) -> Handoff {
        match self.groups.pop_front() {
            None => Handoff::None,
            Some(Group::Writer { waiter }) => {
                self.num_writers -= 1;
                Handoff::Writer(waiter)
            }
            Some(Group::Readers { members }) => Handoff::Readers {
                members,
                writers_remain: self.num_writers > 0,
            },
        }
    }

    /// Removes *every* readers group (Alternating writer-release).
    fn drain_all_readers(&mut self) -> Handoff {
        let mut members = Vec::new();
        self.groups.retain_mut(|g| match g {
            Group::Readers { members: m } => {
                members.append(m);
                false
            }
            Group::Writer { .. } => true,
        });
        if members.is_empty() {
            Handoff::None
        } else {
            Handoff::Readers {
                members,
                writers_remain: self.num_writers > 0,
            }
        }
    }

    /// Removes the first queued writer (FIFO among writers — the async
    /// queue carries no priorities).
    fn take_first_writer(&mut self) -> Handoff {
        let Some(idx) = self
            .groups
            .iter()
            .position(|g| matches!(g, Group::Writer { .. }))
        else {
            return Handoff::None;
        };
        match self.groups.remove(idx) {
            Some(Group::Writer { waiter }) => {
                self.num_writers -= 1;
                Handoff::Writer(waiter)
            }
            _ => unreachable!("index located a writer"),
        }
    }

    fn has_waiting_readers(&self) -> bool {
        self.num_writers < self.groups.len()
    }

    fn readers_first(&mut self) -> Handoff {
        if self.has_waiting_readers() {
            self.drain_all_readers()
        } else {
            self.take_first_writer()
        }
    }

    fn writers_first(&mut self) -> Handoff {
        if self.num_writers > 0 {
            self.take_first_writer()
        } else {
            self.drain_all_readers()
        }
    }

    /// Chooses the hand-off target for a releasing *writer*.
    pub(crate) fn dequeue_for_writer_release(&mut self, policy: FairnessPolicy) -> Handoff {
        match policy {
            FairnessPolicy::Fifo => self.pop_front(),
            // No priorities in the async queue, so "readers first unless a
            // higher-priority writer waits" reduces to readers-first.
            FairnessPolicy::Alternating | FairnessPolicy::ReaderPreference => self.readers_first(),
            FairnessPolicy::WriterPreference => self.writers_first(),
        }
    }

    /// Chooses the hand-off target for a releasing *reader*.
    pub(crate) fn dequeue_for_reader_release(&mut self, policy: FairnessPolicy) -> Handoff {
        match policy {
            FairnessPolicy::Fifo => self.pop_front(),
            FairnessPolicy::Alternating | FairnessPolicy::WriterPreference => self.writers_first(),
            FairnessPolicy::ReaderPreference => self.readers_first(),
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn members_of(h: Handoff) -> usize {
        match h {
            Handoff::Readers { members, .. } => members.len(),
            Handoff::Writer(_) => panic!("expected readers"),
            Handoff::None => 0,
        }
    }

    #[test]
    fn readers_coalesce_only_at_the_tail() {
        let mut q = WaitQueue::new();
        q.join_readers();
        q.join_readers();
        let _w = q.enqueue_writer();
        q.join_readers();
        assert_eq!(q.waiter_count(), 4);
        // Front group has the two pre-writer readers.
        assert_eq!(members_of(q.pop_front()), 2);
        assert!(matches!(q.pop_front(), Handoff::Writer(_)));
        assert_eq!(members_of(q.pop_front()), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn alternating_writer_release_drains_all_reader_groups() {
        let mut q = WaitQueue::new();
        q.join_readers();
        q.enqueue_writer();
        q.join_readers();
        let h = q.dequeue_for_writer_release(FairnessPolicy::Alternating);
        match h {
            Handoff::Readers {
                members,
                writers_remain,
            } => {
                assert_eq!(members.len(), 2);
                assert!(writers_remain);
            }
            _ => panic!("expected readers"),
        }
        assert!(matches!(
            q.dequeue_for_writer_release(FairnessPolicy::Alternating),
            Handoff::Writer(_)
        ));
        assert!(q.is_empty());
    }

    #[test]
    fn alternating_reader_release_prefers_writers() {
        let mut q = WaitQueue::new();
        q.join_readers();
        q.enqueue_writer();
        assert!(matches!(
            q.dequeue_for_reader_release(FairnessPolicy::Alternating),
            Handoff::Writer(_)
        ));
        assert_eq!(
            members_of(q.dequeue_for_reader_release(FairnessPolicy::Alternating)),
            1
        );
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut q = WaitQueue::new();
        q.enqueue_writer();
        q.join_readers();
        assert!(matches!(
            q.dequeue_for_writer_release(FairnessPolicy::Fifo),
            Handoff::Writer(_)
        ));
        assert_eq!(
            members_of(q.dequeue_for_writer_release(FairnessPolicy::Fifo)),
            1
        );
        assert!(matches!(
            q.dequeue_for_writer_release(FairnessPolicy::Fifo),
            Handoff::None
        ));
    }
}
