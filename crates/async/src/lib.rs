//! **`oll-async`** — the futures-native OLL reader-writer lock family.
//!
//! The blocking locks in `oll-core` scale reader *arrivals* across cores,
//! but every waiter is an OS thread parked in its wait strategy, capping
//! concurrency at thread count. This crate keeps the same lockword — a
//! C-SNZI, with open/closed/surplus encoding the free / write-acquired /
//! read-acquired states — and replaces the parked thread behind each
//! queue node with a stored [`core::task::Waker`], so a handful of
//! executor threads can serve millions of in-flight acquisitions.
//!
//! Design points (full protocol argument in DESIGN.md §13):
//!
//! * **Executor-agnostic.** The lock speaks raw `Waker`; nothing here
//!   depends on (or spawns onto) any particular runtime. [`block_on`] is
//!   provided for tests and bridging synchronous code.
//! * **Spin → store-waker → pending.** A poll retries the RMW-free fast
//!   path under a *bounded* spin budget ([`oll_util::Backoff::poll_relax`]),
//!   then queues a waiter whose node word is the four-state
//!   `GRANTED`/`WAITING`/`ABANDONED`/`RELEASED` protocol shared with the
//!   blocking FOLL, and whose [`waker::WakerSlot`] carries the task
//!   waker. A poll never parks, yields, or waits on another task.
//! * **Cancel-on-drop.** Dropping a pending future tombstones its node
//!   (`WAITING → ABANDONED`, lock-free); the next grant cascades over the
//!   tombstone and undoes its C-SNZI share. A drop that loses the race to
//!   a concurrent grant consumes the grant instead, so ownership is never
//!   stranded.
//! * **Hand-off semantics.** Releases *grant* ownership: a woken reader's
//!   root arrival is already committed (`OpenWithArrivals` runs before
//!   any node word flips to `GRANTED`), and a woken writer wakes in the
//!   closed-empty (write-acquired) state.
//!
//! ```
//! use oll_async::{block_on, AsyncRwLock};
//!
//! let lock = AsyncRwLock::new(41);
//! block_on(async {
//!     *lock.write().await += 1;
//!     assert_eq!(*lock.read().await, 42);
//! });
//! ```

#![warn(missing_docs)]
#![cfg(not(loom))]

mod future;
mod queue;
mod timer;
pub mod waker;

pub use future::{ReadFuture, TimedReadFuture, TimedWriteFuture, WriteFuture};
pub use oll_core::{FairnessPolicy, TimedOut};

use oll_core::node_state::{GRANTED, RELEASED, WAITING};
use oll_csnzi::{ArrivalPolicy, CSnzi, LeafCursor, Ticket, TreeShape};
use oll_hazard::Hazard;
use oll_telemetry::{LockEvent, Telemetry, Timer};
use oll_util::{CachePadded, SpinMutex};
use queue::{Handoff, WaitQueue};
use std::cell::UnsafeCell;
use std::future::Future;
use std::ops::{Deref, DerefMut};
use std::pin::pin;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::Instant;

/// The lock machinery, shared by every future and guard (kept free of
/// the value's type parameter so the acquisition engine is monomorphic).
pub(crate) struct RawLock {
    pub(crate) csnzi: CSnzi,
    pub(crate) queue: CachePadded<SpinMutex<WaitQueue>>,
    pub(crate) policy: FairnessPolicy,
    pub(crate) arrival_threshold: u32,
    pub(crate) telemetry: Telemetry,
    pub(crate) hazard: Hazard,
}

impl RawLock {
    /// Releases the lock from the write-acquired (closed-empty) state the
    /// caller owns: hand it to waiter(s), or actually open it.
    ///
    /// `from_reader` selects the fairness policy's release class (the
    /// caller is the last departing reader of a closed C-SNZI, or a
    /// write holder).
    ///
    /// This is the granter side of the waker protocol. The order is
    /// load-bearing: for readers, `open_with_arrivals` commits every
    /// member's root arrival *under the queue mutex*, before any node
    /// word flips to `GRANTED` — so a task that observes `GRANTED` may
    /// take its read hold and depart with no further synchronization.
    /// Abandoned members (cancel-on-drop tombstones) are cascaded over:
    /// the granter departs their pre-arrivals itself, and if that drains
    /// the closed C-SNZI, ownership returns here and the loop grants the
    /// next waiter.
    pub(crate) fn release_owned(&self, mut from_reader: bool) {
        loop {
            let mut q = self.queue.lock();
            let handoff = if from_reader {
                q.dequeue_for_reader_release(self.policy)
            } else {
                q.dequeue_for_writer_release(self.policy)
            };
            match handoff {
                Handoff::None => {
                    self.csnzi.open();
                    drop(q);
                    return;
                }
                Handoff::Writer(w) => {
                    drop(q);
                    // Closed-and-empty is exactly the write-acquired
                    // state; the CAS transfers it. Wake strictly after
                    // the grant store so the woken poll reads GRANTED.
                    if w.word
                        .compare_exchange(WAITING, GRANTED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.telemetry.incr(LockEvent::HandoffToWriter);
                        self.telemetry.trace_granted(w.token());
                        if w.slot.wake() {
                            self.telemetry.incr(LockEvent::WakerWoken);
                        }
                        return;
                    }
                    // The writer cancelled; release on its behalf and
                    // grant the next waiter.
                    w.word.store(RELEASED, Ordering::Release);
                    self.telemetry.incr(LockEvent::GrantCascade);
                }
                Handoff::Readers {
                    members,
                    writers_remain,
                } => {
                    self.telemetry.incr(LockEvent::HandoffToReaders);
                    // Pre-arrive for every member (tombstones included —
                    // membership was fixed when the group was dequeued)
                    // while still holding the queue mutex, staying closed
                    // iff writers remain queued.
                    self.csnzi
                        .open_with_arrivals(members.len() as u64, writers_remain);
                    drop(q);
                    let mut undone = 0u64;
                    for w in &members {
                        if w.word
                            .compare_exchange(WAITING, GRANTED, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            self.telemetry.trace_granted(w.token());
                            if w.slot.wake() {
                                self.telemetry.incr(LockEvent::WakerWoken);
                            }
                        } else {
                            w.word.store(RELEASED, Ordering::Release);
                            self.telemetry.incr(LockEvent::GrantCascade);
                            undone += 1;
                        }
                    }
                    // Depart the cascaded members' pre-arrivals. If one
                    // of these is the last departure of a *closed* C-SNZI
                    // (every live member already departed too, writers
                    // queued behind), ownership comes back to us.
                    let mut regained = false;
                    for _ in 0..undone {
                        if !self.csnzi.depart(Ticket::ROOT) {
                            regained = true;
                        }
                    }
                    if !regained {
                        return;
                    }
                    from_reader = true;
                }
            }
        }
    }
}

/// A futures-native reader-writer lock protecting a `T` (C-SNZI core,
/// task-waker hand-off, cancellation on drop). See the crate docs.
pub struct AsyncRwLock<T: ?Sized> {
    pub(crate) raw: RawLock,
    pub(crate) value: UnsafeCell<T>,
}

// SAFETY: the lock provides the synchronization: shared access behind
// read grants, exclusive access behind the single write grant.
unsafe impl<T: ?Sized + Send> Send for AsyncRwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for AsyncRwLock<T> {}

impl<T> AsyncRwLock<T> {
    /// Creates a lock with the default configuration (C-SNZI tree sized
    /// to the machine's CPU count — waiter concurrency is unbounded
    /// either way; the tree only spreads *arrival* traffic).
    pub fn new(value: T) -> Self {
        AsyncRwLockBuilder::new().build(value)
    }

    /// Starts a builder.
    pub fn builder() -> AsyncRwLockBuilder {
        AsyncRwLockBuilder::new()
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> AsyncRwLock<T> {
    /// Acquires a read (shared) hold. Await the returned future; drop it
    /// before completion to cancel the acquisition.
    pub fn read(&self) -> ReadFuture<'_, T> {
        future::read(self)
    }

    /// Acquires a write (exclusive) hold. Await the returned future;
    /// drop it before completion to cancel the acquisition.
    pub fn write(&self) -> WriteFuture<'_, T> {
        future::write(self)
    }

    /// Acquires a read hold, giving up at `deadline`. The deadline is
    /// best-effort: a grant that wins the expiry race is honoured.
    pub fn read_deadline(&self, deadline: Instant) -> TimedReadFuture<'_, T> {
        future::read_deadline(self, deadline)
    }

    /// Acquires a write hold, giving up at `deadline`. The deadline is
    /// best-effort: a grant that wins the expiry race is honoured.
    pub fn write_deadline(&self, deadline: Instant) -> TimedWriteFuture<'_, T> {
        future::write_deadline(self, deadline)
    }

    /// Attempts a read hold without waiting (fast path only).
    pub fn try_read(&self) -> Option<AsyncReadGuard<'_, T>> {
        let mut policy = ArrivalPolicy::new(self.raw.arrival_threshold);
        let mut cursor = LeafCursor::new();
        let ticket = self.raw.csnzi.arrive_cached(&mut policy, &mut cursor);
        if !ticket.arrived() {
            return None;
        }
        self.raw.telemetry.incr(if ticket.is_root() {
            LockEvent::ArriveDirect
        } else {
            LockEvent::ArriveTree
        });
        self.raw.telemetry.incr(LockEvent::ReadFast);
        self.raw.hazard.on_guard_acquire(false);
        Some(AsyncReadGuard {
            lock: self,
            ticket,
            hold: self.raw.telemetry.timer(),
        })
    }

    /// Attempts a write hold without waiting (fast path only).
    pub fn try_write(&self) -> Option<AsyncWriteGuard<'_, T>> {
        if !self.raw.csnzi.close_if_empty() {
            return None;
        }
        self.raw.telemetry.incr(LockEvent::WriteFast);
        self.raw.hazard.on_guard_acquire(true);
        Some(AsyncWriteGuard {
            lock: self,
            hold: self.raw.telemetry.timer(),
        })
    }

    /// Mutable access without locking (the `&mut` proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }

    /// Diagnostic snapshot of the C-SNZI root (racy).
    pub fn csnzi_snapshot(&self) -> oll_csnzi::RootWord {
        self.raw.csnzi.root_snapshot()
    }

    /// Queued acquisitions right now, cancellation tombstones included
    /// (racy; tombstones leave when a release dequeues their group).
    pub fn queued_waiters(&self) -> usize {
        self.raw.queue.lock().waiter_count()
    }

    /// This lock's telemetry handle.
    pub fn telemetry(&self) -> Telemetry {
        self.raw.telemetry.clone()
    }

    /// This lock's hazard handle.
    pub fn hazard(&self) -> Hazard {
        self.raw.hazard.clone()
    }
}

impl<T: Default> Default for AsyncRwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for AsyncRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("AsyncRwLock");
        match self.try_read() {
            Some(g) => d.field("value", &&*g),
            None => d.field("value", &format_args!("<write-locked>")),
        }
        .finish()
    }
}

/// Builder for [`AsyncRwLock`].
#[derive(Debug, Clone)]
pub struct AsyncRwLockBuilder {
    concurrency: usize,
    shape: Option<TreeShape>,
    policy: FairnessPolicy,
    arrival_threshold: u32,
    lazy_tree: bool,
    adaptive: bool,
    telemetry_name: Option<String>,
}

impl AsyncRwLockBuilder {
    /// Starts a builder. `concurrency` defaults to the CPU count: it
    /// sizes the C-SNZI arrival tree (one leaf per *executor thread*
    /// that may poll concurrently — not per task; tasks are unbounded).
    pub fn new() -> Self {
        Self {
            concurrency: oll_util::topology::Topology::get().cpus(),
            shape: None,
            policy: FairnessPolicy::Alternating,
            arrival_threshold: ArrivalPolicy::DEFAULT_THRESHOLD,
            lazy_tree: false,
            adaptive: false,
            telemetry_name: None,
        }
    }

    /// Sets the expected polling concurrency (executor worker threads).
    pub fn concurrency(mut self, workers: usize) -> Self {
        self.concurrency = workers.max(1);
        self
    }

    /// Overrides the C-SNZI tree shape (default: one leaf per worker).
    pub fn tree_shape(mut self, shape: TreeShape) -> Self {
        self.shape = Some(shape);
        self
    }

    /// Sets the queuing policy (default: Alternating, as in §5.1).
    pub fn fairness(mut self, policy: FairnessPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the per-future failed-CAS count before arrivals move to the
    /// C-SNZI tree.
    pub fn arrival_threshold(mut self, threshold: u32) -> Self {
        self.arrival_threshold = threshold;
        self
    }

    /// Defers the C-SNZI tree allocation until the first contended
    /// arrival; uncontended locks then cost a single cache line.
    pub fn lazy_tree(mut self, lazy: bool) -> Self {
        self.lazy_tree = lazy;
        self
    }

    /// Makes the C-SNZI adaptive (inflates a topology-sized tree under
    /// measured contention, deflates when quiet). Supersedes
    /// [`lazy_tree`](Self::lazy_tree).
    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Names this lock's telemetry instance (default `"ASYNC#<seq>"`).
    /// No effect unless built with the `telemetry` feature.
    pub fn telemetry_name(mut self, name: &str) -> Self {
        self.telemetry_name = Some(name.to_string());
        self
    }

    /// Builds the lock around `value`.
    pub fn build<T>(self, value: T) -> AsyncRwLock<T> {
        let shape = self
            .shape
            .unwrap_or_else(|| TreeShape::for_threads(self.concurrency));
        let telemetry = Telemetry::register("ASYNC");
        if let Some(name) = &self.telemetry_name {
            telemetry.rename(name);
        }
        let mut csnzi = if self.adaptive {
            let max_leaves = self
                .shape
                .map_or(self.concurrency, |s| s.leaf_count().max(1));
            CSnzi::new_adaptive(max_leaves)
        } else if self.lazy_tree {
            CSnzi::new_lazy(shape)
        } else {
            CSnzi::new(shape)
        };
        csnzi.attach_telemetry(telemetry.clone());
        let hazard = Hazard::new();
        hazard.attach_telemetry(&telemetry);
        AsyncRwLock {
            raw: RawLock {
                csnzi,
                queue: CachePadded::new(SpinMutex::new(WaitQueue::new())),
                policy: self.policy,
                arrival_threshold: self.arrival_threshold,
                telemetry,
                hazard,
            },
            value: UnsafeCell::new(value),
        }
    }
}

impl Default for AsyncRwLockBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Shared (read) hold on an [`AsyncRwLock`]; releases on drop. Dropping
/// is synchronous — safe from any context, async or not.
#[must_use = "the lock is held until the guard is dropped"]
pub struct AsyncReadGuard<'a, T: ?Sized> {
    pub(crate) lock: &'a AsyncRwLock<T>,
    /// The C-SNZI arrival to depart with (`Ticket::ROOT` after a queued
    /// grant: the granter pre-arrived at the root on our behalf).
    pub(crate) ticket: Ticket,
    pub(crate) hold: Timer,
}

impl<T: ?Sized> Deref for AsyncReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: a live read grant excludes all writers.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for AsyncReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw.telemetry.record_read_hold(&self.hold);
        self.lock.raw.hazard.on_guard_drop(false);
        if !self.lock.raw.csnzi.depart(self.ticket) {
            // Last departer of a closed C-SNZI: the lock is now in the
            // write-acquired state and we must hand it to a waiter.
            self.lock.raw.release_owned(true);
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for AsyncReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// Exclusive (write) hold on an [`AsyncRwLock`]; releases on drop.
/// Dropping is synchronous — safe from any context, async or not.
#[must_use = "the lock is held until the guard is dropped"]
pub struct AsyncWriteGuard<'a, T: ?Sized> {
    pub(crate) lock: &'a AsyncRwLock<T>,
    pub(crate) hold: Timer,
}

impl<T: ?Sized> Deref for AsyncWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the write grant is exclusive.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for AsyncWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the write grant is exclusive.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for AsyncWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw.telemetry.record_write_hold(&self.hold);
        self.lock.raw.hazard.on_guard_drop(true);
        self.lock.raw.hazard.note_progress(true);
        self.lock.raw.release_owned(false);
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for AsyncWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

struct ThreadWaker(std::thread::Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives a future to completion on the calling thread (parks between
/// polls). For tests and for bridging synchronous code; any executor
/// works — the lock itself never spawns or blocks.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => std::thread::park(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, AtomicUsize};
    use std::time::Duration;

    fn noop_waker() -> Waker {
        struct Noop;
        impl Wake for Noop {
            fn wake(self: Arc<Self>) {}
        }
        Waker::from(Arc::new(Noop))
    }

    #[test]
    fn uncontended_read_and_write() {
        let lock = AsyncRwLock::new(1u32);
        block_on(async {
            assert_eq!(*lock.read().await, 1);
            *lock.write().await = 2;
            assert_eq!(*lock.read().await, 2);
        });
        let w = lock.csnzi_snapshot();
        assert_eq!((w.surplus(), w.open), (0, true));
        assert_eq!(lock.queued_waiters(), 0);
    }

    #[test]
    fn try_paths_respect_exclusion() {
        let lock = AsyncRwLock::new(());
        let r = lock.try_read().unwrap();
        assert!(lock.try_read().is_some());
        assert!(lock.try_write().is_none());
        drop(r);
        drop(lock.try_read());
        let w = lock.try_write().unwrap();
        assert!(lock.try_read().is_none());
        assert!(lock.try_write().is_none());
        drop(w);
        assert!(lock.csnzi_snapshot().open);
    }

    #[test]
    fn queued_writer_is_granted_on_release() {
        let lock = Arc::new(AsyncRwLock::new(0i32));
        let r = lock.try_read().unwrap();
        let l2 = Arc::clone(&lock);
        let t = std::thread::spawn(move || {
            block_on(async {
                *l2.write().await = 7;
            })
        });
        // Let the writer queue behind our read hold, then release.
        while lock.queued_waiters() == 0 {
            std::thread::yield_now();
        }
        drop(r);
        t.join().unwrap();
        assert_eq!(*block_on(lock.read()), 7);
    }

    #[test]
    fn queued_readers_are_granted_together() {
        const READERS: usize = 4;
        let lock = Arc::new(AsyncRwLock::new(()));
        let w = lock.try_write().unwrap();
        let inside = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for _ in 0..READERS {
            let lock = Arc::clone(&lock);
            let inside = Arc::clone(&inside);
            threads.push(std::thread::spawn(move || {
                block_on(async {
                    let _g = lock.read().await;
                    inside.fetch_add(1, Ordering::SeqCst);
                })
            }));
        }
        while lock.queued_waiters() < READERS {
            std::thread::yield_now();
        }
        assert_eq!(inside.load(Ordering::SeqCst), 0);
        drop(w);
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(inside.load(Ordering::SeqCst), READERS);
        let snap = lock.csnzi_snapshot();
        assert_eq!((snap.surplus(), snap.open), (0, true));
    }

    #[test]
    fn readers_and_writers_exclude() {
        const THREADS: usize = 6;
        const ITERS: usize = 1_500;
        let lock = Arc::new(AsyncRwLock::new(()));
        // state > 0: readers inside; state == -1: a writer inside.
        let state = Arc::new(AtomicI64::new(0));
        let mut threads = Vec::new();
        for tid in 0..THREADS {
            let lock = Arc::clone(&lock);
            let state = Arc::clone(&state);
            threads.push(std::thread::spawn(move || {
                let mut rng = oll_util::XorShift64::for_thread(42, tid);
                for _ in 0..ITERS {
                    if rng.percent(70) {
                        block_on(async {
                            let _g = lock.read().await;
                            let s = state.fetch_add(1, Ordering::SeqCst);
                            assert!(s >= 0, "reader entered while writer inside");
                            state.fetch_sub(1, Ordering::SeqCst);
                        });
                    } else {
                        block_on(async {
                            let _g = lock.write().await;
                            let s = state.swap(-1, Ordering::SeqCst);
                            assert_eq!(s, 0, "writer entered while lock held");
                            state.store(0, Ordering::SeqCst);
                        });
                    }
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let w = lock.csnzi_snapshot();
        assert_eq!((w.surplus(), w.open), (0, true));
        assert_eq!(lock.queued_waiters(), 0);
    }

    #[test]
    fn read_deadline_times_out_under_write_hold() {
        let lock = AsyncRwLock::new(());
        let w = lock.try_write().unwrap();
        let out = block_on(lock.read_deadline(Instant::now() + Duration::from_millis(30)));
        assert!(out.is_err());
        drop(w);
        // Lock recovers: the tombstone cascades away on next release.
        assert!(block_on(lock.read_deadline(Instant::now() + Duration::from_secs(5))).is_ok());
        let snap = lock.csnzi_snapshot();
        assert_eq!((snap.surplus(), snap.open), (0, true));
        assert_eq!(lock.queued_waiters(), 0);
    }

    #[test]
    fn write_deadline_times_out_under_read_hold() {
        let lock = AsyncRwLock::new(());
        let r = lock.try_read().unwrap();
        let out = block_on(lock.write_deadline(Instant::now() + Duration::from_millis(30)));
        assert!(out.is_err());
        drop(r);
        assert!(block_on(lock.write_deadline(Instant::now() + Duration::from_secs(5))).is_ok());
        let snap = lock.csnzi_snapshot();
        assert_eq!((snap.surplus(), snap.open), (0, true));
    }

    #[test]
    fn dropping_a_pending_future_cancels_cleanly() {
        let lock = AsyncRwLock::new(());
        let w = lock.try_write().unwrap();
        {
            let mut fut = pin!(lock.read());
            let waker = noop_waker();
            let mut cx = Context::from_waker(&waker);
            assert!(fut.as_mut().poll(&mut cx).is_pending());
            assert_eq!(lock.queued_waiters(), 1);
        } // dropped mid-wait: tombstoned
        drop(w); // release cascades over the tombstone
        assert_eq!(lock.queued_waiters(), 0);
        let snap = lock.csnzi_snapshot();
        assert_eq!((snap.surplus(), snap.open), (0, true));
    }

    #[test]
    fn debug_formats_both_states() {
        let lock = AsyncRwLock::new(5u8);
        assert!(format!("{lock:?}").contains('5'));
        let _w = lock.try_write().unwrap();
        assert!(format!("{lock:?}").contains("write-locked"));
    }
}
