//! Text and JSON renderers for telemetry snapshots.
//!
//! JSON is hand-rolled (the workspace carries no serialization
//! dependency) and schema-versioned: consumers check `"schema"` /
//! `"version"` before parsing. The same escape/format helpers back the
//! workload bins' `--json` reports.

use crate::event::LockEvent;
use crate::hist::HistogramSnapshot;
use crate::snapshot::LockSnapshot;
use std::fmt::Write as _;

/// Version of every JSON document this crate emits. Bump on any
/// backwards-incompatible field change.
pub const SCHEMA_VERSION: u32 = 1;

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn render_hist_line(out: &mut String, label: &str, h: &HistogramSnapshot) {
    if h.is_empty() {
        let _ = writeln!(out, "  {label:<14} (no samples)");
        return;
    }
    let _ = writeln!(
        out,
        "  {label:<14} n={:<10} p50={:<10} p99={:<10} max={}",
        h.count,
        fmt_ns(h.percentile_ns(0.50)),
        fmt_ns(h.percentile_ns(0.99)),
        fmt_ns(h.max_ns),
    );
}

/// Renders one lock's profile as indented text (the `lockstat` /
/// `fig5 --telemetry` block format).
pub fn render_lock_text(s: &LockSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} [{}]", s.name, s.kind);
    let reads = s.reads();
    let writes = s.writes();
    let _ = writeln!(
        out,
        "  reads          {reads:<10} (fast {}, slow {})",
        s.get(LockEvent::ReadFast),
        s.get(LockEvent::ReadSlow),
    );
    let _ = writeln!(
        out,
        "  writes         {writes:<10} (fast {}, slow {})",
        s.get(LockEvent::WriteFast),
        s.get(LockEvent::WriteSlow),
    );
    // Every event in the taxonomy gets a row when nonzero. The four
    // read/write fast/slow events are already folded into the header
    // lines above; everything else reports under its own name, so a new
    // LockEvent variant shows up here without touching this renderer
    // (the exhaustiveness test below pins that).
    for e in LockEvent::ALL {
        if matches!(
            e,
            LockEvent::ReadFast | LockEvent::ReadSlow | LockEvent::WriteFast | LockEvent::WriteSlow
        ) {
            continue;
        }
        let c = s.get(e);
        if c != 0 {
            let _ = writeln!(out, "  {:<14} {c}", e.name());
        }
    }
    if let Some(rw) = s.root_writes_per_acquire() {
        let _ = writeln!(out, "  root_writes/acquire {rw:.4}");
    }
    render_hist_line(&mut out, "read_acquire", &s.read_acquire);
    render_hist_line(&mut out, "write_acquire", &s.write_acquire);
    render_hist_line(&mut out, "read_hold", &s.read_hold);
    render_hist_line(&mut out, "write_hold", &s.write_hold);
    out
}

/// Renders a sweep of lock profiles as text, one block per lock.
pub fn render_text(snaps: &[LockSnapshot]) -> String {
    if snaps.is_empty() {
        return "(no telemetry recorded)\n".to_string();
    }
    let mut out = String::new();
    for (i, s) in snaps.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&render_lock_text(s));
    }
    out
}

fn json_hist(h: &HistogramSnapshot) -> String {
    // Sparse bucket encoding: only non-zero buckets, as [index, count]
    // pairs, so empty histograms stay tiny.
    let mut buckets = String::from("[");
    let mut first = true;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            buckets.push(',');
        }
        first = false;
        let _ = write!(buckets, "[{i},{c}]");
    }
    buckets.push(']');
    format!(
        "{{\"count\":{},\"max_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"buckets\":{}}}",
        h.count,
        h.max_ns,
        h.percentile_ns(0.50),
        h.percentile_ns(0.99),
        buckets
    )
}

/// Renders one lock's profile as a JSON object (no trailing newline).
pub fn render_lock_json(s: &LockSnapshot) -> String {
    let mut events = String::from("{");
    let mut first = true;
    for e in LockEvent::ALL {
        let c = s.get(e);
        if c == 0 {
            continue;
        }
        if !first {
            events.push(',');
        }
        first = false;
        let _ = write!(events, "\"{}\":{c}", e.name());
    }
    events.push('}');
    format!(
        "{{\"name\":\"{}\",\"kind\":\"{}\",\"events\":{},\"read_acquire\":{},\"write_acquire\":{},\"read_hold\":{},\"write_hold\":{}}}",
        json_escape(&s.name),
        json_escape(&s.kind),
        events,
        json_hist(&s.read_acquire),
        json_hist(&s.write_acquire),
        json_hist(&s.read_hold),
        json_hist(&s.write_hold),
    )
}

/// Renders a sweep of lock profiles as a schema-versioned JSON document.
pub fn render_json(snaps: &[LockSnapshot]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"oll.telemetry\",\"version\":{SCHEMA_VERSION},\"locks\":["
    );
    for (i, s) in snaps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_lock_json(s));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LockSnapshot {
        let mut s = LockSnapshot::empty("fig5/GOLL \"x\"", "GOLL");
        s.events[LockEvent::ReadFast.index()] = 100;
        s.events[LockEvent::ReadSlow.index()] = 10;
        s.events[LockEvent::HandoffToReaders.index()] = 3;
        s.read_acquire.buckets[7] = 110;
        s.read_acquire.count = 110;
        s.read_acquire.max_ns = 200;
        s
    }

    #[test]
    fn text_report_mentions_counts() {
        let txt = render_lock_text(&sample());
        assert!(txt.contains("reads          110"));
        assert!(txt.contains("handoff_to_readers 3"));
        assert!(txt.contains("read_acquire"));
    }

    #[test]
    fn json_is_escaped_and_versioned() {
        let doc = render_json(&[sample()]);
        assert!(doc.starts_with("{\"schema\":\"oll.telemetry\",\"version\":1,"));
        assert!(doc.contains("fig5/GOLL \\\"x\\\""));
        assert!(doc.contains("\"read_fast\":100"));
        assert!(doc.contains("[[7,110]]"));
        assert!(!doc.contains("write_fast\":0"), "zero events elided");
    }

    /// Every event in the taxonomy must surface in both
    /// renderers when its counter is nonzero: the four read/write
    /// fast/slow events inside the header lines, everything else as an
    /// own-named row (text) and key (JSON). A variant added to
    /// `LockEvent::ALL` without report coverage fails here.
    #[test]
    fn every_event_reaches_both_reports() {
        let mut s = LockSnapshot::empty("audit", "GOLL");
        for (i, e) in LockEvent::ALL.iter().enumerate() {
            s.events[e.index()] = 1_000 + i as u64;
        }
        let txt = render_lock_text(&s);
        let json = render_lock_json(&s);
        for (i, e) in LockEvent::ALL.iter().enumerate() {
            let count = 1_000 + i as u64;
            match e {
                LockEvent::ReadFast => assert!(txt.contains(&format!("fast {count}"))),
                LockEvent::ReadSlow | LockEvent::WriteSlow => {
                    assert!(txt.contains(&format!("slow {count}")), "{} row", e.name())
                }
                LockEvent::WriteFast => assert!(txt.contains(&format!("(fast {count}"))),
                e => assert!(
                    txt.contains(&format!("  {:<14} {count}", e.name())),
                    "text report is missing a row for `{}`",
                    e.name()
                ),
            }
            assert!(
                json.contains(&format!("\"{}\":{count}", e.name())),
                "JSON report is missing a key for `{}`",
                e.name()
            );
        }
    }

    #[test]
    fn escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\n\u{1}"), "a\\\"b\\\\c\\n\\u0001");
    }

    #[test]
    fn empty_sweep_renders() {
        assert_eq!(render_text(&[]), "(no telemetry recorded)\n");
        assert_eq!(
            render_json(&[]),
            "{\"schema\":\"oll.telemetry\",\"version\":1,\"locks\":[]}"
        );
    }
}
