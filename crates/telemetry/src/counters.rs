//! Per-lock telemetry state: sharded event counters plus latency and
//! hold-time histograms.
//!
//! The counters must not reintroduce the contention they measure — a
//! single shared counter CASed by every fast-path read would be exactly
//! the centralized lockword the paper eliminates. Counts are therefore
//! **sharded**: [`SHARDS`] cache-padded arrays of relaxed `AtomicU64`s,
//! indexed by a per-thread shard id (threads get round-robin shard ids on
//! first use, so up to [`SHARDS`] recording threads never share a line).
//! A snapshot sums the shards; it is racy but exact once quiescent, the
//! same contract as `oll_csnzi::stats`.

use crate::event::LockEvent;
use crate::hist::AtomicHistogram;
use crate::snapshot::LockSnapshot;
use oll_util::CachePadded;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of counter shards (power of two).
pub const SHARDS: usize = 16;

/// This thread's shard index: threads are numbered round-robin on first
/// use, folded into the shard range. One TLS read per recording.
#[inline]
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SHARD.with(|s| *s) & (SHARDS - 1)
}

#[derive(Debug)]
struct Shard {
    counts: [AtomicU64; LockEvent::COUNT],
}

impl Shard {
    fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// All telemetry state for one lock instance.
///
/// Lock implementations hold this behind the [`Telemetry`](crate::Telemetry)
/// facade; the global [registry](crate::registry) holds a weak reference
/// for fleet-wide snapshots.
#[derive(Debug)]
pub struct LockTelemetry {
    /// Instance name (auto-generated, overridable via
    /// [`Telemetry::rename`](crate::Telemetry::rename)). Read only at
    /// snapshot/registration time, hence the plain mutex.
    name: Mutex<String>,
    /// The lock algorithm (e.g. `"GOLL"`).
    kind: &'static str,
    /// This instance's id in the `oll_trace` lock registry, stamped on
    /// every trace record the facade emits for it.
    #[cfg(feature = "trace")]
    trace_id: u32,
    shards: Box<[CachePadded<Shard>]>,
    /// `lock_read` wall time, entry to success.
    pub(crate) read_acquire: AtomicHistogram,
    /// `lock_write` wall time, entry to success.
    pub(crate) write_acquire: AtomicHistogram,
    /// Read-hold wall time, acquire success to release.
    pub(crate) read_hold: AtomicHistogram,
    /// Write-hold wall time, acquire success to release.
    pub(crate) write_hold: AtomicHistogram,
}

impl LockTelemetry {
    /// Creates empty state for a lock of algorithm `kind` named `name`.
    pub fn new(name: String, kind: &'static str) -> Self {
        #[cfg(feature = "trace")]
        let trace_id = oll_trace::register_lock(kind, &name);
        Self {
            name: Mutex::new(name),
            kind,
            #[cfg(feature = "trace")]
            trace_id,
            shards: (0..SHARDS)
                .map(|_| CachePadded::new(Shard::new()))
                .collect(),
            read_acquire: AtomicHistogram::new(),
            write_acquire: AtomicHistogram::new(),
            read_hold: AtomicHistogram::new(),
            write_hold: AtomicHistogram::new(),
        }
    }

    /// The lock algorithm name.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// The instance name.
    pub fn name(&self) -> String {
        self.name.lock().unwrap().clone()
    }

    /// Renames the instance (shows up in subsequent snapshots).
    pub fn set_name(&self, name: &str) {
        *self.name.lock().unwrap() = name.to_string();
        #[cfg(feature = "trace")]
        oll_trace::rename_lock(self.trace_id, name);
    }

    /// This instance's `oll_trace` lock id.
    #[cfg(feature = "trace")]
    #[inline]
    pub(crate) fn trace_id(&self) -> u32 {
        self.trace_id
    }

    /// Adds `n` to `event`'s counter on this thread's shard.
    #[inline]
    pub fn add(&self, event: LockEvent, n: u64) {
        self.shards[shard_index()].counts[event.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Sums `event`'s counter across shards.
    pub fn count(&self, event: LockEvent) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counts[event.index()].load(Ordering::Relaxed))
            .sum()
    }

    /// Reads everything (racy snapshot; exact once quiescent).
    pub fn snapshot(&self) -> LockSnapshot {
        let mut events = [0u64; LockEvent::COUNT];
        for shard in self.shards.iter() {
            for (acc, c) in events.iter_mut().zip(shard.counts.iter()) {
                *acc += c.load(Ordering::Relaxed);
            }
        }
        LockSnapshot {
            name: self.name(),
            kind: self.kind.to_string(),
            events,
            read_acquire: self.read_acquire.snapshot(),
            write_acquire: self.write_acquire.snapshot(),
            read_hold: self.read_hold.snapshot(),
            write_hold: self.write_hold.snapshot(),
        }
    }

    /// Zeroes all counters and histograms.
    pub fn reset(&self) {
        for shard in self.shards.iter() {
            for c in &shard.counts {
                c.store(0, Ordering::Relaxed);
            }
        }
        self.read_acquire.reset();
        self.write_acquire.reset();
        self.read_hold.reset();
        self.write_hold.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_count_reset() {
        let t = LockTelemetry::new("t".into(), "TEST");
        t.add(LockEvent::ReadFast, 3);
        t.add(LockEvent::ReadFast, 2);
        t.add(LockEvent::Timeout, 1);
        assert_eq!(t.count(LockEvent::ReadFast), 5);
        assert_eq!(t.count(LockEvent::Timeout), 1);
        assert_eq!(t.count(LockEvent::WriteFast), 0);
        t.reset();
        assert_eq!(t.count(LockEvent::ReadFast), 0);
    }

    #[test]
    fn counts_sum_across_threads() {
        let t = std::sync::Arc::new(LockTelemetry::new("x".into(), "TEST"));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..1000 {
                        t.add(LockEvent::ArriveTree, 1);
                    }
                });
            }
        });
        assert_eq!(t.count(LockEvent::ArriveTree), 8000);
        assert_eq!(t.snapshot().get(LockEvent::ArriveTree), 8000);
    }

    #[test]
    fn rename_shows_in_snapshot() {
        let t = LockTelemetry::new("before".into(), "TEST");
        t.set_name("after");
        assert_eq!(t.snapshot().name, "after");
    }
}
